#!/bin/sh
# Reproduces the CI lint job locally in one command:
#
#   scripts/lint.sh          # full: gofmt, go vet, sqlmlvet, staticcheck, govulncheck
#   scripts/lint.sh --fast   # inner loop: gofmt + sqlmlvet only
#
# sqlmlvet is the repository's own vettool (batchretain, errdiscard,
# lockhygiene, maporder, poolreturn, retrybudget, vecsafety, wiretrust);
# a stale or reason-less //lint:allow fails the run like any other
# diagnostic. staticcheck and govulncheck are pinned to the exact
# versions CI uses and are skipped with a note when not installed, so the
# script works in a stdlib-only sandbox; CI always runs them.
set -eu

# Keep these in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

fast=0
case "${1:-}" in
--fast) fast=1 ;;
"") ;;
*)
    echo "usage: scripts/lint.sh [--fast]" >&2
    exit 2
    ;;
esac

cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
    echo "files need gofmt:"
    echo "$out"
    exit 1
fi

echo "== sqlmlvet (batchretain errdiscard lockhygiene maporder poolreturn retrybudget vecsafety wiretrust)"
tool="${TMPDIR:-/tmp}/sqlmlvet"
go build -o "$tool" ./cmd/sqlmlvet
go vet -vettool="$tool" ./...

if [ "$fast" = 1 ]; then
    echo "lint OK (fast)"
    exit 0
fi

echo "== go vet (standard analyzers)"
go vet ./...

echo "== staticcheck ($STATICCHECK_VERSION)"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "skipped: staticcheck not installed" \
        "(go install honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION)"
fi

echo "== govulncheck ($GOVULNCHECK_VERSION)"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "skipped: govulncheck not installed" \
        "(go install golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION)"
fi

echo "lint OK"
