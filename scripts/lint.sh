#!/bin/sh
# Reproduces the CI lint job locally in one command:
#
#   scripts/lint.sh
#
# Builds the sqlmlvet vettool (the engine's invariant analyzers:
# batchretain, poolreturn, lockhygiene, errdiscard), runs it over the
# whole tree through `go vet -vettool`, and runs gofmt and staticcheck.
# staticcheck and govulncheck are skipped with a note when not installed,
# so the script works in a stdlib-only sandbox; CI always runs them.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
    echo "files need gofmt:"
    echo "$out"
    exit 1
fi

echo "== go vet (standard analyzers)"
go vet ./...

echo "== sqlmlvet (batchretain poolreturn lockhygiene errdiscard)"
tool="${TMPDIR:-/tmp}/sqlmlvet"
go build -o "$tool" ./cmd/sqlmlvet
go vet -vettool="$tool" ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "skipped: staticcheck not installed" \
        "(go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "skipped: govulncheck not installed" \
        "(go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "lint OK"
