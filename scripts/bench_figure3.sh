#!/bin/sh
# Runs BenchmarkFigure3 and dumps the per-approach results as JSON.
#
#   scripts/bench_figure3.sh [output.json]
#
# Each sub-benchmark (naive / insql / insql+stream) runs 3 iterations
# (-benchtime 3x) five times (-count=5) and the JSON records the
# per-metric MEDIAN of the five samples plus the sample count — the same
# steady-state protocol as bench_hotpath.sh. A single cold iteration
# counts every sync.Pool miss (GC empties the pools between runs) and
# scheduler wobble in ns/op and B/op, which is exactly the noise that
# made earlier wire-protocol baselines untrustworthy.
set -eu

out="${1:-BENCH_figure3.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkFigure3' -benchmem -benchtime 3x -count 5 .)

echo "$raw" | awk -v out="$out" '
/^BenchmarkFigure3\// {
    name = $1
    sub(/^BenchmarkFigure3\//, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[nn++] = name }
    cnt[name]++
    c = cnt[name]
    v[name, "iterations", c] = $2
    for (i = 3; i < NF; i += 2) {
        key = $(i + 1)
        v[name, key, c] = $i
        if (!((name, key) in mseen)) { mseen[name, key] = 1; mlist[name] = mlist[name] key " " }
    }
}
# median of the collected samples for one (name, metric); counts are small
# (5), so an insertion sort is plenty.
function median(name, key,    c, i, j, t, a) {
    c = cnt[name]
    for (i = 1; i <= c; i++) a[i] = v[name, key, i] + 0
    for (i = 2; i <= c; i++)
        for (j = i; j > 1 && a[j - 1] > a[j]; j--) { t = a[j]; a[j] = a[j - 1]; a[j - 1] = t }
    return a[int((c + 1) / 2)]
}
function fmtnum(x) {
    if (x == int(x)) return sprintf("%d", x)
    return sprintf("%.4f", x)
}
END {
    if (nn == 0) { print "no BenchmarkFigure3 results parsed" > "/dev/stderr"; exit 1 }
    print "[" > out
    for (i = 0; i < nn; i++) {
        name = names[i]
        line = sprintf("  {\"benchmark\": \"%s\", \"samples\": %d, \"iterations\": %s",
                       name, cnt[name], fmtnum(median(name, "iterations")))
        order = "ns/op B/op allocs/op sim-ms/op peak-heap-B"
        nk = split(order, keys, " ")
        for (k = 1; k <= nk; k++)
            if ((name SUBSEP keys[k] SUBSEP 1) in v)
                line = line sprintf(", \"%s\": %s", keys[k], fmtnum(median(name, keys[k])))
        nm = split(mlist[name], mk, " ")
        for (k = 1; k <= nm; k++)
            if (index(mk[k], "sim-ms-") == 1)
                line = line sprintf(", \"%s\": %s", mk[k], fmtnum(median(name, mk[k])))
        print line "}" (i < nn - 1 ? "," : "") >> out
    }
    print "]" >> out
}
'
echo "wrote $out:"
cat "$out"
