#!/bin/sh
# Runs BenchmarkFigure3 and dumps the per-approach results as JSON.
#
#   scripts/bench_figure3.sh [output.json]
#
# Output: one object per sub-benchmark (naive / insql / insql+stream) with
# ns/op, B/op, allocs/op, sim-ms/op, and peak-heap-B — the numbers the
# block-oriented-transfer work tracks across PRs.
set -eu

out="${1:-BENCH_figure3.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkFigure3' -benchmem -benchtime 1x .)

echo "$raw" | awk -v out="$out" '
/^BenchmarkFigure3\// {
    name = $1
    sub(/^BenchmarkFigure3\//, "", name)
    sub(/-[0-9]+$/, "", name)
    delete m
    m["iterations"] = $2
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    line = sprintf("  {\"benchmark\": \"%s\"", name)
    order = "iterations ns/op B/op allocs/op sim-ms/op peak-heap-B"
    split(order, keys, " ")
    for (k = 1; k <= 6; k++)
        if (keys[k] in m)
            line = line sprintf(", \"%s\": %s", keys[k], m[keys[k]])
    for (key in m) {
        if (index(order, key) == 0 && index(key, "sim-ms-") == 1)
            line = line sprintf(", \"%s\": %s", key, m[key])
    }
    lines[n++] = line "}"
}
END {
    if (n == 0) { print "no BenchmarkFigure3 results parsed" > "/dev/stderr"; exit 1 }
    print "[" > out
    for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "") >> out
    print "]" >> out
}
'
echo "wrote $out:"
cat "$out"
