#!/bin/sh
# Runs the engine hot-path benchmarks (GroupBy / HashJoin / Distinct /
# OrderBy — the arena hash-table + parallel sort-merge paths — plus the
# Filter/Project row-vs-columnar pairs measuring the vectorized executor
# against the row-at-a-time one) and dumps the results as JSON.
#
#   scripts/bench_hotpath.sh [output.json]
#
# Output: one object per benchmark with ns/op, B/op and allocs/op — the
# numbers the allocation-free hash-path and columnar-kernel work tracks
# across PRs.
set -eu

out="${1:-BENCH_hotpath.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' \
    -bench 'BenchmarkGroupBy$|BenchmarkHashJoin$|BenchmarkDistinct$|BenchmarkOrderBy$|BenchmarkFilter/|BenchmarkProject/' \
    -benchmem -benchtime 1x ./internal/sqlengine/)

echo "$raw" | awk -v out="$out" '
/^Benchmark(GroupBy|HashJoin|Distinct|OrderBy|Filter|Project)/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    delete m
    m["iterations"] = $2
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    line = sprintf("  {\"benchmark\": \"%s\"", name)
    order = "iterations ns/op B/op allocs/op"
    split(order, keys, " ")
    for (k = 1; k <= 4; k++)
        if (keys[k] in m)
            line = line sprintf(", \"%s\": %s", keys[k], m[keys[k]])
    lines[n++] = line "}"
}
END {
    if (n == 0) { print "no hot-path benchmark results parsed" > "/dev/stderr"; exit 1 }
    print "[" > out
    for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "") >> out
    print "]" >> out
}
'
echo "wrote $out:"
cat "$out"
