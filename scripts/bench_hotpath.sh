#!/bin/sh
# Runs the engine hot-path benchmarks (GroupBy / HashJoin / Distinct /
# OrderBy — the arena hash-table + parallel sort-merge paths — plus the
# Filter/Project row-vs-columnar pairs measuring the vectorized executor
# against the row-at-a-time one, and the ParGroupBy/ParHashJoin/ParOrderBy
# P1-vs-P4 pairs measuring the morsel-driven worker pool) and dumps the
# results as JSON.
#
#   scripts/bench_hotpath.sh [output.json]
#
# Each benchmark runs 20 iterations (-benchtime 20x) five times (-count=5)
# and the JSON records the per-metric MEDIAN of the five samples. Both
# knobs fight the same noise: a single cold iteration counts every
# sync.Pool miss (GC empties the pools between runs) and scheduler wobble
# in B/op and ns/op — exactly what made earlier baselines misread the
# columnar path as an allocation regression. Steady-state medians are what
# the allocation-free hash-path and columnar-kernel work tracks across
# PRs.
set -eu

out="${1:-BENCH_hotpath.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' \
    -bench 'BenchmarkGroupBy$|BenchmarkHashJoin$|BenchmarkDistinct$|BenchmarkOrderBy$|BenchmarkFilter/|BenchmarkProject/|BenchmarkPar(GroupBy|HashJoin|OrderBy)/' \
    -benchmem -benchtime 20x -count 5 ./internal/sqlengine/)

echo "$raw" | awk -v out="$out" '
/^Benchmark(GroupBy|HashJoin|Distinct|OrderBy|Filter|Project|Par)/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[nn++] = name }
    cnt[name]++
    c = cnt[name]
    v[name, "iterations", c] = $2
    for (i = 3; i < NF; i += 2) v[name, $(i + 1), c] = $i
}
# median of the collected samples for one (name, metric); samples are
# numeric, counts are small (5), so an insertion sort is plenty.
function median(name, key,    c, i, j, t, a) {
    c = cnt[name]
    for (i = 1; i <= c; i++) a[i] = v[name, key, i] + 0
    for (i = 2; i <= c; i++)
        for (j = i; j > 1 && a[j - 1] > a[j]; j--) { t = a[j]; a[j] = a[j - 1]; a[j - 1] = t }
    return a[int((c + 1) / 2)]
}
END {
    if (nn == 0) { print "no hot-path benchmark results parsed" > "/dev/stderr"; exit 1 }
    order = "iterations ns/op B/op allocs/op"
    split(order, keys, " ")
    print "[" > out
    for (i = 0; i < nn; i++) {
        name = names[i]
        line = sprintf("  {\"benchmark\": \"%s\", \"samples\": %d", name, cnt[name])
        for (k = 1; k <= 4; k++)
            if ((name SUBSEP keys[k] SUBSEP 1) in v)
                line = line sprintf(", \"%s\": %d", keys[k], median(name, keys[k]))
        print line "}" (i < nn - 1 ? "," : "") >> out
    }
    print "]" >> out
}
'
echo "wrote $out:"
cat "$out"
