#!/bin/sh
# Renders a benchstat-style old-vs-new comparison of two
# BENCH_hotpath.json files (as written by scripts/bench_hotpath.sh): one
# line per benchmark and metric with the relative change. Negative deltas
# mean the new run is cheaper. CI runs this against the committed
# baseline and archives the table next to the raw numbers.
#
#   scripts/bench_compare.sh old.json new.json [report.txt]
set -eu

old="$1"
new="$2"
out="${3:-/dev/stdout}"

awk -v oldf="$old" -v newf="$new" '
function parse(file, vals,    line, n, parts, i, key, rest, bench) {
    while ((getline line < file) > 0) {
        n = split(line, parts, "\"")
        if (n < 4 || parts[2] != "benchmark") continue
        bench = parts[4]
        if (!(bench in seen)) { seen[bench] = 1; ord[++nord] = bench }
        for (i = 6; i < n; i += 2) {
            key = parts[i]
            rest = parts[i + 1]
            if (match(rest, /[0-9][0-9.]*/))
                vals[bench SUBSEP key] = substr(rest, RSTART, RLENGTH) + 0
        }
    }
    close(file)
}
BEGIN {
    nm = split("ns/op B/op allocs/op", metrics, " ")
    parse(oldf, o)
    parse(newf, w)
    printf "%-20s %-10s %15s %15s %9s\n", "benchmark", "metric", "old", "new", "delta"
    for (i = 1; i <= nord; i++) {
        b = ord[i]
        for (j = 1; j <= nm; j++) {
            m = metrics[j]
            ko = b SUBSEP m
            if (!(ko in o) && !(ko in w)) continue
            os = (ko in o) ? sprintf("%d", o[ko]) : "-"
            ns = (ko in w) ? sprintf("%d", w[ko]) : "-"
            if ((ko in o) && (ko in w) && o[ko] > 0)
                d = sprintf("%+.1f%%", (w[ko] - o[ko]) * 100.0 / o[ko])
            else if (!(ko in w))
                d = "gone"
            else
                d = "new"
            printf "%-20s %-10s %15s %15s %9s\n", b, m, os, ns, d
        }
    }
}
' > "$out"
if [ "$out" != /dev/stdout ]; then
    echo "wrote $out:"
    cat "$out"
fi
