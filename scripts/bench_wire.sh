#!/bin/sh
# Runs the wire-protocol ablation grid (BenchmarkAblationBlockSize: the v1
# per-row frames, the v2 block sweep, and the v2-vs-v3 × compression
# on/off wire-format variants) and dumps the results as JSON.
#
#   scripts/bench_wire.sh [output.json]
#
# Each variant runs 5 iterations (-benchtime 5x) five times (-count=5)
# and the JSON records the per-metric MEDIAN of the five samples — the
# steady-state protocol of bench_hotpath.sh. The numbers this file tracks
# across PRs: wire-B/op vs raw-B/op (the columnar compression ratio),
# frames/op (coalescing), and allocs/op on the transfer path.
set -eu

out="${1:-BENCH_wire.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkAblationBlockSize' -benchmem -benchtime 5x -count 5 .)

echo "$raw" | awk -v out="$out" '
/^BenchmarkAblationBlockSize\// {
    name = $1
    sub(/^BenchmarkAblationBlockSize\//, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[nn++] = name }
    cnt[name]++
    c = cnt[name]
    v[name, "iterations", c] = $2
    for (i = 3; i < NF; i += 2) v[name, $(i + 1), c] = $i
}
function median(name, key,    c, i, j, t, a) {
    c = cnt[name]
    for (i = 1; i <= c; i++) a[i] = v[name, key, i] + 0
    for (i = 2; i <= c; i++)
        for (j = i; j > 1 && a[j - 1] > a[j]; j--) { t = a[j]; a[j] = a[j - 1]; a[j - 1] = t }
    return a[int((c + 1) / 2)]
}
function fmtnum(x) {
    if (x == int(x)) return sprintf("%d", x)
    return sprintf("%.4f", x)
}
END {
    if (nn == 0) { print "no wire ablation results parsed" > "/dev/stderr"; exit 1 }
    order = "iterations ns/op B/op allocs/op frames/op raw-B/op wire-B/op sim-ms/op"
    nk = split(order, keys, " ")
    print "[" > out
    for (i = 0; i < nn; i++) {
        name = names[i]
        line = sprintf("  {\"benchmark\": \"%s\", \"samples\": %d", name, cnt[name])
        for (k = 1; k <= nk; k++)
            if ((name SUBSEP keys[k] SUBSEP 1) in v)
                line = line sprintf(", \"%s\": %s", keys[k], fmtnum(median(name, keys[k])))
        print line "}" (i < nn - 1 ? "," : "") >> out
    }
    print "]" >> out
}
'
echo "wrote $out:"
cat "$out"
