// Benchmarks regenerating the paper's evaluation (§7). One benchmark per
// figure plus the design-choice ablations; each reports the *simulated*
// time of the modelled cluster (sim-ms) next to Go's wall-clock ns/op.
//
//	go test -bench=. -benchmem
//
// The simulated time is what corresponds to the paper's seconds: the cost
// model charges disk, network and row-processing passes at calibrated
// rates without sleeping, so the benchmarks stay fast while the *shape* of
// the results (who wins, by what factor) reproduces the paper's figures.
package sqlml_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sqlml/internal/core"
	"sqlml/internal/experiments"
	"sqlml/internal/ml"
	"sqlml/internal/row"
	"sqlml/internal/stream"
)

func simMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFigure3 regenerates Figure 3: the three approaches of
// connecting the big SQL system with the big ML system, with the same
// stage breakdown the paper plots (prep / trsfm / input for ml). Besides
// the allocation counters (-benchmem is implied via ReportAllocs), it
// reports the peak Go heap over the run — the number the batch-pipelined
// executor is meant to push down relative to stage-at-a-time
// materialization.
func BenchmarkFigure3(b *testing.B) {
	for _, approach := range []core.Approach{core.Naive, core.InSQL, core.InSQLStream} {
		b.Run(approach.String(), func(b *testing.B) {
			env, err := experiments.Setup(experiments.DefaultScale(), stream.DefaultSenderConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			cfg := experiments.PaperPipeline()
			var total, stageSim time.Duration
			stages := map[string]time.Duration{}
			b.ReportAllocs()
			var peakHeap uint64
			var ms runtime.MemStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Cost.ResetStats()
				last := time.Duration(0)
				cfg.OnStage = func(stage string) {
					now := env.Cost.Stats().SimulatedTime
					stages[stage] += now - last
					last = now
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peakHeap {
						peakHeap = ms.HeapAlloc
					}
				}
				if _, err := core.Run(env, approach, cfg); err != nil {
					b.Fatal(err)
				}
				stageSim = env.Cost.Stats().SimulatedTime
				total += stageSim
			}
			b.ReportMetric(simMS(total)/float64(b.N), "sim-ms/op")
			b.ReportMetric(float64(peakHeap), "peak-heap-B")
			for stage, d := range stages {
				b.ReportMetric(simMS(d)/float64(b.N), "sim-ms-"+stage)
			}
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: the effect of caching on the
// insql+stream pipeline — no cache, cached recode maps, cached fully
// transformed result.
func BenchmarkFigure4(b *testing.B) {
	type variant struct {
		name  string
		tier  core.CacheTier
		onDFS bool
	}
	variants := []variant{
		{"no-cache", core.CacheOff, false},
		{"cache-recode-maps", core.CacheRecodeMaps, false},
		{"cache-transformed-result", core.CacheFullResult, false},
		{"cache-transformed-result-dfs", core.CacheFullResult, true},
	}
	for _, v := range variants {
		tier := v.tier
		b.Run(v.name, func(b *testing.B) {
			env, err := experiments.Setup(experiments.DefaultScale(), stream.DefaultSenderConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			cfg := experiments.PaperPipeline()
			cfg.CachePopulate = true
			cfg.CacheOnDFS = v.onDFS
			if _, err := core.Run(env, core.InSQLStream, cfg); err != nil {
				b.Fatal(err)
			}
			cfg.CachePopulate = false
			cfg.Tier = tier
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Cost.ResetStats()
				if _, err := core.Run(env, core.InSQLStream, cfg); err != nil {
					b.Fatal(err)
				}
				total += env.Cost.Stats().SimulatedTime
			}
			b.ReportMetric(simMS(total)/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkSVMTraining reproduces the §7 side note: ingesting the
// transformed data and running SVMWithSGD for 10 iterations (the paper
// measured 774 s at full scale; absolute numbers differ, the point is that
// training dwarfs the transfer savings).
func BenchmarkSVMTraining(b *testing.B) {
	env, err := experiments.Setup(experiments.DefaultScale(), stream.DefaultSenderConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	res, err := core.Run(env, core.InSQL, experiments.PaperPipeline())
	if err != nil {
		b.Fatal(err)
	}
	sgd := ml.DefaultSGD()
	sgd.Iterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainSVMWithSGD(res.Dataset, sgd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSplitFactor sweeps k, the number of ML workers fed by
// each SQL worker (m = n·k InputSplits), §3's degree-of-parallelism knob.
func BenchmarkAblationSplitFactor(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(benchName("k", k), func(b *testing.B) {
			cfg := experiments.DefaultTransfer()
			cfg.K = k
			runTransferBench(b, cfg)
		})
	}
}

// BenchmarkAblationBufferSize sweeps the send/receive buffer size (the
// paper fixes both at 4 KB).
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, size := range []int{1 << 10, 4 << 10, 64 << 10, 1 << 20} {
		b.Run(benchName("buf", size), func(b *testing.B) {
			cfg := experiments.DefaultTransfer()
			cfg.BufferSize = size
			runTransferBench(b, cfg)
		})
	}
}

// BenchmarkAblationBlockSize sweeps the rows-per-block budget of the wire
// protocol, plus the v1 per-row framing as the degenerate point — the
// block-oriented-transfer ablation (frames/op makes the coalescing
// visible). The v2-vs-v3 × compression-on/off grid isolates what the
// columnar frame buys on top of block coalescing (wire-B/op) and what the
// per-column encodings buy on top of the columnar layout.
func BenchmarkAblationBlockSize(b *testing.B) {
	type variant struct {
		name       string
		blockRows  int
		proto      int
		noCompress bool
	}
	variants := []variant{
		{"rowframes-v1", 0, row.WireProtoRow, false},
		{"block=64rows", 64, 0, false},
		{"block=1024rows", 1024, 0, false},
		{"block=4096rows", 4096, 0, false},
		{"v2-rowblocks", 1024, row.WireProtoBlock, false},
		{"v3-columnar", 1024, row.WireProtoCol, false},
		{"v3-columnar-nocompress", 1024, row.WireProtoCol, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := experiments.DefaultTransfer()
			cfg.BlockRows = v.blockRows
			cfg.Proto = v.proto
			cfg.DisableCompression = v.noCompress
			var frames, wire, raw int64
			var total time.Duration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.RunTransfer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				frames += rep.FramesSent
				wire += rep.WireBytes
				raw += rep.RawBytes
				total += rep.SimTime
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
			b.ReportMetric(float64(wire)/float64(b.N), "wire-B/op")
			b.ReportMetric(float64(raw)/float64(b.N), "raw-B/op")
			b.ReportMetric(simMS(total)/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkAblationLocality compares locality-aware ML worker placement
// (colocated with SQL workers, node-local transfer) against anti-located
// placement where every byte crosses the simulated network.
func BenchmarkAblationLocality(b *testing.B) {
	for _, colocate := range []bool{true, false} {
		name := "colocated"
		if !colocate {
			name = "remote"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.DefaultTransfer()
			cfg.Colocate = colocate
			var net int64
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.RunTransfer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				net += rep.NetBytes
				total += rep.SimTime
			}
			b.ReportMetric(float64(net)/float64(b.N), "net-B/op")
			b.ReportMetric(simMS(total)/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkAblationSpill compares a fast consumer against a slow one that
// forces the sender's spill-to-disk backpressure path.
func BenchmarkAblationSpill(b *testing.B) {
	for _, delay := range []time.Duration{0, 50 * time.Microsecond} {
		name := "fast-consumer"
		if delay > 0 {
			name = "slow-consumer"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.DefaultTransfer()
			cfg.ConsumeDelay = delay
			cfg.QueueFrames = 4
			cfg.BlockRows = 16 // small blocks so the queue can actually fill
			cfg.RowsPerWork = 1500
			var spilled int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.RunTransfer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				spilled += rep.SpilledBytes
			}
			b.ReportMetric(float64(spilled)/float64(b.N), "spilled-B/op")
		})
	}
}

// BenchmarkFailureRecovery measures a transfer in which one ML worker
// crashes mid-stream and the §6 restart protocol resends its split.
func BenchmarkFailureRecovery(b *testing.B) {
	cfg := experiments.DefaultTransfer()
	cfg.RowsPerWork = 500
	cfg.FailSplit = 1
	cfg.FailAfterRows = 100
	var restarts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		restarts += rep.Restarts
	}
	b.ReportMetric(float64(restarts)/float64(b.N), "restarts/op")
}

// BenchmarkMessageLogTransfer measures the §8 future-work alternative: the
// same rows through a Kafka-style message log instead of direct sockets.
func BenchmarkMessageLogTransfer(b *testing.B) {
	b.Run("direct-stream", func(b *testing.B) {
		runTransferBench(b, experiments.DefaultTransfer())
	})
	b.Run("message-log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.MessageLogTransfer(4, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRecode compares the paper's join-based recode against
// the map-side recode_apply UDF.
func BenchmarkAblationRecode(b *testing.B) {
	env, err := experiments.Setup(experiments.DefaultScale(), stream.DefaultSenderConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	var joinTotal, mapTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, m, err := experiments.RecodeAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		joinTotal += j
		mapTotal += m
	}
	b.ReportMetric(simMS(joinTotal)/float64(b.N), "sim-ms-join")
	b.ReportMetric(simMS(mapTotal)/float64(b.N), "sim-ms-mapside")
}

func runTransferBench(b *testing.B, cfg experiments.TransferConfig) {
	b.Helper()
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += rep.SimTime
	}
	b.ReportMetric(simMS(total)/float64(b.N), "sim-ms/op")
}

func benchName(prefix string, v int) string {
	switch {
	case v >= 1<<20 && v%(1<<20) == 0:
		return fmt.Sprintf("%s=%dMB", prefix, v>>20)
	case v >= 1<<10 && v%(1<<10) == 0:
		return fmt.Sprintf("%s=%dKB", prefix, v>>10)
	default:
		return fmt.Sprintf("%s=%d", prefix, v)
	}
}
