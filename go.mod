module sqlml

go 1.22
