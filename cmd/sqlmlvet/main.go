// Command sqlmlvet is the repository's analysis suite: a vet-compatible
// multichecker enforcing the engine's sharp-edged conventions — batch
// reuse, pooled-buffer discipline, lock/goroutine hygiene, error discard
// on the transfer paths, determinism (map order and wall clock), ColBatch
// selection/lifetime safety, retry budgets, and wire-input bounds. Run it
// through the build tool:
//
//	go build -o sqlmlvet ./cmd/sqlmlvet
//	go vet -vettool=$(pwd)/sqlmlvet ./...
//
// or directly (`sqlmlvet ./...`), which re-execs through go vet.
// Individual passes can be disabled with -<analyzer>=false; deliberate
// violations are suppressed in source with `//lint:allow <analyzer>
// <reason>`, and stale suppressions are themselves diagnosed.
package main

import (
	"sqlml/internal/analyzers/batchretain"
	"sqlml/internal/analyzers/errdiscard"
	"sqlml/internal/analyzers/lockhygiene"
	"sqlml/internal/analyzers/maporder"
	"sqlml/internal/analyzers/poolreturn"
	"sqlml/internal/analyzers/retrybudget"
	"sqlml/internal/analyzers/unitchecker"
	"sqlml/internal/analyzers/vecsafety"
	"sqlml/internal/analyzers/wiretrust"
)

func main() {
	unitchecker.Main(
		batchretain.Analyzer,
		errdiscard.Analyzer,
		lockhygiene.Analyzer,
		maporder.Analyzer,
		poolreturn.Analyzer,
		retrybudget.Analyzer,
		vecsafety.Analyzer,
		wiretrust.Analyzer,
	)
}
