// Command sqlan runs one integrated SQL→ML pipeline end to end on a
// simulated deployment: generate (or reuse) the §7 warehouse, execute the
// preparation query, transform it In-SQL, hand it to the ML engine with
// the selected approach, and train the selected model.
//
// Usage:
//
//	sqlan -approach insql+stream -model svm
//	sqlan -approach naive -users 500 -carts-per-user 50
//	sqlan -query "SELECT ..." -label abandoned -recode gender,abandoned -dummy gender
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sqlml/internal/core"
	"sqlml/internal/experiments"
	"sqlml/internal/ml"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

func main() {
	approach := flag.String("approach", "insql+stream", "naive | insql | insql+stream")
	model := flag.String("model", "svm", "svm | logreg | bayes | tree | none")
	users := flag.Int("users", 1000, "users table rows")
	cartsPer := flag.Int("carts-per-user", 100, "carts per user")
	query := flag.String("query", experiments.PaperQuery, "preparation SQL")
	label := flag.String("label", "abandoned", "label column after transformation")
	recode := flag.String("recode", "gender,abandoned", "categorical columns to recode")
	dummy := flag.String("dummy", "gender", "recoded columns to dummy-code")
	k := flag.Int("k", 2, "streaming split factor (ML workers per SQL worker)")
	cache := flag.Bool("cache", false, "run twice and use the transformation cache on the second run")
	flag.Parse()

	if err := run(*approach, *model, *users, *cartsPer, *query, *label, *recode, *dummy, *k, *cache); err != nil {
		fmt.Fprintf(os.Stderr, "sqlan: %v\n", err)
		os.Exit(1)
	}
}

func run(approach, model string, users, cartsPer int, query, label, recode, dummy string, k int, useCache bool) error {
	var a core.Approach
	switch approach {
	case "naive":
		a = core.Naive
	case "insql":
		a = core.InSQL
	case "insql+stream":
		a = core.InSQLStream
	default:
		return fmt.Errorf("unknown approach %q", approach)
	}

	scale := experiments.Scale{Users: users, CartsPerUser: cartsPer, Seed: 7}
	env, err := experiments.Setup(scale, stream.DefaultSenderConfig())
	if err != nil {
		return err
	}
	defer env.Close()

	spec := transform.Spec{Coding: transform.CodingDummy}
	for _, c := range strings.Split(recode, ",") {
		if c = strings.TrimSpace(c); c != "" {
			spec.RecodeCols = append(spec.RecodeCols, c)
		}
	}
	for _, c := range strings.Split(dummy, ",") {
		if c = strings.TrimSpace(c); c != "" {
			spec.CodeCols = append(spec.CodeCols, c)
		}
	}
	cfg := core.PipelineConfig{
		Query:          query,
		Spec:           spec,
		LabelCol:       label,
		LabelTransform: func(v float64) float64 { return v - 1 },
		K:              k,
		CachePopulate:  useCache,
	}

	res, err := core.Run(env, a, cfg)
	if err != nil {
		return err
	}
	report(env, res)

	if useCache {
		cfg.CachePopulate = false
		cfg.Tier = core.CacheFullResult
		env.Cost.ResetStats()
		fmt.Println("--- second run (cache enabled) ---")
		res2, err := core.Run(env, a, cfg)
		if err != nil {
			return err
		}
		report(env, res2)
		res = res2
	}

	return train(model, res.Dataset)
}

func report(env *core.Env, res *core.RunResult) {
	fmt.Printf("approach=%s rows=%d partitions=%d features=%d cache=%s\n",
		res.Approach, res.Rows, len(res.Dataset.Parts), res.Dataset.NumFeatures, res.CacheHit)
	fmt.Printf("wall total=%s  simulated cluster time=%s\n",
		res.Timings.Total.Round(time.Millisecond), env.Cost.Stats().SimulatedTime.Round(10*time.Microsecond))
}

func train(model string, d *ml.Dataset) error {
	start := time.Now()
	switch model {
	case "none":
		return nil
	case "svm":
		m, err := ml.TrainSVMWithSGD(d, ml.DefaultSGD())
		if err != nil {
			return err
		}
		fmt.Printf("SVM trained in %s, train accuracy %.3f\n",
			time.Since(start).Round(time.Millisecond), ml.Accuracy(d, m.Predict))
	case "logreg":
		m, err := ml.TrainLogisticRegressionWithSGD(d, ml.DefaultSGD())
		if err != nil {
			return err
		}
		fmt.Printf("logistic regression trained in %s, train accuracy %.3f\n",
			time.Since(start).Round(time.Millisecond), ml.Accuracy(d, m.Predict))
	case "bayes":
		m, err := ml.TrainNaiveBayes(d, 1.0)
		if err != nil {
			return err
		}
		fmt.Printf("naive Bayes trained in %s, train accuracy %.3f\n",
			time.Since(start).Round(time.Millisecond), ml.Accuracy(d, m.Predict))
	case "tree":
		m, err := ml.TrainDecisionTree(d, ml.DefaultTree())
		if err != nil {
			return err
		}
		fmt.Printf("decision tree (depth %d) trained in %s, train accuracy %.3f\n",
			m.Depth, time.Since(start).Round(time.Millisecond), ml.Accuracy(d, m.Predict))
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	return nil
}
