// Command datagen generates the paper's §7 synthetic warehouse (carts and
// users tables) and writes it either to local text files or into a fresh
// simulated DFS (printing its layout), so the workload can be inspected.
//
// Usage:
//
//	datagen -users 2000 -carts-per-user 100 -out /tmp/warehouse
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sqlml/internal/datagen"
	"sqlml/internal/row"
)

func main() {
	users := flag.Int("users", 2000, "users table rows")
	cartsPer := flag.Int("carts-per-user", 100, "carts per user")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", ".", "output directory for users.txt and carts.txt")
	flag.Parse()

	d, err := datagen.Generate(datagen.Config{Users: *users, CartsPerUser: *cartsPer, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := writeTable(filepath.Join(*out, "users.txt"), d.Users); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := writeTable(filepath.Join(*out, "carts.txt"), d.Carts); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d users and %d carts under %s\n", len(d.Users), len(d.Carts), *out)
	fmt.Printf("users schema: %s\n", datagen.UsersSchema())
	fmt.Printf("carts schema: %s\n", datagen.CartsSchema())
}

func writeTable(path string, rows []row.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	var buf []byte
	for _, r := range rows {
		buf = row.AppendLine(buf[:0], r)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}
