// Command bench regenerates the paper's evaluation tables from the command
// line: Figure 3 (three approaches of connecting big SQL with big ML, with
// stage breakdown), Figure 4 (effect of caching), the §7 SVM-training side
// note, and the design-choice ablations.
//
// Usage:
//
//	bench -fig 3            # Figure 3
//	bench -fig 4            # Figure 4
//	bench -fig svm          # §7 SVM training note
//	bench -fig ablations    # transfer ablations (k, buffers, locality, ...)
//	bench -fig all          # everything
//	bench -users 2000 -carts-per-user 100   # scale override
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sqlml/internal/experiments"
	"sqlml/internal/row"
	"sqlml/internal/stream"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run: 3, 4, svm, ablations, all")
	users := flag.Int("users", 1000, "users table rows")
	cartsPer := flag.Int("carts-per-user", 100, "carts per user (the paper's ratio is 100)")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	scale := experiments.Scale{Users: *users, CartsPerUser: *cartsPer, Seed: *seed}
	ok := true
	run := func(name string, f func(experiments.Scale) error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(scale); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, err)
			ok = false
		}
	}
	run("3", runFigure3)
	run("4", runFigure4)
	run("svm", runSVM)
	run("ablations", runAblations)
	if !ok {
		os.Exit(1)
	}
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func runFigure3(scale experiments.Scale) error {
	env, err := experiments.Setup(scale, stream.DefaultSenderConfig())
	if err != nil {
		return err
	}
	defer env.Close()
	rows, err := experiments.Figure3(env)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 — comparison of three approaches of connecting big SQL and big ML")
	fmt.Printf("(simulated cluster milliseconds; %d users x %d carts each)\n", scale.Users, scale.CartsPerUser)
	w := newTab()
	fmt.Fprintln(w, "approach\tstage breakdown (sim-ms)\ttotal sim-ms\twall")
	for _, r := range rows {
		stages := ""
		for i, s := range r.Stages {
			if i > 0 {
				stages += "  "
			}
			stages += fmt.Sprintf("%s=%s", s.Stage, ms(s.Sim))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.Approach, stages, ms(r.TotalSim), r.Wall.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(rows) == 3 && rows[1].TotalSim > 0 && rows[2].TotalSim > 0 {
		fmt.Printf("speedups: naive/insql = %.2fx (paper: 1.7x), insql/insql+stream = %.2fx\n\n",
			float64(rows[0].TotalSim)/float64(rows[1].TotalSim),
			float64(rows[1].TotalSim)/float64(rows[2].TotalSim))
	}
	return nil
}

func runFigure4(scale experiments.Scale) error {
	for _, onDFS := range []bool{false, true} {
		env, err := experiments.Setup(scale, stream.DefaultSenderConfig())
		if err != nil {
			return err
		}
		rows, err := experiments.Figure4(env, onDFS)
		env.Close()
		if err != nil {
			return err
		}
		variant := "in-memory materialized view"
		if onDFS {
			variant = "actual DFS table (the paper's setting)"
		}
		fmt.Printf("Figure 4 — effect of caching (insql+stream pipeline; cache as %s)\n", variant)
		w := newTab()
		fmt.Fprintln(w, "tier\tcache hit\ttotal sim-ms\twall")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.Tier, r.Hit, ms(r.TotalSim), r.Wall.Round(time.Millisecond))
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if len(rows) == 3 && rows[1].TotalSim > 0 && rows[2].TotalSim > 0 {
			fmt.Printf("speedups vs no cache: recode maps = %.2fx (paper: 1.5x), full result = %.2fx (paper: 2.2x)\n\n",
				float64(rows[0].TotalSim)/float64(rows[1].TotalSim),
				float64(rows[0].TotalSim)/float64(rows[2].TotalSim))
		}
	}
	return nil
}

func runSVM(scale experiments.Scale) error {
	env, err := experiments.Setup(scale, stream.DefaultSenderConfig())
	if err != nil {
		return err
	}
	defer env.Close()
	rep, err := experiments.SVMTraining(env, 10)
	if err != nil {
		return err
	}
	fmt.Println("§7 note — transformed-data ingestion + SVMWithSGD, 10 iterations")
	fmt.Printf("ingest sim-ms=%s  train wall=%s  train accuracy=%.3f\n\n",
		ms(rep.IngestSim), rep.TrainWall.Round(time.Millisecond), rep.Accuracy)
	return nil
}

func runAblations(experiments.Scale) error {
	fmt.Println("Ablations — parallel streaming transfer design choices (§3)")
	w := newTab()
	fmt.Fprintln(w, "experiment\tvariant\tsim-ms\tnet-KB\tspilled-KB\tframes\traw-KB\twire-KB\trestarts")
	report := func(name, variant string, rep *experiments.TransferReport) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\t%d\t%.1f\t%.1f\t%d\n",
			name, variant, ms(rep.SimTime), float64(rep.NetBytes)/1024, float64(rep.SpilledBytes)/1024, rep.FramesSent,
			float64(rep.RawBytes)/1024, float64(rep.WireBytes)/1024, rep.Restarts)
	}

	for _, k := range []int{1, 2, 4, 8} {
		cfg := experiments.DefaultTransfer()
		cfg.K = k
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("split factor", fmt.Sprintf("k=%d", k), rep)
	}
	for _, size := range []int{1 << 10, 4 << 10, 64 << 10} {
		cfg := experiments.DefaultTransfer()
		cfg.BufferSize = size
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("buffer size", fmt.Sprintf("%dKB", size>>10), rep)
	}
	{
		cfg := experiments.DefaultTransfer()
		cfg.Proto = row.WireProtoRow
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("block framing", "v1 per-row frames", rep)
	}
	for _, blockRows := range []int{64, 1024, 4096} {
		cfg := experiments.DefaultTransfer()
		cfg.BlockRows = blockRows
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("block framing", fmt.Sprintf("block=%d rows", blockRows), rep)
	}
	{
		type wireVariant struct {
			name       string
			proto      int
			noCompress bool
		}
		for _, v := range []wireVariant{
			{"v2 row blocks", row.WireProtoBlock, false},
			{"v3 columnar", row.WireProtoCol, false},
			{"v3 columnar, raw vectors", row.WireProtoCol, true},
		} {
			cfg := experiments.DefaultTransfer()
			cfg.Proto = v.proto
			cfg.DisableCompression = v.noCompress
			rep, err := experiments.RunTransfer(cfg)
			if err != nil {
				return err
			}
			report("wire format", v.name, rep)
		}
	}
	for _, colocate := range []bool{true, false} {
		cfg := experiments.DefaultTransfer()
		cfg.Colocate = colocate
		variant := "colocated"
		if !colocate {
			variant = "remote"
		}
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("locality", variant, rep)
	}
	{
		cfg := experiments.DefaultTransfer()
		cfg.ConsumeDelay = 50 * time.Microsecond
		cfg.QueueFrames = 4
		cfg.BlockRows = 16
		cfg.RowsPerWork = 1500
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("slow consumer", "spill path", rep)
	}
	{
		cfg := experiments.DefaultTransfer()
		cfg.RowsPerWork = 500
		cfg.FailSplit = 1
		cfg.FailAfterRows = 100
		rep, err := experiments.RunTransfer(cfg)
		if err != nil {
			return err
		}
		report("failure recovery", "1 ML worker crash", rep)
	}
	{
		rep, err := experiments.MessageLogTransfer(4, 2000)
		if err != nil {
			return err
		}
		report("message log (§8)", "kafka-style", rep)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
