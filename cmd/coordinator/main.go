// Command coordinator runs the paper's long-standing matchmaking service
// (§3) as a standalone process: SQL-side senders and ML-side
// SQLStreamInputFormats from other processes connect to it over TCP.
//
// Usage:
//
//	coordinator -listen 127.0.0.1:7077 [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sqlml/internal/stream"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to listen on")
	verbose := flag.Bool("v", false, "log protocol events")
	flag.Parse()

	// Standalone deployments launch ML jobs out of band (the job is already
	// running and polling get_splits), so no launcher is registered.
	coord := stream.NewCoordinator(nil)
	if *verbose {
		coord.Logf = log.Printf
	}
	addr, err := coord.Start(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
		os.Exit(1)
	}
	log.Printf("coordinator listening on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("coordinator shutting down")
	coord.Stop()
}
