// Command sqlsh is an interactive SQL shell against a simulated deployment
// preloaded with the paper's synthetic warehouse — handy for exploring the
// engine, the In-SQL transformation UDFs, and the catalog.
//
//	go run ./cmd/sqlsh
//	sqlml> SHOW TABLES;
//	sqlml> SELECT country, COUNT(*) FROM users GROUP BY country;
//	sqlml> SELECT * FROM TABLE(distinct_values(users, 'gender')) LIMIT 5;
//
// Statements end with ';' and may span lines. Ctrl-D exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"sqlml/internal/core"
	"sqlml/internal/datagen"
	"sqlml/internal/row"
	"sqlml/internal/transform"
)

func main() {
	users := flag.Int("users", 500, "users table rows")
	cartsPer := flag.Int("carts-per-user", 20, "carts per user")
	maxRows := flag.Int("max-rows", 40, "result rows to display")
	flag.Parse()
	if err := run(*users, *cartsPer, *maxRows); err != nil {
		fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
		os.Exit(1)
	}
}

func run(users, cartsPer, maxRows int) error {
	env, err := core.NewEnv(core.DefaultEnvConfig())
	if err != nil {
		return err
	}
	defer env.Close()
	if err := transform.RegisterScalingUDFs(env.Engine); err != nil {
		return err
	}
	d, err := datagen.Generate(datagen.Config{Users: users, CartsPerUser: cartsPer, Seed: 7})
	if err != nil {
		return err
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(d, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		return err
	}
	fmt.Printf("sqlml shell — %d users, %d carts on the simulated DFS; end statements with ';'\n",
		len(d.Users), len(d.Carts))

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sqlml> ")
		} else {
			fmt.Print("  ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt == ";" || stmt == "" {
			prompt()
			continue
		}
		execute(env, strings.TrimSuffix(stmt, ";"), maxRows)
		prompt()
	}
	fmt.Println()
	return scanner.Err()
}

func execute(env *core.Env, sql string, maxRows int) {
	start := time.Now()
	res, err := env.Engine.Run(sql)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if res == nil {
		fmt.Printf("ok (%s)\n", elapsed.Round(time.Microsecond))
		return
	}
	printResult(res.Schema, res.Rows(), maxRows)
	fmt.Printf("%d row(s) in %s\n", res.NumRows(), elapsed.Round(time.Microsecond))
}

func printResult(schema row.Schema, rows []row.Row, maxRows int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(schema.Names(), "\t"))
	for i, r := range rows {
		if i >= maxRows {
			fmt.Fprintf(w, "... (%d more)\n", len(rows)-maxRows)
			break
		}
		cells := make([]string, len(r))
		for j, v := range r {
			if v.Null {
				cells[j] = "NULL"
			} else {
				cells[j] = v.String()
			}
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "flush: %v\n", err)
	}
}
