package transform

import (
	"fmt"
	"strings"

	"sqlml/internal/row"
)

// RecodedSchema returns the schema of a table after recoding the listed
// VARCHAR columns to BIGINT codes.
func RecodedSchema(in row.Schema, cols []string) (row.Schema, error) {
	return recodedSchema(in, cols)
}

// Encoder applies a full row-at-a-time transformation (recode + coding)
// outside the SQL engine. It backs the external Jaql-style transformation
// tool of the naive baseline, guaranteeing the naive and In-SQL pipelines
// compute identical outputs.
type Encoder struct {
	in         row.Schema
	out        row.Schema
	m          *RecodeMap
	recodeCols map[int]string // input column index → column name
	plans      map[int]encoderPlan
	levels     map[int][]row.Row // EncodeBatch level-row cache, per coded column
}

type encoderPlan struct {
	n      int
	t      row.Type
	encode func(int64) (row.Row, error)
}

// NewEncoder builds an encoder for rows of schema in: recodeCols are
// recoded through m; codeCols (a subset) are then expanded with the coding.
func NewEncoder(in row.Schema, m *RecodeMap, recodeCols, codeCols []string, coding Coding) (*Encoder, error) {
	e := &Encoder{in: in, m: m, recodeCols: make(map[int]string), plans: make(map[int]encoderPlan)}
	for _, c := range recodeCols {
		idx := in.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("transform: unknown column %q", c)
		}
		if in.Cols[idx].Type != row.TypeString {
			return nil, fmt.Errorf("transform: column %q is %s; recoding applies to VARCHAR", c, in.Cols[idx].Type)
		}
		e.recodeCols[idx] = strings.ToLower(c)
	}
	var fn codingFn
	switch coding {
	case CodingNone:
	case CodingDummy:
		fn = dummyCoding
	case CodingEffect:
		fn = effectCoding
	case CodingOrthogonal:
		fn = orthogonalCoding
	default:
		return nil, fmt.Errorf("transform: unknown coding %d", coding)
	}
	coded := make(map[string]bool)
	for _, c := range codeCols {
		if fn == nil {
			return nil, fmt.Errorf("transform: codeCols given with CodingNone")
		}
		idx := in.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("transform: unknown column %q", c)
		}
		if _, ok := e.recodeCols[idx]; !ok {
			return nil, fmt.Errorf("transform: coded column %q is not recoded", c)
		}
		k := m.Cardinality(c)
		if k == 0 {
			return nil, fmt.Errorf("transform: column %q not in recode map", c)
		}
		n, t, enc, err := fn(k)
		if err != nil {
			return nil, err
		}
		e.plans[idx] = encoderPlan{n: n, t: t, encode: enc}
		coded[strings.ToLower(c)] = true
	}

	var cols []row.Column
	for i, c := range in.Cols {
		name := strings.ToLower(c.Name)
		if plan, ok := e.plans[i]; ok {
			for j := 1; j <= plan.n; j++ {
				cols = append(cols, row.Column{Name: fmt.Sprintf("%s_%d", c.Name, j), Type: plan.t})
			}
			continue
		}
		if _, ok := e.recodeCols[i]; ok {
			cols = append(cols, row.Column{Name: c.Name, Type: row.TypeInt})
			continue
		}
		_ = name
		cols = append(cols, c)
	}
	out, err := row.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	e.out = out
	return e, nil
}

// Schema returns the encoder's output schema.
func (e *Encoder) Schema() row.Schema { return e.out }

// Encode transforms one input row.
func (e *Encoder) Encode(r row.Row) (row.Row, error) {
	if len(r) != e.in.Len() {
		return nil, fmt.Errorf("transform: row arity %d, schema arity %d", len(r), e.in.Len())
	}
	var out row.Row
	for i, v := range r {
		col, isCat := e.recodeCols[i]
		if !isCat {
			out = append(out, v)
			continue
		}
		var code row.Value
		if v.Null {
			code = row.NullOf(row.TypeInt)
		} else {
			id, ok := e.m.ID(col, v.AsString())
			if !ok {
				return nil, fmt.Errorf("transform: value %q of column %q not in recode map", v.AsString(), col)
			}
			code = row.Int(id)
		}
		plan, isCoded := e.plans[i]
		if !isCoded {
			out = append(out, code)
			continue
		}
		if code.Null {
			for j := 0; j < plan.n; j++ {
				out = append(out, row.NullOf(plan.t))
			}
			continue
		}
		vec, err := plan.encode(code.AsInt())
		if err != nil {
			return nil, fmt.Errorf("transform: column %q: %w", col, err)
		}
		out = append(out, vec...)
	}
	return out, nil
}

// EncodeBatch transforms a whole column-major batch into out, compacting
// any selection vector: out gets exactly b.Len() rows and no selection.
// String codes are looked up straight out of the vector slab and the
// per-level coding rows are cached after the first occurrence, so the hot
// loop is a map probe plus typed appends. Not safe for concurrent use —
// the level cache mutates.
func (e *Encoder) EncodeBatch(b, out *row.ColBatch) error {
	if b.NumCols() != e.in.Len() {
		return fmt.Errorf("transform: batch arity %d, schema arity %d", b.NumCols(), e.in.Len())
	}
	out.Reset(row.SchemaTypes(e.out))
	k := b.Len()
	oc := 0
	for i := 0; i < b.NumCols(); i++ {
		col := b.Col(i)
		cname, isCat := e.recodeCols[i]
		if !isCat {
			ov := out.Col(oc)
			oc++
			for si := 0; si < k; si++ {
				ov.AppendFrom(col, b.SelPos(si))
			}
			continue
		}
		plan, isCoded := e.plans[i]
		if !isCoded {
			ov := out.Col(oc)
			oc++
			for si := 0; si < k; si++ {
				p := b.SelPos(si)
				if col.Null(p) {
					ov.AppendNull()
					continue
				}
				id, ok := e.m.IDBytes(cname, col.Bytes(p))
				if !ok {
					return fmt.Errorf("transform: value %q of column %q not in recode map", col.StringAt(p), cname)
				}
				ov.AppendInt(id)
			}
			continue
		}
		base := oc
		oc += plan.n
		for si := 0; si < k; si++ {
			p := b.SelPos(si)
			if col.Null(p) {
				for j := 0; j < plan.n; j++ {
					out.Col(base + j).AppendNull()
				}
				continue
			}
			id, ok := e.m.IDBytes(cname, col.Bytes(p))
			if !ok {
				return fmt.Errorf("transform: value %q of column %q not in recode map", col.StringAt(p), cname)
			}
			lr, err := e.levelRow(i, plan, cname, id)
			if err != nil {
				return err
			}
			for j := 0; j < plan.n; j++ {
				out.Col(base + j).AppendValue(lr[j])
			}
		}
	}
	out.SetFullLen(k)
	return nil
}

// levelRow returns the coding row for a recode level, computing and caching
// it on first use. Levels are small and dense (1..cardinality), so the
// cache is a slice indexed by level-1.
func (e *Encoder) levelRow(i int, plan encoderPlan, col string, level int64) (row.Row, error) {
	cache := e.levels[i]
	if level >= 1 && int64(len(cache)) >= level && cache[level-1] != nil {
		return cache[level-1], nil
	}
	lr, err := plan.encode(level)
	if err != nil {
		return nil, fmt.Errorf("transform: column %q: %w", col, err)
	}
	if level >= 1 {
		for int64(len(cache)) < level {
			cache = append(cache, nil)
		}
		cache[level-1] = lr
		if e.levels == nil {
			e.levels = make(map[int][]row.Row)
		}
		e.levels[i] = cache
	}
	return lr, nil
}
