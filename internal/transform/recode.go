// Package transform implements the paper's In-SQL data transformations
// (§2): recoding of categorical variables and dummy coding, plus the less
// common effect and orthogonal codings, all as parallel table UDFs
// registered with the SQL engine.
//
// Recoding follows the paper's two-phase distributed algorithm exactly:
//
//  1. a parallel table UDF (distinct_values) scans each worker's local
//     partition once and emits the local distinct (column, value) pairs for
//     every categorical column — one scan for all columns, which is the
//     advantage over per-column SELECT DISTINCT queries the paper calls out;
//     a SELECT DISTINCT over the UDF output computes the global pairs, and a
//     second (global) UDF assigns consecutive recode IDs starting from 1;
//  2. the recoding itself is the paper's join between the original table
//     and the recode-map table M.
package transform

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// RecodeMap maps each categorical column's string values to consecutive
// integer codes starting at 1 (the encoding SystemML-style engines require).
// Column names are normalized to lower case once, when a column is added,
// so the per-row ID lookups in the recode join stay allocation-free.
type RecodeMap struct {
	cols map[string]map[string]int64
}

// NewRecodeMap builds a map from per-column sorted value lists: the i-th
// value (1-based) of a column receives code i.
func NewRecodeMap() *RecodeMap {
	return &RecodeMap{cols: make(map[string]map[string]int64)}
}

// AddColumn registers a column's distinct values; codes are assigned in
// sorted value order so the assignment is deterministic across runs.
func (m *RecodeMap) AddColumn(col string, values []string) {
	col = strings.ToLower(col)
	sorted := append([]string(nil), values...)
	sort.Strings(sorted)
	codes := make(map[string]int64, len(sorted))
	next := int64(1)
	for _, v := range sorted {
		if _, ok := codes[v]; ok {
			continue
		}
		codes[v] = next
		next++
	}
	m.cols[col] = codes
}

// ID returns the code of a value, reporting whether it is known. Map keys
// are stored lower-cased at construction, so the already-lower names the
// per-row recode paths pass hit directly, with no per-lookup
// normalization; mixed-case callers fall back to one ToLower.
func (m *RecodeMap) ID(col, val string) (int64, bool) {
	codes, ok := m.cols[col]
	if !ok {
		codes, ok = m.cols[strings.ToLower(col)]
		if !ok {
			return 0, false
		}
	}
	id, ok := codes[val]
	return id, ok
}

// IDBytes is ID for a byte-sliced value: the columnar recode path looks
// codes up straight out of a vector's payload slab — the string(val) key
// conversion inside a map index does not allocate.
func (m *RecodeMap) IDBytes(col string, val []byte) (int64, bool) {
	codes, ok := m.cols[col]
	if !ok {
		codes, ok = m.cols[strings.ToLower(col)]
		if !ok {
			return 0, false
		}
	}
	id, ok := codes[string(val)]
	return id, ok
}

// Cardinality returns the number of distinct values of a column.
func (m *RecodeMap) Cardinality(col string) int {
	codes, ok := m.cols[col]
	if !ok {
		codes = m.cols[strings.ToLower(col)]
	}
	return len(codes)
}

// Columns returns the mapped column names, sorted.
func (m *RecodeMap) Columns() []string {
	out := make([]string, 0, len(m.cols))
	for c := range m.cols {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Rows renders the map as (colname, colval, recodeval) table rows, the
// shape of the paper's recode-map table M.
func (m *RecodeMap) Rows() []row.Row {
	var out []row.Row
	for _, col := range m.Columns() {
		codes := m.cols[col]
		vals := make([]string, 0, len(codes))
		for v := range codes {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			out = append(out, row.Row{row.String_(col), row.String_(v), row.Int(codes[v])})
		}
	}
	return out
}

// MapSchema is the schema of the recode-map table M.
func MapSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "colname", Type: row.TypeString},
		row.Column{Name: "colval", Type: row.TypeString},
		row.Column{Name: "recodeval", Type: row.TypeInt},
	)
}

// FromRows reconstructs a RecodeMap from (colname, colval, recodeval) rows.
func FromRows(rows []row.Row) (*RecodeMap, error) {
	m := NewRecodeMap()
	for _, r := range rows {
		if len(r) != 3 {
			return nil, fmt.Errorf("transform: recode-map row has %d columns", len(r))
		}
		col := strings.ToLower(r[0].AsString())
		if m.cols[col] == nil {
			m.cols[col] = make(map[string]int64)
		}
		m.cols[col][r[1].AsString()] = r[2].AsInt()
	}
	return m, nil
}

// RegisterUDFs installs the transformation table UDFs into an engine's
// registry: distinct_values, assign_recode_ids, recode_apply, dummy_code,
// effect_code and orthogonal_code. It must be called once per engine before
// the drivers in this package (or rewritten queries that reference the
// UDFs) run.
func RegisterUDFs(e *sqlengine.Engine) error {
	udfs := []*sqlengine.TableUDF{
		distinctValuesUDF(),
		assignRecodeIDsUDF(),
		recodeApplyUDF(),
		codingUDF("dummy_code", dummyCoding),
		codingUDF("effect_code", effectCoding),
		codingUDF("orthogonal_code", orthogonalCoding),
	}
	for _, u := range udfs {
		if err := e.Registry().RegisterTable(u); err != nil {
			return err
		}
	}
	return nil
}

// splitCols parses a 'col1,col2' literal argument.
func splitCols(arg row.Value) ([]string, error) {
	if arg.Null || arg.Kind != row.TypeString {
		return nil, fmt.Errorf("expected a 'col1,col2,...' string argument")
	}
	var out []string
	for _, c := range strings.Split(arg.AsString(), ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return nil, fmt.Errorf("empty column name in %q", arg.AsString())
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no columns listed")
	}
	return out, nil
}

// distinctValuesUDF is phase 1 of recoding: each SQL worker scans its local
// partition once and emits the locally-distinct (colname, colval) pairs for
// every requested categorical column.
func distinctValuesUDF() *sqlengine.TableUDF {
	return &sqlengine.TableUDF{
		Name:         "distinct_values",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 1 {
				return row.Schema{}, fmt.Errorf("usage: distinct_values(T, 'col1,col2')")
			}
			cols, err := splitCols(args[0])
			if err != nil {
				return row.Schema{}, err
			}
			for _, c := range cols {
				col, ok := in.Col(c)
				if !ok {
					return row.Schema{}, fmt.Errorf("unknown column %q", c)
				}
				if col.Type != row.TypeString {
					return row.Schema{}, fmt.Errorf("column %q is %s; recoding applies to VARCHAR", c, col.Type)
				}
			}
			return row.NewSchema(
				row.Column{Name: "colname", Type: row.TypeString},
				row.Column{Name: "colval", Type: row.TypeString},
			)
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			cols, err := splitCols(args[0])
			if err != nil {
				return err
			}
			idx := make([]int, len(cols))
			names := make([]string, len(cols))
			for i, c := range cols {
				idx[i] = ctx.InSchema.ColIndex(c)
				names[i] = strings.ToLower(c)
			}
			// The engine's arena hash table de-duplicates (column, value)
			// pairs: the key is the column's ordinal plus the value,
			// encoded into one reused scratch buffer — the same
			// allocation-free key path the engine's own DISTINCT uses.
			seen := sqlengine.NewHashTable(0)
			var keyBuf []byte
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				for i, ci := range idx {
					v := r[ci]
					if v.Null {
						continue
					}
					keyBuf = row.AppendKeyValue(keyBuf[:0], row.Int(int64(i)))
					keyBuf = row.AppendKeyValue(keyBuf, v)
					if _, added := seen.Insert(keyBuf); !added {
						continue
					}
					if err := emit(row.Row{row.String_(names[i]), v}); err != nil {
						return err
					}
				}
			}
		},
	}
}

// assignRecodeIDsUDF is the global step of phase 1: it receives the
// globally-distinct (colname, colval) pairs and emits the recode-map rows
// with consecutive IDs from 1 per column, in sorted value order.
func assignRecodeIDsUDF() *sqlengine.TableUDF {
	return &sqlengine.TableUDF{
		Name:         "assign_recode_ids",
		PerPartition: false,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if in.Len() != 2 {
				return row.Schema{}, fmt.Errorf("usage: assign_recode_ids(distinct_pairs_table)")
			}
			return MapSchema(), nil
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			byCol := make(map[string][]string)
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				col := strings.ToLower(r[0].AsString())
				byCol[col] = append(byCol[col], r[1].AsString())
			}
			m := NewRecodeMap()
			for col, vals := range byCol {
				m.AddColumn(col, vals)
			}
			for _, r := range m.Rows() {
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// recodeApplyUDF is the map-side alternative to the paper's join-based
// recode: each worker loads the recode-map table (a broadcast, charged to
// the cost model) and rewrites its partition in one pass. The ablation
// benchmarks compare it against the join plan.
func recodeApplyUDF() *sqlengine.TableUDF {
	return &sqlengine.TableUDF{
		Name:         "recode_apply",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 2 {
				return row.Schema{}, fmt.Errorf("usage: recode_apply(T, 'map_table', 'col1,col2')")
			}
			cols, err := splitCols(args[1])
			if err != nil {
				return row.Schema{}, err
			}
			return recodedSchema(in, cols)
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			mapTable := args[0].AsString()
			cols, err := splitCols(args[1])
			if err != nil {
				return err
			}
			m, err := LoadMapTable(ctx.Engine, mapTable)
			if err != nil {
				return err
			}
			recodeIdx := make(map[int]string)
			for _, c := range cols {
				recodeIdx[ctx.InSchema.ColIndex(c)] = strings.ToLower(c)
			}
			// Columnar fast path: when the partition input is a thin cursor
			// over a columnar pipeline (a v3 stream ingest included), rewrite
			// whole batches — passthrough columns copy cell-by-cell without
			// boxing into Values, and categorical columns probe the map
			// straight from the vector's byte slab. The emit boundary stays
			// row-at-a-time so the engine's per-row Conforms check still
			// guards every output row.
			if cb, ok := sqlengine.AsColBatchSource(in); ok {
				outTypes := make([]row.Type, ctx.InSchema.Len())
				for i, c := range ctx.InSchema.Cols {
					if _, isCat := recodeIdx[i]; isCat {
						outTypes[i] = row.TypeInt
					} else {
						outTypes[i] = c.Type
					}
				}
				out := row.NewColBatch(outTypes)
				var buf []row.Row
				for {
					b, ok, err := cb.NextColBatch()
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					k := b.Len()
					if k == 0 {
						continue
					}
					out.Reset(outTypes)
					for i := 0; i < b.NumCols(); i++ {
						col := b.Col(i)
						ov := out.Col(i)
						cname, isCat := recodeIdx[i]
						if !isCat {
							for si := 0; si < k; si++ {
								ov.AppendFrom(col, b.SelPos(si))
							}
							continue
						}
						for si := 0; si < k; si++ {
							p := b.SelPos(si)
							if col.Null(p) {
								ov.AppendNull()
								continue
							}
							id, ok := m.IDBytes(cname, col.Bytes(p))
							if !ok {
								return fmt.Errorf("value %q of column %q missing from recode map %q", col.StringAt(p), cname, mapTable)
							}
							ov.AppendInt(id)
						}
					}
					out.SetFullLen(k)
					buf = out.Rows(buf[:0])
					for _, r := range buf {
						if err := emit(r); err != nil {
							return err
						}
					}
				}
			}
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				out := make(row.Row, len(r))
				for i, v := range r {
					col, isCat := recodeIdx[i]
					if !isCat {
						out[i] = v
						continue
					}
					if v.Null {
						out[i] = row.NullOf(row.TypeInt)
						continue
					}
					id, ok := m.ID(col, v.AsString())
					if !ok {
						return fmt.Errorf("value %q of column %q missing from recode map %q", v.AsString(), col, mapTable)
					}
					out[i] = row.Int(id)
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		},
	}
}

// recodedSchema replaces the listed VARCHAR columns with BIGINT codes.
func recodedSchema(in row.Schema, cols []string) (row.Schema, error) {
	cat := make(map[string]bool, len(cols))
	for _, c := range cols {
		if _, ok := in.Col(c); !ok {
			return row.Schema{}, fmt.Errorf("unknown column %q", c)
		}
		cat[strings.ToLower(c)] = true
	}
	out := make([]row.Column, in.Len())
	for i, c := range in.Cols {
		out[i] = c
		if cat[strings.ToLower(c.Name)] {
			if c.Type != row.TypeString {
				return row.Schema{}, fmt.Errorf("column %q is %s; recoding applies to VARCHAR", c.Name, c.Type)
			}
			out[i].Type = row.TypeInt
		}
	}
	return row.NewSchema(out...)
}

// LoadMapTable reads a recode-map table from the engine catalog into a
// RecodeMap. Each caller (one per worker when invoked from a per-partition
// UDF) pays the gather cost, mirroring a distributed-cache broadcast.
func LoadMapTable(e *sqlengine.Engine, name string) (*RecodeMap, error) {
	t, err := e.Catalog().Get(name)
	if err != nil {
		return nil, err
	}
	if !t.Schema.Equal(MapSchema()) {
		return nil, fmt.Errorf("transform: table %q is not a recode map (schema %s)", name, t.Schema)
	}
	res, err := e.Query("SELECT colname, colval, recodeval FROM " + name)
	if err != nil {
		return nil, err
	}
	rows, err := e.Collect(res)
	if err != nil {
		return nil, err
	}
	return FromRows(rows)
}

var tmpCounter atomic.Int64

// tmpName generates a unique temporary table name.
func tmpName(prefix string) string {
	return fmt.Sprintf("__%s_%d", prefix, tmpCounter.Add(1))
}

// BuildRecodeMap runs the two-phase distributed recode-map construction
// over a catalog table, returning the map and the name of the materialized
// map table M (left in the catalog for the recode join and for the §5.2
// cache).
func BuildRecodeMap(e *sqlengine.Engine, table string, cols []string) (*RecodeMap, string, error) {
	if len(cols) == 0 {
		return nil, "", fmt.Errorf("transform: no categorical columns listed")
	}
	colArg := strings.Join(cols, ",")
	distinctTmp := tmpName("distinct")
	// Phase 1a: one parallel scan computing local distincts for all columns,
	// then a global SELECT DISTINCT.
	sql := fmt.Sprintf(
		"CREATE TABLE %s AS SELECT DISTINCT colname, colval FROM TABLE(distinct_values(%s, '%s'))",
		distinctTmp, table, colArg)
	if _, err := e.Run(sql); err != nil {
		return nil, "", err
	}
	defer e.DropTable(distinctTmp)

	// Phase 1b: assign consecutive recode IDs globally.
	mapTable := tmpName("recodemap")
	sql = fmt.Sprintf(
		"CREATE TABLE %s AS SELECT colname, colval, recodeval FROM TABLE(assign_recode_ids(%s))",
		mapTable, distinctTmp)
	if _, err := e.Run(sql); err != nil {
		return nil, "", err
	}
	res, err := e.Query("SELECT colname, colval, recodeval FROM " + mapTable)
	if err != nil {
		return nil, "", err
	}
	m, err := FromRows(res.Rows())
	if err != nil {
		return nil, "", err
	}
	return m, mapTable, nil
}

// MaterializeMap loads a pre-built RecodeMap (e.g. a §5.2 cached map) into
// the catalog as a map table, returning its name.
func MaterializeMap(e *sqlengine.Engine, m *RecodeMap) (string, error) {
	name := tmpName("recodemap")
	if err := e.LoadTable(name, MapSchema(), m.Rows()); err != nil {
		return "", err
	}
	return name, nil
}

// RecodeJoinSQL generates the paper's phase-2 join query recoding the
// listed categorical columns of table through mapTable: every other column
// passes through unchanged, each categorical column c is replaced by
// Mc.recodeVal AS c.
func RecodeJoinSQL(schema row.Schema, table, mapTable string, cols []string) (string, error) {
	cat := make(map[string]bool, len(cols))
	for _, c := range cols {
		if _, ok := schema.Col(c); !ok {
			return "", fmt.Errorf("transform: unknown column %q", c)
		}
		cat[strings.ToLower(c)] = true
	}
	var selects []string
	var froms = []string{table + " AS __t"}
	var wheres []string
	i := 0
	for _, col := range schema.Cols {
		name := strings.ToLower(col.Name)
		if !cat[name] {
			selects = append(selects, "__t."+name+" AS "+name)
			continue
		}
		i++
		alias := fmt.Sprintf("__m%d", i)
		selects = append(selects, alias+".recodeval AS "+name)
		froms = append(froms, mapTable+" AS "+alias)
		wheres = append(wheres,
			fmt.Sprintf("%s.colname = '%s'", alias, name),
			fmt.Sprintf("__t.%s = %s.colval", name, alias))
	}
	return "SELECT " + strings.Join(selects, ", ") +
		" FROM " + strings.Join(froms, ", ") +
		" WHERE " + strings.Join(wheres, " AND "), nil
}

// Recode applies phase 2 (the join-based recode) to a catalog table. The
// result is streaming: the map tables are drained into hash tables at plan
// time (join build side), then the base table streams through the probes
// as the caller consumes the result.
func Recode(e *sqlengine.Engine, table, mapTable string, cols []string) (*sqlengine.Result, error) {
	t, err := e.Catalog().Get(table)
	if err != nil {
		return nil, err
	}
	sql, err := RecodeJoinSQL(t.Schema, table, mapTable, cols)
	if err != nil {
		return nil, err
	}
	return e.QueryStream(sql)
}

// RecodeMapSide applies the map-side recode_apply UDF instead of the join.
// The result is streaming; mapTable must stay registered until it is
// consumed (the UDF loads the map when the pipeline runs).
func RecodeMapSide(e *sqlengine.Engine, table, mapTable string, cols []string) (*sqlengine.Result, error) {
	sql := fmt.Sprintf("SELECT * FROM TABLE(recode_apply(%s, '%s', '%s'))",
		table, mapTable, strings.Join(cols, ","))
	return e.QueryStream(sql)
}
