package transform

import (
	"fmt"
	"math"
	"strings"

	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// Feature scaling is the other transformation family ML pipelines need
// beyond categorical encodings, and it has the same two-phase distributed
// shape as recoding (§2.1): a parallel pass computing per-partition
// statistics for all listed columns at once, a global combine (plain SQL
// aggregation over the UDF output), and a second parallel pass applying
// the transformation. The UDFs are column_stats, standardize and
// minmax_scale.

// ColumnStats holds one numeric column's global statistics.
type ColumnStats struct {
	Count int64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// StatsMap maps (lower-cased) column names to their statistics.
type StatsMap map[string]ColumnStats

// StatsSchema is the schema of a materialised statistics table.
func StatsSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "colname", Type: row.TypeString},
		row.Column{Name: "cnt", Type: row.TypeInt},
		row.Column{Name: "mean", Type: row.TypeFloat},
		row.Column{Name: "std", Type: row.TypeFloat},
		row.Column{Name: "minv", Type: row.TypeFloat},
		row.Column{Name: "maxv", Type: row.TypeFloat},
	)
}

// statsFromRows rebuilds a StatsMap from a statistics table's rows.
func statsFromRows(rows []row.Row) (StatsMap, error) {
	out := make(StatsMap, len(rows))
	for _, r := range rows {
		if len(r) != 6 {
			return nil, fmt.Errorf("transform: stats row has %d columns", len(r))
		}
		out[strings.ToLower(r[0].AsString())] = ColumnStats{
			Count: r[1].AsInt(),
			Mean:  r[2].AsFloat(),
			Std:   r[3].AsFloat(),
			Min:   r[4].AsFloat(),
			Max:   r[5].AsFloat(),
		}
	}
	return out, nil
}

// RegisterScalingUDFs installs column_stats, standardize, and minmax_scale.
// It is separate from RegisterUDFs so existing engines opt in explicitly.
func RegisterScalingUDFs(e *sqlengine.Engine) error {
	for _, u := range []*sqlengine.TableUDF{
		columnStatsUDF(),
		scaleUDF("standardize", applyStandardize),
		scaleUDF("minmax_scale", applyMinMax),
	} {
		if err := e.Registry().RegisterTable(u); err != nil {
			return err
		}
	}
	return nil
}

// columnStatsUDF is the parallel phase-1 pass: one scan emitting per-column
// partial statistics (count, sum, sum of squares, min, max) for the local
// partition. The global combine is ordinary SQL aggregation.
func columnStatsUDF() *sqlengine.TableUDF {
	outSchema := row.MustSchema(
		row.Column{Name: "colname", Type: row.TypeString},
		row.Column{Name: "cnt", Type: row.TypeInt},
		row.Column{Name: "sum", Type: row.TypeFloat},
		row.Column{Name: "sumsq", Type: row.TypeFloat},
		row.Column{Name: "minv", Type: row.TypeFloat},
		row.Column{Name: "maxv", Type: row.TypeFloat},
	)
	return &sqlengine.TableUDF{
		Name:         "column_stats",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 1 {
				return row.Schema{}, fmt.Errorf("usage: column_stats(T, 'col1,col2')")
			}
			cols, err := splitCols(args[0])
			if err != nil {
				return row.Schema{}, err
			}
			for _, c := range cols {
				col, ok := in.Col(c)
				if !ok {
					return row.Schema{}, fmt.Errorf("unknown column %q", c)
				}
				if col.Type != row.TypeInt && col.Type != row.TypeFloat {
					return row.Schema{}, fmt.Errorf("column %q is %s; scaling applies to numeric columns", c, col.Type)
				}
			}
			return outSchema, nil
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			cols, err := splitCols(args[0])
			if err != nil {
				return err
			}
			type acc struct {
				name       string
				idx        int
				n          int64
				sum, sumsq float64
				min, max   float64
			}
			accs := make([]*acc, len(cols))
			for i, c := range cols {
				accs[i] = &acc{
					name: strings.ToLower(c),
					idx:  ctx.InSchema.ColIndex(c),
					min:  math.Inf(1),
					max:  math.Inf(-1),
				}
			}
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				for _, a := range accs {
					v := r[a.idx]
					if v.Null {
						continue
					}
					x := v.AsFloat()
					a.n++
					a.sum += x
					a.sumsq += x * x
					if x < a.min {
						a.min = x
					}
					if x > a.max {
						a.max = x
					}
				}
			}
			for _, a := range accs {
				if a.n == 0 {
					continue
				}
				if err := emit(row.Row{
					row.String_(a.name), row.Int(a.n),
					row.Float(a.sum), row.Float(a.sumsq),
					row.Float(a.min), row.Float(a.max),
				}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

type scaleFn func(x float64, s ColumnStats) float64

func applyStandardize(x float64, s ColumnStats) float64 {
	if s.Std == 0 {
		return 0
	}
	return (x - s.Mean) / s.Std
}

func applyMinMax(x float64, s ColumnStats) float64 {
	if s.Max == s.Min {
		return 0
	}
	return (x - s.Min) / (s.Max - s.Min)
}

// scaleUDF is the parallel phase-2 pass: rewrite the listed columns as
// DOUBLEs using the statistics table built in phase 1.
func scaleUDF(name string, fn scaleFn) *sqlengine.TableUDF {
	return &sqlengine.TableUDF{
		Name:         name,
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 2 {
				return row.Schema{}, fmt.Errorf("usage: %s(T, 'stats_table', 'col1,col2')", name)
			}
			cols, err := splitCols(args[1])
			if err != nil {
				return row.Schema{}, err
			}
			target := make(map[string]bool, len(cols))
			for _, c := range cols {
				col, ok := in.Col(c)
				if !ok {
					return row.Schema{}, fmt.Errorf("unknown column %q", c)
				}
				if col.Type != row.TypeInt && col.Type != row.TypeFloat {
					return row.Schema{}, fmt.Errorf("column %q is %s; scaling applies to numeric columns", c, col.Type)
				}
				target[strings.ToLower(c)] = true
			}
			out := make([]row.Column, in.Len())
			for i, c := range in.Cols {
				out[i] = c
				if target[strings.ToLower(c.Name)] {
					out[i].Type = row.TypeFloat
				}
			}
			return row.NewSchema(out...)
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			stats, err := LoadStatsTable(ctx.Engine, args[0].AsString())
			if err != nil {
				return err
			}
			cols, err := splitCols(args[1])
			if err != nil {
				return err
			}
			plans := make(map[int]ColumnStats, len(cols))
			for _, c := range cols {
				s, ok := stats[strings.ToLower(c)]
				if !ok {
					return fmt.Errorf("column %q missing from statistics table", c)
				}
				plans[ctx.InSchema.ColIndex(c)] = s
			}
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				out := make(row.Row, len(r))
				for i, v := range r {
					s, scaled := plans[i]
					if !scaled {
						out[i] = v
						continue
					}
					if v.Null {
						out[i] = row.NullOf(row.TypeFloat)
						continue
					}
					out[i] = row.Float(fn(v.AsFloat(), s))
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		},
	}
}

// LoadStatsTable reads a materialised statistics table into a StatsMap.
func LoadStatsTable(e *sqlengine.Engine, name string) (StatsMap, error) {
	t, err := e.Catalog().Get(name)
	if err != nil {
		return nil, err
	}
	if !t.Schema.Equal(StatsSchema()) {
		return nil, fmt.Errorf("transform: table %q is not a statistics table (schema %s)", name, t.Schema)
	}
	res, err := e.Query("SELECT colname, cnt, mean, std, minv, maxv FROM " + name)
	if err != nil {
		return nil, err
	}
	rows, err := e.Collect(res)
	if err != nil {
		return nil, err
	}
	return statsFromRows(rows)
}

// BuildStats runs phase 1 over a catalog table: the parallel column_stats
// UDF followed by a global SQL aggregation, materialised as a statistics
// table whose name is returned (cacheable like a recode map).
func BuildStats(e *sqlengine.Engine, table string, cols []string) (StatsMap, string, error) {
	if len(cols) == 0 {
		return nil, "", fmt.Errorf("transform: no columns listed")
	}
	colArg := strings.Join(cols, ",")
	partial := tmpName("stats_partial")
	sql := fmt.Sprintf(
		"CREATE TABLE %s AS SELECT colname, cnt, sum, sumsq, minv, maxv FROM TABLE(column_stats(%s, '%s'))",
		partial, table, colArg)
	if _, err := e.Run(sql); err != nil {
		return nil, "", err
	}
	defer e.DropTable(partial)

	// Global combine; mean and std derive from the combined moments.
	combined, err := e.Query(fmt.Sprintf(`
		SELECT colname, SUM(cnt) AS cnt, SUM(sum) AS total, SUM(sumsq) AS totalsq,
		       MIN(minv) AS minv, MAX(maxv) AS maxv
		FROM %s GROUP BY colname`, partial))
	if err != nil {
		return nil, "", err
	}
	statsRows := make([]row.Row, 0, combined.NumRows())
	for _, r := range combined.Rows() {
		n := r[1].AsInt()
		total := r[2].AsFloat()
		totalsq := r[3].AsFloat()
		mean := total / float64(n)
		variance := totalsq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0 // numeric noise
		}
		statsRows = append(statsRows, row.Row{
			r[0], row.Int(n), row.Float(mean), row.Float(math.Sqrt(variance)), r[4], r[5],
		})
	}
	name := tmpName("stats")
	if err := e.LoadTable(name, StatsSchema(), statsRows); err != nil {
		return nil, "", err
	}
	m, err := statsFromRows(statsRows)
	if err != nil {
		return nil, "", err
	}
	return m, name, nil
}

// Standardize z-scores the listed columns of a catalog table (two-phase).
func Standardize(e *sqlengine.Engine, table string, cols []string) (*sqlengine.Result, StatsMap, error) {
	return scaleDriver(e, "standardize", table, cols)
}

// MinMaxScale rescales the listed columns into [0,1] (two-phase).
func MinMaxScale(e *sqlengine.Engine, table string, cols []string) (*sqlengine.Result, StatsMap, error) {
	return scaleDriver(e, "minmax_scale", table, cols)
}

func scaleDriver(e *sqlengine.Engine, udf, table string, cols []string) (*sqlengine.Result, StatsMap, error) {
	stats, statsTable, err := BuildStats(e, table, cols)
	if err != nil {
		return nil, nil, err
	}
	defer e.DropTable(statsTable)
	res, err := e.Query(fmt.Sprintf("SELECT * FROM TABLE(%s(%s, '%s', '%s'))",
		udf, table, statsTable, strings.Join(cols, ",")))
	if err != nil {
		return nil, nil, err
	}
	return res, stats, nil
}
