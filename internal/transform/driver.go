package transform

import (
	"fmt"

	"sqlml/internal/sqlengine"
)

// Coding selects the post-recode coding family applied to categorical
// features.
type Coding int

// Supported codings. CodingNone leaves columns recoded but unexpanded.
const (
	CodingNone Coding = iota
	CodingDummy
	CodingEffect
	CodingOrthogonal
)

// String returns the coding's UDF name.
func (c Coding) String() string {
	switch c {
	case CodingDummy:
		return "dummy_code"
	case CodingEffect:
		return "effect_code"
	case CodingOrthogonal:
		return "orthogonal_code"
	default:
		return "none"
	}
}

// ScalingKind selects the numeric feature-scaling family.
type ScalingKind int

// Supported scalings.
const (
	ScalingNone ScalingKind = iota
	ScalingStandard
	ScalingMinMax
)

// String returns the scaling's UDF name.
func (s ScalingKind) String() string {
	switch s {
	case ScalingStandard:
		return "standardize"
	case ScalingMinMax:
		return "minmax_scale"
	default:
		return "none"
	}
}

// Spec describes the In-SQL transformation of one prepared table.
type Spec struct {
	// RecodeCols are the categorical (VARCHAR) columns to recode.
	RecodeCols []string
	// CodeCols is the subset of RecodeCols to expand after recoding (e.g.
	// the paper dummy-codes gender but leaves the label recoded only).
	CodeCols []string
	// Coding selects the expansion family for CodeCols.
	Coding Coding
	// ScaleCols are numeric columns to scale after the categorical steps
	// (the engine must have RegisterScalingUDFs installed).
	ScaleCols []string
	// Scaling selects the scaling family for ScaleCols.
	Scaling ScalingKind
	// MapSide uses the recode_apply UDF (map-side broadcast) instead of the
	// paper's join-based phase 2; an ablation knob.
	MapSide bool
}

// Output is the outcome of a full transformation.
type Output struct {
	// Result is the transformed relation, partitioned across SQL workers.
	// Unless the spec scales columns (a two-pass breaker), it is a
	// STREAMING result — the recode/coding pipeline runs as the caller
	// consumes it (Batches, or the Materialize shim). Consume it before
	// dropping MapTable: the map-side recode loads the map lazily.
	Result *sqlengine.Result
	// Map is the recode map used (built fresh, or the cached one passed in).
	Map *RecodeMap
	// MapTable is the catalog name of the materialized map table; it is
	// left registered so callers can cache it (§5.2) — drop it when done.
	MapTable string
	// Stats holds the scaling statistics when the spec scaled columns.
	Stats StatsMap
}

// Apply runs the full In-SQL transformation over a catalog table: build (or
// reuse) the recode map, recode, then expand the coded columns. A non-nil
// cachedMap skips phase 1 of recoding entirely — the benefit measured by
// the paper's "cache recode maps" bar in Figure 4.
func Apply(e *sqlengine.Engine, table string, spec Spec, cachedMap *RecodeMap) (*Output, error) {
	if len(spec.RecodeCols) == 0 {
		return nil, fmt.Errorf("transform: spec lists no categorical columns")
	}
	for _, c := range spec.CodeCols {
		found := false
		for _, rc := range spec.RecodeCols {
			if rc == c {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("transform: coded column %q is not in RecodeCols", c)
		}
	}

	var (
		m        *RecodeMap
		mapTable string
		err      error
	)
	if cachedMap != nil {
		m = cachedMap
		mapTable, err = MaterializeMap(e, m)
	} else {
		m, mapTable, err = BuildRecodeMap(e, table, spec.RecodeCols)
	}
	if err != nil {
		return nil, err
	}

	var recoded *sqlengine.Result
	if spec.MapSide {
		recoded, err = RecodeMapSide(e, table, mapTable, spec.RecodeCols)
	} else {
		recoded, err = Recode(e, table, mapTable, spec.RecodeCols)
	}
	if err != nil {
		return nil, err
	}

	out := &Output{Result: recoded, Map: m, MapTable: mapTable}
	if len(spec.CodeCols) > 0 && spec.Coding != CodingNone {
		// Expand the coded columns via the coding UDF over a temp
		// registration of the result. The recode output is still streaming,
		// so the temp table hands its live pipeline to the coding scan and
		// recode → coding stays one fused pipeline (no materialization
		// between the paper's transformation steps).
		tmp := tmpName("recoded")
		if err := e.RegisterResultStream(tmp, out.Result); err != nil {
			return nil, err
		}
		specArg, err := SpecArg(m, spec.CodeCols)
		if err != nil {
			e.DropTable(tmp)
			return nil, err
		}
		coded, err := e.QueryStream(fmt.Sprintf("SELECT * FROM TABLE(%s(%s, '%s'))", spec.Coding, tmp, specArg))
		e.DropTable(tmp)
		if err != nil {
			return nil, err
		}
		out.Result = coded
	}
	if len(spec.ScaleCols) > 0 && spec.Scaling != ScalingNone {
		// Scaling is inherently two passes (statistics, then apply), so it
		// is a pipeline breaker: materialize the input once here.
		tmp := tmpName("prescale")
		if err := e.RegisterResult(tmp, out.Result); err != nil {
			return nil, err
		}
		var (
			scaled *sqlengine.Result
			stats  StatsMap
			err    error
		)
		switch spec.Scaling {
		case ScalingStandard:
			scaled, stats, err = Standardize(e, tmp, spec.ScaleCols)
		case ScalingMinMax:
			scaled, stats, err = MinMaxScale(e, tmp, spec.ScaleCols)
		}
		e.DropTable(tmp)
		if err != nil {
			return nil, err
		}
		out.Result = scaled
		out.Stats = stats
	}
	return out, nil
}
