package transform

import (
	"fmt"
	"strconv"
	"strings"

	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// A codingFn describes how one recoded categorical column with k levels
// expands into derived columns: it returns the number of derived columns,
// their type, and the encoder mapping a level (1..k) to its vector.
type codingFn func(k int) (n int, t row.Type, encode func(level int64) (row.Row, error), err error)

// dummyCoding is the paper's §2.2 dummy coding (one-hot / one-of-K): a
// column with K levels becomes K binary columns, level i setting the i-th.
func dummyCoding(k int) (int, row.Type, func(int64) (row.Row, error), error) {
	if k < 1 {
		return 0, 0, nil, fmt.Errorf("dummy coding needs at least 1 level, got %d", k)
	}
	encode := func(level int64) (row.Row, error) {
		if level < 1 || level > int64(k) {
			return nil, fmt.Errorf("level %d outside 1..%d", level, k)
		}
		out := make(row.Row, k)
		for i := range out {
			out[i] = row.Int(0)
		}
		out[level-1] = row.Int(1)
		return out, nil
	}
	return k, row.TypeInt, encode, nil
}

// effectCoding produces K-1 columns: level i < K sets the i-th column to 1;
// the reference level K sets every column to -1.
func effectCoding(k int) (int, row.Type, func(int64) (row.Row, error), error) {
	if k < 2 {
		return 0, 0, nil, fmt.Errorf("effect coding needs at least 2 levels, got %d", k)
	}
	encode := func(level int64) (row.Row, error) {
		if level < 1 || level > int64(k) {
			return nil, fmt.Errorf("level %d outside 1..%d", level, k)
		}
		out := make(row.Row, k-1)
		for i := range out {
			if level == int64(k) {
				out[i] = row.Int(-1)
			} else if int64(i) == level-1 {
				out[i] = row.Int(1)
			} else {
				out[i] = row.Int(0)
			}
		}
		return out, nil
	}
	return k - 1, row.TypeInt, encode, nil
}

// orthogonalCoding produces K-1 (difference/Helmert) contrast columns:
// contrast j compares level j+1 against the mean of levels 1..j, so the
// columns are pairwise orthogonal.
func orthogonalCoding(k int) (int, row.Type, func(int64) (row.Row, error), error) {
	if k < 2 {
		return 0, 0, nil, fmt.Errorf("orthogonal coding needs at least 2 levels, got %d", k)
	}
	encode := func(level int64) (row.Row, error) {
		if level < 1 || level > int64(k) {
			return nil, fmt.Errorf("level %d outside 1..%d", level, k)
		}
		out := make(row.Row, k-1)
		for j := 1; j < k; j++ {
			switch {
			case level <= int64(j):
				out[j-1] = row.Float(-1)
			case level == int64(j)+1:
				out[j-1] = row.Float(float64(j))
			default:
				out[j-1] = row.Float(0)
			}
		}
		return out, nil
	}
	return k - 1, row.TypeFloat, encode, nil
}

// codingSpec is the parsed form of a 'col:K,col:K' argument.
type codingSpec struct {
	col string
	k   int
}

func parseCodingSpec(arg row.Value) ([]codingSpec, error) {
	if arg.Null || arg.Kind != row.TypeString {
		return nil, fmt.Errorf("expected a 'col:K,col:K' string argument")
	}
	var out []codingSpec
	for _, part := range strings.Split(arg.AsString(), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad coding spec %q (want col:K)", part)
		}
		k, err := strconv.Atoi(bits[1])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad cardinality in %q", part)
		}
		out = append(out, codingSpec{col: strings.ToLower(strings.TrimSpace(bits[0])), k: k})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty coding spec")
	}
	return out, nil
}

// SpecArg renders the 'col:K,...' argument for the coding UDFs from a
// recode map's cardinalities — the paper notes dummy coding "takes in the
// number of distinct values for each categorical variable (already obtained
// during recoding phase)".
func SpecArg(m *RecodeMap, cols []string) (string, error) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		k := m.Cardinality(c)
		if k == 0 {
			return "", fmt.Errorf("transform: column %q not in recode map", c)
		}
		parts[i] = fmt.Sprintf("%s:%d", strings.ToLower(c), k)
	}
	return strings.Join(parts, ","), nil
}

// codingUDF builds the parallel table UDF for one coding family. The UDF
// scans each partition once, replacing every spec'd (recoded BIGINT) column
// in place with its derived columns col_1..col_n.
func codingUDF(name string, fn codingFn) *sqlengine.TableUDF {
	return &sqlengine.TableUDF{
		Name:         name,
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 1 {
				return row.Schema{}, fmt.Errorf("usage: %s(T, 'col:K,col:K')", name)
			}
			specs, err := parseCodingSpec(args[0])
			if err != nil {
				return row.Schema{}, err
			}
			byCol := make(map[string]codingSpec, len(specs))
			for _, s := range specs {
				c, ok := in.Col(s.col)
				if !ok {
					return row.Schema{}, fmt.Errorf("unknown column %q", s.col)
				}
				if c.Type != row.TypeInt {
					return row.Schema{}, fmt.Errorf("column %q is %s; %s applies to recoded BIGINT columns", s.col, c.Type, name)
				}
				byCol[s.col] = s
			}
			var cols []row.Column
			for _, c := range in.Cols {
				s, ok := byCol[strings.ToLower(c.Name)]
				if !ok {
					cols = append(cols, c)
					continue
				}
				n, t, _, err := fn(s.k)
				if err != nil {
					return row.Schema{}, err
				}
				for i := 1; i <= n; i++ {
					cols = append(cols, row.Column{Name: fmt.Sprintf("%s_%d", c.Name, i), Type: t})
				}
			}
			return row.NewSchema(cols...)
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			specs, err := parseCodingSpec(args[0])
			if err != nil {
				return err
			}
			type colPlan struct {
				n      int
				t      row.Type
				encode func(int64) (row.Row, error)
			}
			plans := make(map[int]colPlan) // input column index → plan
			for _, s := range specs {
				idx := ctx.InSchema.ColIndex(s.col)
				if idx < 0 {
					return fmt.Errorf("unknown column %q", s.col)
				}
				n, t, encode, err := fn(s.k)
				if err != nil {
					return err
				}
				plans[idx] = colPlan{n: n, t: t, encode: encode}
			}
			// Columnar fast path: when the partition input is a thin cursor
			// over a columnar pipeline, expand whole batches — passthrough
			// columns copy cell-by-cell without boxing into Values, and each
			// level's coding row is computed once and reused. The emit
			// boundary stays row-at-a-time so the engine's per-row Conforms
			// check still guards every output row.
			if cb, ok := sqlengine.AsColBatchSource(in); ok {
				var outTypes []row.Type
				for i, c := range ctx.InSchema.Cols {
					if plan, coded := plans[i]; coded {
						for j := 0; j < plan.n; j++ {
							outTypes = append(outTypes, plan.t)
						}
						continue
					}
					outTypes = append(outTypes, c.Type)
				}
				out := row.NewColBatch(outTypes)
				levels := make(map[int][]row.Row)
				var buf []row.Row
				for {
					b, ok, err := cb.NextColBatch()
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					k := b.Len()
					if k == 0 {
						continue
					}
					out.Reset(outTypes)
					oc := 0
					for i := 0; i < b.NumCols(); i++ {
						col := b.Col(i)
						plan, coded := plans[i]
						if !coded {
							ov := out.Col(oc)
							oc++
							for si := 0; si < k; si++ {
								ov.AppendFrom(col, b.SelPos(si))
							}
							continue
						}
						base := oc
						oc += plan.n
						for si := 0; si < k; si++ {
							p := b.SelPos(si)
							if col.Null(p) {
								for j := 0; j < plan.n; j++ {
									out.Col(base + j).AppendNull()
								}
								continue
							}
							level := col.Ints[p]
							var lr row.Row
							if cache := levels[i]; level >= 1 && int64(len(cache)) >= level && cache[level-1] != nil {
								lr = cache[level-1]
							} else {
								lr, err = plan.encode(level)
								if err != nil {
									return fmt.Errorf("column %q: %w", ctx.InSchema.Cols[i].Name, err)
								}
								if level >= 1 {
									for int64(len(cache)) < level {
										cache = append(cache, nil)
									}
									cache[level-1] = lr
									levels[i] = cache
								}
							}
							for j := 0; j < plan.n; j++ {
								out.Col(base + j).AppendValue(lr[j])
							}
						}
					}
					out.SetFullLen(k)
					buf = out.Rows(buf[:0])
					for _, r := range buf {
						if err := emit(r); err != nil {
							return err
						}
					}
				}
			}
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				var out row.Row
				for i, v := range r {
					plan, coded := plans[i]
					if !coded {
						out = append(out, v)
						continue
					}
					if v.Null {
						for j := 0; j < plan.n; j++ {
							out = append(out, row.NullOf(plan.t))
						}
						continue
					}
					vec, err := plan.encode(v.AsInt())
					if err != nil {
						return fmt.Errorf("column %q: %w", ctx.InSchema.Cols[i].Name, err)
					}
					out = append(out, vec...)
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		},
	}
}

// DummyCode runs the dummy_code UDF over a catalog table with the given
// 'col:K,...' spec and returns the expanded result (streaming — the spec
// string is self-contained, so the pipeline needs nothing from the
// catalog once planned).
func DummyCode(e *sqlengine.Engine, table, spec string) (*sqlengine.Result, error) {
	return e.QueryStream(fmt.Sprintf("SELECT * FROM TABLE(dummy_code(%s, '%s'))", table, spec))
}

// EffectCode runs the effect_code UDF (streaming).
func EffectCode(e *sqlengine.Engine, table, spec string) (*sqlengine.Result, error) {
	return e.QueryStream(fmt.Sprintf("SELECT * FROM TABLE(effect_code(%s, '%s'))", table, spec))
}

// OrthogonalCode runs the orthogonal_code UDF (streaming).
func OrthogonalCode(e *sqlengine.Engine, table, spec string) (*sqlengine.Result, error) {
	return e.QueryStream(fmt.Sprintf("SELECT * FROM TABLE(orthogonal_code(%s, '%s'))", table, spec))
}

// CodedWidth returns how many derived columns a coding family produces for
// a categorical column with k levels.
func CodedWidth(c Coding, k int) (int, error) {
	switch c {
	case CodingDummy:
		n, _, _, err := dummyCoding(k)
		return n, err
	case CodingEffect:
		n, _, _, err := effectCoding(k)
		return n, err
	case CodingOrthogonal:
		n, _, _, err := orthogonalCoding(k)
		return n, err
	default:
		return 1, nil
	}
}
