package transform

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

func newEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	topo := cluster.NewTopology(5)
	e, err := sqlengine.New(topo, nil, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterUDFs(e); err != nil {
		t.Fatal(err)
	}
	return e
}

// figure1Schema/figure1Rows reproduce the paper's Figure 1(a) table.
func figure1Schema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
}

func figure1Rows() []row.Row {
	return []row.Row{
		{row.Int(57), row.String_("F"), row.Float(314.62), row.String_("Yes")},
		{row.Int(40), row.String_("M"), row.Float(40.40), row.String_("Yes")},
		{row.Int(35), row.String_("F"), row.Float(151.17), row.String_("No")},
	}
}

func loadFigure1(t testing.TB, e *sqlengine.Engine) {
	t.Helper()
	if err := e.LoadTable("t", figure1Schema(), figure1Rows()); err != nil {
		t.Fatal(err)
	}
}

func TestRecodeMapBasics(t *testing.T) {
	m := NewRecodeMap()
	m.AddColumn("gender", []string{"M", "F", "M"})
	if id, ok := m.ID("gender", "F"); !ok || id != 1 {
		t.Errorf("F -> %d (sorted order should make F=1)", id)
	}
	if id, ok := m.ID("GENDER", "M"); !ok || id != 2 {
		t.Errorf("M -> %d", id)
	}
	if _, ok := m.ID("gender", "X"); ok {
		t.Error("unknown value resolved")
	}
	if _, ok := m.ID("nosuch", "F"); ok {
		t.Error("unknown column resolved")
	}
	if m.Cardinality("gender") != 2 {
		t.Errorf("cardinality = %d", m.Cardinality("gender"))
	}
}

func TestRecodeMapRowsRoundTrip(t *testing.T) {
	m := NewRecodeMap()
	m.AddColumn("gender", []string{"F", "M"})
	m.AddColumn("abandoned", []string{"Yes", "No"})
	back, err := FromRows(m.Rows())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range m.Columns() {
		if back.Cardinality(col) != m.Cardinality(col) {
			t.Errorf("column %s cardinality changed", col)
		}
	}
	if id, _ := back.ID("abandoned", "No"); id != 1 {
		t.Errorf("sorted assignment: No should be 1, got %d", id)
	}
	if id, _ := back.ID("abandoned", "Yes"); id != 2 {
		t.Errorf("sorted assignment: Yes should be 2, got %d", id)
	}
}

func TestBuildRecodeMapTwoPhase(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	m, mapTable, err := BuildRecodeMap(e, "t", []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.DropTable(mapTable)
	if m.Cardinality("gender") != 2 || m.Cardinality("abandoned") != 2 {
		t.Fatalf("cardinalities: %d %d", m.Cardinality("gender"), m.Cardinality("abandoned"))
	}
	// Codes are consecutive from 1 per column.
	for _, col := range []string{"gender", "abandoned"} {
		seen := map[int64]bool{}
		for _, r := range m.Rows() {
			if r[0].AsString() == col {
				seen[r[2].AsInt()] = true
			}
		}
		for i := int64(1); i <= int64(len(seen)); i++ {
			if !seen[i] {
				t.Errorf("column %s missing code %d", col, i)
			}
		}
	}
	// The map table is queryable SQL state.
	res, err := e.Query("SELECT COUNT(*) FROM " + mapTable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].AsInt() != 4 {
		t.Errorf("map table rows = %v", res.Rows()[0][0])
	}
}

// TestRecodeMatchesFigure1b checks the join-based recode against the
// paper's Figure 1(b): F=1 M=2, and with sorted assignment No=1 Yes=2.
func TestRecodeMatchesFigure1b(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	m, mapTable, err := BuildRecodeMap(e, "t", []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recode(e, "t", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	want := "age BIGINT, gender BIGINT, amount DOUBLE, abandoned BIGINT"
	if res.Schema.String() != want {
		t.Fatalf("recoded schema = %s", res.Schema)
	}
	rows := res.Rows()
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].AsInt() > rows[j][0].AsInt() })
	genderF, _ := m.ID("gender", "F")
	genderM, _ := m.ID("gender", "M")
	yes, _ := m.ID("abandoned", "Yes")
	no, _ := m.ID("abandoned", "No")
	expect := []row.Row{
		{row.Int(57), row.Int(genderF), row.Float(314.62), row.Int(yes)},
		{row.Int(40), row.Int(genderM), row.Float(40.40), row.Int(yes)},
		{row.Int(35), row.Int(genderF), row.Float(151.17), row.Int(no)},
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range expect {
		if !rows[i].Equal(expect[i]) {
			t.Errorf("row %d: got %v want %v", i, rows[i], expect[i])
		}
	}
}

func TestMapSideRecodeMatchesJoinRecode(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	_, mapTable, err := BuildRecodeMap(e, "t", []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	join, err := Recode(e, "t", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	mapside, err := RecodeMapSide(e, "t", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	if !join.Schema.Equal(mapside.Schema) {
		t.Fatalf("schemas differ: %s vs %s", join.Schema, mapside.Schema)
	}
	a, b := join.Rows(), mapside.Rows()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	key := func(r row.Row) string { return fmt.Sprint(r) }
	am := map[string]int{}
	for _, r := range a {
		am[key(r)]++
	}
	for _, r := range b {
		am[key(r)]--
	}
	for k, n := range am {
		if n != 0 {
			t.Errorf("multiset mismatch at %s (%d)", k, n)
		}
	}
}

// TestDummyCodingMatchesFigure1c checks dummy coding against Figure 1(c):
// gender with 2 levels expands to two binary columns.
func TestDummyCodingMatchesFigure1c(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	m, mapTable, err := BuildRecodeMap(e, "t", []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	recoded, err := Recode(e, "t", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterResult("rt", recoded); err != nil {
		t.Fatal(err)
	}
	spec, err := SpecArg(m, []string{"gender"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DummyCode(e, "rt", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := "age BIGINT, gender_1 BIGINT, gender_2 BIGINT, amount DOUBLE, abandoned BIGINT"
	if res.Schema.String() != want {
		t.Fatalf("dummy schema = %s", res.Schema)
	}
	rows := res.Rows()
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].AsInt() > rows[j][0].AsInt() })
	// Figure 1(c): age 57 (F) → female=1 male=0; age 40 (M) → 0,1; 35 (F) → 1,0.
	expect := [][2]int64{{1, 0}, {0, 1}, {1, 0}}
	for i, ex := range expect {
		if rows[i][1].AsInt() != ex[0] || rows[i][2].AsInt() != ex[1] {
			t.Errorf("row %d: gender bits = (%v,%v), want %v", i, rows[i][1], rows[i][2], ex)
		}
	}
}

func TestDummyCodingExactlyOneHot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(9)
		n, typ, encode, err := dummyCoding(k)
		if err != nil || n != k || typ != row.TypeInt {
			return false
		}
		level := int64(1 + rng.Intn(k))
		vec, err := encode(level)
		if err != nil {
			return false
		}
		ones := 0
		for i, v := range vec {
			if v.AsInt() == 1 {
				ones++
				if int64(i) != level-1 {
					return false
				}
			} else if v.AsInt() != 0 {
				return false
			}
		}
		return ones == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEffectCodingReferenceLevel(t *testing.T) {
	n, typ, encode, err := effectCoding(3)
	if err != nil || n != 2 || typ != row.TypeInt {
		t.Fatalf("effectCoding(3): n=%d t=%v err=%v", n, typ, err)
	}
	v1, _ := encode(1)
	v3, _ := encode(3)
	if v1[0].AsInt() != 1 || v1[1].AsInt() != 0 {
		t.Errorf("level 1 = %v", v1)
	}
	if v3[0].AsInt() != -1 || v3[1].AsInt() != -1 {
		t.Errorf("reference level = %v", v3)
	}
	if _, _, _, err := effectCoding(1); err == nil {
		t.Error("effect coding with 1 level accepted")
	}
}

func TestOrthogonalCodingColumnsAreOrthogonal(t *testing.T) {
	for k := 2; k <= 6; k++ {
		n, _, encode, err := orthogonalCoding(k)
		if err != nil || n != k-1 {
			t.Fatalf("orthogonalCoding(%d): %v", k, err)
		}
		// Build the K x (K-1) matrix and check column dot products vanish.
		mat := make([][]float64, k)
		for lvl := 1; lvl <= k; lvl++ {
			vec, err := encode(int64(lvl))
			if err != nil {
				t.Fatal(err)
			}
			mat[lvl-1] = make([]float64, n)
			for j, v := range vec {
				mat[lvl-1][j] = v.AsFloat()
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				dot := 0.0
				for i := 0; i < k; i++ {
					dot += mat[i][a] * mat[i][b]
				}
				if dot != 0 {
					t.Errorf("k=%d: contrasts %d,%d not orthogonal (dot=%v)", k, a, b, dot)
				}
			}
			// Each contrast must also sum to zero across levels.
			sum := 0.0
			for i := 0; i < k; i++ {
				sum += mat[i][a]
			}
			if sum != 0 {
				t.Errorf("k=%d: contrast %d sums to %v", k, a, sum)
			}
		}
	}
}

func TestApplyFullPipeline(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	out, err := Apply(e, "t", Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     CodingDummy,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.DropTable(out.MapTable)
	if out.Result.NumRows() != 3 {
		t.Errorf("rows = %d", out.Result.NumRows())
	}
	if got := out.Result.Schema.String(); !strings.Contains(got, "gender_1 BIGINT, gender_2 BIGINT") {
		t.Errorf("schema = %s", got)
	}
	if out.Map.Cardinality("abandoned") != 2 {
		t.Error("map missing abandoned column")
	}
}

func TestApplyWithCachedMapSkipsPhaseOne(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	cached := NewRecodeMap()
	cached.AddColumn("gender", []string{"F", "M"})
	cached.AddColumn("abandoned", []string{"Yes", "No"})
	out, err := Apply(e, "t", Spec{RecodeCols: []string{"gender", "abandoned"}}, cached)
	if err != nil {
		t.Fatal(err)
	}
	if out.Map != cached {
		t.Error("Apply should use the cached map")
	}
	if out.Result.NumRows() != 3 {
		t.Errorf("rows = %d", out.Result.NumRows())
	}
}

func TestApplyMapSide(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	out, err := Apply(e, "t", Spec{
		RecodeCols: []string{"gender", "abandoned"},
		MapSide:    true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.NumRows() != 3 {
		t.Errorf("rows = %d", out.Result.NumRows())
	}
}

func TestApplyErrors(t *testing.T) {
	e := newEngine(t)
	loadFigure1(t, e)
	if _, err := Apply(e, "t", Spec{}, nil); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Apply(e, "t", Spec{RecodeCols: []string{"gender"}, CodeCols: []string{"abandoned"}, Coding: CodingDummy}, nil); err == nil {
		t.Error("coded column outside RecodeCols accepted")
	}
	if _, err := Apply(e, "t", Spec{RecodeCols: []string{"nosuch"}}, nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := Apply(e, "t", Spec{RecodeCols: []string{"age"}}, nil); err == nil {
		t.Error("recoding a BIGINT column accepted")
	}
}

func TestRecodeAppliesOnFilteredData(t *testing.T) {
	// The paper notes recoding must run on *filtered* data; values filtered
	// out must not appear in the map.
	e := newEngine(t)
	schema := row.MustSchema(
		row.Column{Name: "country", Type: row.TypeString},
		row.Column{Name: "gender", Type: row.TypeString},
	)
	if err := e.LoadTable("u", schema, []row.Row{
		{row.String_("USA"), row.String_("F")},
		{row.String_("USA"), row.String_("M")},
		{row.String_("DE"), row.String_("X")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("CREATE TABLE filtered AS SELECT gender FROM u WHERE country = 'USA'"); err != nil {
		t.Fatal(err)
	}
	m, mapTable, err := BuildRecodeMap(e, "filtered", []string{"gender"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.DropTable(mapTable)
	if m.Cardinality("gender") != 2 {
		t.Errorf("filtered cardinality = %d (X must not be mapped)", m.Cardinality("gender"))
	}
	if _, ok := m.ID("gender", "X"); ok {
		t.Error("filtered-out value appears in the map")
	}
}

func TestDistinctValuesSingleScanForAllColumns(t *testing.T) {
	// The UDF must emit pairs for every listed column in one pass.
	e := newEngine(t)
	loadFigure1(t, e)
	res, err := e.Query("SELECT DISTINCT colname, colval FROM TABLE(distinct_values(t, 'gender,abandoned'))")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("distinct pairs = %d, want 4", res.NumRows())
	}
	cols := map[string]int{}
	for _, r := range res.Rows() {
		cols[r[0].AsString()]++
	}
	if cols["gender"] != 2 || cols["abandoned"] != 2 {
		t.Errorf("pairs per column: %v", cols)
	}
}

func TestNullCategoricalValues(t *testing.T) {
	e := newEngine(t)
	schema := row.MustSchema(row.Column{Name: "g", Type: row.TypeString})
	if err := e.LoadTable("n", schema, []row.Row{
		{row.String_("a")}, {row.NullOf(row.TypeString)}, {row.String_("b")},
	}); err != nil {
		t.Fatal(err)
	}
	m, mapTable, err := BuildRecodeMap(e, "n", []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.DropTable(mapTable)
	if m.Cardinality("g") != 2 {
		t.Errorf("NULL must not be recoded: cardinality = %d", m.Cardinality("g"))
	}
	// Map-side recode keeps NULL as NULL.
	res, err := RecodeMapSide(e, "n", mapTable, []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for _, r := range res.Rows() {
		if r[0].Null {
			nulls++
		}
	}
	if nulls != 1 {
		t.Errorf("null rows after map-side recode = %d", nulls)
	}
}

func TestRecodeJoinSQLShape(t *testing.T) {
	sql, err := RecodeJoinSQL(figure1Schema(), "t", "m", []string{"gender", "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	// The generated query must be parseable and reference the map twice —
	// the paper's "FROM T, M as Mg, M as Ma" shape.
	if strings.Count(sql, "m AS __m") != 2 {
		t.Errorf("map not joined twice: %s", sql)
	}
	if _, err := sqlengine.ParseSelect(sql); err != nil {
		t.Errorf("generated SQL does not parse: %v\n%s", err, sql)
	}
}

func TestCodingSpecParseErrors(t *testing.T) {
	for _, bad := range []string{"", "gender", "gender:x", "gender:0", ":"} {
		if _, err := parseCodingSpec(row.String_(bad)); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	specs, err := parseCodingSpec(row.String_("a:2, b:3"))
	if err != nil || len(specs) != 2 || specs[1].k != 3 {
		t.Errorf("good spec rejected: %v %v", specs, err)
	}
}

func TestCodingRejectsOutOfRangeLevels(t *testing.T) {
	e := newEngine(t)
	schema := row.MustSchema(row.Column{Name: "g", Type: row.TypeInt})
	if err := e.LoadTable("bad", schema, []row.Row{{row.Int(5)}}); err != nil {
		t.Fatal(err)
	}
	// The coding pipeline is streaming: the out-of-range row is only seen
	// when the result is consumed, so the error surfaces at Materialize.
	res, err := DummyCode(e, "bad", "g:2")
	if err == nil {
		err = res.Materialize()
	}
	if err == nil {
		t.Error("out-of-range level accepted")
	}
}
