package transform

import (
	"math"
	"math/rand"
	"testing"

	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

func newScalingEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	e := newEngine(t)
	if err := RegisterScalingUDFs(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func loadNumeric(t testing.TB, e *sqlengine.Engine, name string, values []float64) {
	t.Helper()
	schema := row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "x", Type: row.TypeFloat},
		row.Column{Name: "tag", Type: row.TypeString},
	)
	rows := make([]row.Row, len(values))
	for i, v := range values {
		rows[i] = row.Row{row.Int(int64(i)), row.Float(v), row.String_("t")}
	}
	if err := e.LoadTable(name, schema, rows); err != nil {
		t.Fatal(err)
	}
}

func TestBuildStatsMatchesDirectComputation(t *testing.T) {
	e := newScalingEngine(t)
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 500)
	sum, sumsq := 0.0, 0.0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := range values {
		v := rng.NormFloat64()*3 + 10
		values[i] = v
		sum += v
		sumsq += v * v
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	loadNumeric(t, e, "nums", values)
	stats, statsTable, err := BuildStats(e, "nums", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.DropTable(statsTable)
	s := stats["x"]
	n := float64(len(values))
	wantMean := sum / n
	wantStd := math.Sqrt(sumsq/n - wantMean*wantMean)
	if s.Count != int64(len(values)) {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-wantMean) > 1e-9 || math.Abs(s.Std-wantStd) > 1e-9 {
		t.Errorf("mean/std = %v/%v, want %v/%v", s.Mean, s.Std, wantMean, wantStd)
	}
	if s.Min != minV || s.Max != maxV {
		t.Errorf("min/max = %v/%v, want %v/%v", s.Min, s.Max, minV, maxV)
	}
	// The materialised table round-trips.
	back, err := LoadStatsTable(e, statsTable)
	if err != nil {
		t.Fatal(err)
	}
	if back["x"].Count != s.Count {
		t.Error("stats table round trip lost data")
	}
}

func TestStandardizeProducesZeroMeanUnitVariance(t *testing.T) {
	e := newScalingEngine(t)
	rng := rand.New(rand.NewSource(2))
	values := make([]float64, 400)
	for i := range values {
		values[i] = rng.NormFloat64()*7 - 3
	}
	loadNumeric(t, e, "nums", values)
	res, stats, err := Standardize(e, "nums", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if stats["x"].Count != 400 {
		t.Errorf("stats count = %d", stats["x"].Count)
	}
	xIdx := res.Schema.ColIndex("x")
	sum, sumsq := 0.0, 0.0
	for _, r := range res.Rows() {
		v := r[xIdx].AsFloat()
		sum += v
		sumsq += v * v
	}
	n := float64(res.NumRows())
	if mean := sum / n; math.Abs(mean) > 1e-9 {
		t.Errorf("standardized mean = %v", mean)
	}
	if variance := sumsq / n; math.Abs(variance-1) > 1e-9 {
		t.Errorf("standardized variance = %v", variance)
	}
	// Untouched columns pass through.
	if res.Schema.ColIndex("tag") < 0 || res.Schema.ColIndex("id") < 0 {
		t.Error("non-scaled columns missing")
	}
}

func TestMinMaxScaleBounds(t *testing.T) {
	e := newScalingEngine(t)
	values := []float64{5, 10, 15, 20, 25}
	loadNumeric(t, e, "nums", values)
	res, _, err := MinMaxScale(e, "nums", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	xIdx := res.Schema.ColIndex("x")
	seen0, seen1 := false, false
	for _, r := range res.Rows() {
		v := r[xIdx].AsFloat()
		if v < 0 || v > 1 {
			t.Errorf("scaled value %v outside [0,1]", v)
		}
		if v == 0 {
			seen0 = true
		}
		if v == 1 {
			seen1 = true
		}
	}
	if !seen0 || !seen1 {
		t.Error("min and max must map to 0 and 1")
	}
}

func TestScaleConstantColumn(t *testing.T) {
	e := newScalingEngine(t)
	loadNumeric(t, e, "nums", []float64{7, 7, 7})
	res, _, err := Standardize(e, "nums", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows() {
		if v := r[res.Schema.ColIndex("x")].AsFloat(); v != 0 {
			t.Errorf("constant column standardizes to %v, want 0", v)
		}
	}
	res, _, err = MinMaxScale(e, "nums", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows() {
		if v := r[res.Schema.ColIndex("x")].AsFloat(); v != 0 {
			t.Errorf("constant column min-max scales to %v, want 0", v)
		}
	}
}

func TestScalePreservesNulls(t *testing.T) {
	e := newScalingEngine(t)
	schema := row.MustSchema(row.Column{Name: "x", Type: row.TypeFloat})
	if err := e.LoadTable("n", schema, []row.Row{
		{row.Float(1)}, {row.NullOf(row.TypeFloat)}, {row.Float(3)},
	}); err != nil {
		t.Fatal(err)
	}
	res, stats, err := Standardize(e, "n", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if stats["x"].Count != 2 {
		t.Errorf("NULLs must not count toward stats: count = %d", stats["x"].Count)
	}
	nulls := 0
	for _, r := range res.Rows() {
		if r[0].Null {
			nulls++
		}
	}
	if nulls != 1 {
		t.Errorf("nulls after scaling = %d, want 1", nulls)
	}
}

func TestScaleIntegerColumnsBecomeDouble(t *testing.T) {
	e := newScalingEngine(t)
	schema := row.MustSchema(row.Column{Name: "age", Type: row.TypeInt})
	if err := e.LoadTable("ages", schema, []row.Row{{row.Int(20)}, {row.Int(40)}}); err != nil {
		t.Fatal(err)
	}
	res, _, err := MinMaxScale(e, "ages", []string{"age"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Cols[0].Type != row.TypeFloat {
		t.Errorf("scaled BIGINT column should become DOUBLE, got %s", res.Schema.Cols[0].Type)
	}
}

func TestScaleErrors(t *testing.T) {
	e := newScalingEngine(t)
	loadFigure1(t, e)
	if _, _, err := Standardize(e, "t", []string{"gender"}); err == nil {
		t.Error("scaling a VARCHAR column accepted")
	}
	if _, _, err := Standardize(e, "t", []string{"nosuch"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := Standardize(e, "t", nil); err == nil {
		t.Error("empty column list accepted")
	}
}
