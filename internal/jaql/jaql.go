// Package jaql is the external data-transformation tool of the paper's
// naive baseline: a Jaql-like system with "built-in functions for recoding
// of categorical variables and dummy coding" that runs as MapReduce jobs
// over the DFS.
//
// The naive pipeline (Figure 3, "naive") is: the SQL engine materialises
// its query result onto the DFS, this package reads it, transforms it with
// two MapReduce jobs (recode-map construction, then a map-only
// recode+coding pass), and writes the transformed data back to the DFS for
// the ML system to ingest — the extra hop and double materialisation whose
// cost the In-SQL approach eliminates.
package jaql

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/mapred"
	"sqlml/internal/row"
	"sqlml/internal/transform"
)

// Env carries the cluster resources the tool runs on.
type Env struct {
	Topo      *cluster.Topology
	FS        *dfs.FileSystem
	Cost      *cluster.CostModel
	TaskNodes []int
	// SlotsPerNode bounds concurrent tasks per node; the paper's testbed
	// ran 9 mappers per server.
	SlotsPerNode int
	// JobStartupDelay is the fixed simulated overhead charged per MapReduce
	// job (the naive pipeline pays it twice: recode-map job + transform job).
	JobStartupDelay time.Duration
	// MaxTaskAttempts and TaskFault pass through to every MapReduce job the
	// tool runs: the per-task re-execution budget and the deterministic
	// fault-injection seam (see mapred.Job).
	MaxTaskAttempts int
	TaskFault       func(phase string, task, attempt, record int) error
}

// Result reports what a Transform run produced.
type Result struct {
	// OutputPath is the DFS directory holding the transformed part files.
	OutputPath string
	// Schema is the transformed row schema.
	Schema row.Schema
	// Map is the recode map built by the first job.
	Map *transform.RecodeMap
	// MapJob / ApplyJob are the per-job counters.
	MapJob   *mapred.Stats
	ApplyJob *mapred.Stats
}

// Transform reads the text table(s) under inputPath (a file or a directory
// of part files), recodes and codes them per spec, and writes the result
// under outputPath. It runs as two MapReduce jobs, exactly the middle hop
// of the naive pipeline.
func Transform(env *Env, inputPath string, inputSchema row.Schema, spec transform.Spec, outputPath string) (*Result, error) {
	if env == nil || env.FS == nil || env.Topo == nil {
		return nil, fmt.Errorf("jaql: incomplete environment")
	}
	if len(spec.RecodeCols) == 0 {
		return nil, fmt.Errorf("jaql: spec lists no categorical columns")
	}
	input := inputFormat(env.FS, inputPath, inputSchema)

	// Job 1: build the recode map. Mappers emit one record per distinct
	// (column, value) pair seen locally; a single reducer sees the keys in
	// sorted order and assigns consecutive IDs per column.
	catIdx := make([]int, len(spec.RecodeCols))
	for i, c := range spec.RecodeCols {
		idx := inputSchema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("jaql: unknown column %q", c)
		}
		if inputSchema.Cols[idx].Type != row.TypeString {
			return nil, fmt.Errorf("jaql: column %q is %s; recoding applies to VARCHAR", c, inputSchema.Cols[idx].Type)
		}
		catIdx[i] = idx
	}
	catNames := make([]string, len(spec.RecodeCols))
	for i, c := range spec.RecodeCols {
		catNames[i] = strings.ToLower(c)
	}

	mapJobOut := outputPath + "__recodemap"
	mapJob := &mapred.Job{
		Name:  "jaql-recode-map",
		Input: input,
		Mapper: mapred.MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			for i, ci := range catIdx {
				if r[ci].Null {
					continue
				}
				key := catNames[i] + "\x00" + r[ci].AsString()
				if err := emit(key, row.Row{}); err != nil {
					return err
				}
			}
			return nil
		}),
		Reducer: &recodeIDReducer{},
		// The combiner collapses each mapper's duplicate (column, value)
		// pairs locally, so the single global reducer only receives each
		// distinct pair once per map task — the MapReduce equivalent of the
		// In-SQL path computing local distincts in one scan.
		Combiner: mapred.ReducerFunc(func(key string, _ []row.Row, emit func(row.Row) error) error {
			return emit(row.Row{})
		}),
		// One reducer: the ID assignment needs a global sorted view, the
		// same reason the In-SQL path's assign_recode_ids UDF is global.
		NumReducers:     1,
		OutputPath:      mapJobOut,
		OutputSchema:    transform.MapSchema(),
		Topo:            env.Topo,
		FS:              env.FS,
		Cost:            env.Cost,
		TaskNodes:       env.TaskNodes,
		SlotsPerNode:    env.SlotsPerNode,
		StartupDelay:    env.JobStartupDelay,
		MaxTaskAttempts: env.MaxTaskAttempts,
		TaskFault:       env.TaskFault,
	}
	mapStats, err := mapred.Run(mapJob)
	if err != nil {
		return nil, fmt.Errorf("jaql: recode-map job: %w", err)
	}
	mapRows, err := hadoopfmt.ReadAll(mapred.Output(mapJob), env.Topo.Node(env.TaskNodes[0]))
	if err != nil {
		return nil, err
	}
	m, err := transform.FromRows(mapRows)
	if err != nil {
		return nil, err
	}

	// Job 2: map-only recode + coding pass over the data.
	enc, err := transform.NewEncoder(inputSchema, m, spec.RecodeCols, spec.CodeCols, spec.Coding)
	if err != nil {
		return nil, err
	}
	applyJob := &mapred.Job{
		Name:  "jaql-transform",
		Input: input,
		Mapper: mapred.MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			out, err := enc.Encode(r)
			if err != nil {
				return err
			}
			return emit("", out)
		}),
		OutputPath:      outputPath,
		OutputSchema:    enc.Schema(),
		Topo:            env.Topo,
		FS:              env.FS,
		Cost:            env.Cost,
		TaskNodes:       env.TaskNodes,
		SlotsPerNode:    env.SlotsPerNode,
		StartupDelay:    env.JobStartupDelay,
		MaxTaskAttempts: env.MaxTaskAttempts,
		TaskFault:       env.TaskFault,
	}
	applyStats, err := mapred.Run(applyJob)
	if err != nil {
		return nil, fmt.Errorf("jaql: transform job: %w", err)
	}
	res := &Result{
		OutputPath: outputPath,
		Schema:     enc.Schema(),
		Map:        m,
		MapJob:     mapStats,
		ApplyJob:   applyStats,
	}
	if len(spec.ScaleCols) > 0 && spec.Scaling != transform.ScalingNone {
		// Jobs 3 and 4: numeric feature scaling, mirroring the In-SQL
		// two-phase structure (a statistics pass, then an apply pass).
		scaledPath := outputPath + "__scaled"
		if err := scaleJobs(env, res.OutputPath, res.Schema, spec, scaledPath); err != nil {
			return nil, err
		}
		res.OutputPath = scaledPath
		res.Schema, err = scaledSchema(res.Schema, spec.ScaleCols)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scaledSchema rewrites the scaled columns as DOUBLE.
func scaledSchema(in row.Schema, cols []string) (row.Schema, error) {
	target := make(map[string]bool, len(cols))
	for _, c := range cols {
		if in.ColIndex(c) < 0 {
			return row.Schema{}, fmt.Errorf("jaql: unknown scale column %q", c)
		}
		target[strings.ToLower(c)] = true
	}
	out := make([]row.Column, in.Len())
	for i, c := range in.Cols {
		out[i] = c
		if target[strings.ToLower(c.Name)] {
			out[i].Type = row.TypeFloat
		}
	}
	return row.NewSchema(out...)
}

// scaleJobs runs the statistics job (with a combiner collapsing per-task
// partials) and the map-only apply job.
func scaleJobs(env *Env, inputPath string, schema row.Schema, spec transform.Spec, outputPath string) error {
	idx := make([]int, len(spec.ScaleCols))
	names := make([]string, len(spec.ScaleCols))
	for i, c := range spec.ScaleCols {
		j := schema.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("jaql: unknown scale column %q", c)
		}
		if t := schema.Cols[j].Type; t != row.TypeInt && t != row.TypeFloat {
			return fmt.Errorf("jaql: column %q is %s; scaling applies to numeric columns", c, t)
		}
		idx[i] = j
		names[i] = strings.ToLower(c)
	}

	// Job 3: per-column partial statistics. Mappers emit one partial per
	// row per column (cnt, sum, sumsq, min, max); the combiner merges them
	// per map task, the single reducer produces the global row per column.
	partialSchema := row.MustSchema(
		row.Column{Name: "colname", Type: row.TypeString},
		row.Column{Name: "cnt", Type: row.TypeInt},
		row.Column{Name: "sum", Type: row.TypeFloat},
		row.Column{Name: "sumsq", Type: row.TypeFloat},
		row.Column{Name: "minv", Type: row.TypeFloat},
		row.Column{Name: "maxv", Type: row.TypeFloat},
	)
	merge := mapred.ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
		var cnt int64
		var sum, sumsq float64
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			cnt += v[1].AsInt()
			sum += v[2].AsFloat()
			sumsq += v[3].AsFloat()
			minV = math.Min(minV, v[4].AsFloat())
			maxV = math.Max(maxV, v[5].AsFloat())
		}
		return emit(row.Row{
			row.String_(key), row.Int(cnt), row.Float(sum), row.Float(sumsq),
			row.Float(minV), row.Float(maxV),
		})
	})
	statsJob := &mapred.Job{
		Name:  "jaql-scale-stats",
		Input: inputFormat(env.FS, inputPath, schema),
		Mapper: mapred.MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			for i, ci := range idx {
				v := r[ci]
				if v.Null {
					continue
				}
				x := v.AsFloat()
				if err := emit(names[i], row.Row{
					row.String_(names[i]), row.Int(1), row.Float(x), row.Float(x * x),
					row.Float(x), row.Float(x),
				}); err != nil {
					return err
				}
			}
			return nil
		}),
		Combiner:        merge,
		Reducer:         merge,
		NumReducers:     1,
		OutputPath:      outputPath + "__stats",
		OutputSchema:    partialSchema,
		Topo:            env.Topo,
		FS:              env.FS,
		Cost:            env.Cost,
		TaskNodes:       env.TaskNodes,
		SlotsPerNode:    env.SlotsPerNode,
		StartupDelay:    env.JobStartupDelay,
		MaxTaskAttempts: env.MaxTaskAttempts,
		TaskFault:       env.TaskFault,
	}
	if _, err := mapred.Run(statsJob); err != nil {
		return fmt.Errorf("jaql: scale stats job: %w", err)
	}
	statsRows, err := hadoopfmt.ReadAll(mapred.Output(statsJob), env.Topo.Node(env.TaskNodes[0]))
	if err != nil {
		return err
	}
	stats := make(map[string]transform.ColumnStats, len(statsRows))
	for _, r := range statsRows {
		n := r[1].AsInt()
		mean := r[2].AsFloat() / float64(n)
		variance := r[3].AsFloat()/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		stats[r[0].AsString()] = transform.ColumnStats{
			Count: n, Mean: mean, Std: math.Sqrt(variance),
			Min: r[4].AsFloat(), Max: r[5].AsFloat(),
		}
	}

	// Job 4: map-only apply pass.
	outSchema, err := scaledSchema(schema, spec.ScaleCols)
	if err != nil {
		return err
	}
	applyJob := &mapred.Job{
		Name:  "jaql-scale-apply",
		Input: inputFormat(env.FS, inputPath, schema),
		Mapper: mapred.MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			out := r.Clone()
			for i, ci := range idx {
				v := out[ci]
				if v.Null {
					out[ci] = row.NullOf(row.TypeFloat)
					continue
				}
				s := stats[names[i]]
				x := v.AsFloat()
				switch spec.Scaling {
				case transform.ScalingStandard:
					if s.Std == 0 {
						x = 0
					} else {
						x = (x - s.Mean) / s.Std
					}
				case transform.ScalingMinMax:
					if s.Max == s.Min {
						x = 0
					} else {
						x = (x - s.Min) / (s.Max - s.Min)
					}
				}
				out[ci] = row.Float(x)
			}
			return emit("", out)
		}),
		OutputPath:      outputPath,
		OutputSchema:    outSchema,
		Topo:            env.Topo,
		FS:              env.FS,
		Cost:            env.Cost,
		TaskNodes:       env.TaskNodes,
		SlotsPerNode:    env.SlotsPerNode,
		StartupDelay:    env.JobStartupDelay,
		MaxTaskAttempts: env.MaxTaskAttempts,
		TaskFault:       env.TaskFault,
	}
	if _, err := mapred.Run(applyJob); err != nil {
		return fmt.Errorf("jaql: scale apply job: %w", err)
	}
	return nil
}

// recodeIDReducer assigns consecutive recode IDs: because a single reducer
// receives the (column, value) keys in sorted order, a running counter per
// column yields IDs 1..K in sorted value order — matching the In-SQL path.
type recodeIDReducer struct {
	lastCol string
	next    int64
}

// Reduce implements mapred.Reducer.
func (r *recodeIDReducer) Reduce(key string, values []row.Row, emit func(row.Row) error) error {
	parts := strings.SplitN(key, "\x00", 2)
	if len(parts) != 2 {
		return fmt.Errorf("jaql: malformed recode key %q", key)
	}
	col, val := parts[0], parts[1]
	if col != r.lastCol {
		r.lastCol = col
		r.next = 0
	}
	r.next++
	return emit(row.Row{row.String_(col), row.String_(val), row.Int(r.next)})
}

// inputFormat resolves a DFS path that may be a single file or a directory
// of part files.
func inputFormat(fs *dfs.FileSystem, path string, schema row.Schema) hadoopfmt.InputFormat {
	if fs.Exists(path) {
		return hadoopfmt.NewTextTableFormat(fs, path, schema)
	}
	return mapred.DirFormat(fs, path, schema)
}
