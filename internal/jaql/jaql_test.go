package jaql

import (
	"sort"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/mapred"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

func newEnv(t testing.TB) *Env {
	t.Helper()
	topo := cluster.NewTopology(5)
	cost := &cluster.CostModel{DiskReadBps: 1e9, DiskWriteBps: 1e9, NetBps: 1e9, TimeScale: 0}
	fs := dfs.New(topo, dfs.Config{BlockSize: 512, Replication: 2, Cost: cost})
	return &Env{Topo: topo, FS: fs, Cost: cost, TaskNodes: []int{1, 2, 3, 4}}
}

func prepSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
}

func prepRows() []row.Row {
	return []row.Row{
		{row.Int(57), row.String_("F"), row.Float(314.62), row.String_("Yes")},
		{row.Int(40), row.String_("M"), row.Float(40.40), row.String_("Yes")},
		{row.Int(35), row.String_("F"), row.Float(151.17), row.String_("No")},
	}
}

func TestTransformEndToEnd(t *testing.T) {
	env := newEnv(t)
	if _, err := hadoopfmt.WriteTextTable(env.FS, "/stage/prep", prepSchema(), prepRows(), env.Topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
	res, err := Transform(env, "/stage/prep", prepSchema(), spec, "/stage/transformed")
	if err != nil {
		t.Fatal(err)
	}
	want := "age BIGINT, gender_1 BIGINT, gender_2 BIGINT, amount DOUBLE, abandoned BIGINT"
	if res.Schema.String() != want {
		t.Fatalf("schema = %s", res.Schema)
	}
	if res.Map.Cardinality("gender") != 2 || res.Map.Cardinality("abandoned") != 2 {
		t.Errorf("map cardinalities wrong")
	}
	got, err := hadoopfmt.ReadAll(mapred.DirFormat(env.FS, "/stage/transformed", res.Schema), env.Topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("transformed rows = %d", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0].AsInt() > got[j][0].AsInt() })
	// Figure 1(c) shape: 57→F→(1,0), 40→M→(0,1), 35→F→(1,0).
	expect := [][2]int64{{1, 0}, {0, 1}, {1, 0}}
	for i, ex := range expect {
		if got[i][1].AsInt() != ex[0] || got[i][2].AsInt() != ex[1] {
			t.Errorf("row %d gender bits = %v %v, want %v", i, got[i][1], got[i][2], ex)
		}
	}
}

// TestMatchesInSQLTransform is the cross-system consistency check: the
// naive (Jaql/MapReduce) and In-SQL transformation paths must produce the
// same multiset of rows for the same input and spec.
func TestMatchesInSQLTransform(t *testing.T) {
	env := newEnv(t)
	rows := prepRows()
	if _, err := hadoopfmt.WriteTextTable(env.FS, "/x/prep", prepSchema(), rows, env.Topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
	jres, err := Transform(env, "/x/prep", prepSchema(), spec, "/x/out")
	if err != nil {
		t.Fatal(err)
	}
	jrows, err := hadoopfmt.ReadAll(mapred.DirFormat(env.FS, "/x/out", jres.Schema), env.Topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}

	// In-SQL path over the same data.
	eng, err := newSQLEngine(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTable("t", prepSchema(), rows); err != nil {
		t.Fatal(err)
	}
	out, err := transform.Apply(eng, "t", spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	srows := out.Result.Rows()

	if !jres.Schema.Equal(out.Result.Schema) {
		t.Fatalf("schemas differ: %s vs %s", jres.Schema, out.Result.Schema)
	}
	if len(jrows) != len(srows) {
		t.Fatalf("row counts differ: %d vs %d", len(jrows), len(srows))
	}
	count := map[string]int{}
	for _, r := range jrows {
		count[r.String()]++
	}
	for _, r := range srows {
		count[r.String()]--
	}
	for k, n := range count {
		if n != 0 {
			t.Errorf("multiset mismatch: %s (%+d)", k, n)
		}
	}
}

func TestTransformErrors(t *testing.T) {
	env := newEnv(t)
	if _, err := hadoopfmt.WriteTextTable(env.FS, "/e/prep", prepSchema(), prepRows(), env.Topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(env, "/e/prep", prepSchema(), transform.Spec{}, "/e/out"); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Transform(env, "/e/prep", prepSchema(), transform.Spec{RecodeCols: []string{"nosuch"}}, "/e/out2"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := Transform(env, "/e/prep", prepSchema(), transform.Spec{RecodeCols: []string{"age"}}, "/e/out3"); err == nil {
		t.Error("numeric recode column accepted")
	}
	if _, err := Transform(nil, "/e/prep", prepSchema(), transform.Spec{RecodeCols: []string{"gender"}}, "/e/out4"); err == nil {
		t.Error("nil env accepted")
	}
}

func TestRecodeIDsAreConsecutivePerColumn(t *testing.T) {
	env := newEnv(t)
	// Many values across two columns to stress the single-reducer counter.
	schema := row.MustSchema(
		row.Column{Name: "a", Type: row.TypeString},
		row.Column{Name: "b", Type: row.TypeString},
	)
	var rows []row.Row
	vals := []string{"v1", "v2", "v3", "v4", "v5"}
	for i := 0; i < 40; i++ {
		rows = append(rows, row.Row{
			row.String_(vals[i%5]),
			row.String_(vals[i%3]),
		})
	}
	if _, err := hadoopfmt.WriteTextTable(env.FS, "/c/in", schema, rows, env.Topo.Node(2)); err != nil {
		t.Fatal(err)
	}
	res, err := Transform(env, "/c/in", schema, transform.Spec{RecodeCols: []string{"a", "b"}}, "/c/out")
	if err != nil {
		t.Fatal(err)
	}
	for col, k := range map[string]int{"a": 5, "b": 3} {
		if res.Map.Cardinality(col) != k {
			t.Errorf("cardinality[%s] = %d, want %d", col, res.Map.Cardinality(col), k)
		}
		seen := map[int64]bool{}
		for _, v := range vals[:k] {
			id, ok := res.Map.ID(col, v)
			if !ok {
				t.Errorf("missing %s=%s", col, v)
				continue
			}
			seen[id] = true
		}
		for i := int64(1); i <= int64(k); i++ {
			if !seen[i] {
				t.Errorf("column %s: id %d missing (not consecutive)", col, i)
			}
		}
	}
}

// newSQLEngine builds an In-SQL engine on the env's topology for the
// cross-system consistency test.
func newSQLEngine(env *Env) (*sqlengine.Engine, error) {
	eng, err := sqlengine.New(env.Topo, env.Cost, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		return nil, err
	}
	if err := transform.RegisterUDFs(eng); err != nil {
		return nil, err
	}
	return eng, nil
}
