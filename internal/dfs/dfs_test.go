package dfs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
)

func newTestFS(t *testing.T, nodes int, blockSize int64, replication int) *FileSystem {
	t.Helper()
	topo := cluster.NewTopology(nodes)
	return New(topo, Config{BlockSize: blockSize, Replication: replication})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(t, 4, 64, 3)
	data := []byte("hello distributed file system, this text spans several 64-byte blocks for sure........")
	if err := fs.WriteFile("/t/a.txt", data, fs.Topology().Node(1)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/t/a.txt", fs.Topology().Node(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip mismatch: got %q", got)
	}
}

func TestCreateRejectsDuplicatesAndBadPaths(t *testing.T) {
	fs := newTestFS(t, 2, 1024, 1)
	node := fs.Topology().Node(0)
	if err := fs.WriteFile("/x", []byte("1"), node); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/x", []byte("2"), node); err == nil {
		t.Error("duplicate create accepted")
	}
	for _, p := range []string{"", "relative", "/a//b", "/trailing/"} {
		if _, err := fs.Create(p, node); err == nil {
			t.Errorf("bad path %q accepted", p)
		}
	}
}

func TestWriterVisibilityOnlyAfterClose(t *testing.T) {
	fs := newTestFS(t, 2, 16, 1)
	w, err := fs.Create("/pending", fs.Topology().Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/pending") {
		t.Error("file visible before Close")
	}
	if _, err := fs.Create("/pending", fs.Topology().Node(1)); err == nil {
		t.Error("second concurrent writer accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/pending") {
		t.Error("file missing after Close")
	}
	info, err := fs.Stat("/pending")
	if err != nil || info.Size != 100 {
		t.Errorf("Stat: %+v %v", info, err)
	}
}

func TestAbortDiscardsBlocks(t *testing.T) {
	fs := newTestFS(t, 2, 16, 2)
	w, err := fs.Create("/gone", fs.Topology().Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte("y"), 64)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if fs.Exists("/gone") {
		t.Error("aborted file exists")
	}
	if used := fs.TotalUsed(); used != 0 {
		t.Errorf("aborted blocks still stored: %d bytes", used)
	}
	// Path is reusable after abort.
	if err := fs.WriteFile("/gone", []byte("z"), fs.Topology().Node(0)); err != nil {
		t.Errorf("path not reusable after abort: %v", err)
	}
}

func TestReplicationFactorRespected(t *testing.T) {
	fs := newTestFS(t, 5, 32, 3)
	data := bytes.Repeat([]byte("r"), 100) // 4 blocks at size 32
	if err := fs.WriteFile("/rep", data, fs.Topology().Node(2)); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/rep")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Blocks) != 4 {
		t.Fatalf("expected 4 blocks, got %d", len(info.Blocks))
	}
	for i, b := range info.Blocks {
		if len(b.Hosts) != 3 {
			t.Errorf("block %d has %d replicas, want 3", i, len(b.Hosts))
		}
		if b.Hosts[0] != fs.Topology().Node(2).Addr {
			t.Errorf("block %d first replica %s is not the writer's node", i, b.Hosts[0])
		}
	}
	if used := fs.TotalUsed(); used != 300 {
		t.Errorf("TotalUsed = %d, want 300 (100 bytes x3 replicas)", used)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	fs := newTestFS(t, 2, 1024, 3)
	if err := fs.WriteFile("/c", []byte("ab"), fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/c")
	if len(info.Blocks[0].Hosts) != 2 {
		t.Errorf("replication should clamp to 2, got %d", len(info.Blocks[0].Hosts))
	}
}

func TestBlockLocationsAndOffsets(t *testing.T) {
	fs := newTestFS(t, 3, 10, 1)
	if err := fs.WriteFile("/b", bytes.Repeat([]byte("z"), 25), fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/b")
	wantOffsets := []int64{0, 10, 20}
	wantLens := []int64{10, 10, 5}
	if len(info.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	for i, b := range info.Blocks {
		if b.Offset != wantOffsets[i] || b.Length != wantLens[i] {
			t.Errorf("block %d: offset %d len %d, want %d %d", i, b.Offset, b.Length, wantOffsets[i], wantLens[i])
		}
	}
}

func TestOpenRange(t *testing.T) {
	fs := newTestFS(t, 2, 8, 1)
	data := []byte("0123456789abcdefghij")
	if err := fs.WriteFile("/r", data, fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	r, err := fs.OpenRange("/r", 5, 10, fs.Topology().Node(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "56789abcde" {
		t.Errorf("range read = %q", got)
	}
	if _, err := fs.OpenRange("/r", 15, 10, nil); err == nil {
		t.Error("out-of-range read accepted")
	}
	if _, err := fs.OpenRange("/r", -1, 2, nil); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	fs := newTestFS(t, 3, 16, 2)
	if err := fs.WriteFile("/d", bytes.Repeat([]byte("q"), 64), fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	if fs.TotalUsed() != 128 {
		t.Fatalf("used = %d", fs.TotalUsed())
	}
	if err := fs.Delete("/d"); err != nil {
		t.Fatal(err)
	}
	if fs.TotalUsed() != 0 {
		t.Error("blocks not freed on delete")
	}
	if err := fs.Delete("/d"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t, 2, 1024, 1)
	node := fs.Topology().Node(0)
	if err := fs.WriteFile("/old", []byte("data"), node); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/old") || !fs.Exists("/new") {
		t.Error("rename did not move the file")
	}
	got, _ := fs.ReadFile("/new", node)
	if string(got) != "data" {
		t.Errorf("content after rename = %q", got)
	}
	if err := fs.Rename("/missing", "/x"); err == nil {
		t.Error("rename of missing file accepted")
	}
	if err := fs.WriteFile("/other", []byte("o"), node); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/new", "/other"); err == nil {
		t.Error("rename onto existing file accepted")
	}
}

func TestList(t *testing.T) {
	fs := newTestFS(t, 2, 1024, 1)
	node := fs.Topology().Node(0)
	for _, p := range []string{"/a/1", "/a/2", "/b/1"} {
		if err := fs.WriteFile(p, []byte("x"), node); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/a")
	if len(got) != 2 || got[0] != "/a/1" || got[1] != "/a/2" {
		t.Errorf("List(/a) = %v", got)
	}
	if all := fs.List("/"); len(all) != 3 {
		t.Errorf("List(/) = %v", all)
	}
}

func TestCostChargedForReplicatedWriteAndRemoteRead(t *testing.T) {
	topo := cluster.NewTopology(4)
	cost := &cluster.CostModel{DiskReadBps: 1e6, DiskWriteBps: 1e6, NetBps: 1e6, TimeScale: 0}
	fs := New(topo, Config{BlockSize: 1024, Replication: 3, Cost: cost})
	data := bytes.Repeat([]byte("c"), 1000)
	if err := fs.WriteFile("/cost", data, topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	s := cost.Stats()
	if s.DiskWriteBytes != 3000 {
		t.Errorf("disk write bytes = %d, want 3000 (3 replicas)", s.DiskWriteBytes)
	}
	if s.NetBytes != 2000 {
		t.Errorf("net bytes = %d, want 2000 (2 remote replicas)", s.NetBytes)
	}
	cost.ResetStats()

	// Local read: node 0 holds a replica, so no network cost.
	if _, err := fs.ReadFile("/cost", topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	if s := cost.Stats(); s.NetBytes != 0 || s.DiskReadBytes != 1000 {
		t.Errorf("local read stats = %+v", s)
	}
	cost.ResetStats()

	// Remote read from a node without a replica pays the network.
	info, _ := fs.Stat("/cost")
	var nonReplica *cluster.Node
	for _, n := range topo.Nodes() {
		holds := false
		for _, h := range info.Blocks[0].Hosts {
			if h == n.Addr {
				holds = true
			}
		}
		if !holds {
			nonReplica = n
			break
		}
	}
	if nonReplica == nil {
		t.Fatal("expected a node without a replica")
	}
	if _, err := fs.ReadFile("/cost", nonReplica); err != nil {
		t.Fatal(err)
	}
	if s := cost.Stats(); s.NetBytes != 1000 {
		t.Errorf("remote read net bytes = %d, want 1000", s.NetBytes)
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	fs := newTestFS(t, 4, 128, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/conc/%d", i)
			data := bytes.Repeat([]byte{byte('a' + i%26)}, 300+i)
			node := fs.Topology().Node(i % 4)
			if err := fs.WriteFile(path, data, node); err != nil {
				errs <- err
				return
			}
			got, err := fs.ReadFile(path, fs.Topology().Node((i+1)%4))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("mismatch on %s", path)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(fs.List("/conc")); got != 16 {
		t.Errorf("files written = %d, want 16", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	fs := newTestFS(t, 3, 37, 2) // odd block size to exercise boundaries
	i := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		data := make([]byte, n)
		rng.Read(data)
		i++
		path := fmt.Sprintf("/prop/%d", i)
		if err := fs.WriteFile(path, data, fs.Topology().Node(i%3)); err != nil {
			return false
		}
		got, err := fs.ReadFile(path, fs.Topology().Node((i+1)%3))
		if err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		// Random sub-range must match the same slice of the original.
		if n > 0 {
			off := rng.Intn(n)
			l := rng.Intn(n - off)
			r, err := fs.OpenRange(path, int64(off), int64(l), nil)
			if err != nil {
				return false
			}
			sub, err := io.ReadAll(r)
			if err != nil || !bytes.Equal(sub, data[off:off+l]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newTestFS(t, 2, 64, 1)
	if err := fs.WriteFile("/empty", nil, fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty", fs.Topology().Node(1))
	if err != nil || len(got) != 0 {
		t.Errorf("empty file read: %q %v", got, err)
	}
	info, _ := fs.Stat("/empty")
	if info.Size != 0 || len(info.Blocks) != 0 {
		t.Errorf("empty file info: %+v", info)
	}
}

func TestDataNodeFailureReadFallback(t *testing.T) {
	fs := newTestFS(t, 4, 64, 3)
	data := bytes.Repeat([]byte("failover"), 40)
	if err := fs.WriteFile("/ha", data, fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/ha")
	// Fail the first replica of every block; reads must fall back.
	firstReplica := fs.Topology().ByAddr(info.Blocks[0].Hosts[0])
	fs.SetNodeDown(firstReplica.ID, true)
	got, err := fs.ReadFile("/ha", firstReplica)
	if err != nil {
		t.Fatalf("read with one failed replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover read returned wrong data")
	}
	// Fail every replica: the read must error, not hang or corrupt.
	for _, h := range info.Blocks[0].Hosts {
		fs.SetNodeDown(fs.Topology().ByAddr(h).ID, true)
	}
	if _, err := fs.ReadFile("/ha", fs.Topology().Node(3)); err == nil {
		t.Error("read with all replicas failed should error")
	}
	// Recovery restores service.
	for _, h := range info.Blocks[0].Hosts {
		fs.SetNodeDown(fs.Topology().ByAddr(h).ID, false)
	}
	if _, err := fs.ReadFile("/ha", fs.Topology().Node(3)); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}

func TestWritesAvoidFailedNodes(t *testing.T) {
	fs := newTestFS(t, 4, 64, 3)
	fs.SetNodeDown(1, true)
	if err := fs.WriteFile("/w", bytes.Repeat([]byte("x"), 200), fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/w")
	downAddr := fs.Topology().Node(1).Addr
	for _, b := range info.Blocks {
		for _, h := range b.Hosts {
			if h == downAddr {
				t.Fatalf("block placed on failed node %s", downAddr)
			}
		}
	}
	if len(info.Blocks[0].Hosts) != 3 {
		t.Errorf("replication = %d, want 3 (three nodes remain)", len(info.Blocks[0].Hosts))
	}
}

func TestWriteFailsWhenAllNodesDown(t *testing.T) {
	fs := newTestFS(t, 2, 64, 1)
	fs.SetNodeDown(0, true)
	fs.SetNodeDown(1, true)
	if err := fs.WriteFile("/doomed", []byte("x"), fs.Topology().Node(0)); err == nil {
		t.Error("write with no live datanodes accepted")
	}
	if fs.Exists("/doomed") {
		t.Error("failed write left a file")
	}
}

func TestWriterOnFailedNodePlacesRemotely(t *testing.T) {
	fs := newTestFS(t, 3, 64, 2)
	fs.SetNodeDown(0, true)
	// The writer's own node is down; its blocks land elsewhere.
	if err := fs.WriteFile("/rw", []byte("remote write"), fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/rw")
	for _, h := range info.Blocks[0].Hosts {
		if h == fs.Topology().Node(0).Addr {
			t.Error("block placed on the writer's failed node")
		}
	}
}
