// Package dfs implements a distributed file system simulator in the image of
// HDFS: a namenode namespace mapping paths to block lists, datanodes storing
// replicated blocks, and block-location metadata that InputFormats use for
// locality-aware split placement.
//
// It stands in for the HDFS deployment in the paper's testbed: the naive
// SQL→ML pipeline materialises intermediate results here (paying replicated
// write and re-read costs through the cluster cost model), while the paper's
// parallel streaming transfer avoids the file system entirely.
package dfs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"sqlml/internal/cluster"
)

// DefaultBlockSize is the block size used when Config.BlockSize is zero.
// It is deliberately small (HDFS uses 128 MB) because the simulated datasets
// are scaled down by the same factor as the paper's tables.
const DefaultBlockSize = 4 << 20

// DefaultReplication mirrors the paper's HDFS replication factor of 3.
const DefaultReplication = 3

// Config controls file system behaviour.
type Config struct {
	BlockSize   int64
	Replication int
	// Cost, when non-nil, charges simulated disk and network time for every
	// block written and read.
	Cost *cluster.CostModel
}

// BlockLocation describes one block of a file for split planning.
type BlockLocation struct {
	Offset int64
	Length int64
	// Hosts are the simulated addresses of the nodes holding replicas.
	Hosts []string
}

// FileInfo is namenode metadata for one file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks []BlockLocation
}

type blockInfo struct {
	id       int64
	size     int64
	replicas []int // node IDs
}

type fileMeta struct {
	size   int64
	blocks []blockInfo
}

type dataNode struct {
	mu     sync.RWMutex
	blocks map[int64][]byte
	down   bool
}

// FaultHook scripts datanode-level faults into the file system: it is
// consulted once per candidate replica before a block read is served and
// once per pipeline replica before a block store. A non-nil return fails
// that one replica access — readers fall back to the next replica, writers
// drop the replica from the block's pipeline (HDFS pipeline recovery,
// shrunk replication). Hooks run outside the filesystem's locks.
// internal/fault.DFSFaults is the scripted implementation.
type FaultHook interface {
	BlockRead(nodeID int, blockID int64) error
	BlockWrite(nodeID int, blockID int64) error
}

// FileSystem is the simulated DFS. All methods are safe for concurrent use.
type FileSystem struct {
	topo *cluster.Topology
	cfg  Config

	mu        sync.RWMutex
	files     map[string]*fileMeta
	open      map[string]bool // paths with an in-flight writer
	nextBlock int64
	hook      FaultHook

	datanodes []*dataNode
	place     int // round-robin cursor for replica placement
}

// New creates a file system spanning all nodes of the topology.
func New(topo *cluster.Topology, cfg Config) *FileSystem {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.Replication > topo.Len() {
		cfg.Replication = topo.Len()
	}
	fs := &FileSystem{
		topo:      topo,
		cfg:       cfg,
		files:     make(map[string]*fileMeta),
		open:      make(map[string]bool),
		datanodes: make([]*dataNode, topo.Len()),
	}
	for i := range fs.datanodes {
		fs.datanodes[i] = &dataNode{blocks: make(map[int64][]byte)}
	}
	return fs
}

// Topology returns the cluster the file system runs on.
func (fs *FileSystem) Topology() *cluster.Topology { return fs.topo }

// SetNodeDown marks a datanode as failed (or recovered). Reads of blocks
// with a replica on a failed node transparently fall back to the surviving
// replicas; writes avoid failed nodes. Block state is retained, so a
// recovered node serves its replicas again — the availability behaviour
// 3-way replication exists to provide.
func (fs *FileSystem) SetNodeDown(nodeID int, down bool) {
	dn := fs.datanodes[nodeID]
	dn.mu.Lock()
	dn.down = down
	dn.mu.Unlock()
}

// SetFaultHook installs (or with nil removes) the datanode fault hook.
func (fs *FileSystem) SetFaultHook(h FaultHook) {
	fs.mu.Lock()
	fs.hook = h
	fs.mu.Unlock()
}

func (fs *FileSystem) faultHook() FaultHook {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.hook
}

// NodeDown reports whether a datanode is currently failed.
func (fs *FileSystem) NodeDown(nodeID int) bool {
	dn := fs.datanodes[nodeID]
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return dn.down
}

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

func cleanPath(p string) (string, error) {
	p = strings.TrimSpace(p)
	if p == "" || !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("dfs: path must be absolute, got %q", p)
	}
	if strings.Contains(p, "//") || strings.HasSuffix(p, "/") {
		return "", fmt.Errorf("dfs: malformed path %q", p)
	}
	return p, nil
}

// Exists reports whether path names a committed file.
func (fs *FileSystem) Exists(path string) bool {
	p, err := cleanPath(path)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[p]
	return ok
}

// Stat returns metadata for a committed file.
func (fs *FileSystem) Stat(path string) (FileInfo, error) {
	p, err := cleanPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[p]
	if !ok {
		return FileInfo{}, fmt.Errorf("dfs: no such file %q", p)
	}
	return fs.infoLocked(p, meta), nil
}

func (fs *FileSystem) infoLocked(p string, meta *fileMeta) FileInfo {
	info := FileInfo{Path: p, Size: meta.size}
	var off int64
	for _, b := range meta.blocks {
		hosts := make([]string, len(b.replicas))
		for i, id := range b.replicas {
			hosts[i] = fs.topo.Node(id).Addr
		}
		info.Blocks = append(info.Blocks, BlockLocation{Offset: off, Length: b.size, Hosts: hosts})
		off += b.size
	}
	return info
}

// List returns the committed paths under the given directory prefix, sorted.
// A prefix of "/" lists everything.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) || p == strings.TrimSuffix(prefix, "/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and frees its blocks. Deleting a missing file is an
// error; deleting a file being written is rejected.
func (fs *FileSystem) Delete(path string) error {
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.open[p] {
		return fmt.Errorf("dfs: %q is being written", p)
	}
	meta, ok := fs.files[p]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", p)
	}
	for _, b := range meta.blocks {
		for _, id := range b.replicas {
			dn := fs.datanodes[id]
			dn.mu.Lock()
			delete(dn.blocks, b.id)
			dn.mu.Unlock()
		}
	}
	delete(fs.files, p)
	return nil
}

// Rename moves a committed file to a new path atomically.
func (fs *FileSystem) Rename(from, to string) error {
	f, err := cleanPath(from)
	if err != nil {
		return err
	}
	t, err := cleanPath(to)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[f]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", f)
	}
	if _, exists := fs.files[t]; exists {
		return fmt.Errorf("dfs: destination %q exists", t)
	}
	if fs.open[f] || fs.open[t] {
		return fmt.Errorf("dfs: rename involving in-flight writer")
	}
	delete(fs.files, f)
	fs.files[t] = meta
	return nil
}

// chooseReplicas picks replica nodes for a new block: the writer's node
// first (HDFS's local-write rule), then round-robin over the other nodes.
func (fs *FileSystem) chooseReplicas(writer *cluster.Node) ([]int, error) {
	n := fs.topo.Len()
	up := func(id int) bool { return !fs.NodeDown(id) }
	reps := make([]int, 0, fs.cfg.Replication)
	if writer != nil && up(writer.ID) {
		reps = append(reps, writer.ID)
	}
	for tried := 0; len(reps) < fs.cfg.Replication && tried < n; tried++ {
		fs.place = (fs.place + 1) % n
		cand := fs.place
		if !up(cand) {
			continue
		}
		dup := false
		for _, r := range reps {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, cand)
		}
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("dfs: no live datanodes for block placement")
	}
	return reps, nil
}

// Writer streams data into a new file. It is not safe for concurrent use.
type Writer struct {
	fs     *FileSystem
	path   string
	node   *cluster.Node
	buf    []byte
	blocks []blockInfo
	size   int64
	closed bool
}

// Create begins writing a new file. writerNode is the node issuing the
// writes (its replica gets the block locally). The file becomes visible only
// on Close; Abort discards it.
func (fs *FileSystem) Create(path string, writerNode *cluster.Node) (*Writer, error) {
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		return nil, fmt.Errorf("dfs: file %q exists", p)
	}
	if fs.open[p] {
		return nil, fmt.Errorf("dfs: file %q is being written", p)
	}
	fs.open[p] = true
	return &Writer{fs: fs, path: p, node: writerNode}, nil
}

// Write buffers data, sealing full blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write on closed writer for %q", w.path)
	}
	w.buf = append(w.buf, p...)
	bs := int(w.fs.cfg.BlockSize)
	for len(w.buf) >= bs {
		if err := w.seal(w.buf[:bs]); err != nil {
			return 0, err
		}
		w.buf = append(w.buf[:0], w.buf[bs:]...)
	}
	return len(p), nil
}

// seal stores one block on its replicas, charging disk and network costs.
func (w *Writer) seal(data []byte) error {
	fs := w.fs
	fs.mu.Lock()
	id := fs.nextBlock
	fs.nextBlock++
	replicas, rerr := fs.chooseReplicas(w.node)
	fs.mu.Unlock()
	if rerr != nil {
		return rerr
	}

	hook := fs.faultHook()
	stored := make([]byte, len(data))
	copy(stored, data)
	kept := make([]int, 0, len(replicas))
	var lastErr error
	for i, nodeID := range replicas {
		if hook != nil {
			if err := hook.BlockWrite(nodeID, id); err != nil {
				// Pipeline recovery: drop the failed replica and continue
				// with the survivors (HDFS shrinks the write pipeline the
				// same way). Only a block no replica accepted fails the
				// write.
				lastErr = err
				continue
			}
		}
		dn := fs.datanodes[nodeID]
		dn.mu.Lock()
		dn.blocks[id] = stored
		dn.mu.Unlock()
		target := fs.topo.Node(nodeID)
		if i > 0 || w.node == nil || w.node.ID != nodeID {
			// Replica traverses the (simulated) write pipeline network.
			from := w.node
			if from == nil {
				from = fs.topo.Node(replicas[0])
			}
			fs.cfg.Cost.ChargeNet(from, target, len(data))
		}
		fs.cfg.Cost.ChargeDiskWrite(target, len(data))
		kept = append(kept, nodeID)
	}
	if len(kept) == 0 {
		return fmt.Errorf("dfs: block %d: every pipeline replica failed: %w", id, lastErr)
	}
	w.blocks = append(w.blocks, blockInfo{id: id, size: int64(len(data)), replicas: kept})
	w.size += int64(len(data))
	return nil
}

// Close seals the trailing partial block and commits the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.seal(w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	fs := w.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.open, w.path)
	if _, ok := fs.files[w.path]; ok {
		return fmt.Errorf("dfs: file %q appeared during write", w.path)
	}
	fs.files[w.path] = &fileMeta{size: w.size, blocks: w.blocks}
	return nil
}

// Abort discards the partially written file and its sealed blocks.
func (w *Writer) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	fs := w.fs
	fs.mu.Lock()
	delete(fs.open, w.path)
	fs.mu.Unlock()
	for _, b := range w.blocks {
		for _, id := range b.replicas {
			dn := fs.datanodes[id]
			dn.mu.Lock()
			delete(dn.blocks, b.id)
			dn.mu.Unlock()
		}
	}
	w.blocks = nil
}

// Reader reads a byte range of a committed file.
type Reader struct {
	fs     *FileSystem
	node   *cluster.Node
	blocks []blockInfo
	// remaining byte range relative to the start of the file
	pos int64
	end int64
	// current block cache
	cur      []byte
	curStart int64
}

// Open returns a reader over the whole file. readerNode is the node doing
// the reading: local replicas are preferred and remote reads are charged
// network time.
func (fs *FileSystem) Open(path string, readerNode *cluster.Node) (*Reader, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	return fs.OpenRange(path, 0, info.Size, readerNode)
}

// OpenRange returns a reader over [offset, offset+length) of the file.
func (fs *FileSystem) OpenRange(path string, offset, length int64, readerNode *cluster.Node) (*Reader, error) {
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	meta, ok := fs.files[p]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", p)
	}
	if offset < 0 || length < 0 || offset+length > meta.size {
		return nil, fmt.Errorf("dfs: range [%d,%d) outside file of %d bytes", offset, offset+length, meta.size)
	}
	return &Reader{fs: fs, node: readerNode, blocks: meta.blocks, pos: offset, end: offset + length}, nil
}

// fetchBlock loads the block covering file offset pos, charging costs.
func (r *Reader) fetchBlock() error {
	var start int64
	for _, b := range r.blocks {
		if r.pos < start+b.size {
			return r.fetchReplica(b, start)
		}
		start += b.size
	}
	return io.EOF
}

// fetchReplica serves block b from the first healthy candidate replica:
// the reader's local one when it holds a copy, then the others in
// placement order. A candidate is skipped — and the next one tried — when
// its node is down, its copy is missing, or the fault hook fails the
// access; this per-candidate fallback is the availability behaviour
// replication exists to provide, and it makes a node failing between two
// block fetches of one reader invisible to the consumer.
func (r *Reader) fetchReplica(b blockInfo, start int64) error {
	hook := r.fs.faultHook()
	candidates := make([]int, 0, len(b.replicas))
	if r.node != nil {
		for _, id := range b.replicas {
			if id == r.node.ID {
				candidates = append(candidates, id)
			}
		}
	}
	for _, id := range b.replicas {
		if r.node == nil || id != r.node.ID {
			candidates = append(candidates, id)
		}
	}
	var lastErr error
	for _, id := range candidates {
		if r.fs.NodeDown(id) {
			lastErr = fmt.Errorf("node %d is down", id)
			continue
		}
		if hook != nil {
			if err := hook.BlockRead(id, b.id); err != nil {
				lastErr = err
				continue
			}
		}
		dn := r.fs.datanodes[id]
		dn.mu.RLock()
		data, ok := dn.blocks[b.id]
		dn.mu.RUnlock()
		if !ok {
			lastErr = fmt.Errorf("copy missing on node %d", id)
			continue
		}
		src := r.fs.topo.Node(id)
		r.fs.cfg.Cost.ChargeDiskRead(src, len(data))
		if r.node != nil && id != r.node.ID {
			r.fs.cfg.Cost.ChargeNet(src, r.node, len(data))
		}
		r.cur = data
		r.curStart = start
		return nil
	}
	return fmt.Errorf("dfs: block %d: no readable replica among %d: %w", b.id, len(b.replicas), lastErr)
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= r.end {
		return 0, io.EOF
	}
	if r.cur == nil || r.pos < r.curStart || r.pos >= r.curStart+int64(len(r.cur)) {
		if err := r.fetchBlock(); err != nil {
			return 0, err
		}
	}
	off := r.pos - r.curStart
	avail := int64(len(r.cur)) - off
	if rem := r.end - r.pos; avail > rem {
		avail = rem
	}
	n := copy(p, r.cur[off:off+avail])
	r.pos += int64(n)
	return n, nil
}

// Close releases the reader. It exists to satisfy io.ReadCloser; the
// simulated DFS holds no per-reader resources.
func (r *Reader) Close() error { return nil }

// WriteFile writes data as a new file in one call.
func (fs *FileSystem) WriteFile(path string, data []byte, node *cluster.Node) error {
	w, err := fs.Create(path, node)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// ReadFile reads the whole file in one call.
func (fs *FileSystem) ReadFile(path string, node *cluster.Node) (_ []byte, err error) {
	r, err := fs.Open(path, node)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return io.ReadAll(r)
}

// TotalUsed returns the number of stored block bytes across all datanodes
// (replicas counted), for tests and capacity reporting.
func (fs *FileSystem) TotalUsed() int64 {
	var total int64
	for _, dn := range fs.datanodes {
		dn.mu.RLock()
		for _, b := range dn.blocks {
			total += int64(len(b))
		}
		dn.mu.RUnlock()
	}
	return total
}
