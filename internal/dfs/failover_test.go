// Failure-injection coverage for the DFS: replica fallback under node
// failure (including mid-read and under concurrent readers, race-clean)
// and scripted datanode faults through the FaultHook seam. This file is an
// external test package because internal/fault imports hadoopfmt, which
// imports dfs.
package dfs_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/fault"
)

func failoverFS(t *testing.T, nodes, replication int, blockSize int64) (*dfs.FileSystem, *cluster.Topology) {
	t.Helper()
	topo := cluster.NewTopology(nodes)
	cost := &cluster.CostModel{DiskReadBps: 1e9, DiskWriteBps: 1e9, NetBps: 1e9, TimeScale: 0}
	return dfs.New(topo, dfs.Config{BlockSize: blockSize, Replication: replication, Cost: cost}), topo
}

func patternData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return data
}

// TestConcurrentReadersSurviveNodeFailure: readers running while a
// datanode fails (and later recovers) never observe an error or corrupt
// bytes — every fetch transparently falls back to a surviving replica.
// Meant to run under -race: the failure toggles concurrently with reads.
func TestConcurrentReadersSurviveNodeFailure(t *testing.T) {
	fs, topo := failoverFS(t, 5, 3, 128)
	want := patternData(128 * 6) // several blocks
	if err := fs.WriteFile("/f/conc", want, topo.Node(1)); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const rounds = 30
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := topo.Node(g % 5)
			for i := 0; i < rounds; i++ {
				got, err := fs.ReadFile("/f/conc", node)
				if err != nil {
					errCh <- fmt.Errorf("reader %d round %d: %w", g, i, err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("reader %d round %d: corrupt read", g, i)
					return
				}
			}
		}(g)
	}
	// Fail node 1 (the writer's local replica holder) mid-flight, then
	// recover it; readers must never notice.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(2 * time.Millisecond)
		fs.SetNodeDown(1, true)
		time.Sleep(5 * time.Millisecond)
		fs.SetNodeDown(1, false)
	}()
	wg.Wait()
	<-done
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestMidReadNodeFailureFallsBack: a node failing between two block
// fetches of one open reader is invisible — the remaining blocks come
// from surviving replicas and the bytes are identical.
func TestMidReadNodeFailureFallsBack(t *testing.T) {
	fs, topo := failoverFS(t, 4, 2, 64)
	want := patternData(64 * 4)
	if err := fs.WriteFile("/f/midread", want, topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/f/midread", topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := r.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	// Consume the first block (served from node 0, the local replica),
	// then fail node 0 before the rest is fetched.
	head := make([]byte, 64)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	fs.SetNodeDown(0, true)
	defer fs.SetNodeDown(0, false)
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read after mid-read node failure: %v", err)
	}
	got := append(head, rest...)
	if !bytes.Equal(got, want) {
		t.Error("bytes differ after mid-read failover")
	}
}

// TestInjectedReadFaultFallsBackPerReplica: a scripted read fault on one
// datanode (node up, access failing — a sick disk, not a dead machine)
// sends the reader to the next replica without surfacing an error.
func TestInjectedReadFaultFallsBackPerReplica(t *testing.T) {
	fs, topo := failoverFS(t, 4, 2, 64)
	want := patternData(64 * 3)
	if err := fs.WriteFile("/f/sick", want, topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	faults := fault.NewDFSFaults(fault.DFSConfig{Node: 0}) // FailReads 0 = forever
	fs.SetFaultHook(faults)
	defer fs.SetFaultHook(nil)
	got, err := fs.ReadFile("/f/sick", topo.Node(0))
	if err != nil {
		t.Fatalf("read with sick replica: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("bytes differ when falling back from a sick replica")
	}
	if failedReads, _ := faults.Stats(); failedReads == 0 {
		t.Error("fault hook never fired; the fallback path went untested")
	}
}

// TestInjectedWriteFaultShrinksPipeline: a replica store failing during
// the write pipeline drops that replica (shrunk replication) instead of
// failing the file; the committed file reads back intact and its block
// metadata excludes the failed node.
func TestInjectedWriteFaultShrinksPipeline(t *testing.T) {
	fs, topo := failoverFS(t, 4, 2, 64)
	faults := fault.NewDFSFaults(fault.DFSConfig{Node: 1, FailWrites: 100})
	fs.SetFaultHook(faults)
	defer fs.SetFaultHook(nil)
	want := patternData(64 * 3)
	if err := fs.WriteFile("/f/shrunk", want, topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f/shrunk", topo.Node(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("bytes differ after pipeline shrink")
	}
	info, err := fs.Stat("/f/shrunk")
	if err != nil {
		t.Fatal(err)
	}
	sickAddr := topo.Node(1).Addr
	for _, b := range info.Blocks {
		for _, h := range b.Hosts {
			if h == sickAddr {
				t.Errorf("block at offset %d lists the failed pipeline node %s", b.Offset, h)
			}
		}
	}
	if _, failedWrites := faults.Stats(); failedWrites == 0 {
		t.Error("write fault never fired")
	}
}

// TestAllPipelineReplicasFailingFailsWrite: when every replica store is
// scripted to fail, the write errors instead of committing an unreadable
// file.
func TestAllPipelineReplicasFailingFailsWrite(t *testing.T) {
	fs, topo := failoverFS(t, 1, 1, 64)
	faults := fault.NewDFSFaults(fault.DFSConfig{Node: 0, FailWrites: 100})
	fs.SetFaultHook(faults)
	defer fs.SetFaultHook(nil)
	err := fs.WriteFile("/f/doomed", patternData(64), topo.Node(0))
	if err == nil {
		t.Fatal("write committed despite every pipeline replica failing")
	}
	if fs.Exists("/f/doomed") {
		t.Error("failed write left a committed file behind")
	}
}
