package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"sqlml/internal/cache"
	"sqlml/internal/jaql"
	"sqlml/internal/mapred"
	"sqlml/internal/ml"
	"sqlml/internal/rewriter"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

// Approach selects one of Figure 3's three ways of connecting SQL to ML.
type Approach int

// The three approaches of Figure 3.
const (
	Naive Approach = iota
	InSQL
	InSQLStream
)

// String renders the approach as in the paper's figure.
func (a Approach) String() string {
	switch a {
	case Naive:
		return "naive"
	case InSQL:
		return "insql"
	default:
		return "insql+stream"
	}
}

// CacheTier selects how much of the §5 cache a run may use (Figure 4's
// three bars).
type CacheTier int

// Cache tiers, weakest first.
const (
	CacheOff CacheTier = iota
	CacheRecodeMaps
	CacheFullResult
)

// String renders the tier as in Figure 4's legend.
func (c CacheTier) String() string {
	switch c {
	case CacheRecodeMaps:
		return "cache recode maps"
	case CacheFullResult:
		return "cache transformed result"
	default:
		return "no cache"
	}
}

// PipelineConfig describes one integrated SQL→ML run.
type PipelineConfig struct {
	// Query is the preparation SQL (the paper's §1 example query).
	Query string
	// Spec is the In-SQL transformation to apply to the query result.
	Spec transform.Spec
	// LabelCol / LabelTransform configure the ML ingestion.
	LabelCol       string
	LabelTransform func(float64) float64
	// K is the streaming split factor (m = n·k ML workers).
	K int
	// Tier caps cache usage; CachePopulate stores this run's outcome.
	Tier          CacheTier
	CachePopulate bool
	// CacheOnDFS materialises the cached transformed result as an external
	// DFS table (the paper's "actual HDFS table" variant) instead of an
	// in-memory materialized view; cache-served runs then pay a DFS scan.
	CacheOnDFS bool
	// OnStage, when set, is invoked at the end of each pipeline stage with
	// the stage's name — the hook the benchmark harness uses to attribute
	// simulated cost to Figure 3's bars.
	OnStage func(stage string)
	// OnInput, when set, is invoked with the streaming InputFormat before
	// ML ingestion starts — the seam chaos tests use to arm reader-side
	// fault injection (Inject, ReconnectBudget). insql+stream only.
	OnInput func(f *stream.InputFormat)
}

// StageTimings is the per-stage breakdown Figure 3 reports.
type StageTimings struct {
	// Prep is the SQL query time (naive only — elsewhere it pipelines).
	Prep time.Duration
	// Transform is the transformation time (naive: the Jaql jobs; insql:
	// query+transform pipelined together, reported here).
	Transform time.Duration
	// Input is the ML-side ingestion time ("input for ML"): reading the
	// DFS, or zero-extra for streaming where it overlaps the transfer.
	Input time.Duration
	// Total is end-to-end until the in-memory dataset is constructed.
	Total time.Duration
}

// RunResult is one pipeline execution.
type RunResult struct {
	Approach Approach
	Timings  StageTimings
	Dataset  *ml.Dataset
	// CacheHit reports what the cache answered (CacheOff runs say Miss).
	CacheHit cache.HitKind
	// Rows is the transformed row count handed to ML.
	Rows int
}

var pipelineSeq atomic.Int64

// stage fires the config's stage hook, if any.
func stage(cfg PipelineConfig, name string) {
	if cfg.OnStage != nil {
		cfg.OnStage(name)
	}
}

// Run executes the configured pipeline with the given approach.
func Run(env *Env, a Approach, cfg PipelineConfig) (*RunResult, error) {
	switch a {
	case Naive:
		return runNaive(env, cfg)
	case InSQL:
		return runInSQL(env, cfg)
	case InSQLStream:
		return runInSQLStream(env, cfg)
	default:
		return nil, fmt.Errorf("core: unknown approach %d", a)
	}
}

// mlEnv assembles the ML ingestion options for a transformed schema.
func mlOptions(env *Env, cfg PipelineConfig) ml.IngestOptions {
	return ml.IngestOptions{
		LabelCol:       cfg.LabelCol,
		LabelTransform: cfg.LabelTransform,
		NumWorkers:     len(env.WorkerIDs),
		Nodes:          env.WorkerNodes(),
		Cost:           env.Cost,
	}
}

// runNaive is Figure 3's first bar: materialise the SQL result on the DFS,
// transform it with the external Jaql tool (two MapReduce jobs, another
// DFS round trip), then have ML read the DFS.
func runNaive(env *Env, cfg PipelineConfig) (*RunResult, error) {
	seq := pipelineSeq.Add(1)
	stagingDir := fmt.Sprintf("/staging/naive-%d", seq)
	prepDir := stagingDir + "/prep"
	outDir := stagingDir + "/transformed"

	start := time.Now()
	// Even the naive approach pipelines query → DFS writer inside the
	// engine; its penalty is the DFS round trips between systems, not
	// materialization inside one.
	res, err := env.Engine.QueryStream(cfg.Query)
	if err != nil {
		return nil, err
	}
	if err := env.Engine.ExportToDFS(res, env.FS, prepDir); err != nil {
		return nil, err
	}
	prepDone := time.Now()
	stage(cfg, "prep")

	jres, err := jaql.Transform(&jaql.Env{
		Topo:            env.Topo,
		FS:              env.FS,
		Cost:            env.Cost,
		TaskNodes:       env.WorkerIDs,
		JobStartupDelay: env.MRStartupDelay,
		MaxTaskAttempts: env.MaxTaskAttempts,
		TaskFault:       env.TaskFault,
	}, prepDir, res.Schema, cfg.Spec, outDir)
	if err != nil {
		return nil, err
	}
	trsfmDone := time.Now()
	stage(cfg, "trsfm")

	d, err := ml.Ingest(mapred.DirFormat(env.FS, jres.OutputPath, jres.Schema), mlOptions(env, cfg))
	if err != nil {
		return nil, err
	}
	end := time.Now()
	stage(cfg, "input")
	return &RunResult{
		Approach: Naive,
		Dataset:  d,
		Rows:     d.NumRows(),
		CacheHit: cache.Miss,
		Timings: StageTimings{
			Prep:      prepDone.Sub(start),
			Transform: trsfmDone.Sub(prepDone),
			Input:     end.Sub(trsfmDone),
			Total:     end.Sub(start),
		},
	}, nil
}

// prepareTransformed runs the In-SQL half shared by insql and insql+stream:
// query + transformation inside the engine (consulting the cache per the
// tier). The returned Output.Result is STREAMING whenever the plan allows
// (no scaling breaker, no cache population): the query/transform pipeline
// runs only as the caller consumes it, so the consumer — DFS export or the
// streaming transfer — overlaps with transformation (Figure 2). Call
// cleanup after the result has been consumed.
func prepareTransformed(env *Env, cfg PipelineConfig) (out *transform.Output, hit cache.HitKind, cleanup func(), err error) {
	seq := pipelineSeq.Add(1)
	cleanups := []func(){}
	cleanup = func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}

	var info *rewriter.QueryInfo
	if cfg.Tier > CacheOff || cfg.CachePopulate {
		info, err = rewriter.AnalyzeSQL(env.Engine, cfg.Query)
		if err != nil {
			// Unanalyzable queries simply skip the cache.
			info = nil
			err = nil
		}
	}

	hit = cache.Miss
	if info != nil && cfg.Tier > CacheOff {
		maxKind := cache.RecodeMapHit
		if cfg.Tier == CacheFullResult {
			maxKind = cache.FullResultHit
		}
		h := env.Cache.LookupAtMost(info, cfg.Spec, maxKind)
		switch h.Kind {
		case cache.FullResultHit:
			// §5.1: answer entirely from the cached transformed table,
			// streamed straight to the consumer.
			res, qerr := env.Engine.QueryStream(h.RewrittenSQL)
			if qerr != nil {
				cleanup()
				return nil, cache.Miss, nil, qerr
			}
			return &transform.Output{Result: res, Map: h.Entry.Map}, cache.FullResultHit, cleanup, nil
		case cache.RecodeMapHit:
			// §5.2: run the query but skip recode phase 1. With the map
			// already known, the transformation scans the prep result just
			// once, so the query streams into recoding — nothing
			// materializes between prep and transform.
			hit = cache.RecodeMapHit
			prep, qerr := env.Engine.QueryStream(cfg.Query)
			if qerr != nil {
				cleanup()
				return nil, cache.Miss, nil, qerr
			}
			prepTable := fmt.Sprintf("__pipe_prep_%d", seq)
			if rerr := env.Engine.RegisterResultStream(prepTable, prep); rerr != nil {
				cleanup()
				return nil, cache.Miss, nil, rerr
			}
			cleanups = append(cleanups, func() { env.Engine.DropTable(prepTable) })
			out, terr := transform.Apply(env.Engine, prepTable, cfg.Spec, h.Entry.Map)
			if terr != nil {
				cleanup()
				return nil, cache.Miss, nil, terr
			}
			cleanups = append(cleanups, func() { env.Engine.DropTable(out.MapTable) })
			return out, cache.RecodeMapHit, cleanup, nil
		}
	}

	// Fresh run: query, then transform, all inside the engine. Building a
	// fresh recode map needs two scans of the prep result (map build, then
	// recode), so the prep query is the one mandatory materialization.
	prep, err := env.Engine.Query(cfg.Query)
	if err != nil {
		cleanup()
		return nil, cache.Miss, nil, err
	}
	prepTable := fmt.Sprintf("__pipe_prep_%d", seq)
	if err := env.Engine.RegisterResult(prepTable, prep); err != nil {
		cleanup()
		return nil, cache.Miss, nil, err
	}
	cleanups = append(cleanups, func() { env.Engine.DropTable(prepTable) })
	out, err = transform.Apply(env.Engine, prepTable, cfg.Spec, nil)
	if err != nil {
		cleanup()
		return nil, cache.Miss, nil, err
	}
	cleanups = append(cleanups, func() { env.Engine.DropTable(out.MapTable) })
	if cfg.CachePopulate && info != nil {
		// Populating the cache forces materialization: the entry must
		// survive this run, and the caller still consumes out.Result after
		// us (a materialized result replays its partitions on every read).
		if merr := out.Result.Materialize(); merr != nil {
			cleanup()
			return nil, cache.Miss, nil, merr
		}
		name := fmt.Sprintf("__cached_%d", seq)
		var entry *cache.Entry
		var cerr error
		if cfg.CacheOnDFS {
			entry, cerr = cache.MaterializeOnDFS(env.Engine, env.FS, "/cache/"+name, name, info, cfg.Spec, out)
		} else {
			entry, cerr = cache.Materialize(env.Engine, name, info, cfg.Spec, out)
		}
		if cerr == nil {
			if aerr := env.Cache.Add(entry); aerr != nil {
				env.Engine.DropTable(entry.TransformedTable)
			}
		}
	}
	return out, hit, cleanup, nil
}

// runInSQL is Figure 3's middle bar: query and transformation pipeline
// inside the SQL engine, the transformed result is materialised on the DFS
// once, and ML reads it from there.
func runInSQL(env *Env, cfg PipelineConfig) (*RunResult, error) {
	seq := pipelineSeq.Add(1)
	outDir := fmt.Sprintf("/staging/insql-%d/transformed", seq)

	start := time.Now()
	out, hit, cleanup, err := prepareTransformed(env, cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	// The export pulls the (usually streaming) transform pipeline directly:
	// transformed batches go to the DFS writers as they are produced.
	if err := env.Engine.ExportToDFS(out.Result, env.FS, outDir); err != nil {
		return nil, err
	}
	trsfmDone := time.Now()
	stage(cfg, "prep+trsfm")

	d, err := ml.Ingest(mapred.DirFormat(env.FS, outDir, out.Result.Schema), mlOptions(env, cfg))
	if err != nil {
		return nil, err
	}
	end := time.Now()
	stage(cfg, "input")
	return &RunResult{
		Approach: InSQL,
		Dataset:  d,
		Rows:     d.NumRows(),
		CacheHit: hit,
		Timings: StageTimings{
			Transform: trsfmDone.Sub(start), // prep+trsfm pipelined
			Input:     end.Sub(trsfmDone),
			Total:     end.Sub(start),
		},
	}, nil
}

// runInSQLStream is Figure 3's third bar: the transformed result is pushed
// to the ML workers through the parallel streaming transfer; nothing
// touches the DFS and all stages pipeline into one.
func runInSQLStream(env *Env, cfg PipelineConfig) (*RunResult, error) {
	seq := pipelineSeq.Add(1)
	job := fmt.Sprintf("pipe-%d", seq)
	k := cfg.K
	if k <= 0 {
		k = 1
	}

	start := time.Now()
	out, hit, cleanup, err := prepareTransformed(env, cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Hand the live transform pipeline to the sender UDF through a streaming
	// temp table: query → transform → transfer is one fused pipeline, the
	// paper's Figure 2 overlap. (A materialized result registers normally.)
	table := fmt.Sprintf("__pipe_send_%d", seq)
	if err := env.Engine.RegisterResultStream(table, out.Result); err != nil {
		return nil, err
	}
	defer env.Engine.DropTable(table)

	// ML side: ingest from the stream, concurrently with the senders.
	type ingestResult struct {
		d   *ml.Dataset
		err error
	}
	done := make(chan ingestResult, 1)
	go func() {
		f := &stream.InputFormat{
			CoordAddr:         env.CoordAddr,
			Job:               job,
			ReceiveBufferSize: env.SenderConfig.BufferSize,
		}
		if cfg.OnInput != nil {
			cfg.OnInput(f)
		}
		d, err := ml.Ingest(f, mlOptions(env, cfg))
		done <- ingestResult{d, err}
	}()

	// SQL side: the stream sender UDF over the transformed table.
	sendSQL := fmt.Sprintf("SELECT * FROM TABLE(stream_send(%s, '%s', '%s', 'svm', %d))",
		table, env.CoordAddr, job, k)
	if _, err := env.Engine.Query(sendSQL); err != nil {
		return nil, err
	}
	res := <-done
	if res.err != nil {
		return nil, res.err
	}
	end := time.Now()
	stage(cfg, "prep+trsfm+input")
	return &RunResult{
		Approach: InSQLStream,
		Dataset:  res.d,
		Rows:     res.d.NumRows(),
		CacheHit: hit,
		Timings: StageTimings{
			// Everything pipelines: the paper reports one prep+trsfm+input bar.
			Total: end.Sub(start),
		},
	}, nil
}
