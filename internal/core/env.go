// Package core glues the substrates into the paper's integrated analytics
// pipelines: the three ways of connecting the big SQL system to the big ML
// system that Figure 3 compares —
//
//	naive        SQL → materialise on DFS → Jaql/MapReduce transform →
//	             materialise on DFS → ML reads DFS
//	insql        SQL + In-SQL UDF transform (pipelined) → materialise on
//	             DFS → ML reads DFS
//	insql+stream SQL + In-SQL transform + parallel streaming transfer,
//	             never touching the DFS
//
// plus the §5 caching tiers Figure 4 measures on top of insql+stream.
package core

import (
	"fmt"
	"time"

	"sqlml/internal/cache"
	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/sqlengine"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

// EnvConfig sizes the simulated deployment.
type EnvConfig struct {
	// Nodes is the cluster size; node 0 is the head node (the paper's
	// testbed: 1 head + 4 worker servers).
	Nodes int
	// DFS settings.
	BlockSize   int64
	Replication int
	// Cost is the simulated I/O cost model; nil disables cost charging.
	Cost *cluster.CostModel
	// SenderConfig tunes the streaming transfer (buffer sizes etc.).
	SenderConfig stream.SenderConfig
	// MRStartupDelay is the simulated per-MapReduce-job startup overhead
	// the naive pipeline's external transformation tool pays.
	MRStartupDelay time.Duration
	// MaxTaskAttempts bounds per-task re-execution in the naive pipeline's
	// MapReduce jobs (0 means the mapred default).
	MaxTaskAttempts int
	// TaskFault, when set, is consulted by every MapReduce task in the
	// naive pipeline — the fault-injection seam for scripted task crashes.
	TaskFault func(phase string, task, attempt, record int) error
}

// DefaultEnvConfig mirrors the paper's deployment shape.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{Nodes: 5, Replication: 3, SenderConfig: stream.DefaultSenderConfig()}
}

// Env is a fully wired deployment: cluster, DFS, SQL engine (with the
// transformation and streaming UDFs registered), MapReduce task nodes, a
// running stream coordinator, and a §5 cache store.
type Env struct {
	Topo      *cluster.Topology
	Cost      *cluster.CostModel
	FS        *dfs.FileSystem
	Engine    *sqlengine.Engine
	Coord     *stream.Coordinator
	CoordAddr string
	Cache     *cache.Store
	// WorkerIDs are the node ids hosting SQL workers / MapReduce task slots.
	WorkerIDs []int
	// SenderConfig is the streaming sender configuration in use.
	SenderConfig stream.SenderConfig
	// MRStartupDelay is the simulated per-MapReduce-job startup overhead.
	MRStartupDelay time.Duration
	// MaxTaskAttempts / TaskFault are forwarded to the naive pipeline's
	// MapReduce jobs.
	MaxTaskAttempts int
	TaskFault       func(phase string, task, attempt, record int) error
}

// NewEnv builds and starts a deployment. Call Close when done.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes (head + worker)")
	}
	topo := cluster.NewTopology(cfg.Nodes)
	workerIDs := make([]int, 0, cfg.Nodes-1)
	for i := 1; i < cfg.Nodes; i++ {
		workerIDs = append(workerIDs, i)
	}
	fs := dfs.New(topo, dfs.Config{BlockSize: cfg.BlockSize, Replication: cfg.Replication, Cost: cfg.Cost})
	eng, err := sqlengine.New(topo, cfg.Cost, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: workerIDs})
	if err != nil {
		return nil, err
	}
	if err := transform.RegisterUDFs(eng); err != nil {
		return nil, err
	}
	if err := transform.RegisterScalingUDFs(eng); err != nil {
		return nil, err
	}
	if err := stream.RegisterSenderUDF(eng, cfg.SenderConfig); err != nil {
		return nil, err
	}
	env := &Env{
		Topo:            topo,
		Cost:            cfg.Cost,
		FS:              fs,
		Engine:          eng,
		Cache:           cache.NewStore(),
		WorkerIDs:       workerIDs,
		SenderConfig:    cfg.SenderConfig,
		MRStartupDelay:  cfg.MRStartupDelay,
		MaxTaskAttempts: cfg.MaxTaskAttempts,
		TaskFault:       cfg.TaskFault,
	}
	env.Coord = stream.NewCoordinator(nil)
	addr, err := env.Coord.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	env.CoordAddr = addr
	return env, nil
}

// Close stops the deployment's services.
func (e *Env) Close() {
	if e.Coord != nil {
		e.Coord.Stop()
	}
}

// WorkerNodes returns the worker nodes (ML workers are placed on the same
// servers, as in the paper's testbed).
func (e *Env) WorkerNodes() []*cluster.Node {
	out := make([]*cluster.Node, len(e.WorkerIDs))
	for i, id := range e.WorkerIDs {
		out[i] = e.Topo.Node(id)
	}
	return out
}
