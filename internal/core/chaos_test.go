// Chaos soak for the integrated Figure-3 pipelines: every schedule runs a
// seeded, deterministic fault script against a fresh deployment and the
// resulting dataset must be byte-identical to the fault-free baseline —
// exactly-once delivery under partial failure. The seed is part of every
// subtest name, so a failure names the schedule that reproduces it.
package core

import (
	"fmt"
	"sync"
	"testing"

	"sqlml/internal/fault"
	"sqlml/internal/row"
	"sqlml/internal/stream"
)

const (
	chaosUsers = 100
	chaosCarts = 6
)

// chaosBaseline runs the pipeline fault-free and returns its fingerprint.
func chaosBaseline(t *testing.T, a Approach) []string {
	t.Helper()
	cfg := DefaultEnvConfig()
	cfg.BlockSize = 16 << 10
	env := startEnv(t, cfg, chaosUsers, chaosCarts)
	res, err := Run(env, a, paperConfig())
	if err != nil {
		t.Fatalf("fault-free %s baseline: %v", a, err)
	}
	if res.Rows == 0 {
		t.Fatalf("fault-free %s baseline produced no rows", a)
	}
	return datasetFingerprint(res.Dataset)
}

// chaosGear is the fault machinery one schedule arms; verify hooks inspect
// it after the run.
type chaosGear struct {
	dialer *fault.Dialer
	dfs    *fault.DFSFaults
	tasks  *fault.TaskFaults
	// readerCrashes counts injected abrupt ML-reader deaths.
	mu            sync.Mutex
	readerCrashes int
}

// TestChaosSoakExactlyOnce is the capstone: the Figure-3 pipeline under
// distinct seeded fault schedules — connection resets early, late, and in
// bulk, stalls, short writes, an ML reader crash, datanode read failures
// mid-read, task crashes, and combinations — always delivers the same
// bytes as the fault-free run. The single-reset schedule additionally
// asserts the recovery stayed local: the reset is absorbed by a per-target
// reconnect, never a §6 group restart.
func TestChaosSoakExactlyOnce(t *testing.T) {
	baseline := map[Approach][]string{
		InSQLStream: chaosBaseline(t, InSQLStream),
		Naive:       chaosBaseline(t, Naive),
	}

	schedules := []struct {
		name     string
		seed     int64
		approach Approach
		// arm scripts the schedule's faults into the deployment config and
		// pipeline config before the run.
		arm func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig)
		// verify asserts the schedule exercised what it meant to.
		verify func(t *testing.T, g *chaosGear, env *Env)
	}{
		{
			name: "reset-early", seed: 101, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(101, fault.DialerConfig{
					MaxFaults: 1, Ops: []fault.Op{fault.Reset}, MaxByte: 256,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 1 {
					t.Errorf("armed %d resets, want 1", g.dialer.Injected())
				}
				// The capstone invariant: one connection reset recovers via
				// the resume handshake, not a group restart.
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("single reset escalated to %d group restarts; must recover per-target", n)
				}
			},
		},
		{
			name: "reset-late", seed: 202, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(202, fault.DialerConfig{
					MaxFaults: 1, Ops: []fault.Op{fault.Reset}, MaxByte: 1 << 10,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 1 {
					t.Errorf("armed %d resets, want 1", g.dialer.Injected())
				}
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("late reset escalated to %d group restarts", n)
				}
			},
		},
		{
			name: "reset-multi", seed: 303, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(303, fault.DialerConfig{
					MaxFaults: 3, Ops: []fault.Op{fault.Reset}, MaxByte: 1 << 10,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 3 {
					t.Errorf("armed %d resets, want 3", g.dialer.Injected())
				}
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("independent resets escalated to %d group restarts", n)
				}
			},
		},
		{
			name: "stall", seed: 404, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(404, fault.DialerConfig{
					MaxFaults: 2, Ops: []fault.Op{fault.Stall},
					MaxByte: 512, StallFor: 40e6, // 40ms
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				// A stall is not a failure: nothing may restart or reconnect.
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("stall caused %d group restarts; stalls must only delay", n)
				}
			},
		},
		{
			name: "short-write", seed: 505, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(505, fault.DialerConfig{
					MaxFaults: 2, Ops: []fault.Op{fault.ShortWrite}, MaxByte: 1 << 10,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 2 {
					t.Errorf("armed %d short writes, want 2", g.dialer.Injected())
				}
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("truncated frames escalated to %d group restarts", n)
				}
			},
		},
		{
			name: "reset+short-write", seed: 606, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dialer = fault.NewDialer(606, fault.DialerConfig{
					MaxFaults: 4, Ops: []fault.Op{fault.Reset, fault.ShortWrite},
					MaxByte: 2 << 10,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 4 {
					t.Errorf("armed %d faults, want 4", g.dialer.Injected())
				}
			},
		},
		{
			name: "reset-v3-frames", seed: 1111, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				// Pin the columnar protocol explicitly and shrink the block
				// budget so the stream spans many small v3 frames: the resets
				// then land mid-stream and recovery must resume from the
				// frame-aligned spool — the epoch/offset handshake locating
				// the first unconsumed row inside a columnar frame sequence.
				envCfg.SenderConfig.Proto = row.WireProtoCol
				envCfg.SenderConfig.BlockRows = 8
				g.dialer = fault.NewDialer(1111, fault.DialerConfig{
					MaxFaults: 2, Ops: []fault.Op{fault.Reset}, MaxByte: 768,
				})
				envCfg.SenderConfig.Dial = g.dialer.Dial
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.dialer.Injected() != 2 {
					t.Errorf("armed %d resets, want 2", g.dialer.Injected())
				}
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("v3-frame resets escalated to %d group restarts; must resume per-target", n)
				}
			},
		},
		{
			name: "reader-crash", seed: 707, approach: InSQLStream,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				// Crash the first reader to reach its 4th row, exactly once —
				// robust to how the senders spread blocks across splits.
				var once sync.Once
				pipe.OnInput = func(f *stream.InputFormat) {
					f.Inject = func(split, rowsRead int) bool {
						if rowsRead != 3 {
							return false
						}
						fired := false
						once.Do(func() {
							fired = true
							g.mu.Lock()
							g.readerCrashes++
							g.mu.Unlock()
						})
						return fired
					}
				}
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				g.mu.Lock()
				crashes := g.readerCrashes
				g.mu.Unlock()
				if crashes != 1 {
					t.Errorf("injected %d reader crashes, want 1", crashes)
				}
				// Task re-execution plus the sender's get_target reconnect
				// absorbs the dead reader without a group restart.
				if n := env.Coord.TotalRestarts(); n != 0 {
					t.Errorf("reader crash escalated to %d group restarts", n)
				}
			},
		},
		{
			name: "datanode-midread", seed: 808, approach: Naive,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.dfs = fault.NewDFSFaults(fault.DFSConfig{
					Node: 1, AfterReads: 4, FailReads: 6,
				})
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if failedReads, _ := g.dfs.Stats(); failedReads == 0 {
					t.Error("datanode read fault never fired; replica fallback went untested")
				}
			},
		},
		{
			name: "task-crash", seed: 909, approach: Naive,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.tasks = fault.NewTaskFaults(
					fault.TaskConfig{Phase: "map", Task: 0, AtRecord: 1, Attempts: 1},
				)
				envCfg.TaskFault = g.tasks.Hook
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.tasks.Crashes() == 0 {
					t.Error("task crash never fired; re-execution went untested")
				}
			},
		},
		{
			name: "task-crash+datanode-write", seed: 1010, approach: Naive,
			arm: func(g *chaosGear, envCfg *EnvConfig, pipe *PipelineConfig) {
				g.tasks = fault.NewTaskFaults(
					fault.TaskConfig{Phase: "map", Task: 0, AtRecord: 3, Attempts: 2},
				)
				envCfg.TaskFault = g.tasks.Hook
				g.dfs = fault.NewDFSFaults(fault.DFSConfig{Node: 2, FailWrites: 2})
			},
			verify: func(t *testing.T, g *chaosGear, env *Env) {
				if g.tasks.Crashes() == 0 {
					t.Error("task crash never fired")
				}
				if _, failedWrites := g.dfs.Stats(); failedWrites == 0 {
					t.Error("datanode write fault never fired; pipeline shrink went untested")
				}
			},
		},
	}

	for _, sc := range schedules {
		sc := sc
		t.Run(fmt.Sprintf("%s/seed=%d", sc.name, sc.seed), func(t *testing.T) {
			g := &chaosGear{}
			envCfg := DefaultEnvConfig()
			envCfg.BlockSize = 16 << 10
			pipe := paperConfig()
			sc.arm(g, &envCfg, &pipe)
			env := startEnv(t, envCfg, chaosUsers, chaosCarts)
			if g.dfs != nil {
				env.FS.SetFaultHook(g.dfs)
			}

			res, err := Run(env, sc.approach, pipe)
			if err != nil {
				t.Fatalf("seed %d: pipeline failed under schedule %q: %v", sc.seed, sc.name, err)
			}
			want := baseline[sc.approach]
			got := datasetFingerprint(res.Dataset)
			if len(got) != len(want) {
				t.Fatalf("seed %d: %d rows, fault-free run had %d — delivery is not exactly-once",
					sc.seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: row %d differs from fault-free run:\n got %s\nwant %s",
						sc.seed, i, got[i], want[i])
				}
			}
			sc.verify(t, g, env)
		})
	}
}
