package core

import (
	"fmt"
	"sort"
	"testing"

	"sqlml/internal/cache"
	"sqlml/internal/cluster"
	"sqlml/internal/datagen"
	"sqlml/internal/ml"
	"sqlml/internal/transform"
)

// paperQuery is the §1 example preparation query.
const paperQuery = `
	SELECT U.age, U.gender, C.amount, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA'`

func paperSpec() transform.Spec {
	return transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
}

func paperConfig() PipelineConfig {
	return PipelineConfig{
		Query:    paperQuery,
		Spec:     paperSpec(),
		LabelCol: "abandoned",
		// Recoded labels are {1: No, 2: Yes}; SVM wants {0, 1}.
		LabelTransform: func(v float64) float64 { return v - 1 },
		K:              2,
	}
}

// newTestEnv wires a deployment and loads a small paper workload, with the
// input tables stored as external text tables on the DFS (as in §7).
func newTestEnv(t testing.TB, users, cartsPer int, cost *cluster.CostModel) *Env {
	t.Helper()
	cfg := DefaultEnvConfig()
	cfg.Cost = cost
	cfg.BlockSize = 16 << 10
	return startEnv(t, cfg, users, cartsPer)
}

// startEnv builds a deployment from an explicit config (the chaos suite
// arms fault injection through it) and loads the paper workload.
func startEnv(t testing.TB, cfg EnvConfig, users, cartsPer int) *Env {
	t.Helper()
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)

	d, err := datagen.Generate(datagen.Config{Users: users, CartsPerUser: cartsPer, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(d, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		t.Fatal(err)
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		t.Fatal(err)
	}
	return env
}

// datasetFingerprint summarises a dataset independent of partitioning.
func datasetFingerprint(d *ml.Dataset) []string {
	var out []string
	for _, p := range d.All() {
		out = append(out, fmt.Sprintf("%.4f|%v", p.Label, p.Features))
	}
	sort.Strings(out)
	return out
}

func TestAllThreeApproachesProduceIdenticalDatasets(t *testing.T) {
	env := newTestEnv(t, 60, 8, nil)
	cfg := paperConfig()

	results := make(map[Approach]*RunResult)
	for _, a := range []Approach{Naive, InSQL, InSQLStream} {
		res, err := Run(env, a, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Rows == 0 {
			t.Fatalf("%s produced no rows", a)
		}
		results[a] = res
	}
	base := datasetFingerprint(results[Naive].Dataset)
	for _, a := range []Approach{InSQL, InSQLStream} {
		fp := datasetFingerprint(results[a].Dataset)
		if len(fp) != len(base) {
			t.Fatalf("%s: %d rows vs naive %d", a, len(fp), len(base))
		}
		for i := range fp {
			if fp[i] != base[i] {
				t.Fatalf("%s differs from naive at %d:\n%s\n%s", a, i, fp[i], base[i])
			}
		}
	}
	// Dummy coding: gender expands to 2 features → age, g1, g2, amount = 4.
	if results[Naive].Dataset.NumFeatures != 4 {
		t.Errorf("features = %d, want 4", results[Naive].Dataset.NumFeatures)
	}
}

func TestPipelineOutputTrainsSVM(t *testing.T) {
	env := newTestEnv(t, 150, 12, nil)
	res, err := Run(env, InSQLStream, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	sgd := ml.DefaultSGD()
	sgd.Iterations = 120
	model, err := ml.TrainSVMWithSGD(res.Dataset, sgd)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(res.Dataset, model.Predict)
	// The datagen label is logistic in the features; SVM should comfortably
	// beat a majority-class baseline.
	if acc < 0.55 {
		t.Errorf("SVM accuracy = %.3f on the generated workload", acc)
	}
}

func TestFigure3CostOrdering(t *testing.T) {
	// With the simulated I/O cost model, the per-run *simulated* time must
	// order naive > insql > insql+stream — the shape of Figure 3.
	cost := &cluster.CostModel{
		DiskReadBps:  200e6,
		DiskWriteBps: 150e6,
		NetBps:       1.25e9,
		ProcBps:      400e6,
		TimeScale:    0, // accumulate but do not sleep
	}
	env := newTestEnv(t, 80, 10, cost)
	cfg := paperConfig()

	simTime := make(map[Approach]int64)
	for _, a := range []Approach{Naive, InSQL, InSQLStream} {
		cost.ResetStats()
		if _, err := Run(env, a, cfg); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		simTime[a] = int64(cost.Stats().SimulatedTime)
		t.Logf("%-13s simulated %v (disk r/w %d/%d net %d)",
			a, cost.Stats().SimulatedTime, cost.Stats().DiskReadBytes,
			cost.Stats().DiskWriteBytes, cost.Stats().NetBytes)
	}
	if !(simTime[Naive] > simTime[InSQL]) {
		t.Errorf("naive (%d) should cost more than insql (%d)", simTime[Naive], simTime[InSQL])
	}
	if !(simTime[InSQL] > simTime[InSQLStream]) {
		t.Errorf("insql (%d) should cost more than insql+stream (%d)", simTime[InSQL], simTime[InSQLStream])
	}
}

func TestFigure4CacheTiers(t *testing.T) {
	cost := &cluster.CostModel{
		DiskReadBps:  200e6,
		DiskWriteBps: 150e6,
		NetBps:       1.25e9,
		ProcBps:      400e6,
		TimeScale:    0,
	}
	env := newTestEnv(t, 80, 10, cost)
	cfg := paperConfig()
	cfg.CachePopulate = true

	// Prime the cache with one full run.
	if _, err := Run(env, InSQLStream, cfg); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Len() != 1 {
		t.Fatalf("cache entries = %d", env.Cache.Len())
	}

	cfg.CachePopulate = false
	sim := make(map[CacheTier]int64)
	for _, tier := range []CacheTier{CacheOff, CacheRecodeMaps, CacheFullResult} {
		cfg.Tier = tier
		cost.ResetStats()
		res, err := Run(env, InSQLStream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		sim[tier] = int64(cost.Stats().SimulatedTime)
		wantHit := map[CacheTier]cache.HitKind{
			CacheOff:        cache.Miss,
			CacheRecodeMaps: cache.RecodeMapHit,
			CacheFullResult: cache.FullResultHit,
		}[tier]
		if res.CacheHit != wantHit {
			t.Errorf("%s: hit = %s, want %s", tier, res.CacheHit, wantHit)
		}
		t.Logf("%-24s simulated %v", tier, cost.Stats().SimulatedTime)
	}
	if !(sim[CacheOff] > sim[CacheRecodeMaps]) {
		t.Errorf("no-cache (%d) should cost more than recode-map cache (%d)", sim[CacheOff], sim[CacheRecodeMaps])
	}
	if !(sim[CacheRecodeMaps] > sim[CacheFullResult]) {
		t.Errorf("recode-map cache (%d) should cost more than full cache (%d)", sim[CacheRecodeMaps], sim[CacheFullResult])
	}
}

func TestCacheServesSubsetQuery(t *testing.T) {
	env := newTestEnv(t, 60, 8, nil)
	cfg := paperConfig()
	cfg.CachePopulate = true
	if _, err := Run(env, InSQLStream, cfg); err != nil {
		t.Fatal(err)
	}

	// §5.1's follow-up query: subset projection + extra predicate.
	sub := cfg
	sub.CachePopulate = false
	sub.Tier = CacheFullResult
	sub.Query = `
		SELECT U.age, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA' AND U.gender = 'F'`
	sub.Spec = transform.Spec{RecodeCols: []string{"abandoned"}}
	res, err := Run(env, InSQLStream, sub)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit != cache.FullResultHit {
		t.Fatalf("hit = %s", res.CacheHit)
	}
	if res.Dataset.NumFeatures != 2 {
		t.Errorf("features = %d, want 2 (age, amount)", res.Dataset.NumFeatures)
	}
	// Fresh run of the same query agrees with the cache-served one.
	fresh := sub
	fresh.Tier = CacheOff
	fres, err := Run(env, InSQLStream, fresh)
	if err != nil {
		t.Fatal(err)
	}
	a, b := datasetFingerprint(res.Dataset), datasetFingerprint(fres.Dataset)
	if len(a) != len(b) {
		t.Fatalf("cache-served rows %d vs fresh %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cache-served dataset differs from fresh at %d", i)
		}
	}
}

func TestStreamSplitFactorControlsMLParallelism(t *testing.T) {
	env := newTestEnv(t, 40, 5, nil)
	cfg := paperConfig()
	cfg.K = 3
	res, err := Run(env, InSQLStream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Dataset.Parts), 4*3; got != want {
		t.Errorf("ML partitions = %d, want %d (n=4 SQL workers x k=3)", got, want)
	}
}

func TestRunRejectsUnknownApproach(t *testing.T) {
	env := newTestEnv(t, 10, 2, nil)
	if _, err := Run(env, Approach(99), paperConfig()); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestCacheOnDFSVariant(t *testing.T) {
	cost := &cluster.CostModel{
		DiskReadBps:  200e6,
		DiskWriteBps: 150e6,
		NetBps:       1.25e9,
		ProcBps:      400e6,
		TimeScale:    0,
	}
	env := newTestEnv(t, 60, 8, cost)
	cfg := paperConfig()
	cfg.CachePopulate = true
	cfg.CacheOnDFS = true
	first, err := Run(env, InSQLStream, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.CachePopulate = false
	cfg.Tier = CacheFullResult
	cost.ResetStats()
	res, err := Run(env, InSQLStream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit != cache.FullResultHit {
		t.Fatalf("hit = %s", res.CacheHit)
	}
	dfsServed := cost.Stats()
	if dfsServed.DiskReadBytes == 0 {
		t.Error("DFS-backed cache hit should pay a DFS scan")
	}
	// Results agree with the original run.
	a, b := datasetFingerprint(first.Dataset), datasetFingerprint(res.Dataset)
	if len(a) != len(b) {
		t.Fatalf("rows differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DFS-cache-served dataset differs from fresh run")
		}
	}
	// And the cached part files really exist on the DFS.
	if len(env.FS.List("/cache")) == 0 {
		t.Error("no cached part files on the DFS")
	}
}

func TestPipelineWithScaling(t *testing.T) {
	env := newTestEnv(t, 60, 8, nil)
	cfg := paperConfig()
	cfg.Spec.ScaleCols = []string{"age", "amount"}
	cfg.Spec.Scaling = transform.ScalingStandard
	res, err := Run(env, InSQLStream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled features: age and amount are now ~N(0,1); dummy bits are not.
	var sumAge, sumAgeSq float64
	ageIdx := 0 // age is the first feature
	for _, p := range res.Dataset.All() {
		sumAge += p.Features[ageIdx]
		sumAgeSq += p.Features[ageIdx] * p.Features[ageIdx]
	}
	n := float64(res.Dataset.NumRows())
	if mean := sumAge / n; mean < -1e-6 || mean > 1e-6 {
		t.Errorf("scaled age mean = %v", mean)
	}
	if variance := sumAgeSq / n; variance < 0.99 || variance > 1.01 {
		t.Errorf("scaled age variance = %v", variance)
	}
	// Scaled pipelines cache-match only scaled pipelines.
	cfg.CachePopulate = true
	if _, err := Run(env, InSQLStream, cfg); err != nil {
		t.Fatal(err)
	}
	unscaled := paperConfig()
	unscaled.Tier = CacheFullResult
	res2, err := Run(env, InSQLStream, unscaled)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit == cache.FullResultHit {
		t.Error("unscaled pipeline must not reuse a scaled cache entry")
	}
	scaledAgain := cfg
	scaledAgain.CachePopulate = false
	scaledAgain.Tier = CacheFullResult
	res3, err := Run(env, InSQLStream, scaledAgain)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHit != cache.FullResultHit {
		t.Errorf("identical scaled pipeline should hit the cache, got %s", res3.CacheHit)
	}
}

func TestScaledPipelineIdenticalAcrossApproaches(t *testing.T) {
	env := newTestEnv(t, 50, 6, nil)
	cfg := paperConfig()
	cfg.Spec.ScaleCols = []string{"age", "amount"}
	cfg.Spec.Scaling = transform.ScalingMinMax

	results := make(map[Approach]*RunResult)
	for _, a := range []Approach{Naive, InSQL, InSQLStream} {
		res, err := Run(env, a, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		results[a] = res
	}
	base := datasetFingerprint(results[Naive].Dataset)
	for _, a := range []Approach{InSQL, InSQLStream} {
		fp := datasetFingerprint(results[a].Dataset)
		if len(fp) != len(base) {
			t.Fatalf("%s: %d rows vs naive %d", a, len(fp), len(base))
		}
		for i := range fp {
			if fp[i] != base[i] {
				t.Fatalf("%s differs from naive at row %d:\n%s\n%s", a, i, fp[i], base[i])
			}
		}
	}
	// Min-max scaled features land in [0,1].
	for _, p := range results[Naive].Dataset.All() {
		if p.Features[0] < 0 || p.Features[0] > 1 {
			t.Fatalf("unscaled age feature %v", p.Features[0])
		}
	}
}
