// Package wiretrust enforces the decoder discipline that FuzzBlockFrame
// probes dynamically: an allocation must never be sized by a value decoded
// from the wire unless that value was bounds-checked first. The colblock
// and block decoders in internal/row read lengths, row counts, and
// dictionary sizes via uvarints and fixed-width frame-header words; every
// one of those is attacker-controlled on a hostile stream, and a make()
// sized by an unchecked one turns a 10-byte frame into a multi-gigabyte
// allocation — the exact over-allocation FuzzBlockFrame asserts cannot
// happen.
//
// The pass uses the framework's dataflow layer: values returned by
// encoding/binary decode calls (Uvarint, Varint, ReadUvarint, ReadVarint,
// and the ByteOrder Uint16/Uint32/Uint64 readers) are tagged as
// wire-derived, the taint follows assignments, arithmetic, and
// conversions, and a comparison anywhere on the path (against
// MaxFrameSize, len(payload), a dictionary cap, …) marks the value
// checked. Flagged sinks:
//
//   - make(T, n) or make(T, l, c) where a size is wire-derived and
//     unchecked — including the append(buf, make([]byte, n)...) read
//     idiom;
//   - Grow(n) (bytes.Buffer, slices.Grow) with an unchecked wire size.
//
// A value flowing straight from the decode call into the sink
// (make([]byte, binary.Uvarint(q)) with no intervening check) is always
// flagged. Slicing an existing buffer (payload[:n]) allocates nothing and
// is not a sink: the slice bounds check catches the lie at run time.
package wiretrust

import (
	"go/ast"
	"go/types"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the wiretrust pass.
var Analyzer = &framework.Analyzer{
	Name: "wiretrust",
	Doc:  "flags allocations sized by wire-decoded values that were never bounds-checked",
	Run:  run,
}

// kindWire tags values decoded from wire bytes.
const kindWire = "wire"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	fl := framework.NewFlow(pass.TypesInfo, framework.FlowConfig{
		Call: func(call *ast.CallExpr) (string, bool) {
			if isWireDecode(pass.TypesInfo, call) {
				return kindWire, true
			}
			return "", false
		},
	})
	fl.Walk(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(pass.TypesInfo, call, "make"):
			for _, size := range call.Args[1:] {
				checkSize(pass, fl, call, size)
			}
		case calleeName(call) == "Grow" && len(call.Args) >= 1:
			checkSize(pass, fl, call, call.Args[len(call.Args)-1])
		}
		return true
	})
}

// checkSize reports an allocation whose size is wire-derived and was
// never compared against a bound.
func checkSize(pass *framework.Pass, fl *framework.Flow, call *ast.CallExpr, size ast.Expr) {
	var wire *framework.Origin
	for _, o := range fl.Origins(size) {
		if o.Kind == kindWire {
			wire = &o
			break
		}
	}
	if wire == nil || fl.Guarded(size) {
		return
	}
	pass.Reportf(call.Pos(), "allocation sized by a wire-decoded value (line %d) with no preceding bound check; a hostile frame chooses this size — compare it against a limit (MaxFrameSize/MaxBlockSize/len of the remaining payload) first", pass.Fset.Position(wire.Pos).Line)
}

// isWireDecode reports whether call decodes an integer off wire bytes:
// encoding/binary's varint readers and ByteOrder fixed-width readers.
// Matching is by package name ("binary"), so the analyzertest stub works
// the same as the real encoding/binary.
func isWireDecode(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := framework.ObjOf(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "binary" {
		return false
	}
	switch fn.Name() {
	case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
		"Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := framework.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := framework.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
