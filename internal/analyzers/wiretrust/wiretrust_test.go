package wiretrust_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/wiretrust"
)

func TestWireTrust(t *testing.T) {
	analyzertest.Run(t, "../testdata", wiretrust.Analyzer, "wiretrust")
}
