// Package row is a fixture stub for the repo's pooled block buffers,
// matched by poolreturn by package name and function name.
package row

func NewBlockBuffer() []byte      { return nil }
func RecycleBlockBuffer(b []byte) {}
