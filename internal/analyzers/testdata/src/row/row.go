// Package row is a fixture stub for the repo's pooled block buffers and
// columnar batches, matched by the analyzers by package, type, and
// function name (poolreturn: NewBlockBuffer/RecycleBlockBuffer;
// vecsafety: ColBatch/Vector and GetColBatch/PutColBatch).
package row

func NewBlockBuffer() []byte      { return nil }
func RecycleBlockBuffer(b []byte) {}

// Type mirrors the engine's column type enum.
type Type int

// Value mirrors the engine's dynamic cell value.
type Value struct{}

// Vector mirrors the engine's typed column vector: exported storage
// slices plus the append- and dense-mode mutators vecsafety tracks.
type Vector struct {
	Ints   []int64
	Floats []float64
	Bools  []bool
}

func (v *Vector) Len() int                       { return 0 }
func (v *Vector) Reset(t Type)                   {}
func (v *Vector) ResetDense(t Type, n int)       {}
func (v *Vector) AppendInt(x int64)              {}
func (v *Vector) AppendFloat(x float64)          {}
func (v *Vector) AppendBool(x bool)              {}
func (v *Vector) AppendBytes(b []byte)           {}
func (v *Vector) AppendString(s string)          {}
func (v *Vector) AppendNull()                    {}
func (v *Vector) AppendValue(val Value)          {}
func (v *Vector) SetNull(i int)                  {}
func (v *Vector) Null(i int) bool                { return false }
func (v *Vector) NullWords() []uint64            { return nil }
func (v *Vector) Bytes(i int) []byte             { return nil }
func (v *Vector) StringAt(i int) string          { return "" }
func (v *Vector) ValueAt(i int) Value            { return Value{} }
func (v *Vector) StringSlab() ([]byte, []uint32) { return nil, nil }

// ColBatch mirrors the engine's column-major batch: Len() is the logical
// (selection-applied) length, FullLen() the physical one.
type ColBatch struct{}

func (b *ColBatch) Col(i int) *Vector  { return nil }
func (b *ColBatch) Len() int           { return 0 }
func (b *ColBatch) FullLen() int       { return 0 }
func (b *ColBatch) Sel() []int32       { return nil }
func (b *ColBatch) SetSel(sel []int32) {}
func (b *ColBatch) ClearSel()          {}
func (b *ColBatch) SelPos(si int) int  { return si }

// GetColBatch and PutColBatch mirror the engine's batch pool.
func GetColBatch(types []Type) *ColBatch { return &ColBatch{} }
func PutColBatch(b *ColBatch)            {}
