// Fixture for the errdiscard analyzer.
package errdiscard

import (
	"os"
	"time"
)

type closer struct{}

func (c *closer) Close() error { return nil }
func (c *closer) Flush() error { return nil }
func (c *closer) Sync() error  { return nil }

// conn mimics the net.Conn deadline family.
type conn struct{}

func (c *conn) SetDeadline(t time.Time) error      { return nil }
func (c *conn) SetReadDeadline(t time.Time) error  { return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }

// options has a same-named method outside the release signature: a setter
// taking no deadline and returning nothing must not be flagged.
type options struct{}

func (o *options) SetDeadline(t time.Time) {}

// Close without an error result must not be flagged (e.g. the engine's
// BatchIterator.Close).
type noError struct{}

func (n *noError) Close() {}

// Close with extra results is not the release signature.
type twoResults struct{}

func (t *twoResults) Close() (int, error) { return 0, nil }

func bad(c *closer, f *os.File, nc *conn) {
	c.Close()       // want `error returned by closer.Close is silently discarded`
	defer c.Flush() // want `error returned by closer.Flush is silently discarded`
	f.Sync()        // want `error returned by File.Sync is silently discarded`
	os.Remove("x")  // want `error returned by os.Remove is silently discarded`

	var zero time.Time
	nc.SetDeadline(zero)            // want `error returned by conn.SetDeadline is silently discarded`
	nc.SetReadDeadline(zero)        // want `error returned by conn.SetReadDeadline is silently discarded`
	nc.SetWriteDeadline(zero)       // want `error returned by conn.SetWriteDeadline is silently discarded`
	defer nc.SetWriteDeadline(zero) // want `error returned by conn.SetWriteDeadline is silently discarded`
}

func good(c *closer, n *noError, t2 *twoResults, f *os.File, nc *conn, o *options) error {
	_ = c.Close() // explicit discard is a visible acknowledgment
	n.Close()
	t2.Close()
	//lint:allow errdiscard teardown on this path is best-effort by design
	c.Close()
	if err := f.Close(); err != nil {
		return err
	}
	var zero time.Time
	_ = nc.SetDeadline(zero) // explicit discard accepted
	o.SetDeadline(zero)      // not the release signature (no error result)
	//lint:allow errdiscard clearing a deadline on the teardown path cannot fail usefully
	nc.SetReadDeadline(zero)
	if err := nc.SetWriteDeadline(zero); err != nil {
		return err
	}
	return c.Flush()
}
