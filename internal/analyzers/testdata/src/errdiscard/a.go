// Fixture for the errdiscard analyzer.
package errdiscard

import "os"

type closer struct{}

func (c *closer) Close() error { return nil }
func (c *closer) Flush() error { return nil }
func (c *closer) Sync() error  { return nil }

// Close without an error result must not be flagged (e.g. the engine's
// BatchIterator.Close).
type noError struct{}

func (n *noError) Close() {}

// Close with extra results is not the release signature.
type twoResults struct{}

func (t *twoResults) Close() (int, error) { return 0, nil }

func bad(c *closer, f *os.File) {
	c.Close()       // want `error returned by closer.Close is silently discarded`
	defer c.Flush() // want `error returned by closer.Flush is silently discarded`
	f.Sync()        // want `error returned by File.Sync is silently discarded`
	os.Remove("x")  // want `error returned by os.Remove is silently discarded`
}

func good(c *closer, n *noError, t2 *twoResults, f *os.File) error {
	_ = c.Close() // explicit discard is a visible acknowledgment
	n.Close()
	t2.Close()
	//lint:allow errdiscard teardown on this path is best-effort by design
	c.Close()
	if err := f.Close(); err != nil {
		return err
	}
	return c.Flush()
}
