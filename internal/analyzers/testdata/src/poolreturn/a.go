// Fixture for the poolreturn analyzer.
package poolreturn

import (
	"row"
	"sync"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func use(b *[]byte) {}
func send(b []byte) {}

// Bad: the error path returns without putting the buffer back.
func leakOnEarlyReturn(fail bool) bool {
	b := pool.Get().(*[]byte)
	if fail {
		return false // want `b acquired from sync.Pool.Get leaks here`
	}
	pool.Put(b)
	return true
}

// Bad: released twice — the pool would hand the same buffer to two owners.
func doublePut() {
	b := pool.Get().(*[]byte)
	pool.Put(b)
	pool.Put(b) // want `pooled buffer b returned to the pool twice`
}

// Bad: the block buffer leaks when the caller bails before recycling.
func blockLeak(fail bool) []byte {
	buf := row.NewBlockBuffer()
	buf = append(buf, 1)
	if fail {
		return nil // want `buf acquired from row.NewBlockBuffer leaks here`
	}
	return buf // returning transfers ownership to the caller
}

// Good: deferred Put covers every exit.
func deferPut(fail bool) bool {
	b := pool.Get().(*[]byte)
	defer pool.Put(b)
	if fail {
		return false
	}
	use(b)
	return true
}

// Good: every path recycles.
func recycleAll(fail bool) {
	buf := row.NewBlockBuffer()
	if fail {
		row.RecycleBlockBuffer(buf)
		return
	}
	buf = append(buf, 2)
	row.RecycleBlockBuffer(buf)
}

// Good: passing the buffer to a callee transfers ownership.
func escapeToCallee() {
	buf := row.NewBlockBuffer()
	send(buf)
}

// Suppressed: a deliberate drop with a recorded reason.
func allowedLeak(fail bool) []byte {
	buf := row.NewBlockBuffer()
	if fail {
		//lint:allow poolreturn deliberate drop: the GC reclaims it and the pool refills on demand
		return nil
	}
	return buf
}
