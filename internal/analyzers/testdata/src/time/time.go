// Package time is a fixture stub, matched by lockhygiene by package name.
package time

type Duration int64

func Sleep(d Duration) {}

// Time mirrors the deadline argument of the net.Conn setter family.
type Time struct{}

func Now() Time { return Time{} }
