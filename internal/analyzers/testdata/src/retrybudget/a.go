// Fixture for the retrybudget analyzer: reconnect loops must consume a
// named budget, and exponential backoff must be capped.
package retrybudget

import (
	"net"
	"time"
)

// dialForever retries a dial with no budget: spins until the peer comes
// back, which the chaos suite's unrecoverable-peer scenarios forbid.
func dialForever(addr string) *net.Conn {
	for { // want `unbounded reconnect loop`
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c
	}
}

// dialBudgeted counts attempts against a budget inside the loop: the
// identifier evidence the analyzer looks for.
func dialBudgeted(addr string, budget int) *net.Conn {
	for attempt := 0; ; attempt++ {
		if attempt >= budget {
			return nil
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c
	}
}

// serve is a server accept loop: it returns on error instead of retrying,
// so it may legitimately run forever.
func serve(ln *net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_ = c
	}
}

// drainThenReturn has a continue, but only inside a nested bounded loop;
// the outer accept loop still exits on error.
func drainThenReturn(ln *net.Listener, jobs []int) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		for _, j := range jobs {
			if j == 0 {
				continue
			}
			_, _ = c.Write(nil)
		}
	}
}

// uncappedBackoff doubles the delay with no ceiling: after enough
// failures the duration overflows and the backoff becomes a hot spin.
func uncappedBackoff(addr string) *net.Conn {
	delay := time.Duration(1)
	for attempt := 0; attempt < 8; attempt++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		time.Sleep(delay)
		delay *= 2 // want `backoff delay delay doubles every iteration with no cap`
	}
	return nil
}

// cappedBackoff clamps the doubled delay with a comparison.
func cappedBackoff(addr string, maxDelay time.Duration) *net.Conn {
	delay := time.Duration(1)
	for attempt := 0; attempt < 8; attempt++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		time.Sleep(delay)
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
	return nil
}

// clampBackoff caps through min(): equally acceptable evidence.
func clampBackoff(addr string) *net.Conn {
	delay := time.Duration(1)
	for attempt := 0; attempt < 4; attempt++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		time.Sleep(delay)
		delay *= 2
		delay = min(delay, time.Duration(1000))
	}
	return nil
}

// dialAllowed carries a reasoned suppression.
func dialAllowed(addr string) *net.Conn {
	//lint:allow retrybudget liveness probe; the caller cancels by closing the listener
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c
	}
}
