// Fixture for the maporder analyzer: map iteration order and wall-clock
// reads escaping into determinism-oracle-covered output. The package is
// named maporder, which the analyzer treats as oracle-covered, so the
// clock/rand rule is active here too.
package maporder

import (
	"rand"
	"sort"
	"time"
)

// emitUnsorted accumulates map values in iteration order: the classic
// nondeterministic-merge bug.
func emitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `value from range over map \(line 17\) appended to out`
	}
	return out
}

// emitSorted is the blessed collect-then-sort idiom: the append is
// allowed because out is sorted before it escapes.
func emitSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emitSortedSlice sorts with a comparator; still allowed.
func emitSortedSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scratchPerIteration appends to a slice declared inside the loop: no
// order escapes the iteration.
func scratchPerIteration(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// sendDerived leaks iteration order through a channel.
func sendDerived(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `value from range over map \(line 58\) sent on a channel`
	}
}

// indexedStore writes map-range values through a slice index: the slice
// carries the order just like an append would.
func indexedStore(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k // want `value from range over map \(line 67\) stored into a slice element`
		i++
	}
}

// derivedThroughLocals: taint follows assignments and string arithmetic.
func derivedThroughLocals(m map[string]string) []string {
	var out []string
	for k, v := range m {
		kv := k + "=" + v
		out = append(out, kv) // want `value from range over map \(line 76\) appended to out`
	}
	return out
}

// rangeOverSlice is ordered iteration; nothing to flag.
func rangeOverSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// intoMap keeps the values unordered; map-to-map flows are fine.
func intoMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// wallClock reads the clock inside an oracle package.
func wallClock() time.Time {
	return time.Now() // want `time.Now in a determinism-oracle package`
}

// globalRand draws from the process-global PRNG.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand call in a determinism-oracle package`
}

// seededRand draws from an explicitly seeded generator: deterministic,
// allowed. Constructing the generator (New/NewSource) is the fix.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// allowedUnsorted carries a reasoned suppression.
func allowedUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow maporder order is re-established by the caller's loser-tree merge
		out = append(out, k)
	}
	return out
}
