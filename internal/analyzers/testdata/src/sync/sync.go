// Package sync is a fixture stub. The analyzers match sync.Pool, the
// mutexes, and WaitGroup by package NAME precisely so fixtures can use
// this stub instead of compiled standard-library export data.
package sync

type Pool struct {
	New func() any
}

func (p *Pool) Get() any {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x any) {}

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }

type RWMutex struct{ locked bool }

func (m *RWMutex) Lock()    { m.locked = true }
func (m *RWMutex) Unlock()  { m.locked = false }
func (m *RWMutex) RLock()   { m.locked = true }
func (m *RWMutex) RUnlock() { m.locked = false }

type WaitGroup struct{ n int }

func (wg *WaitGroup) Add(delta int) { wg.n += delta }
func (wg *WaitGroup) Done()         { wg.n-- }
func (wg *WaitGroup) Wait()         {}
