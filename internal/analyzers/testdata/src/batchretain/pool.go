// Fixture for the pool-drain patterns of the morsel-driven executor:
// concurrent workers pulling one partition's batches under a mutex. The
// copy-out-before-release idiom (pipeCursor) must pass; publishing the
// batch by reference to a buffer that outlives the next Next must not.
package batchretain

import "sync"

type partCursor struct {
	mu   sync.Mutex
	it   *iter
	held []RowBatch
}

// Good: the pipeCursor shape — the batch's row headers are copied into
// the worker's own buffer while the partition lock pins the producer;
// nothing aliasing the batch survives the pull.
func (c *partCursor) goodPull(buf []Row) ([]Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok, _ := c.it.Next()
	if !ok {
		return nil, false
	}
	return append(buf[:0], b...), true
}

// Bad: parking the batch itself in shared state — the next worker's pull
// recycles the container this slice still points at.
func (c *partCursor) badPublish() {
	for {
		b, ok, _ := c.it.Next()
		if !ok {
			return
		}
		c.mu.Lock()
		c.held = append(c.held, b) // want `appended by reference`
		c.mu.Unlock()
	}
}
