// Fixture for the batchretain analyzer: every way a RowBatch can be
// retained past the next Next call, and every blessed way to copy one.
package batchretain

type Row []int

type RowBatch []Row

type iter struct{ n int }

func (it *iter) Next() (RowBatch, bool, error) { return nil, false, nil }
func (it *iter) Close()                        {}

type sink struct {
	last RowBatch
	rows []Row
}

// Bad: the batch outlives the loop through a struct field.
func (s *sink) retainField(it *iter) {
	for {
		b, ok, _ := it.Next()
		if !ok {
			return
		}
		s.last = b // want `stored in a struct field`
	}
}

// Bad: batch-of-batches accumulated by reference across Next calls.
func collectBatches(it *iter) []RowBatch {
	var all []RowBatch
	for {
		b, ok, _ := it.Next()
		if !ok {
			return all
		}
		all = append(all, b) // want `appended by reference`
	}
}

// Bad: a row sliced out of the batch, remembered across iterations.
func lastRow(it *iter) Row {
	var keep Row
	for {
		b, ok, _ := it.Next()
		if !ok {
			return keep
		}
		keep = b[0] // want `assigned to keep`
	}
}

// Bad: the receiver holds the batch while the producer recycles it.
func ship(it *iter, ch chan RowBatch) {
	for {
		b, ok, _ := it.Next()
		if !ok {
			return
		}
		ch <- b // want `sent on a channel`
	}
}

// Bad: the goroutine races the producer's next Next.
func spawn(it *iter, done chan struct{}) {
	b, _, _ := it.Next()
	go func() {
		_ = b // want `captured by a goroutine`
		done <- struct{}{}
	}()
}

// Good: the spread copies row headers out of the batch (drain idiom).
func drain(it *iter) []Row {
	var out []Row
	for {
		b, ok, _ := it.Next()
		if !ok {
			return out
		}
		out = append(out, b...)
	}
}

// Good: scratch output reset every iteration — lifetimes nest with the
// operator's own Next contract (the filterIter pattern).
type filter struct{ buf RowBatch }

func (f *filter) pull(it *iter) (RowBatch, bool) {
	for {
		b, ok, _ := it.Next()
		if !ok {
			return nil, false
		}
		out := f.buf[:0]
		for _, r := range b {
			if len(r) > 0 {
				out = append(out, r)
			}
		}
		f.buf = out
		if len(out) > 0 {
			return out, true
		}
	}
}

// Suppressed: a row-cursor parks the batch exactly for the window the
// contract grants; the directive must silence the diagnostic.
type cursor struct {
	cur RowBatch
	i   int
}

func (c *cursor) fill(it *iter) {
	b, ok, _ := it.Next()
	if !ok {
		return
	}
	//lint:allow batchretain cursor parks the batch only until its own Next exhausts it
	c.cur, c.i = b, 0
}
