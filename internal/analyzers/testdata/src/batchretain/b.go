// Columnar fixture: the ColBatch returned by NextCol (and every view its
// accessors hand out — vectors, selection, payload slabs) is recycled by
// the following NextCol, exactly like a RowBatch.
package batchretain

type Vector struct {
	Ints  []int64
	bytes []byte
	nulls []uint64
}

func (v *Vector) Bytes(i int) []byte             { return nil }
func (v *Vector) NullWords() []uint64            { return v.nulls }
func (v *Vector) StringSlab() ([]byte, []uint32) { return v.bytes, nil }
func (v *Vector) ValueAt(i int) int64            { return v.Ints[i] }

type ColBatch struct {
	cols []Vector
	sel  []int32
}

func (b *ColBatch) Col(i int) *Vector    { return &b.cols[i] }
func (b *ColBatch) Sel() []int32         { return b.sel }
func (b *ColBatch) Rows(dst []Row) []Row { return dst }

type colIter struct{ n int }

func (it *colIter) NextCol() (*ColBatch, bool, error) { return nil, false, nil }
func (it *colIter) Close()                            {}

type colSink struct {
	last    *ColBatch
	vec     *Vector
	batches []*ColBatch
}

// Bad: the whole batch parked in a struct field.
func (s *colSink) retainBatch(it *colIter) {
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return
		}
		s.last = b // want `stored in a struct field`
	}
}

// Bad: a vector view outlives the loop through a field — its header points
// into storage the next NextCol overwrites.
func (s *colSink) retainVector(it *colIter) {
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return
		}
		s.vec = b.Col(0) // want `stored in a struct field`
	}
}

// Bad: the selection vector remembered across iterations; producers refine
// it in place on every batch.
func lastSel(it *colIter) []int32 {
	var keep []int32
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return keep
		}
		keep = b.Sel() // want `assigned to keep`
	}
}

// Bad: batch pointers accumulated by reference across NextCol calls.
func collectColBatches(it *colIter) []*ColBatch {
	var all []*ColBatch
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return all
		}
		all = append(all, b) // want `appended by reference`
	}
}

// Bad: a string-payload slice sliced out of a vector slab, sent to a
// consumer that outlives the batch.
func shipBytes(it *colIter, ch chan []byte) {
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return
		}
		ch <- b.Col(1).Bytes(0) // want `sent on a channel`
	}
}

// Bad: the goroutine races the producer's next NextCol.
func spawnCol(it *colIter, done chan struct{}) {
	b, _, _ := it.NextCol()
	go func() {
		_ = b // want `captured by a goroutine`
		done <- struct{}{}
	}()
}

// Good: Rows copies owning rows out of the batch — ownership transfers,
// the alias chain breaks.
func drainCol(it *colIter) []Row {
	var out []Row
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return out
		}
		out = b.Rows(out)
	}
}

// Good: ValueAt copies the cell (strings included), so retaining the
// result is fine.
func sumFirst(it *colIter) int64 {
	var total int64
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return total
		}
		total = b.Col(0).ValueAt(0)
	}
}

// Good: views used strictly within the iteration — lifetimes nest inside
// the validity window the contract grants.
func countLive(it *colIter) int {
	n := 0
	for {
		b, ok, _ := it.NextCol()
		if !ok {
			return n
		}
		sel := b.Sel()
		n += len(sel)
	}
}
