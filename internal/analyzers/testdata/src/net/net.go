// Package net is a fixture stub, matched by the analyzers by package name.
package net

type Conn struct{}

func (c *Conn) Read(b []byte) (int, error)  { return 0, nil }
func (c *Conn) Write(b []byte) (int, error) { return len(b), nil }
func (c *Conn) Close() error                { return nil }

type Listener struct{}

func (l *Listener) Accept() (*Conn, error) { return &Conn{}, nil }
func (l *Listener) Close() error           { return nil }

func Dial(network, address string) (*Conn, error)                  { return &Conn{}, nil }
func DialTimeout(network, address string, ms int64) (*Conn, error) { return &Conn{}, nil }
func Listen(network, address string) (*Listener, error)            { return &Listener{}, nil }
