// Fixture for the wiretrust analyzer: allocations sized by wire-decoded
// values. Flagged cases allocate straight off a decoded length; compliant
// cases bound-check (or clamp) the value first.
package wiretrust

import "encoding/binary"

const maxFrame = 64 << 20

// frameBuf stands in for bytes.Buffer: wiretrust matches Grow by name.
type frameBuf struct{}

func (f *frameBuf) Grow(n int) {}

// decodeUnchecked allocates whatever the varint says.
func decodeUnchecked(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n) // want `allocation sized by a wire-decoded value \(line \d+\) with no preceding bound check`
}

// decodeChecked compares the length against the remaining payload first.
func decodeChecked(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	if n > uint64(len(b)) {
		return nil
	}
	return make([]byte, n)
}

// headerDirect feeds a fixed-width header word straight into make: no
// intervening variable, no chance to have checked it.
func headerDirect(b []byte) []byte {
	return make([]byte, binary.LittleEndian.Uint32(b)) // want `allocation sized by a wire-decoded value \(line \d+\) with no preceding bound check`
}

// arithmeticCarries: the taint survives conversion and multiplication.
func arithmeticCarries(b []byte) []int64 {
	rows := int(binary.LittleEndian.Uint32(b))
	total := rows * 8
	return make([]int64, total) // want `allocation sized by a wire-decoded value \(line \d+\) with no preceding bound check`
}

// cappedRows is the real decoder idiom: reject past the cap, then
// allocate.
func cappedRows(b []byte) []int64 {
	rows := int(binary.LittleEndian.Uint32(b))
	if rows > maxFrame {
		return nil
	}
	return make([]int64, rows)
}

// clampSanitizes: min() yields an untainted bound.
func clampSanitizes(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	m := min(int(n), len(b))
	return make([]byte, m)
}

// growUnchecked reserves capacity the peer chose.
func growUnchecked(f *frameBuf, b []byte) {
	n, _ := binary.Uvarint(b)
	f.Grow(int(n)) // want `allocation sized by a wire-decoded value \(line \d+\) with no preceding bound check`
}

// appendRead is the append(buf, make(...)...) read idiom; the make inside
// is still an unchecked allocation.
func appendRead(b, buf []byte) []byte {
	n := binary.LittleEndian.Uint64(b)
	return append(buf, make([]byte, n)...) // want `allocation sized by a wire-decoded value \(line \d+\) with no preceding bound check`
}

// appendReadChecked is the same idiom behind the frame-size gate.
func appendReadChecked(b, buf []byte) []byte {
	n := binary.LittleEndian.Uint64(b)
	if n > maxFrame {
		return nil
	}
	return append(buf, make([]byte, n)...)
}

// constantSize never touches wire input.
func constantSize() []byte {
	return make([]byte, 4096)
}

// allowedTrusted carries a reasoned suppression.
func allowedTrusted(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	//lint:allow wiretrust length already validated by the outer ReadRawFrame bound check
	return make([]byte, n)
}
