// Package sort is a fixture stub, matched by maporder by function name.
package sort

func Strings(s []string)                          {}
func Ints(s []int)                                {}
func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
