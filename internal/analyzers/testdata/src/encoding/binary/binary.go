// Package binary is a fixture stub for wiretrust, matched by package name.
package binary

// ByteOrder mirrors encoding/binary's fixed-width reader surface.
type ByteOrder struct{}

func (ByteOrder) Uint16(b []byte) uint16 { return 0 }
func (ByteOrder) Uint32(b []byte) uint32 { return 0 }
func (ByteOrder) Uint64(b []byte) uint64 { return 0 }

// LittleEndian is the order every sqlml frame uses.
var LittleEndian ByteOrder

// Uvarint decodes an unsigned varint from b.
func Uvarint(b []byte) (uint64, int) { return 0, 0 }

// Varint decodes a signed varint from b.
func Varint(b []byte) (int64, int) { return 0, 0 }
