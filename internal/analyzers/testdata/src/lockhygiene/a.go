// Fixture for the lockhygiene analyzer.
package lockhygiene

import (
	"net"
	"sync"
	"time"
)

type srv struct {
	mu sync.Mutex
	ch chan int
}

// Bad: a slow receiver stalls every other lock holder.
func badSend(s *srv) {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s.mu`
	s.mu.Unlock()
}

// Bad: a dial can block for the full timeout under the lock.
func badDial(s *srv) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.DialTimeout("tcp", "127.0.0.1:1", 1) // want `net.DialTimeout while holding s.mu`
	_, _ = conn, err
}

// Bad: sleeping inside the critical section.
func badSleep(s *srv) {
	s.mu.Lock()
	time.Sleep(1) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

// Bad: a receive blocks until a peer acts.
func badRecv(s *srv) {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while holding s.mu`
	_ = v
	s.mu.Unlock()
}

// Good: copy state under the lock, talk to the network after Unlock.
func goodUnlockFirst(s *srv, conn *net.Conn) {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
	if _, err := conn.Write([]byte{byte(v)}); err != nil {
		return
	}
}

// Good: the goroutine signals completion by closing a channel.
func goodGoClose() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// Good: WaitGroup.Done is a joinable lifecycle.
func goodGoWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Bad: an opaque function value — nothing proves it can be joined.
func badGoValue(fn func()) {
	go fn() // want `goroutine launches a function value with no visible lifecycle`
}

func work() {}

// Bad: the resolved body has no completion signal.
func badGoDecl() {
	go work() // want `goroutine body has no completion signal`
}

// Suppressed: deliberate fire-and-forget with a recorded reason.
func allowedFireAndForget(fn func()) {
	//lint:allow lockhygiene launcher hook is fire-and-forget by design; its lifecycle belongs to the task layer
	go fn()
}
