// Fixture for the worker-pool launch pattern the morsel-driven executor
// uses: a bounded set of goroutines claim tasks off an atomic counter and
// join through a WaitGroup. The analyzer must accept the joined form,
// flag detached claim-loop workers, and flag joining while a lock is
// still held.
package lockhygiene

import (
	"sync"
	"sync/atomic"
)

type pool struct {
	mu    sync.Mutex
	next  atomic.Int64
	tasks []func() error
}

// Good: the queryPool.forEach shape — every worker signals wg.Done, the
// launcher joins after the loop, no lock anywhere near the claim path.
func (p *pool) goodForEach(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(p.next.Add(1) - 1)
				if t >= len(p.tasks) {
					return
				}
				_ = p.tasks[t]()
			}
		}()
	}
	wg.Wait()
}

// Bad: the same claim loop launched detached — nothing can ever join the
// workers, so a cancelled query strands them mid-claim.
func (p *pool) badDetachedWorkers(workers int) {
	for w := 0; w < workers; w++ {
		go func() { // want `goroutine body has no completion signal`
			for {
				t := int(p.next.Add(1) - 1)
				if t >= len(p.tasks) {
					return
				}
				_ = p.tasks[t]()
			}
		}()
	}
}

// Bad: joining the pool while holding the pool's own lock — workers that
// need the lock to finish deadlock the join.
func (p *pool) badJoinUnderLock(workers int) {
	var wg sync.WaitGroup
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait() // want `WaitGroup.Wait while holding p.mu`
}
