// Fixture for the vecsafety analyzer: selection-blind indexing, use after
// pool release, and dense/append mode mixes on ColBatch/Vector.
package vecsafety

import "row"

// sumSelBlind is the canonical bug: Len() is the logical length, but the
// raw loop variable indexes physical storage.
func sumSelBlind(b *row.ColBatch) int64 {
	var sum int64
	ints := b.Col(0).Ints
	for i := 0; i < b.Len(); i++ {
		sum += ints[i] // want `vector storage indexed by the raw variable of a loop bounded by ColBatch\.Len\(\) \(line \d+\)`
	}
	return sum
}

// sumSelAware translates through SelPos: exempt.
func sumSelAware(b *row.ColBatch) int64 {
	var sum int64
	ints := b.Col(0).Ints
	for i := 0; i < b.Len(); i++ {
		sum += ints[b.SelPos(i)]
	}
	return sum
}

// sumBranched branches on the selection vector explicitly: exempt.
func sumBranched(b *row.ColBatch) int64 {
	var sum int64
	ints := b.Col(0).Ints
	if b.Sel() == nil {
		for i := 0; i < b.Len(); i++ {
			sum += ints[i]
		}
	}
	return sum
}

// sumPhysical iterates the physical length: raw indexing is correct.
func sumPhysical(b *row.ColBatch) int64 {
	var sum int64
	ints := b.Col(0).Ints
	for i := 0; i < b.FullLen(); i++ {
		sum += ints[i]
	}
	return sum
}

// bytesSelBlind: the per-position accessors take physical indexes too.
func bytesSelBlind(b *row.ColBatch) int {
	n := 0
	v := b.Col(1)
	for i := 0; i < b.Len(); i++ {
		n += len(v.Bytes(i)) // want `Vector\.Bytes called with the raw variable of a loop bounded by ColBatch\.Len\(\) \(line \d+\)`
	}
	return n
}

// directField indexes the storage selector inline through a hoisted bound.
func directField(b *row.ColBatch, v *row.Vector) float64 {
	var sum float64
	n := b.Len()
	for i := 0; i < n; i++ {
		sum += v.Floats[i] // want `vector storage indexed by the raw variable of a loop bounded by ColBatch\.Len\(\) \(line \d+\)`
	}
	return sum
}

// useAfterRelease touches the batch after the pool took it back.
func useAfterRelease(types []row.Type) int {
	b := row.GetColBatch(types)
	row.PutColBatch(b)
	return b.Len() // want `use of batch b after PutColBatch returned it to the pool \(line \d+\)`
}

// viewAfterRelease keeps a column view across the release.
func viewAfterRelease(types []row.Type) int64 {
	b := row.GetColBatch(types)
	v := b.Col(0)
	row.PutColBatch(b)
	return v.Ints[0] // want `use of view of batch b v after PutColBatch returned it to the pool \(line \d+\)`
}

// deferredRelease is the blessed idiom: the release runs at function exit.
func deferredRelease(types []row.Type) int {
	b := row.GetColBatch(types)
	defer row.PutColBatch(b)
	return b.Len()
}

// reacquired reuses the variable for a fresh batch: no stale reference.
func reacquired(types []row.Type) int {
	b := row.GetColBatch(types)
	row.PutColBatch(b)
	b = row.GetColBatch(types)
	return b.Len()
}

// denseThenAppend mixes positional and append mutation.
func denseThenAppend(v *row.Vector, t row.Type) {
	v.ResetDense(t, 8)
	v.Ints[0] = 1
	v.AppendInt(2) // want `v\.AppendInt after ResetDense \(line \d+\)`
}

// denseOnly writes positionally: correct dense-mode use.
func denseOnly(v *row.Vector, t row.Type) {
	v.ResetDense(t, 8)
	v.Ints[0] = 1
	v.SetNull(3)
}

// resetSwitchesBack returns to append mode before appending.
func resetSwitchesBack(v *row.Vector, t row.Type) {
	v.ResetDense(t, 8)
	v.Ints[0] = 1
	v.Reset(t)
	v.AppendInt(2)
}

// allowedTailAppend carries a reasoned suppression.
func allowedTailAppend(v *row.Vector, t row.Type) {
	v.ResetDense(t, 8)
	//lint:allow vecsafety dense region is fully written above; appends extend past it deliberately
	v.AppendInt(9)
}
