// Package rand is a fixture stub, matched by maporder by package name:
// the real math/rand also has package name "rand".
package rand

type Source struct{}

func NewSource(seed int64) *Source { return &Source{} }

type Rand struct{}

func New(src *Source) *Rand { return &Rand{} }

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }

func Intn(n int) int   { return 0 }
func Float64() float64 { return 0 }
