// Package os is a fixture stub, matched by errdiscard by import path.
package os

type File struct{}

func (f *File) Close() error                { return nil }
func (f *File) Sync() error                 { return nil }
func (f *File) Write(p []byte) (int, error) { return len(p), nil }
func (f *File) Name() string                { return "" }

func Create(name string) (*File, error) { return &File{}, nil }
func Remove(name string) error          { return nil }
func RemoveAll(path string) error       { return nil }
