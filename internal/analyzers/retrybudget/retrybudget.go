// Package retrybudget enforces the recovery discipline the chaos suite
// relies on: every reconnect/retry loop in the transfer stack must consume
// a named budget and back off with a cap. The engine's budgets are
// explicit types threaded through configuration — SenderConfig's
// ReconnectBudget, InputFormat's ReconnectBudget, mapred's
// MaxTaskAttempts — and the chaos tests assert that an unrecoverable peer
// surfaces the last error after the budget drains instead of spinning
// forever. Two rules:
//
//   - unbudgeted reconnect loop: a `for {}` with no condition that calls a
//     connection primitive (Dial*/Accept*/dial/connect/redial) and retries
//     via `continue` is flagged unless the loop mentions a budget-shaped
//     identifier (anything containing "budget", "attempt", "retries", or
//     "retry") or delegates to a named recovery helper (reconnect/recover
//     methods own their budget internally and are checked on their own).
//     Server accept loops that return on error have no `continue` and
//     stay silent.
//
//   - uncapped backoff: a delay that doubles inside a loop (d *= 2,
//     d = d * 2) and feeds a Sleep/After call is flagged unless the delay
//     is compared against a bound (or clamped via min) somewhere in the
//     function. Uncapped doubling overflows into negative durations after
//     ~63 iterations, turning backoff into a hot spin.
package retrybudget

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the retrybudget pass.
var Analyzer = &framework.Analyzer{
	Name: "retrybudget",
	Doc:  "flags reconnect/retry loops without a named budget and exponential backoff without a cap",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	capped := comparedVars(pass.TypesInfo, body)
	inspectBody(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		checkUnbudgetedLoop(pass, loop)
		checkUncappedBackoff(pass, loop, capped)
		return true
	})
}

// --- rule 1: unbudgeted reconnect loop -----------------------------------

func checkUnbudgetedLoop(pass *framework.Pass, loop *ast.ForStmt) {
	if loop.Cond != nil {
		return // a conditioned loop bounds itself
	}
	dial := false
	retries := false
	budgeted := false
	inspectBody(loop.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isDialCall(x) {
				dial = true
			}
		case *ast.BranchStmt:
			if x.Tok == token.CONTINUE && x.Label == nil && !insideNestedLoop(loop, x.Pos()) {
				retries = true
			}
		case *ast.Ident:
			if budgetShaped(x.Name) {
				budgeted = true
			}
		}
		return true
	})
	if dial && retries && !budgeted {
		pass.Reportf(loop.Pos(), "unbounded reconnect loop: a connection attempt is retried with no named budget; thread a ReconnectBudget/MaxTaskAttempts-style counter through and surface the last error when it is exhausted")
	}
}

// insideNestedLoop reports whether pos falls inside a loop nested within
// outer — such a continue targets the inner loop, not outer.
func insideNestedLoop(outer *ast.ForStmt, pos token.Pos) bool {
	nested := false
	ast.Inspect(outer.Body, func(n ast.Node) bool {
		if nested {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos < n.End() {
				nested = true
			}
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return nested
}

// isDialCall reports whether call invokes a raw connection primitive. A
// budgeted recovery wrapper (reconnect, recoverSlot) is not one: the
// budget lives inside it.
func isDialCall(call *ast.CallExpr) bool {
	name := ""
	switch f := framework.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	switch name {
	case "connect", "dial", "redial":
		return true
	}
	return strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Accept")
}

// budgetShaped reports whether an identifier names a retry budget, or a
// recovery helper that encapsulates one (reconnect/recover methods own
// their budget internally; their loops are conditioned on it and checked
// on their own).
func budgetShaped(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "budget") ||
		strings.Contains(l, "attempt") ||
		strings.Contains(l, "retries") ||
		strings.Contains(l, "retry") ||
		strings.Contains(l, "reconnect") ||
		strings.Contains(l, "recover")
}

// --- rule 2: uncapped backoff --------------------------------------------

func checkUncappedBackoff(pass *framework.Pass, loop *ast.ForStmt, capped map[*types.Var]bool) {
	// Collect delay variables that double inside this loop.
	doubling := make(map[*types.Var]*ast.AssignStmt)
	inspectBody(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if v := doubledVar(pass.TypesInfo, as); v != nil {
			doubling[v] = as
		}
		return true
	})
	if len(doubling) == 0 {
		return
	}
	// A doubling delay is a finding only if it feeds a sleep in the loop
	// and is never compared against a bound in the function.
	inspectBody(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSleepCall(call) {
			return true
		}
		for _, a := range call.Args {
			id, ok := framework.Unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := framework.ObjOf(pass.TypesInfo, id).(*types.Var)
			if !ok {
				continue
			}
			if as, doubles := doubling[v]; doubles && !capped[v] {
				pass.Reportf(as.Pos(), "backoff delay %s doubles every iteration with no cap before the sleep; clamp it against a maximum (the engine's backoffDelay caps growth) — uncapped doubling overflows into a hot spin", id.Name)
				delete(doubling, v) // one report per variable
			}
		}
		return true
	})
}

// doubledVar returns the variable d for `d *= 2` or `d = d * 2` /
// `d = 2 * d`, else nil.
func doubledVar(info *types.Info, as *ast.AssignStmt) *types.Var {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := framework.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := framework.ObjOf(info, id).(*types.Var)
	if !ok {
		return nil
	}
	if as.Tok == token.MUL_ASSIGN {
		return v
	}
	if as.Tok != token.ASSIGN {
		return nil
	}
	mul, ok := framework.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		return nil
	}
	for _, side := range []ast.Expr{mul.X, mul.Y} {
		if sid, ok := framework.Unparen(side).(*ast.Ident); ok {
			if sv, _ := framework.ObjOf(info, sid).(*types.Var); sv == v {
				return v
			}
		}
	}
	return nil
}

// isSleepCall reports whether call parks on a delay: time.Sleep,
// time.After, or a NewTimer/Reset taking the delay.
func isSleepCall(call *ast.CallExpr) bool {
	name := ""
	switch f := framework.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	switch name {
	case "Sleep", "After", "NewTimer", "Reset":
		return true
	}
	return false
}

// comparedVars collects variables that appear in a relational comparison
// or a min/max clamp anywhere in the body — the "has a cap" evidence.
func comparedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := framework.ObjOf(info, id).(*types.Var); ok {
					out[v] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				mark(x.X)
				mark(x.Y)
			}
		case *ast.CallExpr:
			if id, ok := framework.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
				for _, a := range x.Args {
					mark(a)
				}
			}
		}
		return true
	})
	return out
}

// inspectBody walks a subtree in source order, skipping nested function
// literals.
func inspectBody(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		return visit(c)
	})
}
