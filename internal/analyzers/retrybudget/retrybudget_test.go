package retrybudget_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/retrybudget"
)

func TestRetryBudget(t *testing.T) {
	analyzertest.Run(t, "../testdata", retrybudget.Analyzer, "retrybudget")
}
