package poolreturn_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/poolreturn"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata", poolreturn.Analyzer, "poolreturn")
}
