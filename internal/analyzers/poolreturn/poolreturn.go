// Package poolreturn enforces the pooled-buffer discipline around
// sync.Pool and the repo's block-buffer wrappers (row.NewBlockBuffer /
// row.RecycleBlockBuffer): a value taken from a pool must, on every path
// out of the acquiring function, either be returned to the pool, or have
// its ownership visibly transferred (returned to the caller, stored, sent,
// or passed to another function). A return or panic that simply abandons
// the buffer silently degrades the pool to plain allocation under load;
// returning the same buffer twice poisons the pool with aliased slices.
//
// The check is intraprocedural and path-sensitive over the function's
// statement tree. Ownership transfers end tracking, so the analyzer only
// reports buffers that are provably dropped.
package poolreturn

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the poolreturn pass.
var Analyzer = &framework.Analyzer{
	Name: "poolreturn",
	Doc:  "flags pool Get results that leak on a return/panic path, and double Puts",
	Run:  run,
}

// maxStates bounds the per-function path explosion; functions that branch
// harder than this are skipped rather than mis-reported.
const maxStates = 64

type varState uint8

const (
	held varState = iota
	released
)

// tracked is one pooled value being followed through a function.
type tracked struct {
	state   varState
	acquire token.Pos
	what    string // e.g. "sync.Pool.Get" or "row.NewBlockBuffer"
}

// state maps pooled locals to their status along one execution path.
type state map[*types.Var]tracked

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// walker carries the per-function analysis state.
type walker struct {
	pass     *framework.Pass
	deferred map[*types.Var]bool // released by a defer, covers every later exit
	reported map[token.Pos]bool  // dedup across paths
	bailed   bool                // too many states: give up silently
}

func analyzeFunc(pass *framework.Pass, body *ast.BlockStmt) {
	w := &walker{
		pass:     pass,
		deferred: make(map[*types.Var]bool),
		reported: make(map[token.Pos]bool),
	}
	states := []state{make(state)}
	states = w.walkStmts(body.List, states)
	// Falling off the end of the function is an exit like any other.
	w.checkExit(states, body.Rbrace)
}

// walkStmts threads the state set through a statement list, returning the
// states that flow out the bottom. Terminated paths (return/panic/branch)
// drop out of the set.
func (w *walker) walkStmts(stmts []ast.Stmt, states []state) []state {
	for _, s := range stmts {
		if w.bailed || len(states) == 0 {
			return states
		}
		states = w.walkStmt(s, states)
		if len(states) > maxStates {
			w.bailed = true
		}
	}
	return states
}

func (w *walker) walkStmt(stmt ast.Stmt, states []state) []state {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, states)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.isPanic(call) {
				w.escapeExpr(call, states, true)
				w.checkExit(states, call.Pos())
				return nil
			}
			if v, double := w.handleRelease(call, states); v != nil {
				if double {
					w.reportOnce(call.Pos(), "pooled buffer %s returned to the pool twice", v.Name())
				}
				return states
			}
		}
		w.escapeExpr(s.X, states, true)
	case *ast.DeferStmt:
		if v, _ := w.handleRelease(s.Call, states); v != nil {
			w.deferred[v] = true
			return states
		}
		w.escapeExpr(s.Call, states, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeExpr(r, states, true)
		}
		w.checkExit(states, s.Pos())
		return nil
	case *ast.BranchStmt:
		return nil // break/continue/goto: give up on this path
	case *ast.BlockStmt:
		return w.walkStmts(s.List, states)
	case *ast.IfStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		w.escapeExpr(s.Cond, states, false)
		thenStates := w.walkStmts(s.Body.List, cloneAll(states))
		var elseStates []state
		if s.Else != nil {
			elseStates = w.walkStmt(s.Else, cloneAll(states))
		} else {
			elseStates = states
		}
		return append(thenStates, elseStates...)
	case *ast.ForStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		if s.Cond != nil {
			w.escapeExpr(s.Cond, states, false)
		}
		body := w.walkStmts(s.Body.List, cloneAll(states))
		if s.Post != nil {
			body = w.walkStmt(s.Post, body)
		}
		if s.Cond == nil && len(body) == 0 {
			// for{} with every path terminating inside: nothing flows out.
			return nil
		}
		return append(states, body...)
	case *ast.RangeStmt:
		w.escapeExpr(s.X, states, false)
		body := w.walkStmts(s.Body.List, cloneAll(states))
		return append(states, body...)
	case *ast.SwitchStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		if s.Tag != nil {
			w.escapeExpr(s.Tag, states, false)
		}
		return w.walkCases(s.Body, states)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		return w.walkCases(s.Body, states)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, states)
	case *ast.SendStmt:
		w.escapeExpr(s.Chan, states, false)
		w.escapeExpr(s.Value, states, true)
	case *ast.GoStmt:
		w.escapeExpr(s.Call, states, true)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, states)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.escapeExpr(v, states, true)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		// no pooled-value effect
	default:
		// Unknown statement kind: be conservative, release nothing.
	}
	return states
}

// walkCases runs each case body against a clone of the incoming states
// and merges the survivors; a missing default keeps the fallthrough path.
func (w *walker) walkCases(body *ast.BlockStmt, states []state) []state {
	out := states
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.escapeExpr(e, states, false)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				states = w.walkStmt(cc.Comm, states)
			}
			stmts = cc.Body
		}
		out = append(out, w.walkStmts(stmts, cloneAll(states))...)
	}
	_ = hasDefault
	return out
}

// handleAssign tracks acquisitions (lhs := pool.Get() / NewBlockBuffer())
// and treats assignments of tracked values to anything as an ownership
// transfer. Self-appends (buf = append(buf, ...)) keep tracking.
func (w *walker) handleAssign(s *ast.AssignStmt, states []state) {
	// b = append(b, ...) keeps ownership with b.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(w.pass.TypesInfo, call, "append") && len(call.Args) > 0 {
				if first, ok := unparen(call.Args[0]).(*ast.Ident); ok && first.Name == id.Name {
					for _, a := range call.Args[1:] {
						w.escapeExpr(a, states, true)
					}
					return
				}
			}
		}
	}
	for i, rhs := range s.Rhs {
		if what, ok := w.acquireExpr(rhs); ok && (len(s.Rhs) == len(s.Lhs) || len(s.Rhs) == 1) {
			if id, ok := s.Lhs[i].(*ast.Ident); ok {
				if v, ok := objOf(w.pass.TypesInfo, id).(*types.Var); ok {
					for _, st := range states {
						st[v] = tracked{state: held, acquire: rhs.Pos(), what: what}
					}
					continue
				}
			}
			continue
		}
		w.escapeExpr(rhs, states, true)
	}
	// Tracked value assigned onward (x.f = b, other = b): ownership moves.
	for i, lhs := range s.Lhs {
		_ = i
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if v, ok := objOf(w.pass.TypesInfo, id).(*types.Var); ok {
				for _, st := range states {
					if _, tracked := st[v]; tracked && s.Tok == token.ASSIGN && !isSelfAssign(s, id) {
						delete(st, v)
					}
				}
			}
		}
	}
}

// isSelfAssign reports whether id also appears (alone) on the RHS slot of
// its own assignment, e.g. b = b[:0].
func isSelfAssign(s *ast.AssignStmt, id *ast.Ident) bool {
	for i, lhs := range s.Lhs {
		if lhs == id && i < len(s.Rhs) {
			if base, ok := sliceBase(s.Rhs[i]); ok && base.Name == id.Name {
				return true
			}
		}
	}
	return false
}

// sliceBase unwraps b, b[:n], b[i:j] to the base identifier.
func sliceBase(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// acquireExpr reports whether e (unwrapped of parens, type assertions,
// derefs and reslices) acquires a pooled value, and from where.
func (w *walker) acquireExpr(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			if fn := calleeFunc(w.pass.TypesInfo, x); fn != nil {
				if isPoolMethod(fn, "Get") {
					return "sync.Pool.Get", true
				}
				if isAcquireFunc(fn) {
					return fn.Pkg().Name() + "." + fn.Name(), true
				}
			}
			return "", false
		default:
			return "", false
		}
	}
}

// handleRelease recognizes pool.Put(x) / row.RecycleBlockBuffer(x) over a
// tracked variable. It returns the variable (nil if the call is not a
// release of a tracked value) and whether this was a double release.
func (w *walker) handleRelease(call *ast.CallExpr, states []state) (*types.Var, bool) {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || len(call.Args) != 1 {
		return nil, false
	}
	if !isPoolMethod(fn, "Put") && !isReleaseFunc(fn) {
		return nil, false
	}
	arg := unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = unparen(u.X)
	}
	base, ok := sliceBase(arg)
	if !ok {
		return nil, false
	}
	v, ok := objOf(w.pass.TypesInfo, base).(*types.Var)
	if !ok {
		return nil, false
	}
	double := false
	known := false
	for _, st := range states {
		if t, ok := st[v]; ok {
			known = true
			if t.state == released {
				double = true
			}
			t.state = released
			st[v] = t
		}
	}
	if !known {
		// Releasing something we never tracked (a parameter, a field):
		// not ours to check, but it is a release call, not an escape.
		return v, false
	}
	return v, double
}

// escapeExpr ends tracking for every tracked variable that a call,
// composite literal, closure, send, or return hands to someone else.
// Reads (len, comparisons, indexing) do not transfer ownership; when
// directUse is true a bare identifier use (return value, call argument
// position handled by the caller) also escapes.
func (w *walker) escapeExpr(e ast.Expr, states []state, directUse bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(w.pass.TypesInfo, x)
			if fn != nil && (isPoolMethod(fn, "Put") || isReleaseFunc(fn)) {
				return true // releases are handled by handleRelease
			}
			if isBuiltin(w.pass.TypesInfo, x, "len") || isBuiltin(w.pass.TypesInfo, x, "cap") {
				return false
			}
			for _, a := range x.Args {
				w.escapeIdent(a, states)
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				w.escapeIdent(sel.X, states)
			}
			return true
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					w.escapeIdent(kv.Value, states)
				} else {
					w.escapeIdent(el, states)
				}
			}
		case *ast.FuncLit:
			// Closure capture: anything it mentions escapes.
			ast.Inspect(x.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					w.escapeIdent(id, states)
				}
				return true
			})
			return false
		case *ast.Ident:
			if directUse {
				w.escapeIdent(x, states)
			}
		}
		return true
	})
}

// escapeIdent removes the identifier's variable from tracking if present.
func (w *walker) escapeIdent(e ast.Expr, states []state) {
	base, ok := sliceBase(e)
	if !ok {
		if u, isAddr := unparen(e).(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			base, ok = sliceBase(u.X)
		}
		if !ok {
			return
		}
	}
	v, ok := objOf(w.pass.TypesInfo, base).(*types.Var)
	if !ok {
		return
	}
	for _, st := range states {
		delete(st, v)
	}
}

// checkExit reports every variable still held (and not covered by a
// deferred release) when a path leaves the function.
func (w *walker) checkExit(states []state, pos token.Pos) {
	if w.bailed {
		return
	}
	for _, st := range states {
		for v, t := range st {
			if t.state == held && !w.deferred[v] {
				w.reportOnce(pos, "%s acquired from %s leaks here: no Put/Recycle on this path", v.Name(), t.what)
			}
		}
	}
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

func (w *walker) isPanic(call *ast.CallExpr) bool {
	return isBuiltin(w.pass.TypesInfo, call, "panic")
}

func cloneAll(states []state) []state {
	out := make([]state, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := objOf(info, id).(*types.Func)
	return fn
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isPoolMethod reports whether fn is (*sync.Pool).<name>.
func isPoolMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" && isPkg(named.Obj().Pkg(), "sync")
}

// isAcquireFunc / isReleaseFunc match the repo's pooled-buffer wrappers
// (and their fixture stand-ins, keyed by package name).
func isAcquireFunc(fn *types.Func) bool {
	return fn.Name() == "NewBlockBuffer" && isPkg(fn.Pkg(), "row")
}

func isReleaseFunc(fn *types.Func) bool {
	return fn.Name() == "RecycleBlockBuffer" && isPkg(fn.Pkg(), "row")
}

// isPkg matches a package by name, accepting both the real module path
// and the short fixture import path.
func isPkg(p *types.Package, name string) bool {
	return p != nil && p.Name() == name
}
