// Package unitchecker implements the command-line protocol that
// `go vet -vettool=...` speaks to an analysis driver, against the
// standard library only (the x/tools unitchecker is not vendored here).
//
// The build tool invokes the driver three ways:
//
//	driver -V=full    print a versioning line used as the build-cache key
//	driver -flags     print the driver's analyzer flags as JSON
//	driver foo.cfg    analyze the one compilation unit described by the
//	                  JSON config file, printing diagnostics to stderr and
//	                  exiting non-zero if there are any
//
// The .cfg file names the unit's Go files, its import map, and the
// compiler-produced export data of every dependency, so each package is
// type-checked exactly once per build, from export data — no go/packages,
// no second type-check of the dependency graph.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sqlml/internal/analyzers/framework"
)

// Config mirrors the JSON compilation-unit description `go vet` writes
// next to each package's build artifacts. Field names must match cmd/go.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built on this driver. It never
// returns: it exits 0 on a clean run, 1 on a driver error, and non-zero
// with diagnostics on stderr when any analyzer reports.
func Main(analyzers ...*framework.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printVersion := flag.String("V", "", "print version and exit (-V=full for the build tool)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s [-<analyzer>=false] ./...\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i > 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	flag.Parse()

	if *printVersion != "" {
		// The build tool parses this line as the tool's cache key; the
		// executable hash makes rebuilt analyzers bust stale vet results.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}
	if *printFlags {
		describeFlags(analyzers)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		// Not under `go vet`: re-exec through it so `sqlmlvet ./...` works
		// directly (the driver needs go vet to plan builds and export data).
		reexecThroughGoVet(args)
	}

	var active []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	Run(args[0], active)
}

// describeFlags prints the flag descriptions `go vet` queries before a
// run, in the JSON shape cmd/go/internal/vet expects.
func describeFlags(analyzers []*framework.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// selfHash hashes the running executable, so the -V=full line (and with
// it go vet's result cache) changes whenever the tool is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer func() { _ = f.Close() }() // read-only; the hash is unaffected
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// reexecThroughGoVet turns a direct `sqlmlvet ./...` invocation into
// `go vet -vettool=<self> ./...` and never returns.
func reexecThroughGoVet(args []string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	argv := append([]string{"vet", "-vettool=" + self}, args...)
	cmd := exec.Command("go", argv...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if cmd.ProcessState != nil {
			if code := cmd.ProcessState.ExitCode(); code > 0 {
				os.Exit(code)
			}
		}
		log.Fatal(err)
	}
	os.Exit(0)
}

// Run analyzes the unit described by configFile and exits.
func Run(configFile string, analyzers []*framework.Analyzer) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// Facts are not implemented: in fact-only mode there is nothing to
	// compute, but the (empty) facts file must still exist for the build
	// tool to cache.
	if cfg.VetxOnly {
		writeVetx(cfg)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	entries, err := analyze(fset, cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg)

	if len(entries) == 0 {
		os.Exit(0)
	}
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(e.Pos), e.Message, e.Analyzer)
	}
	os.Exit(2)
}

func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		log.Fatalf("writing facts output: %v", err)
	}
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*framework.Analyzer) ([]framework.Entry, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			failLoad(cfg, analyzers, "parse", err)
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer:  makeImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		failLoad(cfg, analyzers, "type-check", err)
		return nil, err
	}
	return framework.RunAnalyzers(fset, files, pkg, info, analyzers)
}

// failLoad reports a package the suite could not analyze and exits
// non-zero. Historically the driver honored SucceedOnTypecheckFailure by
// exiting 0 silently — on a broken package every analyzer was skipped
// without a trace, so a type error introduced alongside a real bug hid
// the bug from CI. A package that cannot be loaded is itself a lint
// failure: say which package, which stage, and which analyzers did not
// run, and make the run fail.
func failLoad(cfg *Config, analyzers []*framework.Analyzer, stage string, err error) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	fmt.Fprintf(os.Stderr, "%s: %s failed for %s; skipped analyzers [%s]: %v\n",
		filepath.Base(os.Args[0]), stage, cfg.ImportPath, strings.Join(names, " "), err)
	os.Exit(1)
}

// makeImporter resolves imports through the vet config: source-level
// import paths map through ImportMap to package paths, whose compiler
// export data is listed in PackageFile.
func makeImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
