// Package analyzertest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want "regex"` comments, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. Imports inside a
// fixture resolve against <testdata>/src first — so a fixture that needs
// sync.Pool or net.Conn imports a small stub package named "sync" or
// "net" (the analyzers match by package name, exactly so that fixtures
// don't depend on compiled standard-library export data).
//
// A want comment names every diagnostic expected on its line:
//
//	pool.Put(&b) // want `already released`
//	x.f = b      // want `stored in a struct field` `second regex`
//
// Diagnostics from the allowstale pseudo-analyzer participate too, which
// is how stale-suppression detection is itself tested.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sqlml/internal/analyzers/framework"
)

// Run loads <testdata>/src/<pkgpath>, applies a, and reports every
// mismatch between emitted diagnostics and want comments as a test error.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpath string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	entries, err := framework.RunAnalyzers(ld.fset, lp.files, lp.pkg, lp.info, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, ld.fset, lp.files)
	for _, e := range entries {
		pos := ld.fset.Position(e.Pos)
		if !wants.match(pos.Filename, pos.Line, e.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, e.Message, e.Analyzer)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
	}
}

// --- fixture loading ----------------------------------------------------

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset   *token.FileSet
	srcdir string
	pkgs   map[string]*loaded
	std    types.Importer
}

func newLoader(srcdir string) *loader {
	ld := &loader{fset: token.NewFileSet(), srcdir: srcdir, pkgs: make(map[string]*loaded)}
	// Fallback for fixture imports with no stub: type-check the standard
	// library from source, sharing the FileSet.
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	return ld
}

// Import implements types.Importer: testdata stubs first, std second.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.srcdir, path)); err == nil && fi.IsDir() {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.srcdir, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// --- want comments ------------------------------------------------------

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// wantRe matches the expectation list after the want keyword: a sequence
// of double-quoted Go strings or backquoted raw strings.
var wantArgRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(text[idx+len("want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched want on (file, line) whose regexp
// matches msg.
func (ws *wantSet) match(file string, line int, msg string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
