package maporder_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, "../testdata", maporder.Analyzer, "maporder")
}
