// Package maporder enforces the engine's determinism contracts against Go
// map iteration order and wall-clock nondeterminism. Two byte-identity
// oracles pin the engine's output exactly: the P1-vs-PN parallelism oracle
// (TestPropertyParallelismOracle) requires every query result to be
// byte-identical at any worker count, and the chaos suite
// (TestChaosSoakExactlyOnce) requires the whole Figure-3 pipeline to be
// byte-identical under injected faults. Both break silently the moment a
// map's randomized iteration order — or a wall-clock read — leaks into an
// ordered output.
//
// Rule 1 (everywhere): a value derived from `range` over a map must not
// escape into order-carrying output. Flagged:
//
//   - appending a map-range-derived value to a slice declared outside the
//     range loop, unless that slice is passed to a sort call later in the
//     same function (the collect-then-sort idiom);
//   - storing such a value into an element of an outer slice;
//   - sending such a value on a channel from inside the range loop.
//
// Storing into another map stays unordered and is not flagged.
//
// Rule 2 (determinism-oracle packages only — sqlengine, transform, row,
// ml): calls to time.Now and to math/rand package-level functions are
// flagged. A *rand.Rand seeded explicitly (the kmeans/linear idiom,
// rand.New(rand.NewSource(cfg.Seed))) is allowed — its draws replay —
// as is time.Now feeding a SetDeadline-family call, which affects
// liveness, never output bytes. The fault package's seeded splitmix64
// schedules live outside these packages and need no exemption.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the maporder pass.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration order and wall-clock reads escaping into determinism-oracle-covered output",
	Run:  run,
}

// kindMapRange tags values born from a range over a map.
const kindMapRange = "maporder"

// oraclePackages names the packages whose output is pinned by a
// byte-identity determinism oracle and must therefore be clock- and
// rand-free. "maporder" is the analyzertest fixture package.
var oraclePackages = map[string]bool{
	"sqlengine": true,
	"transform": true,
	"row":       true,
	"ml":        true,
	"maporder":  true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		// The clock/rand rule covers engine code the oracles replay; test
		// harnesses read the clock for deadlines and polling, which never
		// reaches oracle-compared bytes.
		oracle := pass.Pkg != nil && oraclePackages[pass.Pkg.Name()] &&
			!strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, oracle)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body, oracle)
			}
			return true
		})
	}
	return nil
}

// candidate is one append of a map-range value into an outer slice,
// pending the end-of-function sort check.
type candidate struct {
	pos    token.Pos
	target *types.Var
	name   string
	from   token.Pos
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt, oracle bool) {
	fl := framework.NewFlow(pass.TypesInfo, framework.FlowConfig{MapRangeKind: kindMapRange})
	var pending []candidate
	deadlines := deadlineArgRanges(body)

	fl.Walk(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fl, s, &pending)
		case *ast.SendStmt:
			if o := firstMapOrigin(fl, s.Value); o != nil && insideMapRange(fl) {
				pass.Reportf(s.Pos(), "value from range over map (line %d) sent on a channel; the receiver observes nondeterministic order — iterate a sorted key slice", line(pass, o.Pos))
			}
		case *ast.CallExpr:
			if oracle {
				checkClockAndRand(pass, s, deadlines)
			}
		}
		return true
	})

	// Collect-then-sort escape: drop candidates whose target is sorted
	// anywhere in this function.
	sorted := sortedVars(pass.TypesInfo, body)
	for _, c := range pending {
		if sorted[c.target] {
			continue
		}
		pass.Reportf(c.pos, "value from range over map (line %d) appended to %s, which outlives the loop; map order is nondeterministic — sort %s before it is emitted, or iterate a sorted key slice", line(pass, c.from), c.name, c.name)
	}
}

// checkAssign flags order-carrying stores of map-range-derived values.
func checkAssign(pass *framework.Pass, fl *framework.Flow, s *ast.AssignStmt, pending *[]candidate) {
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		switch {
		case len(s.Rhs) == len(s.Lhs):
			rhs = s.Rhs[i]
		case len(s.Rhs) == 1:
			rhs = s.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// out = append(out, derived): candidate if out outlives the
		// map-range loop.
		if call, ok := framework.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.TypesInfo, call, "append") {
			o := appendedMapOrigin(fl, call)
			if o == nil {
				continue
			}
			id, ok := framework.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := framework.ObjOf(pass.TypesInfo, id).(*types.Var)
			if !ok {
				continue
			}
			if loop := fl.LoopDeclaredOutside(v); loop != nil && loopIsMapRange(fl, loop) {
				*pending = append(*pending, candidate{pos: s.Pos(), target: v, name: id.Name, from: o.Pos})
			}
			continue
		}
		// out[i] = derived: an indexed store into an outer slice carries
		// the iteration order too. Map targets stay unordered.
		if ix, ok := framework.Unparen(lhs).(*ast.IndexExpr); ok && insideMapRange(fl) {
			if t := pass.TypesInfo.TypeOf(ix.X); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice {
					if o := firstMapOrigin(fl, rhs); o != nil {
						pass.Reportf(s.Pos(), "value from range over map (line %d) stored into a slice element; map order is nondeterministic — iterate a sorted key slice", line(pass, o.Pos))
					}
				}
			}
		}
	}
}

// appendedMapOrigin returns the first map-range origin among append's
// appended arguments (spread appends of a tainted slice included), or nil.
func appendedMapOrigin(fl *framework.Flow, call *ast.CallExpr) *framework.Origin {
	for _, a := range call.Args[1:] {
		if o := firstMapOrigin(fl, a); o != nil {
			return o
		}
		// Composite literals carrying a derived value: item{key: k}.
		if lit, ok := framework.Unparen(a).(*ast.CompositeLit); ok {
			for _, el := range lit.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if o := firstMapOrigin(fl, val); o != nil {
					return o
				}
			}
		}
	}
	return nil
}

func firstMapOrigin(fl *framework.Flow, e ast.Expr) *framework.Origin {
	for _, o := range fl.Origins(e) {
		if o.Kind == kindMapRange {
			return &o
		}
	}
	return nil
}

// insideMapRange reports whether the innermost enclosing loops include a
// range over a map.
func insideMapRange(fl *framework.Flow) bool {
	for _, l := range fl.Loops() {
		if loopIsMapRange(fl, l) {
			return true
		}
	}
	return false
}

func loopIsMapRange(fl *framework.Flow, loop ast.Node) bool {
	r, ok := loop.(*ast.RangeStmt)
	if !ok {
		return false
	}
	t := fl.Info.TypeOf(r.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// sortedVars collects every variable passed (anywhere in its expression
// tree) to a sort-shaped call in the body: sort.Strings(out),
// sort.Slice(out, less), slices.Sort(out), sort.Sort(byKey(out)), and
// local helpers like sortFloats(out) — anything whose name starts with
// "sort", case-insensitively.
func sortedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.HasPrefix(strings.ToLower(name), "sort") && !isSortFunc(name) {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if v, ok := framework.ObjOf(info, id).(*types.Var); ok {
						out[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func isSortFunc(name string) bool {
	switch name {
	case "Slice", "SliceStable", "Strings", "Ints", "Float64s", "Stable", "Sort", "SortFunc", "SortStableFunc":
		return true
	}
	return false
}

// checkClockAndRand flags wall-clock and global-PRNG reads in
// determinism-oracle packages.
func checkClockAndRand(pass *framework.Pass, call *ast.CallExpr, deadlines []posRange) {
	sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := framework.ObjOf(pass.TypesInfo, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Name() {
	case "time":
		if fn.Name() == "Now" && !withinAny(call.Pos(), deadlines) {
			pass.Reportf(call.Pos(), "time.Now in a determinism-oracle package (%s); the byte-identity oracles forbid wall-clock-dependent output — stamp timestamps outside the oracle boundary", pass.Pkg.Name())
		}
	case "rand":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicitly seeded *rand.Rand replay
		}
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			return // constructing a seeded generator is the fix, not the bug
		}
		pass.Reportf(call.Pos(), "global math/rand call in a determinism-oracle package (%s); draw from a rand.Rand seeded from the query or job seed instead", pass.Pkg.Name())
	}
}

// posRange is a half-open source span.
type posRange struct{ lo, hi token.Pos }

func withinAny(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if p >= r.lo && p < r.hi {
			return true
		}
	}
	return false
}

// deadlineArgRanges returns the argument spans of SetDeadline-family
// calls: time.Now there configures liveness, not output.
func deadlineArgRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			for _, a := range call.Args {
				out = append(out, posRange{a.Pos(), a.End()})
			}
		}
		return true
	})
	return out
}

func calleeName(call *ast.CallExpr) string {
	switch f := framework.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func line(pass *framework.Pass, pos token.Pos) int {
	return pass.Fset.Position(pos).Line
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := framework.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
