package batchretain_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/batchretain"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata", batchretain.Analyzer, "batchretain")
}
