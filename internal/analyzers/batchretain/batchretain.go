// Package batchretain enforces the Volcano pipeline's batch-reuse
// contract (internal/sqlengine/batch.go): a RowBatch returned by
// BatchIterator.Next — and any row or sub-slice aliasing it — is only
// valid until the following Next call. Producers recycle the batch's
// backing storage, so a consumer that parks such a slice somewhere
// longer-lived reads rows that a later batch has overwritten: silently
// corrupt results, only under load, only when the producer actually
// recycles.
//
// What the pass flags, for a batch-derived value b:
//
//   - b stored into a struct field, package-level variable, or map/slice
//     element (`x.f = b`, `m[k] = b`) — the store outlives the loop that
//     calls Next
//   - b appended by reference (`acc = append(acc, b)`, or inside a
//     composite literal) — the accumulated slice aliases recycled storage
//   - b assigned to a variable declared outside the loop whose body calls
//     Next — the classic "remember the previous batch" bug
//   - b sent on a channel or captured by a `go` closure — the consumer
//     runs concurrently with the producer's next Next
//
// Copying is the fix and is recognized: `append(acc, b...)` spreads the
// rows out of the batch (the drainBatches idiom), and any call applied to
// b (Clone, copyRows, …) transfers ownership to code that is responsible
// for its own copying. The one legitimate cursor (batchRows, which parks
// a batch precisely until the next Next) carries a //lint:allow with its
// reason.
//
// The columnar pipeline (internal/sqlengine/colpipe.go) has the same
// contract: a *ColBatch returned by NextCol or NextColBatch is recycled by
// the following call, and so is every view handed out by its accessors.
// Births from Next-shaped methods returning *ColBatch are tracked like
// RowBatch ones, and the view accessors — Col, Sel, Bytes, NullWords,
// StringSlab — keep the alias alive instead of transferring ownership the
// way Rows (which copies) does.
package batchretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the batchretain pass.
var Analyzer = &framework.Analyzer{
	Name: "batchretain",
	Doc:  "flags RowBatches and ColBatches (or views sliced from them) retained past the next Next call",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
			if fl, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

// checker tracks batch-derived values through one function body.
type checker struct {
	pass *framework.Pass
	// batches holds variables aliasing a batch (the RowBatch itself or a
	// row/sub-slice of one), with the position of the Next call they came
	// from.
	batches map[*types.Var]token.Pos
	// loops is the stack of enclosing loop statements.
	loops []ast.Node
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, batches: make(map[*types.Var]token.Pos)}
	c.walk(body)
}

// walk performs a source-order traversal, maintaining the loop stack and
// the set of batch-aliasing variables.
func (c *checker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.ForStmt:
		c.loops = append(c.loops, s)
		c.walk(s.Init)
		c.walk(s.Body)
		c.walk(s.Post)
		c.loops = c.loops[:len(c.loops)-1]
		return
	case *ast.RangeStmt:
		// range over a tracked batch defines derived row variables.
		c.trackRangeVars(s)
		c.loops = append(c.loops, s)
		c.walk(s.Body)
		c.loops = c.loops[:len(c.loops)-1]
		return
	case *ast.AssignStmt:
		c.handleAssign(s)
		return
	case *ast.SendStmt:
		if v, from := c.aliasOf(s.Value); v != nil {
			c.report(s.Pos(), "batch from Next (line %d) sent on a channel; the receiver outlives the next Next call — copy the rows first", c.line(from))
		}
		return
	case *ast.GoStmt:
		c.checkGoCapture(s)
		return
	case *ast.FuncLit:
		return // separate context; checked by run
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walk(st)
		}
		return
	case *ast.IfStmt:
		c.walk(s.Init)
		c.walk(s.Body)
		c.walk(s.Else)
		return
	case *ast.SwitchStmt:
		c.walk(s.Init)
		c.walk(s.Body)
		return
	case *ast.TypeSwitchStmt:
		c.walk(s.Init)
		c.walk(s.Assign)
		c.walk(s.Body)
		return
	case *ast.SelectStmt:
		c.walk(s.Body)
		return
	case *ast.CaseClause:
		for _, st := range s.Body {
			c.walk(st)
		}
		return
	case *ast.CommClause:
		c.walk(s.Comm)
		for _, st := range s.Body {
			c.walk(st)
		}
		return
	case *ast.LabeledStmt:
		c.walk(s.Stmt)
		return
	case *ast.ExprStmt:
		return
	case *ast.DeferStmt:
		return
	case *ast.ReturnStmt:
		// Returning a batch hands it to the caller before any further
		// Next: that is the iterator protocol itself, not a retention.
		return
	case *ast.DeclStmt:
		// var b, ok, err = it.Next() tracks the batch like := does.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 && len(vs.Names) >= 1 {
					if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok && isBatchNext(c.pass.TypesInfo, call) {
						if v, ok := objOf(c.pass.TypesInfo, vs.Names[0]).(*types.Var); ok {
							c.batches[v] = call.Pos()
						}
					}
				}
			}
		}
		return
	}
	// Other statements: nothing to do.
}

// handleAssign is where batches are born (b, ok, err := it.Next()) and
// where retentions happen.
func (c *checker) handleAssign(s *ast.AssignStmt) {
	// Birth: b, ok, err := it.Next()
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok && isBatchNext(c.pass.TypesInfo, call) && len(s.Lhs) >= 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if v, ok := objOf(c.pass.TypesInfo, id).(*types.Var); ok {
					c.batches[v] = call.Pos()
				}
			}
			return
		}
	}

	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		v, from := c.aliasOf(rhs)
		if v == nil {
			// append(acc, b) by reference. Operators legitimately append
			// batch rows into a scratch slice reset every iteration (the
			// filterIter pattern); the bug is accumulating into a slice
			// that survives the Next-calling loop.
			if _, from2, byRef := c.appendsBatchByRef(rhs); byRef {
				if c.accumulatesAcrossNext(lhs) {
					c.reportStore(s.Pos(), lhs, nil, from2, true)
				}
			}
			// A plain assignment breaks any old alias the LHS held.
			c.untrack(lhs)
			continue
		}
		// RHS aliases a batch: where is it going?
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			lv, _ := objOf(c.pass.TypesInfo, l).(*types.Var)
			if lv == nil {
				continue
			}
			if loop := c.loopDeclaredOutside(lv); loop != nil && c.loopCallsNext(loop) {
				c.report(s.Pos(), "batch from Next (line %d) assigned to %s, which outlives this Next-calling loop; it is only valid until the following Next — copy the rows first", c.line(from), l.Name)
				continue
			}
			// Local alias inside the same iteration: track it too.
			c.batches[lv] = from
		default:
			// Field, map/slice element, or dereference target.
			c.reportStore(s.Pos(), lhs, v, from, false)
		}
	}
}

// reportStore flags a retention store of a batch-derived value.
func (c *checker) reportStore(pos token.Pos, lhs ast.Expr, v *types.Var, from token.Pos, byAppend bool) {
	where := "a longer-lived location"
	switch unparen(lhs).(type) {
	case *ast.SelectorExpr:
		where = "a struct field"
	case *ast.IndexExpr:
		where = "a map or slice element"
	case *ast.StarExpr:
		where = "a pointed-to location"
	case *ast.Ident:
		if byAppend {
			where = "an accumulating slice"
		}
	}
	verb := "stored in"
	if byAppend {
		verb = "appended by reference to"
	}
	c.report(pos, "batch from Next (line %d) %s %s; it is only valid until the following Next call — copy the rows first (append(dst, b...) or Clone)", c.line(from), verb, where)
}

// appendsBatchByRef recognizes append(acc, b) where b aliases a batch and
// is not spread (append(acc, b...) copies the row headers and is the
// blessed drain idiom).
func (c *checker) appendsBatchByRef(e ast.Expr) (*types.Var, token.Pos, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltinCall(c.pass.TypesInfo, call, "append") {
		return nil, token.NoPos, false
	}
	if call.Ellipsis != token.NoPos {
		return nil, token.NoPos, false // append(acc, b...) copies
	}
	for _, a := range call.Args[1:] {
		if v, from := c.aliasOf(a); v != nil {
			return v, from, true
		}
		// Composite literal retaining the batch: item{batch: b}.
		if lit, ok := unparen(a).(*ast.CompositeLit); ok {
			for _, el := range lit.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v, from := c.aliasOf(val); v != nil {
					return v, from, true
				}
			}
		}
	}
	return nil, token.NoPos, false
}

// checkGoCapture flags go-closures capturing a tracked batch variable.
func (c *checker) checkGoCapture(g *ast.GoStmt) {
	fl, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := objOf(c.pass.TypesInfo, id).(*types.Var); ok {
				if from, tracked := c.batches[v]; tracked {
					c.report(id.Pos(), "batch from Next (line %d) captured by a goroutine; it runs concurrently with the producer's next Next — copy the rows first", c.line(from))
					return false
				}
			}
		}
		return true
	})
}

// accumulatesAcrossNext reports whether lhs names a variable declared
// outside the innermost enclosing loop that calls BatchIterator.Next —
// i.e. the append target accumulates aliases across batch recycles.
func (c *checker) accumulatesAcrossNext(lhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return true // field or element target always outlives the loop
	}
	lv, ok := objOf(c.pass.TypesInfo, id).(*types.Var)
	if !ok {
		return false
	}
	loop := c.loopDeclaredOutside(lv)
	return loop != nil && c.loopCallsNext(loop)
}

// trackRangeVars records row variables from `for _, r := range b`.
func (c *checker) trackRangeVars(s *ast.RangeStmt) {
	v, from := c.aliasOf(s.X)
	if v == nil {
		return
	}
	if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
		if rv, ok := objOf(c.pass.TypesInfo, id).(*types.Var); ok {
			c.batches[rv] = from
		}
	}
}

// aliasOf reports whether e is a tracked batch variable, or a sub-slice
// (b[i:j]) or element (b[i]) of one, returning the variable and the Next
// position it derives from.
func (c *checker) aliasOf(e ast.Expr) (*types.Var, token.Pos) {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if v, ok := objOf(c.pass.TypesInfo, x).(*types.Var); ok {
				if from, tracked := c.batches[v]; tracked {
					return v, from
				}
			}
			return nil, token.NoPos
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			// Columnar view accessors hand out slices of the batch's own
			// storage: b.Col(i) is a vector header over it, b.Sel() the
			// selection vector, Bytes/NullWords/StringSlab the raw slabs.
			// Any other call (Rows, ValueAt, Clone, …) copies and breaks
			// the alias chain.
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !isViewAccessor(sel.Sel.Name) {
				return nil, token.NoPos
			}
			e = sel.X
		default:
			return nil, token.NoPos
		}
	}
}

// isViewAccessor reports whether a method name returns a view aliasing a
// columnar batch's recycled storage rather than an owning copy.
func isViewAccessor(name string) bool {
	switch name {
	case "Col", "Sel", "Bytes", "NullWords", "StringSlab":
		return true
	}
	return false
}

// untrack removes a variable from the batch set when it is overwritten.
func (c *checker) untrack(lhs ast.Expr) {
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		if v, ok := objOf(c.pass.TypesInfo, id).(*types.Var); ok {
			delete(c.batches, v)
		}
	}
}

// loopDeclaredOutside returns the innermost enclosing loop that v is
// declared outside of, or nil.
func (c *checker) loopDeclaredOutside(v *types.Var) ast.Node {
	for i := len(c.loops) - 1; i >= 0; i-- {
		if v.Pos() < c.loops[i].Pos() {
			return c.loops[i]
		}
	}
	return nil
}

// loopCallsNext reports whether the loop body contains a
// BatchIterator.Next call (so the stored batch is overwritten on the
// next iteration).
func (c *checker) loopCallsNext(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBatchNext(c.pass.TypesInfo, call) {
			found = true
		}
		return true
	})
	return found
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) line(pos token.Pos) int {
	return c.pass.Fset.Position(pos).Line
}

// isBatchNext reports whether call invokes a Next-shaped method whose
// first result is a named RowBatch or *ColBatch type — the BatchIterator
// contract and its columnar twin.
func isBatchNext(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Next", "NextCol", "NextColBatch":
	default:
		return false
	}
	fn, ok := objOf(info, sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	t := sig.Results().At(0).Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "RowBatch", "ColBatch":
		return true
	}
	return false
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
