package framework_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"sqlml/internal/analyzers/framework"
)

// loadFunc type-checks src and returns the named function's body plus the
// package's types.Info.
func loadFunc(t *testing.T, src, name string) (*ast.BlockStmt, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body, info, fset
		}
	}
	t.Fatalf("no function %s in source", name)
	return nil, nil, nil
}

// flowFacts walks fn and records, for every call to sink(x), whether x
// carried an origin and whether it was guarded at that point.
func flowFacts(t *testing.T, src, fn string, cfg framework.FlowConfig) map[int][2]bool {
	t.Helper()
	body, info, fset := loadFunc(t, src, fn)
	fl := framework.NewFlow(info, cfg)
	out := make(map[int][2]bool)
	fl.Walk(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" && len(call.Args) == 1 {
			arg := call.Args[0]
			out[fset.Position(call.Pos()).Line] = [2]bool{
				len(fl.Origins(arg)) > 0,
				fl.Guarded(arg),
			}
		}
		return true
	})
	return out
}

// source classifies src() calls as wire origins.
func wireCalls(call *ast.CallExpr) (string, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src" {
		return "wire", true
	}
	return "", false
}

func TestFlowPropagationAndGuards(t *testing.T) {
	const src = `package p

func src() int    { return 0 }
func sink(n int)  {}
func opaque() int { return 1 }

func f() {
	n := src()
	sink(n)            // line 9: tainted, unguarded
	m := n*8 + 4
	sink(m)            // line 11: arithmetic propagates
	u := uint32(n)
	sink(int(u))       // line 13: conversions propagate
	if n > 64 {
		return
	}
	sink(n)            // line 17: guarded by the comparison
	sink(m)            // line 18: m itself was never compared
	n = opaque()
	sink(n)            // line 20: strong update clears the taint
	sink(src())        // line 21: straight from source: never guarded
}
`
	got := flowFacts(t, src, "f", framework.FlowConfig{Call: wireCalls})
	want := map[int][2]bool{
		9:  {true, false},
		11: {true, false},
		13: {true, false},
		17: {true, true},
		18: {true, false},
		20: {false, true},
		21: {true, false},
	}
	for line, w := range want {
		g, ok := got[line]
		if !ok {
			t.Errorf("line %d: no sink fact recorded", line)
			continue
		}
		if g != w {
			t.Errorf("line %d: (tainted, guarded) = %v, want %v", line, g, w)
		}
	}
}

func TestFlowTupleTaintsFirstResult(t *testing.T) {
	const src = `package p

func src2() (int, int) { return 0, 0 }
func sink(n int)       {}

func f() {
	v, w := src2()
	sink(v) // line 8
	sink(w) // line 9
}
`
	cfg := framework.FlowConfig{Call: func(call *ast.CallExpr) (string, bool) {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src2" {
			return "wire", true
		}
		return "", false
	}}
	got := flowFacts(t, src, "f", cfg)
	if !got[8][0] {
		t.Errorf("first tuple result should carry the origin")
	}
	if got[9][0] {
		t.Errorf("second tuple result should not carry the origin")
	}
}

func TestFlowMapRange(t *testing.T) {
	const src = `package p

func sink(s string) {}

func f(m map[string]string, l []string) {
	for k, v := range m {
		sink(k) // line 7
		sink(v) // line 8
	}
	for _, v := range l {
		sink(v) // line 11: slice range is ordered, no taint
	}
}
`
	got := flowFacts(t, src, "f", framework.FlowConfig{MapRangeKind: "maporder"})
	if !got[7][0] || !got[8][0] {
		t.Errorf("map range key/value should carry the origin: %v", got)
	}
	if got[11][0] {
		t.Errorf("slice range value should not carry the origin")
	}
}

func TestFlowLoopsStack(t *testing.T) {
	const src = `package p

func f(m map[int]int) {
	for {
		for i := range m {
			_ = i
		}
	}
}
`
	body, info, _ := loadFunc(t, src, "f")
	fl := framework.NewFlow(info, framework.FlowConfig{})
	maxDepth := 0
	fl.Walk(body, func(n ast.Node) bool {
		if len(fl.Loops()) > maxDepth {
			maxDepth = len(fl.Loops())
		}
		return true
	})
	if maxDepth != 2 {
		t.Errorf("max loop depth seen = %d, want 2", maxDepth)
	}
}
