// dataflow.go grows the framework from purely syntactic inspection into a
// lightweight intra-procedural dataflow layer: value-origin tracking over
// go/types and the AST. An analyzer instantiates a Flow per function body
// with a FlowConfig naming its origin sources (map-range iteration,
// classified calls such as wire-length decodes), then drives Walk, which
// traverses the body in source order maintaining three kinds of facts it
// can query at any visited node:
//
//   - Origins(expr): which configured sources the expression's value
//     derives from, through assignments, arithmetic, conversions,
//     indexing, and slicing (strong updates on reassignment);
//   - Guarded(expr): whether every origin-carrying variable in the
//     expression has appeared in a comparison on an earlier control path —
//     the "was this wire-decoded length bounds-checked before the make"
//     question;
//   - Loops(): the stack of loop statements enclosing the visited node.
//
// The tracking is deliberately modest: per-variable (no field or heap
// sensitivity), source-order (no joins over branches), and
// intra-procedural (parameters are untainted; callees are opaque except
// for the configured classifiers and the sanitizing builtins min, max,
// len, and cap). That is exactly enough to express "does this value derive
// from a map range / decoded wire bytes" without a fixpoint engine, and it
// errs toward silence: an untracked flow loses the origin rather than
// inventing one.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// An Origin records one source a value derives from: the configured kind
// and the position of the source expression (the range statement or the
// classified call).
type Origin struct {
	Kind string
	Pos  token.Pos
}

// FlowConfig names an analyzer's origin sources.
type FlowConfig struct {
	// MapRangeKind, when non-empty, seeds the key and value variables of
	// every `range` statement over a map-typed operand with this kind.
	MapRangeKind string
	// Call, when non-nil, classifies call expressions as origin sources.
	// A classified call taints its first result (binary.Uvarint's value,
	// not its width).
	Call func(call *ast.CallExpr) (kind string, ok bool)
}

// A Flow carries the dataflow facts for one function body.
type Flow struct {
	Info *types.Info
	cfg  FlowConfig

	origins map[*types.Var][]Origin
	guarded map[*types.Var]bool
	loops   []ast.Node
}

// NewFlow returns a Flow over one function body's types.
func NewFlow(info *types.Info, cfg FlowConfig) *Flow {
	return &Flow{
		Info:    info,
		cfg:     cfg,
		origins: make(map[*types.Var][]Origin),
		guarded: make(map[*types.Var]bool),
	}
}

// Walk traverses body in source order, updating origin and guard facts at
// each assignment and condition, and invoking visit on every node with the
// facts current as of its enclosing statement (so a sink inside an
// assignment's right-hand side sees the state before the assignment
// lands). visit returning false prunes the subtree, like ast.Inspect.
// Function literals are not descended into — each closure body is its own
// intra-procedural context and gets its own Flow.
func (f *Flow) Walk(body *ast.BlockStmt, visit func(ast.Node) bool) {
	if body == nil {
		return
	}
	f.walkStmt(body, visit)
}

// Loops returns the stack of loop statements (for and range) enclosing
// the node currently being visited, innermost last. The returned slice is
// only valid during the visit callback.
func (f *Flow) Loops() []ast.Node { return f.loops }

// LoopDeclaredOutside returns the innermost enclosing loop that v is
// declared outside of, or nil.
func (f *Flow) LoopDeclaredOutside(v *types.Var) ast.Node {
	for i := len(f.loops) - 1; i >= 0; i-- {
		if v.Pos() < f.loops[i].Pos() {
			return f.loops[i]
		}
	}
	return nil
}

// Origins returns the origins the expression's value currently derives
// from: variable origins through the tracked assignment chain, plus any
// classified call appearing directly in the expression.
func (f *Flow) Origins(e ast.Expr) []Origin {
	return f.originsOf(e)
}

// VarOrigins returns the origins currently recorded for v.
func (f *Flow) VarOrigins(v *types.Var) []Origin { return f.origins[v] }

// Guarded reports whether the expression's origin-carrying value has been
// bounds-checked: every tainted variable in e has appeared in an earlier
// comparison, and no classified call feeds e directly (a value flowing
// straight from its source into a sink has had no chance to be checked).
func (f *Flow) Guarded(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if v, isVar := ObjOf(f.Info, x).(*types.Var); isVar {
				if len(f.origins[v]) > 0 && !f.guarded[v] {
					ok = false
				}
			}
		case *ast.CallExpr:
			if f.cfg.Call != nil {
				if _, classified := f.cfg.Call(x); classified {
					ok = false
					return false
				}
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return ok
}

// --- traversal ----------------------------------------------------------

func (f *Flow) walkStmt(n ast.Stmt, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.BlockStmt:
		if !visit(s) {
			return
		}
		for _, st := range s.List {
			f.walkStmt(st, visit)
		}
	case *ast.ForStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Init, visit)
		f.applyGuards(s.Cond)
		f.inspect(s.Cond, visit)
		f.loops = append(f.loops, s)
		f.walkStmt(s.Body, visit)
		f.walkStmt(s.Post, visit)
		f.loops = f.loops[:len(f.loops)-1]
	case *ast.RangeStmt:
		if !visit(s) {
			return
		}
		f.inspect(s.X, visit)
		f.seedMapRange(s)
		f.loops = append(f.loops, s)
		f.walkStmt(s.Body, visit)
		f.loops = f.loops[:len(f.loops)-1]
	case *ast.IfStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Init, visit)
		f.applyGuards(s.Cond)
		f.inspect(s.Cond, visit)
		f.walkStmt(s.Body, visit)
		f.walkStmt(s.Else, visit)
	case *ast.SwitchStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Init, visit)
		// switch v {...} guards v like a comparison; a tagless switch's
		// case expressions are conditions and carry their own guards.
		f.markGuards(s.Tag)
		f.inspect(s.Tag, visit)
		f.walkStmt(s.Body, visit)
	case *ast.TypeSwitchStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Init, visit)
		f.walkStmt(s.Assign, visit)
		f.walkStmt(s.Body, visit)
	case *ast.SelectStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Body, visit)
	case *ast.CaseClause:
		if !visit(s) {
			return
		}
		for _, e := range s.List {
			f.applyGuards(e)
			f.inspect(e, visit)
		}
		for _, st := range s.Body {
			f.walkStmt(st, visit)
		}
	case *ast.CommClause:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Comm, visit)
		for _, st := range s.Body {
			f.walkStmt(st, visit)
		}
	case *ast.LabeledStmt:
		if !visit(s) {
			return
		}
		f.walkStmt(s.Stmt, visit)
	case *ast.AssignStmt:
		if !visit(s) {
			return
		}
		for _, e := range s.Rhs {
			f.inspect(e, visit)
		}
		for _, e := range s.Lhs {
			f.inspect(e, visit)
		}
		f.transfer(s)
	case *ast.DeclStmt:
		if !visit(s) {
			return
		}
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.inspect(v, visit)
					}
					f.transferSpec(vs)
				}
			}
		}
	default:
		// Leaf statements: send, expr, inc/dec, return, defer, go, branch.
		f.inspect(s, visit)
	}
}

// inspect runs visit over a non-statement subtree, skipping closure
// bodies.
func (f *Flow) inspect(n ast.Node, visit func(ast.Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		return visit(c)
	})
}

// isNilNode guards against typed-nil ast.Expr/ast.Stmt interfaces.
func isNilNode(n ast.Node) bool {
	switch x := n.(type) {
	case ast.Expr:
		return x == nil
	case ast.Stmt:
		return x == nil
	}
	return n == nil
}

// --- transfer functions -------------------------------------------------

// transfer applies an assignment's effect on the origin facts.
func (f *Flow) transfer(s *ast.AssignStmt) {
	// Tuple form: v, n := call(...) — a classified call taints its first
	// result only.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		origins := f.originsOf(s.Rhs[0])
		for i, lhs := range s.Lhs {
			if i == 0 {
				f.setVar(lhs, origins, s.Tok)
			} else {
				f.setVar(lhs, nil, s.Tok)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		f.setVar(lhs, f.originsOf(s.Rhs[i]), s.Tok)
	}
}

func (f *Flow) transferSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		origins := f.originsOf(vs.Values[0])
		for i, name := range vs.Names {
			if i == 0 {
				f.setIdent(name, origins, token.DEFINE)
			} else {
				f.setIdent(name, nil, token.DEFINE)
			}
		}
		return
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		f.setIdent(name, f.originsOf(vs.Values[i]), token.DEFINE)
	}
}

// setVar updates the facts for one assignment target. Compound tokens
// (+=, |=, …) merge instead of replacing; plain (re)assignment is a
// strong update that also clears any stale guard.
func (f *Flow) setVar(lhs ast.Expr, origins []Origin, tok token.Token) {
	id, ok := Unparen(lhs).(*ast.Ident)
	if !ok {
		return // field, element, or deref target: untracked
	}
	f.setIdent(id, origins, tok)
}

func (f *Flow) setIdent(id *ast.Ident, origins []Origin, tok token.Token) {
	v, ok := ObjOf(f.Info, id).(*types.Var)
	if !ok {
		return
	}
	if tok != token.ASSIGN && tok != token.DEFINE {
		if len(origins) > 0 {
			f.origins[v] = append(f.origins[v], origins...)
		}
		return
	}
	if len(origins) == 0 {
		delete(f.origins, v)
		delete(f.guarded, v)
		return
	}
	f.origins[v] = origins
	delete(f.guarded, v) // fresh value: earlier checks do not cover it
}

// originsOf computes the origins of an expression from the current facts.
func (f *Flow) originsOf(e ast.Expr) []Origin {
	switch x := Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := ObjOf(f.Info, x).(*types.Var); ok {
			return f.origins[v]
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return nil // booleans carry no length/order taint
		}
		return append(append([]Origin(nil), f.originsOf(x.X)...), f.originsOf(x.Y)...)
	case *ast.UnaryExpr:
		return f.originsOf(x.X)
	case *ast.StarExpr:
		return f.originsOf(x.X)
	case *ast.IndexExpr:
		return f.originsOf(x.X)
	case *ast.SliceExpr:
		return f.originsOf(x.X)
	case *ast.CallExpr:
		if f.cfg.Call != nil {
			if kind, ok := f.cfg.Call(x); ok {
				return []Origin{{Kind: kind, Pos: x.Pos()}}
			}
		}
		// A type conversion is transparent; builtins (min, len, …) and
		// unclassified calls sanitize.
		if f.Info != nil && len(x.Args) == 1 {
			if tv, ok := f.Info.Types[x.Fun]; ok && tv.IsType() {
				return f.originsOf(x.Args[0])
			}
		}
	}
	return nil
}

// --- guards -------------------------------------------------------------

// applyGuards records every variable appearing on either side of a
// comparison within cond as guarded from here on.
func (f *Flow) applyGuards(cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				f.markGuards(b.X)
				f.markGuards(b.Y)
			}
		}
		return true
	})
}

// markGuards marks every variable in e as guarded.
func (f *Flow) markGuards(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := ObjOf(f.Info, id).(*types.Var); isVar {
				f.guarded[v] = true
			}
		}
		return true
	})
}

// seedMapRange taints the key and value variables of a range over a map.
func (f *Flow) seedMapRange(s *ast.RangeStmt) {
	if f.cfg.MapRangeKind == "" || f.Info == nil {
		return
	}
	t := f.Info.TypeOf(s.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	origin := []Origin{{Kind: f.cfg.MapRangeKind, Pos: s.Pos()}}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if v, isVar := ObjOf(f.Info, id).(*types.Var); isVar {
				f.origins[v] = origin
				delete(f.guarded, v)
			}
		}
	}
}

// --- shared AST/type helpers -------------------------------------------

// Unparen strips any parenthesis wrappers from an expression.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ObjOf resolves an identifier to its object, defs first.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if info == nil {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// NamedTypeName returns the name of an expression's named type, looking
// through one pointer, or "" — how the analyzers match the engine's types
// (RowBatch, ColBatch, Vector) without importing them.
func NamedTypeName(info *types.Info, e ast.Expr) string {
	if info == nil {
		return ""
	}
	t := info.TypeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
