// Package framework is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough Analyzer/Pass/Diagnostic
// surface for the sqlmlvet suite to be written in the upstream idiom, so
// the analyzers can be ported onto the real module wholesale if it ever
// lands in the build. It exists because this repository builds with the
// standard library only.
//
// On top of the x/tools shape it adds one repo-specific mechanism: the
// `//lint:allow <analyzer> <reason>` suppression directive. A diagnostic is
// suppressed when an allow directive for its analyzer sits on the same
// source line or on the line directly above, and the directive carries a
// non-empty reason. Directives are themselves checked: an allow that
// matches no diagnostic is reported as stale (analyzer name "allowstale"),
// an allow without a reason is reported as malformed, and an allow naming
// an analyzer the run does not know is reported as unknown, so
// suppressions cannot rot silently.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in allow directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by help output.
	Doc string
	// Run applies the pass to one package and reports findings via
	// pass.Report/Reportf.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass carries one package's parsed and type-checked state to an
// Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits one formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// An Entry is one diagnostic tagged with the analyzer that produced it.
type Entry struct {
	Analyzer string
	Diagnostic
}

// AllowStaleName is the pseudo-analyzer name under which stale or
// malformed //lint:allow directives are reported. It cannot itself be
// suppressed.
const AllowStaleName = "allowstale"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Pos // of the comment
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive from the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				d := &allowDirective{pos: c.Pos()}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunAnalyzers runs each analyzer over one type-checked package, applies
// //lint:allow filtering, and returns the surviving diagnostics (stale and
// malformed allow directives included) sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Entry, error) {
	var entries []Entry
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			entries = append(entries, Entry{Analyzer: name, Diagnostic: d})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	allows := parseAllows(fset, files)
	kept := entries[:0]
	for _, e := range entries {
		if !suppress(fset, allows, e) {
			kept = append(kept, e)
		}
	}
	entries = kept

	known := make(map[string]bool, len(analyzers))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	sort.Strings(names)

	for _, d := range allows {
		switch {
		case d.analyzer == "":
			entries = append(entries, Entry{Analyzer: AllowStaleName, Diagnostic: Diagnostic{
				Pos: d.pos, Message: "malformed //lint:allow: missing analyzer name",
			}})
		case !known[d.analyzer]:
			// A typo'd name would otherwise surface as a confusing "stale"
			// report; name the real problem and list what this run knows.
			entries = append(entries, Entry{Analyzer: AllowStaleName, Diagnostic: Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("//lint:allow names unknown analyzer %q; analyzers in this run: %s", d.analyzer, strings.Join(names, " ")),
			}})
		case d.reason == "":
			entries = append(entries, Entry{Analyzer: AllowStaleName, Diagnostic: Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("//lint:allow %s needs a reason", d.analyzer),
			}})
		case !d.used:
			entries = append(entries, Entry{Analyzer: AllowStaleName, Diagnostic: Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("stale //lint:allow %s: no %s diagnostic here to suppress", d.analyzer, d.analyzer),
			}})
		}
	}

	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Pos < entries[j].Pos })
	return entries, nil
}

// suppress reports whether an allow directive covers e, marking the
// directive used. A directive covers diagnostics from its analyzer on its
// own line (end-of-line comment) or on the following line (comment above
// the statement). Directives without a reason never suppress — they are
// reported as malformed instead, so a reason cannot be omitted to dodge
// the check.
func suppress(fset *token.FileSet, allows []*allowDirective, e Entry) bool {
	if e.Analyzer == AllowStaleName {
		return false
	}
	pos := fset.Position(e.Pos)
	for _, d := range allows {
		if d.analyzer != e.Analyzer || d.reason == "" || d.file != pos.Filename {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}
