package framework_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"sqlml/internal/analyzers/framework"
)

// src exercises every allow-directive outcome: an unsuppressed
// diagnostic, a suppressed one (line-above directive with a reason), a
// reason-less directive (malformed, diagnostic kept), and a stale
// directive with nothing to suppress.
const src = `package p

func target() {}

func a() {
	target()
	//lint:allow fake covered by design
	target()
	//lint:allow fake
	target()
}

//lint:allow fake nothing on this line is diagnosed
var x = 1
`

// fake flags every call to target.
var fake = &framework.Analyzer{
	Name: "fake",
	Doc:  "test analyzer",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "target" {
						pass.Reportf(call.Pos(), "flagged call")
					}
				}
				return true
			})
		}
		return nil
	},
}

// runFake applies the fake analyzer to src and returns (entries, fset).
func runFake(t *testing.T, src string) ([]framework.Entry, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := framework.RunAnalyzers(fset, []*ast.File{f}, nil, nil, []*framework.Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}
	return entries, fset
}

// TestAllowDirectiveParsing pins each malformed-directive outcome: the
// directive never suppresses, and the right allowstale diagnostic names
// the defect.
func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// want maps "analyzer@line" to a required message substring; every
		// emitted entry must match one, and every want must be emitted.
		want map[string]string
	}{
		{
			name: "missing reason",
			src: `package p
func target() {}
func a() {
	//lint:allow fake
	target()
}
`,
			want: map[string]string{
				"allowstale@4": "needs a reason",
				"fake@5":       "flagged call", // not suppressed
			},
		},
		{
			name: "unknown analyzer",
			src: `package p
func target() {}
func a() {
	//lint:allow fakke mistyped but fully reasoned
	target()
}
`,
			want: map[string]string{
				"allowstale@4": `unknown analyzer "fakke"`,
				"fake@5":       "flagged call",
			},
		},
		{
			name: "missing analyzer name",
			src: `package p
func target() {}
func a() {
	//lint:allow
	target()
}
`,
			want: map[string]string{
				"allowstale@4": "missing analyzer name",
				"fake@5":       "flagged call",
			},
		},
		{
			name: "directive two lines above does not reach",
			src: `package p
func target() {}
func a() {
	//lint:allow fake reason placed too far away

	target()
}
`,
			want: map[string]string{
				"allowstale@4": "stale //lint:allow fake",
				"fake@6":       "flagged call",
			},
		},
		{
			name: "same line suppresses",
			src: `package p
func target() {}
func a() {
	target() //lint:allow fake end-of-line placement is covered
}
`,
			want: map[string]string{},
		},
		{
			name: "line above suppresses",
			src: `package p
func target() {}
func a() {
	//lint:allow fake line-above placement is covered
	target()
}
`,
			want: map[string]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			entries, fset := runFake(t, tc.src)
			got := make(map[string]string, len(entries))
			for _, e := range entries {
				key := fmt.Sprintf("%s@%d", e.Analyzer, fset.Position(e.Pos).Line)
				got[key] = e.Message
			}
			for key, substr := range tc.want {
				msg, ok := got[key]
				if !ok {
					t.Errorf("missing expected diagnostic %s (want substring %q); got %v", key, substr, got)
					continue
				}
				if !strings.Contains(msg, substr) {
					t.Errorf("%s = %q, want substring %q", key, msg, substr)
				}
			}
			for key, msg := range got {
				if _, ok := tc.want[key]; !ok {
					t.Errorf("unexpected diagnostic %s: %q", key, msg)
				}
			}
		})
	}
}

func TestAllowDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := framework.RunAnalyzers(fset, []*ast.File{f}, nil, nil, []*framework.Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}

	type wantEntry struct {
		analyzer string
		line     int
		contains string
	}
	wants := []wantEntry{
		{"fake", 6, "flagged call"}, // no directive: reported
		{framework.AllowStaleName, 9, "needs a reason"},
		{"fake", 10, "flagged call"}, // reason-less directive does not suppress
		{framework.AllowStaleName, 13, "stale //lint:allow fake"},
	}
	// Line 8's diagnostic is suppressed by the directive on line 7.
	for _, e := range entries {
		if fset.Position(e.Pos).Line == 8 {
			t.Errorf("line 8 should be suppressed, got %q (%s)", e.Message, e.Analyzer)
		}
	}
	if len(entries) != len(wants) {
		for _, e := range entries {
			t.Logf("got %s:%d %s (%s)", "p.go", fset.Position(e.Pos).Line, e.Message, e.Analyzer)
		}
		t.Fatalf("got %d entries, want %d", len(entries), len(wants))
	}
	for i, w := range wants {
		e := entries[i]
		pos := fset.Position(e.Pos)
		if e.Analyzer != w.analyzer || pos.Line != w.line || !strings.Contains(e.Message, w.contains) {
			t.Errorf("entry %d = %s:%d %q (%s); want line %d containing %q (%s)",
				i, pos.Filename, pos.Line, e.Message, e.Analyzer, w.line, w.contains, w.analyzer)
		}
	}
}
