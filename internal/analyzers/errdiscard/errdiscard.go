// Package errdiscard flags silently discarded errors from resource
// releases and durability points: methods named Close, CloseWrite, Flush,
// or Sync whose only result is an error, the deadline setters SetDeadline
// / SetReadDeadline / SetWriteDeadline, and the spill-file cleanup
// functions os.Remove / os.RemoveAll.
//
// The deadline family matters for the same recovery story: a dropped
// SetWriteDeadline error means the guard against a hung peer was never
// armed, so the failure detection the reconnect path depends on silently
// degrades to blocking forever.
//
// On the streaming transfer and spool paths a swallowed Close or Sync
// error breaks the §6 exactly-once-after-crash story: a spill file whose
// final write never hit the disk looks delivered. The check therefore
// flags bare call statements and bare `defer x.Close()` forms. Assigning
// the error explicitly (`_ = x.Close()`) is accepted as a visible,
// greppable acknowledgment, and deliberate discards can carry a
// `//lint:allow errdiscard <reason>` directive.
package errdiscard

import (
	"go/ast"
	"go/types"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the errdiscard pass.
var Analyzer = &framework.Analyzer{
	Name: "errdiscard",
	Doc:  "flags discarded errors from Close/Flush/Sync, deadline setters, and spill cleanup calls",
	Run:  run,
}

// releaseMethods are the method names whose error result must not be
// dropped on the floor.
var releaseMethods = map[string]bool{
	"Close":            true,
	"CloseWrite":       true,
	"Flush":            true,
	"Sync":             true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// releaseFuncs are package-level functions treated the same way, keyed by
// package path then function name (spill-file cleanup).
var releaseFuncs = map[string]map[string]bool{
	"os": {"Remove": true, "RemoveAll": true},
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				return true // the goroutine body is inspected on its own
			}
			if call == nil {
				return true
			}
			if name := discardedErrorCall(pass.TypesInfo, call); name != "" {
				pass.Reportf(call.Pos(), "error returned by %s is silently discarded", name)
			}
			return true
		})
	}
	return nil
}

// discardedErrorCall reports the display name of the callee when call is
// a release call whose sole error result this statement discards, or ""
// otherwise.
func discardedErrorCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsOnlyError(sig) {
		return ""
	}
	if sig.Recv() != nil {
		if !releaseMethods[fn.Name()] {
			return ""
		}
		return recvName(sig) + "." + fn.Name()
	}
	if pkg := fn.Pkg(); pkg != nil {
		if names, ok := releaseFuncs[pkg.Path()]; ok && names[fn.Name()] {
			return pkg.Name() + "." + fn.Name()
		}
	}
	return ""
}

// returnsOnlyError reports whether sig's results are exactly (error).
func returnsOnlyError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() != 1 {
		return false
	}
	named, ok := res.At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// recvName renders a method's receiver type compactly for the message.
func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	default:
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
}
