package errdiscard_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/errdiscard"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata", errdiscard.Analyzer, "errdiscard")
}
