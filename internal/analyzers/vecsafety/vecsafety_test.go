package vecsafety_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/vecsafety"
)

func TestVecSafety(t *testing.T) {
	analyzertest.Run(t, "../testdata", vecsafety.Analyzer, "vecsafety")
}
