// Package vecsafety enforces the ColBatch discipline that the columnar
// engine's poisoning and residency tests probe dynamically. A ColBatch
// has two lengths — Len() is logical (selection vector applied), FullLen()
// physical — and a pooled lifetime; confusing either corrupts results
// silently rather than crashing. Three rules:
//
//   - sel-blind indexing: a loop bounded by ColBatch.Len() must not index
//     vector storage (the Ints/Floats/Bools slices, or per-position
//     accessors like Bytes/Null/ValueAt) with the raw loop variable. With
//     a live selection vector, logical position i lives at physical
//     position SelPos(i); the raw index reads rows the selection filtered
//     out. Functions that visibly handle selection — branching on Sel(),
//     translating with SelPos, or calling ClearSel — are exempt.
//
//   - use after release: once PutColBatch(b) returns a batch to the pool,
//     any later use of b — or of a view previously obtained from it via
//     Col/Sel/NullWords/StringSlab — races with the pool's next caller.
//     Deferred releases are fine (they run at function exit); a
//     reassignment of the variable starts a fresh batch.
//
//   - dense/append mode mix: ResetDense pre-sizes storage for positional
//     writes (v.Ints[i] = x) and fixes the vector's length up front;
//     calling Append* afterwards grows past the pre-sized region and
//     desynchronizes the null bitmap from the data. After ResetDense,
//     Append* is flagged until a plain Reset switches back to append mode.
package vecsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the vecsafety pass.
var Analyzer = &framework.Analyzer{
	Name: "vecsafety",
	Doc:  "flags ColBatch misuse: selection-blind indexing, use after pool release, dense/append mode mixes",
	Run:  run,
}

// kindColLen tags values derived from ColBatch.Len().
const kindColLen = "collen"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	checkSelBlindIndexing(pass, body)
	checkUseAfterRelease(pass, body)
	checkDenseAppendMix(pass, body)
}

// --- rule 1: selection-blind indexing ------------------------------------

// lenLoop records one for-loop bounded by ColBatch.Len().
type lenLoop struct {
	induction *types.Var
	lenPos    token.Pos
}

func checkSelBlindIndexing(pass *framework.Pass, body *ast.BlockStmt) {
	if selectionAware(pass.TypesInfo, body) {
		return
	}
	fl := framework.NewFlow(pass.TypesInfo, framework.FlowConfig{
		Call: func(call *ast.CallExpr) (string, bool) {
			if isColBatchCall(pass.TypesInfo, call, "Len") {
				return kindColLen, true
			}
			return "", false
		},
	})
	storage := storageVars(pass.TypesInfo, body)
	loops := make(map[ast.Node]lenLoop)

	fl.Walk(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			if ll, ok := classifyLenLoop(pass.TypesInfo, fl, x); ok {
				loops[x] = ll
			}
		case *ast.IndexExpr:
			iv, ok := inductionVarOf(pass.TypesInfo, fl, loops, x.Index)
			if !ok {
				return true
			}
			if isVectorStorage(pass.TypesInfo, storage, x.X) {
				pass.Reportf(x.Pos(), "vector storage indexed by the raw variable of a loop bounded by ColBatch.Len() (line %d); Len() is the logical length — with a live selection vector position %s maps to physical index SelPos(%s)", line(pass, iv.lenPos), indexName(x.Index), indexName(x.Index))
			}
		case *ast.CallExpr:
			// Per-position Vector accessors taking a physical index.
			sel, ok := framework.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || len(x.Args) == 0 {
				return true
			}
			switch sel.Sel.Name {
			case "Bytes", "StringAt", "Null", "ValueAt", "SetNull":
			default:
				return true
			}
			if framework.NamedTypeName(pass.TypesInfo, sel.X) != "Vector" {
				return true
			}
			if iv, ok := inductionVarOf(pass.TypesInfo, fl, loops, x.Args[0]); ok {
				pass.Reportf(x.Pos(), "Vector.%s called with the raw variable of a loop bounded by ColBatch.Len() (line %d); translate with SelPos first — the accessor takes a physical index", sel.Sel.Name, line(pass, iv.lenPos))
			}
		}
		return true
	})
}

// classifyLenLoop recognizes `for i := ...; i < K; ...` (or <=) where K
// derives from ColBatch.Len().
func classifyLenLoop(info *types.Info, fl *framework.Flow, s *ast.ForStmt) (lenLoop, bool) {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return lenLoop{}, false
	}
	id, ok := framework.Unparen(cond.X).(*ast.Ident)
	if !ok {
		return lenLoop{}, false
	}
	iv, ok := framework.ObjOf(info, id).(*types.Var)
	if !ok {
		return lenLoop{}, false
	}
	for _, o := range fl.Origins(cond.Y) {
		if o.Kind == kindColLen {
			return lenLoop{induction: iv, lenPos: o.Pos}, true
		}
	}
	return lenLoop{}, false
}

// inductionVarOf reports whether e is the bare induction variable of an
// enclosing Len-bounded loop.
func inductionVarOf(info *types.Info, fl *framework.Flow, loops map[ast.Node]lenLoop, e ast.Expr) (lenLoop, bool) {
	id, ok := framework.Unparen(e).(*ast.Ident)
	if !ok {
		return lenLoop{}, false
	}
	v, ok := framework.ObjOf(info, id).(*types.Var)
	if !ok {
		return lenLoop{}, false
	}
	for _, l := range fl.Loops() {
		if ll, ok := loops[l]; ok && ll.induction == v {
			return ll, true
		}
	}
	return lenLoop{}, false
}

// isVectorStorage reports whether e is a typed storage slice of a Vector:
// a .Ints/.Floats/.Bools selector on a Vector, or a variable assigned
// from one.
func isVectorStorage(info *types.Info, storage map[*types.Var]bool, e ast.Expr) bool {
	switch x := framework.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return isStorageField(x.Sel.Name) && framework.NamedTypeName(info, x.X) == "Vector"
	case *ast.Ident:
		v, ok := framework.ObjOf(info, x).(*types.Var)
		return ok && storage[v]
	}
	return false
}

func isStorageField(name string) bool {
	return name == "Ints" || name == "Floats" || name == "Bools"
}

// storageVars collects variables assigned from a Vector storage slice
// anywhere in the body (ints := vec.Ints).
func storageVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := framework.Unparen(as.Rhs[i]).(*ast.SelectorExpr)
			if !ok || !isStorageField(sel.Sel.Name) || framework.NamedTypeName(info, sel.X) != "Vector" {
				continue
			}
			if id, ok := framework.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := framework.ObjOf(info, id).(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// selectionAware reports whether the function visibly handles the
// selection vector: it branches on Sel(), translates with SelPos, or
// drops the selection with ClearSel. Such functions chose a side of the
// logical/physical split deliberately.
func selectionAware(info *types.Info, body *ast.BlockStmt) bool {
	aware := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isColBatchCall(info, call, "SelPos") || isColBatchCall(info, call, "ClearSel") || isColBatchCall(info, call, "Sel") {
			aware = true
			return false
		}
		return true
	})
	return aware
}

// isColBatchCall reports whether call is <ColBatch>.<name>(...).
func isColBatchCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return framework.NamedTypeName(info, sel.X) == "ColBatch"
}

// --- rule 2: use after release -------------------------------------------

func checkUseAfterRelease(pass *framework.Pass, body *ast.BlockStmt) {
	released := make(map[*types.Var]token.Pos) // batch var -> release end
	derived := make(map[*types.Var]*types.Var) // view var -> batch var

	inspectBody(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			return false // deferred release runs at function exit
		case *ast.AssignStmt:
			// v := b.Col(i) and friends: record the view's parent batch.
			// b = GetColBatch(...): reassignment revives the variable.
			for i, lhs := range x.Lhs {
				id, ok := framework.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := framework.ObjOf(pass.TypesInfo, id).(*types.Var)
				if !ok {
					continue
				}
				if _, wasReleased := released[v]; wasReleased && (x.Tok == token.ASSIGN || x.Tok == token.DEFINE) {
					delete(released, v)
				}
				if i < len(x.Rhs) && len(x.Lhs) == len(x.Rhs) {
					if b := viewParent(pass.TypesInfo, x.Rhs[i]); b != nil {
						derived[v] = b
					}
				}
			}
		case *ast.CallExpr:
			if b := releasedBatch(pass.TypesInfo, x); b != nil {
				released[b] = x.End()
			}
		case *ast.Ident:
			v, ok := framework.ObjOf(pass.TypesInfo, x).(*types.Var)
			if !ok {
				return true
			}
			batch, since := v, released[v]
			if since == 0 {
				if parent, isView := derived[v]; isView {
					batch, since = parent, released[parent]
				}
			}
			if since != 0 && x.Pos() > since {
				what := "batch"
				if batch != v {
					what = "view of batch " + batch.Name()
				}
				pass.Reportf(x.Pos(), "use of %s %s after PutColBatch returned it to the pool (line %d); the pool may already have handed the batch to another goroutine", what, x.Name, line(pass, since))
			}
		}
		return true
	})
}

// releasedBatch returns the batch variable passed to PutColBatch, or nil.
func releasedBatch(info *types.Info, call *ast.CallExpr) *types.Var {
	name := ""
	switch f := framework.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "PutColBatch" || len(call.Args) != 1 {
		return nil
	}
	id, ok := framework.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := framework.ObjOf(info, id).(*types.Var)
	return v
}

// viewParent returns the batch variable a view expression borrows from:
// b.Col(i), b.Sel(), and the other accessors that alias batch memory.
func viewParent(info *types.Info, rhs ast.Expr) *types.Var {
	call, ok := framework.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Col", "Sel", "NullWords", "StringSlab", "Bytes":
	default:
		return nil
	}
	recv, ok := framework.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if framework.NamedTypeName(info, sel.X) != "ColBatch" && framework.NamedTypeName(info, sel.X) != "Vector" {
		return nil
	}
	v, _ := framework.ObjOf(info, recv).(*types.Var)
	return v
}

// --- rule 3: dense/append mode mix ---------------------------------------

func checkDenseAppendMix(pass *framework.Pass, body *ast.BlockStmt) {
	dense := make(map[*types.Var]token.Pos) // vector var -> ResetDense end

	inspectBody(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := framework.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := framework.ObjOf(pass.TypesInfo, id).(*types.Var); ok {
						delete(dense, v) // fresh vector value
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := framework.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || framework.NamedTypeName(pass.TypesInfo, sel.X) != "Vector" {
				return true
			}
			recv, ok := framework.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := framework.ObjOf(pass.TypesInfo, recv).(*types.Var)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == "ResetDense":
				dense[v] = x.End()
			case sel.Sel.Name == "Reset":
				delete(dense, v)
			case strings.HasPrefix(sel.Sel.Name, "Append"):
				if since, isDense := dense[v]; isDense && x.Pos() > since {
					pass.Reportf(x.Pos(), "%s.%s after ResetDense (line %d); dense mode pre-sizes storage for positional writes and fixes the length — write by index, or use Reset for append mode", recv.Name, sel.Sel.Name, line(pass, since))
				}
			}
		}
		return true
	})
}

// --- shared helpers -------------------------------------------------------

// inspectBody walks the body in source order, skipping nested function
// literals (each closure is checked as its own function).
func inspectBody(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

func indexName(e ast.Expr) string {
	if id, ok := framework.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "i"
}

func line(pass *framework.Pass, pos token.Pos) int {
	return pass.Fset.Position(pos).Line
}
