// Package lockhygiene enforces two concurrency conventions the streaming
// engine depends on:
//
//  1. No blocking operation while holding a sync.Mutex/RWMutex. A channel
//     send, channel receive, blocking select, time.Sleep, WaitGroup.Wait,
//     net dial, or a read/write on a net connection inside a critical
//     section turns a slow peer into a coordinator-wide stall — the
//     coordinator's handlers deliberately copy state out under the lock
//     and perform network writes after Unlock, and this pass keeps it
//     that way. (sync.Cond.Wait is exempt: it releases the mutex.)
//
//  2. Every goroutine launched in non-test code must have a visible
//     lifecycle: the spawned body signals completion over a channel,
//     closes one, or calls WaitGroup.Done — something a joiner can wait
//     on. Fire-and-forget goroutines leak under restart churn; the
//     goroutine-leak tests only sample the paths they drive, so the
//     structural check runs everywhere. Deliberate fire-and-forget
//     launches carry a //lint:allow lockhygiene directive with a reason.
//
// Both checks are intraprocedural; the goroutine check resolves callees
// declared in the same package and inspects their bodies.
package lockhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sqlml/internal/analyzers/framework"
)

// Analyzer is the lockhygiene pass.
var Analyzer = &framework.Analyzer{
	Name: "lockhygiene",
	Doc:  "flags blocking operations under a held mutex and goroutines with no lifecycle",
	Run:  run,
}

func run(pass *framework.Pass) error {
	decls := packageFuncBodies(pass)
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLocks(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLocks(pass, fn.Body)
			case *ast.GoStmt:
				if !isTest {
					checkGoroutine(pass, decls, fn)
				}
			}
			return true
		})
	}
	return nil
}

// --- check 1: blocking under a held mutex -------------------------------

// checkLocks walks one function body tracking which mutexes are held.
// Nested function literals are separate execution contexts and are
// checked on their own (the run loop reaches them).
func checkLocks(pass *framework.Pass, body *ast.BlockStmt) {
	walkHeld(pass, body.List, map[string]bool{})
}

// walkHeld threads the held-mutex set (keyed by the receiver expression's
// source text) through a statement list.
func walkHeld(pass *framework.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op, ok := mutexOp(pass.TypesInfo, call); ok {
					switch op {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			reportBlocking(pass, s.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock(): the lock stays held for the rest of the
			// function, so later blocking operations are still flagged.
			// Any other defer is not executed here.
			continue
		case *ast.SendStmt:
			reportHeld(pass, s.Pos(), held, "channel send")
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				reportBlocking(pass, r, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				walkHeld(pass, []ast.Stmt{s.Init}, held)
			}
			reportBlocking(pass, s.Cond, held)
			walkHeld(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkHeld(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.BlockStmt:
			walkHeld(pass, s.List, held)
		case *ast.ForStmt:
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var caseBody *ast.BlockStmt
			if sw, ok := s.(*ast.SwitchStmt); ok {
				caseBody = sw.Body
			} else {
				caseBody = s.(*ast.TypeSwitchStmt).Body
			}
			for _, c := range caseBody.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !hasDefaultClause(s) {
				reportHeld(pass, s.Pos(), held, "blocking select")
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				reportBlocking(pass, r, held)
			}
			return
		case *ast.LabeledStmt:
			walkHeld(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The new goroutine does not hold this function's locks.
			continue
		}
	}
}

// reportBlocking flags blocking expressions (receives, blocking calls)
// inside e while any mutex is held. It does not descend into function
// literals: those run later, in their own context.
func reportBlocking(pass *framework.Pass, e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reportHeld(pass, x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(pass.TypesInfo, x); ok {
				reportHeld(pass, x.Pos(), held, what)
			}
		}
		return true
	})
}

// reportHeld emits one diagnostic naming the held mutexes.
func reportHeld(pass *framework.Pass, pos token.Pos, held map[string]bool, what string) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	pass.Reportf(pos, "%s while holding %s; move it outside the critical section", what, strings.Join(names, ", "))
}

// blockingCall classifies calls that can block indefinitely.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := objOf(info, sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := ""
	if sig != nil && sig.Recv() != nil {
		recv = pkgPathOf(sig.Recv().Type())
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	switch {
	case pkg == "time" && fn.Name() == "Sleep" && sig != nil && sig.Recv() == nil:
		return "time.Sleep", true
	case recv == "sync" && fn.Name() == "Wait" && recvTypeName(sig) == "WaitGroup":
		return "WaitGroup.Wait", true
	case pkg == "net" && sig != nil && sig.Recv() == nil && strings.HasPrefix(fn.Name(), "Dial"):
		return "net." + fn.Name(), true
	case recv == "net" && (fn.Name() == "Read" || fn.Name() == "Write" || fn.Name() == "Accept"):
		return "network " + strings.ToLower(fn.Name()), true
	}
	return "", false
}

// --- check 2: goroutine lifecycle ---------------------------------------

// packageFuncBodies indexes every function and method declared in the
// package by its types.Func object, so `go obj.method()` launches can be
// resolved to a body.
func packageFuncBodies(pass *framework.Pass) map[*types.Func]*ast.BlockStmt {
	out := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd.Body
				}
			}
		}
	}
	return out
}

// checkGoroutine flags go statements whose spawned body has no visible
// completion signal.
func checkGoroutine(pass *framework.Pass, decls map[*types.Func]*ast.BlockStmt, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		var id *ast.Ident
		switch f := fun.(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		}
		if id != nil {
			if fn, ok := objOf(pass.TypesInfo, id).(*types.Func); ok {
				body = decls[fn]
			}
		}
	}
	if body == nil {
		// A function value (field, parameter): no body to inspect, so no
		// evidence of a lifecycle. Deliberate fire-and-forget launches
		// carry an allow directive.
		pass.Reportf(g.Pos(), "goroutine launches a function value with no visible lifecycle (no join, no completion signal)")
		return
	}
	if !hasLifecycleSignal(pass.TypesInfo, body) {
		pass.Reportf(g.Pos(), "goroutine body has no completion signal (channel send/close or WaitGroup.Done); nothing can join it")
	}
}

// hasLifecycleSignal reports whether a goroutine body contains anything a
// joiner can synchronize on: a channel send, close(ch), WaitGroup.Done,
// or Cond.Signal/Broadcast (including deferred ones).
func hasLifecycleSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := objOf(info, sel.Sel).(*types.Func); ok {
					sig, _ := fn.Type().(*types.Signature)
					if sig != nil && sig.Recv() != nil && pkgPathOf(sig.Recv().Type()) == "sync" {
						switch fn.Name() {
						case "Done", "Signal", "Broadcast":
							found = true
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// --- shared helpers -----------------------------------------------------

// mutexOp recognizes mu.Lock/Unlock/RLock/RUnlock on sync mutexes and
// returns a stable key for the receiver expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := objOf(info, sel.Sel).(*types.Func)
	if !isFn {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || pkgPathOf(sig.Recv().Type()) != "sync" {
		return "", "", false
	}
	name := recvTypeName(sig)
	if name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func recvTypeName(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// pkgPathOf returns the package name of a (possibly pointer) named type.
func pkgPathOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name()
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
