package lockhygiene_test

import (
	"testing"

	"sqlml/internal/analyzers/analyzertest"
	"sqlml/internal/analyzers/lockhygiene"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata", lockhygiene.Analyzer, "lockhygiene")
}
