package row

import (
	"fmt"
	"sync"
)

// Column-major batches. A ColBatch is the vectorized twin of the engine's
// row-major batch: one typed Vector per column (int64 / float64 / bool
// backing arrays, byte-sliced strings), a per-column null bitmap, and a
// batch-level selection vector. Operators evaluate whole columns in tight
// loops; filters refine the selection vector instead of copying rows; rows
// are materialized only at the UDF and wire boundaries.
//
// Validity contract (the columnar extension of the RowBatch rule enforced
// by the batchretain analyzer): a *ColBatch returned by an iterator's
// NextCol — and every Vector, backing slice, or selection vector aliasing
// it — is only valid until the following NextCol call. Producers recycle
// the batch's vectors, so anything kept longer must be copied out first
// (Rows materializes owning copies).

// DefaultBatchSize is how many rows flow through the execution pipeline
// per batch, and the row budget of one v2 wire block (BlockTargetRows):
// vector capacity and wire framing agree by construction. Large enough to
// amortize per-batch overhead, small enough that a full pipeline holds
// O(batch × depth) rows instead of O(dataset).
const DefaultBatchSize = 1024

// Vector is one column of a ColBatch: a typed value array plus a null
// bitmap. Exactly one of the backing arrays is in use, per Type. String
// payloads are byte-sliced: one concatenated byte slab plus n+1 offsets,
// so a string column costs two allocations per batch, not one per value.
//
// A Vector is either built sequentially (Reset + Append*) or pre-sized for
// positional writes (ResetDense + Set*); string vectors support only
// sequential building (PadTo fills gaps when writing a sparse selection).
type Vector struct {
	typ Type
	n   int

	Ints   []int64
	Floats []float64
	Bools  []bool

	bytes []byte   // concatenated string payloads
	offs  []uint32 // len n+1 once built; offs[0] == 0

	nulls    []uint64 // 1 bit per slot; nil or all-zero = no nulls
	hasNulls bool
}

// Type returns the vector's column type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the vector's physical length.
func (v *Vector) Len() int { return v.n }

// HasNulls reports whether any slot has been marked NULL since the last
// reset.
func (v *Vector) HasNulls() bool { return v.hasNulls }

// Reset clears the vector to an empty sequential builder of type t,
// keeping backing capacity.
func (v *Vector) Reset(t Type) {
	v.typ = t
	v.n = 0
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Bools = v.Bools[:0]
	v.bytes = v.bytes[:0]
	v.offs = append(v.offs[:0], 0)
	v.clearNulls(0)
}

// ResetDense clears the vector and pre-sizes it for n positional writes.
// Value slots start zeroed; null bits start cleared. Not supported for
// VARCHAR (string vectors build sequentially).
func (v *Vector) ResetDense(t Type, n int) {
	if t == TypeString {
		panic("row: ResetDense on a VARCHAR vector; build strings sequentially")
	}
	v.typ = t
	v.n = n
	v.bytes = v.bytes[:0]
	v.offs = v.offs[:0]
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Bools = v.Bools[:0]
	switch t {
	case TypeInt:
		v.Ints = growZeroed(v.Ints, n)
	case TypeFloat:
		v.Floats = growZeroed(v.Floats, n)
	case TypeBool:
		if cap(v.Bools) < n {
			v.Bools = make([]bool, n)
		} else {
			v.Bools = v.Bools[:n]
			for i := range v.Bools {
				v.Bools[i] = false
			}
		}
	}
	v.clearNulls(n)
}

func growZeroed[T int64 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// clearNulls sizes the bitmap for n slots and zeroes it.
func (v *Vector) clearNulls(n int) {
	words := (n + 63) / 64
	if cap(v.nulls) < words {
		v.nulls = make([]uint64, words)
	} else {
		v.nulls = v.nulls[:words]
		for i := range v.nulls {
			v.nulls[i] = 0
		}
	}
	v.hasNulls = false
}

// ensureNullWord grows the bitmap to cover slot i (sequential building).
func (v *Vector) ensureNullWord(i int) {
	for len(v.nulls)*64 <= i {
		v.nulls = append(v.nulls, 0)
	}
}

// SetNull marks slot i NULL.
func (v *Vector) SetNull(i int) {
	v.ensureNullWord(i)
	v.nulls[i>>6] |= 1 << (uint(i) & 63)
	v.hasNulls = true
}

// Null reports whether slot i is NULL.
func (v *Vector) Null(i int) bool {
	if !v.hasNulls {
		return false
	}
	w := i >> 6
	if w >= len(v.nulls) {
		return false
	}
	return v.nulls[w]&(1<<(uint(i)&63)) != 0
}

// NullWords exposes the raw bitmap (one bit per slot, little-endian words)
// for word-wise kernels; it may be shorter than the vector when no nulls
// were set past a point.
func (v *Vector) NullWords() []uint64 { return v.nulls }

// OrNullsFrom ORs o's null bitmap into v's — the null-propagation step of
// arithmetic kernels, word-wise.
func (v *Vector) OrNullsFrom(o *Vector) {
	if !o.hasNulls {
		return
	}
	for len(v.nulls) < len(o.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	for i, w := range o.nulls {
		v.nulls[i] |= w
	}
	v.hasNulls = true
}

// AppendInt appends a non-null BIGINT slot.
func (v *Vector) AppendInt(x int64) { v.Ints = append(v.Ints, x); v.n++ }

// AppendFloat appends a non-null DOUBLE slot.
func (v *Vector) AppendFloat(x float64) { v.Floats = append(v.Floats, x); v.n++ }

// AppendBool appends a non-null BOOLEAN slot.
func (v *Vector) AppendBool(x bool) { v.Bools = append(v.Bools, x); v.n++ }

// AppendBytes appends a non-null VARCHAR slot from raw bytes.
func (v *Vector) AppendBytes(b []byte) {
	v.bytes = append(v.bytes, b...)
	v.offs = append(v.offs, uint32(len(v.bytes)))
	v.n++
}

// AppendString appends a non-null VARCHAR slot.
func (v *Vector) AppendString(s string) {
	v.bytes = append(v.bytes, s...)
	v.offs = append(v.offs, uint32(len(v.bytes)))
	v.n++
}

// AppendNull appends a NULL slot of the vector's type.
func (v *Vector) AppendNull() {
	switch v.typ {
	case TypeInt:
		v.Ints = append(v.Ints, 0)
	case TypeFloat:
		v.Floats = append(v.Floats, 0)
	case TypeBool:
		v.Bools = append(v.Bools, false)
	case TypeString:
		v.offs = append(v.offs, uint32(len(v.bytes)))
	}
	v.SetNull(v.n)
	v.n++
}

// PadTo appends NULL slots until the vector's length reaches p — the gap
// filler for kernels writing a sparse selection into a sequential
// (string) vector. Padded slots are never selected, so their value is
// irrelevant; NULL keeps them inert.
func (v *Vector) PadTo(p int) {
	for v.n < p {
		v.AppendNull()
	}
}

// AppendFrom appends slot p of src, a vector of the same type — the typed
// cell copy boundary shims use to compact a selection without
// materializing Values.
func (v *Vector) AppendFrom(src *Vector, p int) {
	if src.Null(p) {
		v.AppendNull()
		return
	}
	switch v.typ {
	case TypeInt:
		v.AppendInt(src.Ints[p])
	case TypeFloat:
		v.AppendFloat(src.Floats[p])
	case TypeBool:
		v.AppendBool(src.Bools[p])
	case TypeString:
		v.AppendBytes(src.Bytes(p))
	}
}

// AppendValue appends one Value slot (the row→column transposition step).
func (v *Vector) AppendValue(val Value) {
	if val.Null {
		v.AppendNull()
		return
	}
	switch v.typ {
	case TypeInt:
		v.AppendInt(val.i)
	case TypeFloat:
		if val.Kind == TypeInt {
			v.AppendFloat(float64(val.i))
		} else {
			v.AppendFloat(val.f)
		}
	case TypeBool:
		v.AppendBool(val.b)
	case TypeString:
		v.AppendString(val.s)
	}
}

// Bytes returns the raw payload of VARCHAR slot i (zero-copy; aliases the
// vector's slab, so it obeys the batch validity window).
func (v *Vector) Bytes(i int) []byte {
	return v.bytes[v.offs[i]:v.offs[i+1]]
}

// StringAt returns VARCHAR slot i as a string (allocates a copy).
func (v *Vector) StringAt(i int) string { return string(v.Bytes(i)) }

// StringSlab returns the concatenated payload bytes and offsets of a
// VARCHAR vector; boundary shims copy the slab once per batch instead of
// once per value.
func (v *Vector) StringSlab() (payload []byte, offs []uint32) { return v.bytes, v.offs }

// ValueAt materializes slot i as a Value (VARCHAR slots allocate).
func (v *Vector) ValueAt(i int) Value {
	if v.Null(i) {
		return NullOf(v.typ)
	}
	switch v.typ {
	case TypeInt:
		return Int(v.Ints[i])
	case TypeFloat:
		return Float(v.Floats[i])
	case TypeBool:
		return Bool(v.Bools[i])
	default:
		return String_(v.StringAt(i))
	}
}

// ColBatch is a column-major batch: one Vector per column, a physical row
// count, and an optional selection vector listing the live physical row
// indices in ascending order (nil = every row is live).
type ColBatch struct {
	cols []Vector
	n    int
	sel  []int32
}

// NewColBatch returns a batch with one empty vector per column type.
func NewColBatch(types []Type) *ColBatch {
	b := &ColBatch{}
	b.Reset(types)
	return b
}

// Reset clears the batch to zero rows over the given column types, keeping
// vector capacity.
func (b *ColBatch) Reset(types []Type) {
	if cap(b.cols) < len(types) {
		b.cols = make([]Vector, len(types))
	} else {
		b.cols = b.cols[:len(types)]
	}
	for i := range b.cols {
		b.cols[i].Reset(types[i])
	}
	b.n = 0
	b.sel = nil
}

// NumCols returns the column count.
func (b *ColBatch) NumCols() int { return len(b.cols) }

// Col returns column i's vector (aliasing the batch).
func (b *ColBatch) Col(i int) *Vector { return &b.cols[i] }

// SetCol replaces column i's vector header (the backing arrays are shared
// with v — projection outputs assemble themselves this way, zero-copy).
func (b *ColBatch) SetCol(i int, v *Vector) { b.cols[i] = *v }

// FullLen returns the physical row count, ignoring the selection.
func (b *ColBatch) FullLen() int { return b.n }

// SetFullLen declares the physical row count (projection outputs whose
// vectors were written positionally).
func (b *ColBatch) SetFullLen(n int) { b.n = n }

// Len returns the live row count under the selection vector.
func (b *ColBatch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Sel returns the selection vector (nil = all rows live). The slice
// aliases the batch.
func (b *ColBatch) Sel() []int32 { return b.sel }

// SetSel installs a selection vector of ascending physical indices; the
// batch takes no copy.
func (b *ColBatch) SetSel(sel []int32) { b.sel = sel }

// ClearSel removes the selection (all physical rows live again).
func (b *ColBatch) ClearSel() { b.sel = nil }

// SelPos maps live-row ordinal si to its physical row index.
func (b *ColBatch) SelPos(si int) int {
	if b.sel != nil {
		return int(b.sel[si])
	}
	return si
}

// AppendRow transposes one row onto the batch's columns.
func (b *ColBatch) AppendRow(r Row) {
	for i := range b.cols {
		b.cols[i].AppendValue(r[i])
	}
	b.n++
}

// Rows materializes the live rows, appended to dst. The returned rows own
// their storage: values come from one flat backing array per call and
// string payloads from one immutable copy of each VARCHAR slab, so the
// rows survive the batch being recycled — this is the row shim at UDF and
// wire boundaries.
func (b *ColBatch) Rows(dst []Row) []Row {
	k := b.Len()
	if k == 0 {
		return dst
	}
	w := len(b.cols)
	flat := make([]Value, k*w)
	// One immutable copy per VARCHAR column; substring headers into it are
	// zero-copy and own nothing mutable.
	slabs := make([]string, len(b.cols))
	for c := range b.cols {
		if b.cols[c].typ == TypeString {
			slabs[c] = string(b.cols[c].bytes)
		}
	}
	for si := 0; si < k; si++ {
		p := b.SelPos(si)
		r := flat[si*w : (si+1)*w : (si+1)*w]
		for c := range b.cols {
			col := &b.cols[c]
			if col.Null(p) {
				r[c] = NullOf(col.typ)
				continue
			}
			switch col.typ {
			case TypeInt:
				r[c] = Int(col.Ints[p])
			case TypeFloat:
				r[c] = Float(col.Floats[p])
			case TypeBool:
				r[c] = Bool(col.Bools[p])
			default:
				r[c] = String_(slabs[c][col.offs[p]:col.offs[p+1]])
			}
		}
		dst = append(dst, r)
	}
	return dst
}

// RowAt materializes one live row (by ordinal under the selection) into
// dst, growing it as needed. Unlike Rows, string values alias the batch's
// slab — the caller must copy anything it keeps past the validity window.
func (b *ColBatch) RowAt(si int, dst Row) Row {
	p := b.SelPos(si)
	return b.PhysicalRow(p, dst)
}

// PhysicalRow materializes physical row p into dst (string values alias
// the batch's slab; see RowAt).
func (b *ColBatch) PhysicalRow(p int, dst Row) Row {
	dst = dst[:0]
	for c := range b.cols {
		col := &b.cols[c]
		if col.Null(p) {
			dst = append(dst, NullOf(col.typ))
			continue
		}
		switch col.typ {
		case TypeInt:
			dst = append(dst, Int(col.Ints[p]))
		case TypeFloat:
			dst = append(dst, Float(col.Floats[p]))
		case TypeBool:
			dst = append(dst, Bool(col.Bools[p]))
		default:
			dst = append(dst, Value{Kind: TypeString, s: unsafeStringView(col.Bytes(p))})
		}
	}
	return dst
}

// unsafeStringView converts bytes to a string without copying. The result
// aliases b and must not outlive it — callers of PhysicalRow/RowAt own
// that obligation (the fallback-eval and probe shims consume the row
// within the batch's validity window).
func unsafeStringView(b []byte) string {
	// A plain conversion copies; the shim tolerates that cost for
	// correctness — revisit only if profiles say so.
	return string(b)
}

// FromRows transposes rows[lo:hi] into the batch (after Reset to the
// given types).
func (b *ColBatch) FromRows(types []Type, rows []Row) {
	b.Reset(types)
	for _, r := range rows {
		b.AppendRow(r)
	}
}

// colBatchPool recycles ColBatches (with their vectors' backing arrays)
// across operator instances; batches are handed out by GetColBatch and
// returned by their owner's Close.
var colBatchPool = sync.Pool{New: func() any { return &ColBatch{} }}

// GetColBatch returns a pooled batch reset to the given column types.
func GetColBatch(types []Type) *ColBatch {
	b := colBatchPool.Get().(*ColBatch)
	b.Reset(types)
	return b
}

// PutColBatch returns a batch obtained from GetColBatch to the pool. The
// caller must not touch it afterwards.
func PutColBatch(b *ColBatch) {
	if b != nil {
		colBatchPool.Put(b)
	}
}

// SchemaTypes extracts the column types of a schema — the shape argument
// to ColBatch construction.
func SchemaTypes(s Schema) []Type {
	ts := make([]Type, len(s.Cols))
	for i, c := range s.Cols {
		ts[i] = c.Type
	}
	return ts
}

// Conforms checks the batch shape against a schema (column count and
// types); the columnar twin of Row.Conforms for operator boundaries.
func (b *ColBatch) Conforms(s Schema) error {
	if len(b.cols) != len(s.Cols) {
		return fmt.Errorf("row: batch has %d columns, schema %q has %d", len(b.cols), s.String(), len(s.Cols))
	}
	for i := range b.cols {
		if b.cols[i].typ != s.Cols[i].Type {
			return fmt.Errorf("row: column %d is %s, schema wants %s", i, b.cols[i].typ, s.Cols[i].Type)
		}
	}
	return nil
}
