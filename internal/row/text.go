package row

import (
	"fmt"
	"strings"
)

// The text table format used on the simulated DFS is a line-oriented,
// comma-separated format with CSV-style quoting:
//
//   - fields are separated by ','
//   - a field containing ',' '"' '\\' or '\n' is wrapped in double quotes;
//     inside quotes, '"' doubles to '""', backslash escapes to '\\\\', and a
//     newline escapes to the two characters '\\n' — an encoded line therefore
//     never contains a physical newline, so files stay line-splittable
//   - NULL encodes as the unquoted empty field; the empty *string* encodes
//     as "" (a quoted empty field), keeping the two distinguishable
//
// This mirrors the "text format on HDFS" storage the paper's experiments
// use for both input tables.

func needsQuoting(s string) bool {
	return s == "" || strings.ContainsAny(s, ",\"\n\\")
}

func escapeQuoted(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			b.WriteString(`""`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('"')
}

// EncodeField renders one value as a text-format field.
func EncodeField(v Value) string {
	if v.Null {
		return ""
	}
	s := v.String()
	if v.Kind == TypeString && needsQuoting(s) {
		var b strings.Builder
		escapeQuoted(&b, s)
		return b.String()
	}
	return s
}

// EncodeLine renders a row as one text-format line (without newline).
func EncodeLine(r Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(EncodeField(v))
	}
	return b.String()
}

// AppendLine appends the encoded row plus a trailing newline to dst and
// returns the extended slice. It avoids intermediate string allocation on
// the hot write path.
func AppendLine(dst []byte, r Row) []byte {
	for i, v := range r {
		if i > 0 {
			dst = append(dst, ',')
		}
		if v.Null {
			continue
		}
		s := v.String()
		if v.Kind == TypeString && needsQuoting(s) {
			dst = append(dst, '"')
			for j := 0; j < len(s); j++ {
				switch s[j] {
				case '"':
					dst = append(dst, '"', '"')
				case '\\':
					dst = append(dst, '\\', '\\')
				case '\n':
					dst = append(dst, '\\', 'n')
				default:
					dst = append(dst, s[j])
				}
			}
			dst = append(dst, '"')
		} else {
			dst = append(dst, s...)
		}
	}
	return append(dst, '\n')
}

// SplitLine splits one text-format line into raw fields, honouring quoting.
// The returned quoted flags report whether each field was quoted (a quoted
// empty field is the empty string; an unquoted one is NULL).
func SplitLine(line string) (fields []string, quoted []bool, err error) {
	i := 0
	for {
		if i >= len(line) {
			// Trailing empty field (line ends with separator or is empty).
			fields = append(fields, "")
			quoted = append(quoted, false)
			return fields, quoted, nil
		}
		if line[i] == '"' {
			var b strings.Builder
			i++
			for {
				if i >= len(line) {
					return nil, nil, fmt.Errorf("row: unterminated quote in line %q", line)
				}
				if line[i] == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				if line[i] == '\\' {
					if i+1 >= len(line) {
						return nil, nil, fmt.Errorf("row: dangling escape in line %q", line)
					}
					switch line[i+1] {
					case '\\':
						b.WriteByte('\\')
					case 'n':
						b.WriteByte('\n')
					default:
						return nil, nil, fmt.Errorf("row: bad escape \\%c in line %q", line[i+1], line)
					}
					i += 2
					continue
				}
				b.WriteByte(line[i])
				i++
			}
			fields = append(fields, b.String())
			quoted = append(quoted, true)
			if i >= len(line) {
				return fields, quoted, nil
			}
			if line[i] != ',' {
				return nil, nil, fmt.Errorf("row: garbage after closing quote in line %q", line)
			}
			i++
			continue
		}
		j := strings.IndexByte(line[i:], ',')
		if j < 0 {
			fields = append(fields, line[i:])
			quoted = append(quoted, false)
			return fields, quoted, nil
		}
		fields = append(fields, line[i:i+j])
		quoted = append(quoted, false)
		i += j + 1
	}
}

// DecodeLine parses one text-format line into a row conforming to schema.
func DecodeLine(line string, s Schema) (Row, error) {
	fields, quoted, err := SplitLine(line)
	if err != nil {
		return nil, err
	}
	if len(fields) != s.Len() {
		return nil, fmt.Errorf("row: line has %d fields, schema has %d: %q", len(fields), s.Len(), line)
	}
	out := make(Row, len(fields))
	for i, f := range fields {
		if f == "" && !quoted[i] {
			out[i] = NullOf(s.Cols[i].Type)
			continue
		}
		v, err := String_(f).Coerce(s.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("row: column %q: %w", s.Cols[i].Name, err)
		}
		out[i] = v
	}
	return out, nil
}
