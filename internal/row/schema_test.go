package row

import "testing"

func TestNewSchemaRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewSchema(Column{"a", TypeInt}, Column{"A", TypeFloat}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, err := NewSchema(Column{"", TypeInt}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestColIndexCaseInsensitive(t *testing.T) {
	s := MustSchema(Column{"Age", TypeInt}, Column{"gender", TypeString})
	if s.ColIndex("age") != 0 || s.ColIndex("GENDER") != 1 {
		t.Error("lookup should be case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column should return -1")
	}
	c, ok := s.Col("AGE")
	if !ok || c.Type != TypeInt {
		t.Error("Col lookup failed")
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString}, Column{"c", TypeFloat})
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "c" || p.Cols[1].Name != "a" {
		t.Errorf("Project order wrong: %v", p)
	}
	if _, err := s.Project("zzz"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestSchemaConcat(t *testing.T) {
	a := MustSchema(Column{"x", TypeInt})
	b := MustSchema(Column{"y", TypeFloat})
	c, err := a.Concat(b)
	if err != nil || c.Len() != 2 {
		t.Fatalf("Concat: %v %v", c, err)
	}
	if _, err := a.Concat(a); err == nil {
		t.Error("Concat with duplicate names accepted")
	}
}

func TestSchemaStringParseRoundTrip(t *testing.T) {
	s := MustSchema(
		Column{"id", TypeInt}, Column{"amt", TypeFloat},
		Column{"name", TypeString}, Column{"ok", TypeBool},
	)
	back, err := ParseSchema(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Errorf("round trip: got %v want %v", back, s)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, in := range []string{"a", "a BLOB", "a BIGINT extra"} {
		if _, err := ParseSchema(in); err == nil {
			t.Errorf("ParseSchema(%q) should fail", in)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Column{"x", TypeInt})
	b := MustSchema(Column{"X", TypeInt})
	c := MustSchema(Column{"x", TypeFloat})
	if !a.Equal(b) {
		t.Error("names compare case-insensitively")
	}
	if a.Equal(c) {
		t.Error("type mismatch should not be equal")
	}
}
