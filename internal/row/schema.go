package row

import (
	"fmt"
	"strings"
)

// Column describes one column of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of named, typed columns.
//
// Schemas are immutable by convention: operations return new schemas.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		key := strings.ToLower(c.Name)
		if c.Name == "" {
			return Schema{}, fmt.Errorf("row: empty column name")
		}
		if seen[key] {
			return Schema{}, fmt.Errorf("row: duplicate column %q", c.Name)
		}
		seen[key] = true
	}
	return Schema{Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column (case-insensitive),
// or -1 when absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Col returns the named column, reporting whether it exists.
func (s Schema) Col(name string) (Column, bool) {
	i := s.ColIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Cols[i], true
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Project returns a schema containing only the named columns, in the given
// order. It errors on unknown names.
func (s Schema) Project(names ...string) (Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, ok := s.Col(n)
		if !ok {
			return Schema{}, fmt.Errorf("row: unknown column %q", n)
		}
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}

// Concat appends another schema's columns, failing on duplicates.
func (s Schema) Concat(o Schema) (Schema, error) {
	return NewSchema(append(append([]Column{}, s.Cols...), o.Cols...)...)
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, o.Cols[i].Name) || s.Cols[i].Type != o.Cols[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "name TYPE, name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// ParseSchema parses the String form back into a schema.
func ParseSchema(s string) (Schema, error) {
	var cols []Column
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return Schema{}, fmt.Errorf("row: bad column spec %q", part)
		}
		t, err := ParseType(fields[1])
		if err != nil {
			return Schema{}, err
		}
		cols = append(cols, Column{Name: fields[0], Type: t})
	}
	return NewSchema(cols...)
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row safe to retain.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows are value-wise equal.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Conforms checks that the row's arity and value kinds match the schema.
func (r Row) Conforms(s Schema) error {
	if len(r) != s.Len() {
		return fmt.Errorf("row: arity %d does not match schema arity %d", len(r), s.Len())
	}
	for i, v := range r {
		if !v.Null && v.Kind != s.Cols[i].Type {
			return fmt.Errorf("row: column %q is %s, value is %s", s.Cols[i].Name, s.Cols[i].Type, v.Kind)
		}
	}
	return nil
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.Null {
			parts[i] = "NULL"
		} else if v.Kind == TypeString {
			parts[i] = "'" + v.AsString() + "'"
		} else {
			parts[i] = v.String()
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
