package row

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Columnar block frames (wire protocol v3). Where a v2 block ships rows —
// each one re-tagged value by value — a v3 frame ships a whole ColBatch
// column-major: per-column typed vectors with their null bitmaps, the
// selection vector applied at encode time, and a lightweight encoding
// chosen per column per block. The receiving side decodes straight into a
// pooled ColBatch, so the transfer path runs column-at-a-time end to end
// and rows are materialized only for v1/v2 peers and UDF shims.
//
// v3 frame layout (all little-endian; shares the v1/v2 length word):
//
//	uint32  blockFlag | n   (top bit marks a block frame; low 31 bits are
//	                         the byte count that follows this word)
//	uint8   version         (WireProtoCol)
//	uint8   flags           (bit 0: per-column compression was disabled)
//	uint32  row count
//	uint32  checksum        (FNV-1a-32 over everything after this field)
//	uint16  column count
//	per column:
//	  uint8   column type
//	  uint8   encoding      (colEncRaw / colEncIntFOR / colEncBoolPack /
//	                         colEncDict)
//	  uint8   has-nulls     (1 ⇒ a null bitmap follows: ceil(rows/64)
//	                         little-endian uint64 words, bit i = slot i NULL)
//	  [null bitmap]
//	  uint32  payload length
//	  payload
//
// Per-column encodings and their selection rules:
//
//   - BIGINT: frame-of-reference + varint — an 8-byte base (the signed
//     minimum of the block's non-null values) followed by one uvarint
//     delta per slot (modular uint64 arithmetic, so any int64 range is
//     exact; NULL slots write delta 0). Chosen when the encoded size beats
//     raw 8-bytes-per-slot, which it does whenever a block's values
//     cluster — ids, timestamps, recoded categoricals.
//   - VARCHAR: dictionary — distinct values (in first-appearance order)
//     then one uvarint code per slot, the same low-NDV bet the transform
//     recode map makes. Abandoned past colDictMaxEntries distinct values
//     or when the dictionary would not beat raw (uvarint length + bytes
//     per slot).
//   - BOOLEAN: bit-packed, 1 bit per slot.
//   - DOUBLE: raw IEEE754, 8 bytes per slot (floats rarely repeat; the
//     uncompressed fallback is the encoding).
//
// Every encoding writes exactly one entry per slot, NULL or not, so the
// decoder never needs the bitmap to find payload boundaries — corrupt
// bitmaps cannot desynchronize the parse, and the checksum catches the
// rest before any vector is sized.

const (
	// WireProtoCol is the columnar block-frame wire format (v3).
	WireProtoCol = 3

	// colTailLen is the fixed v3 header after the length word:
	// version(1) + flags(1) + rowCount(4) + checksum(4) + colCount(2).
	colTailLen = 12

	// colFlagRawOnly marks a frame whose columns skipped compression (the
	// ablation grid's uncompressed arm); purely informational.
	colFlagRawOnly = 1

	colEncRaw      = 0 // type-sized slots (VARCHAR: uvarint length + bytes)
	colEncIntFOR   = 1 // BIGINT frame-of-reference base + uvarint deltas
	colEncBoolPack = 2 // BOOLEAN 1 bit per slot
	colEncDict     = 3 // VARCHAR dictionary + uvarint code per slot

	// colDictMaxEntries caps the per-block dictionary; blocks with more
	// distinct strings fall back to raw.
	colDictMaxEntries = 256

	// colMaxCols bounds the column count a decoder will accept, guarding
	// corrupt headers (no schema in the tree is near this).
	colMaxCols = 4096
)

// fnv1a32 is the FNV-1a hash over b — the frame checksum.
func fnv1a32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// AppendColBlock appends one v3 columnar frame carrying b's live rows
// (selection applied) to dst — length word included — and returns dst.
// With compress false every column uses its raw encoding (the ablation
// grid's uncompressed arm). Zero live rows append nothing.
func AppendColBlock(dst []byte, b *ColBatch, compress bool) []byte {
	rows := b.Len()
	if rows == 0 {
		return dst
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length word, patched below
	flags := byte(0)
	if !compress {
		flags = colFlagRawOnly
	}
	dst = append(dst, WireProtoCol, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	dst = append(dst, 0, 0, 0, 0) // checksum, patched below
	sumStart := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(b.NumCols()))
	for c := 0; c < b.NumCols(); c++ {
		dst = appendColVector(dst, b.Col(c), b, rows, compress)
	}
	binary.LittleEndian.PutUint32(dst[start:], blockFlag|uint32(len(dst)-start-4))
	binary.LittleEndian.PutUint32(dst[start+10:], fnv1a32(dst[sumStart:]))
	return dst
}

// appendColVector encodes one column's live slots: type byte, encoding
// byte, optional null bitmap, length-prefixed payload.
func appendColVector(dst []byte, v *Vector, b *ColBatch, rows int, compress bool) []byte {
	dst = append(dst, byte(v.typ))
	enc := byte(colEncRaw)
	if compress {
		switch v.typ {
		case TypeInt:
			if base, size := intFORSize(v, b, rows); size < 8*rows {
				return appendIntFOR(dst, v, b, rows, base)
			}
		case TypeBool:
			enc = colEncBoolPack
		case TypeString:
			if entries, ids, ok := dictPlan(v, b, rows); ok {
				return appendDict(dst, v, b, rows, entries, ids)
			}
		}
	}
	dst = append(dst, enc)
	dst = appendColNulls(dst, v, b, rows)
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	switch v.typ {
	case TypeInt:
		for si := 0; si < rows; si++ {
			var u uint64
			if p := b.SelPos(si); !v.Null(p) {
				u = uint64(v.Ints[p])
			}
			dst = binary.LittleEndian.AppendUint64(dst, u)
		}
	case TypeFloat:
		for si := 0; si < rows; si++ {
			var u uint64
			if p := b.SelPos(si); !v.Null(p) {
				u = math.Float64bits(v.Floats[p])
			}
			dst = binary.LittleEndian.AppendUint64(dst, u)
		}
	case TypeBool:
		if enc == colEncBoolPack {
			packStart := len(dst)
			dst = append(dst, make([]byte, (rows+7)/8)...)
			for si := 0; si < rows; si++ {
				if p := b.SelPos(si); !v.Null(p) && v.Bools[p] {
					dst[packStart+si/8] |= 1 << (uint(si) & 7)
				}
			}
		} else {
			for si := 0; si < rows; si++ {
				if p := b.SelPos(si); !v.Null(p) && v.Bools[p] {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		}
	case TypeString:
		for si := 0; si < rows; si++ {
			p := b.SelPos(si)
			if v.Null(p) {
				dst = append(dst, 0) // uvarint(0): empty placeholder
				continue
			}
			s := v.Bytes(p)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	binary.LittleEndian.PutUint32(dst[lenPos:], uint32(len(dst)-lenPos-4))
	return dst
}

// appendColNulls writes the has-nulls byte and, when any live slot is
// NULL, the compacted bitmap (selection applied) as little-endian uint64
// words.
func appendColNulls(dst []byte, v *Vector, b *ColBatch, rows int) []byte {
	if !v.hasNulls {
		return append(dst, 0)
	}
	words := (rows + 63) / 64
	bitmap := make([]uint64, words)
	any := false
	for si := 0; si < rows; si++ {
		if v.Null(b.SelPos(si)) {
			bitmap[si>>6] |= 1 << (uint(si) & 63)
			any = true
		}
	}
	if !any {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	for _, w := range bitmap {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// intFORSize scans a BIGINT column's live slots and returns the
// frame-of-reference base (the signed minimum) and the encoded payload
// size (base + one uvarint delta per slot, NULL slots delta 0).
func intFORSize(v *Vector, b *ColBatch, rows int) (base int64, size int) {
	size = 8
	first := true
	for si := 0; si < rows; si++ {
		p := b.SelPos(si)
		if v.Null(p) {
			continue
		}
		if x := v.Ints[p]; first || x < base {
			base, first = x, false
		}
	}
	ub := uint64(base)
	for si := 0; si < rows; si++ {
		p := b.SelPos(si)
		if v.Null(p) {
			size++
			continue
		}
		size += uvarintLen(uint64(v.Ints[p]) - ub)
	}
	return base, size
}

// appendIntFOR emits a BIGINT column frame-of-reference encoded.
func appendIntFOR(dst []byte, v *Vector, b *ColBatch, rows int, base int64) []byte {
	dst = append(dst, colEncIntFOR)
	dst = appendColNulls(dst, v, b, rows)
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(base))
	ub := uint64(base)
	for si := 0; si < rows; si++ {
		p := b.SelPos(si)
		if v.Null(p) {
			dst = append(dst, 0)
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(v.Ints[p])-ub)
	}
	binary.LittleEndian.PutUint32(dst[lenPos:], uint32(len(dst)-lenPos-4))
	return dst
}

// dictPlan scans a VARCHAR column's live slots and decides whether a
// per-block dictionary beats raw. It returns the distinct values in code
// order (aliasing the vector's slab; valid for the encode only) and the
// per-slot codes, the same build-once-look-up-densely shape the transform
// recode map uses (RecodeMap.IDBytes): map indexing with a string(bytes)
// key does not allocate.
func dictPlan(v *Vector, b *ColBatch, rows int) (entries [][]byte, ids []uint64, ok bool) {
	codes := make(map[string]uint64, 16)
	ids = make([]uint64, rows)
	rawSize, dictSize := 0, 0
	for si := 0; si < rows; si++ {
		p := b.SelPos(si)
		if v.Null(p) {
			rawSize++
			dictSize++
			continue
		}
		s := v.Bytes(p)
		rawSize += uvarintLen(uint64(len(s))) + len(s)
		id, seen := codes[string(s)]
		if !seen {
			if len(entries) >= colDictMaxEntries {
				return nil, nil, false
			}
			id = uint64(len(entries))
			codes[string(s)] = id
			entries = append(entries, s)
			dictSize += uvarintLen(uint64(len(s))) + len(s)
		}
		dictSize += uvarintLen(id)
		ids[si] = id
	}
	dictSize += uvarintLen(uint64(len(entries)))
	if dictSize >= rawSize {
		return nil, nil, false
	}
	return entries, ids, true
}

// appendDict emits a VARCHAR column dictionary-encoded.
func appendDict(dst []byte, v *Vector, b *ColBatch, rows int, entries [][]byte, ids []uint64) []byte {
	dst = append(dst, colEncDict)
	dst = appendColNulls(dst, v, b, rows)
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e)))
		dst = append(dst, e...)
	}
	for si := 0; si < rows; si++ {
		dst = binary.AppendUvarint(dst, ids[si])
	}
	binary.LittleEndian.PutUint32(dst[lenPos:], uint32(len(dst)-lenPos-4))
	return dst
}

// DecodeColBlock decodes one whole v3 frame (length word included) into
// dst, resetting it, and returns the row count. The typical wire path
// goes through Reader.ReadColBatch instead, which skips the re-validation
// of the length word.
func DecodeColBlock(frame []byte, dst *ColBatch) (int, error) {
	if len(frame) < 4+colTailLen {
		return 0, fmt.Errorf("row: short columnar frame (%d bytes)", len(frame))
	}
	word := binary.LittleEndian.Uint32(frame)
	if word&blockFlag == 0 {
		return 0, fmt.Errorf("row: not a block frame")
	}
	if n := int(word &^ blockFlag); n != len(frame)-4 {
		return 0, fmt.Errorf("row: columnar frame length %d, have %d bytes", n, len(frame)-4)
	}
	return decodeColTail(frame[4:], dst)
}

// decodeColTail decodes everything after a v3 frame's length word into
// dst, resetting it, and returns the row count. Corruption — truncation,
// bit flips, lying lengths — yields an error, never a panic, and the
// checksum plus per-encoding size checks run before any vector is sized,
// so a hostile frame cannot force large allocations.
func decodeColTail(tail []byte, dst *ColBatch) (int, error) {
	if len(tail) < colTailLen {
		return 0, fmt.Errorf("row: truncated columnar header")
	}
	if v := tail[0]; v != WireProtoCol {
		return 0, fmt.Errorf("row: unsupported columnar block version %d", v)
	}
	rows := int(binary.LittleEndian.Uint32(tail[2:]))
	if rows > MaxBlockSize {
		return 0, fmt.Errorf("row: columnar frame claims %d rows", rows)
	}
	if want, got := binary.LittleEndian.Uint32(tail[6:]), fnv1a32(tail[10:]); want != got {
		return 0, fmt.Errorf("row: columnar frame checksum mismatch (header %08x, payload %08x)", want, got)
	}
	nc := int(binary.LittleEndian.Uint16(tail[10:]))
	if nc > colMaxCols {
		return 0, fmt.Errorf("row: columnar frame claims %d columns", nc)
	}
	if cap(dst.cols) < nc {
		dst.cols = make([]Vector, nc)
	} else {
		dst.cols = dst.cols[:nc]
	}
	dst.n = 0
	dst.sel = nil
	p := tail[colTailLen:]
	for c := 0; c < nc; c++ {
		rest, err := decodeColVector(p, &dst.cols[c], rows)
		if err != nil {
			return 0, fmt.Errorf("row: column %d: %w", c, err)
		}
		p = rest
	}
	if len(p) != 0 {
		return 0, fmt.Errorf("row: %d trailing columnar frame bytes", len(p))
	}
	dst.n = rows
	return rows, nil
}

// decodeColVector decodes one column section off the front of p into v,
// returning the rest.
func decodeColVector(p []byte, v *Vector, rows int) ([]byte, error) {
	if len(p) < 3 {
		return nil, fmt.Errorf("truncated column header")
	}
	typ, enc, hasNulls := Type(p[0]), p[1], p[2]
	if typ < TypeInt || typ > TypeBool {
		return nil, fmt.Errorf("unknown column type %d", typ)
	}
	if hasNulls > 1 {
		return nil, fmt.Errorf("bad has-nulls byte %d", hasNulls)
	}
	p = p[3:]
	var bitmap []byte
	if hasNulls == 1 {
		nb := (rows + 63) / 64 * 8
		if len(p) < nb {
			return nil, fmt.Errorf("truncated null bitmap")
		}
		bitmap, p = p[:nb], p[nb:]
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("truncated payload length")
	}
	plen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if plen > len(p) {
		return nil, fmt.Errorf("payload of %d bytes, %d remain", plen, len(p))
	}
	payload, rest := p[:plen], p[plen:]
	v.Reset(typ)
	nullAt := func(i int) bool {
		return bitmap != nil && bitmap[i>>3]&(1<<(uint(i)&7)) != 0
	}
	switch {
	case typ == TypeInt && enc == colEncRaw:
		if plen != 8*rows {
			return nil, fmt.Errorf("raw BIGINT payload %d bytes for %d rows", plen, rows)
		}
		for i := 0; i < rows; i++ {
			v.AppendInt(int64(binary.LittleEndian.Uint64(payload[8*i:])))
		}
	case typ == TypeInt && enc == colEncIntFOR:
		if plen < 8+rows {
			return nil, fmt.Errorf("FOR payload %d bytes for %d rows", plen, rows)
		}
		base := binary.LittleEndian.Uint64(payload)
		q := payload[8:]
		for i := 0; i < rows; i++ {
			d, n := binary.Uvarint(q)
			if n <= 0 {
				return nil, fmt.Errorf("bad FOR delta at slot %d", i)
			}
			q = q[n:]
			v.AppendInt(int64(base + d))
		}
		if len(q) != 0 {
			return nil, fmt.Errorf("%d trailing FOR bytes", len(q))
		}
	case typ == TypeFloat && enc == colEncRaw:
		if plen != 8*rows {
			return nil, fmt.Errorf("raw DOUBLE payload %d bytes for %d rows", plen, rows)
		}
		for i := 0; i < rows; i++ {
			v.AppendFloat(math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:])))
		}
	case typ == TypeBool && enc == colEncRaw:
		if plen != rows {
			return nil, fmt.Errorf("raw BOOLEAN payload %d bytes for %d rows", plen, rows)
		}
		for i := 0; i < rows; i++ {
			v.AppendBool(payload[i] != 0)
		}
	case typ == TypeBool && enc == colEncBoolPack:
		if plen != (rows+7)/8 {
			return nil, fmt.Errorf("bit-packed payload %d bytes for %d rows", plen, rows)
		}
		for i := 0; i < rows; i++ {
			v.AppendBool(payload[i/8]&(1<<(uint(i)&7)) != 0)
		}
	case typ == TypeString && enc == colEncRaw:
		if plen < rows {
			return nil, fmt.Errorf("raw VARCHAR payload %d bytes for %d rows", plen, rows)
		}
		q := payload
		for i := 0; i < rows; i++ {
			n, w := binary.Uvarint(q)
			if w <= 0 || n > uint64(len(q)-w) {
				return nil, fmt.Errorf("bad VARCHAR length at slot %d", i)
			}
			v.AppendBytes(q[w : w+int(n)])
			q = q[w+int(n):]
		}
		if len(q) != 0 {
			return nil, fmt.Errorf("%d trailing VARCHAR bytes", len(q))
		}
	case typ == TypeString && enc == colEncDict:
		if plen < 1+rows {
			return nil, fmt.Errorf("dictionary payload %d bytes for %d rows", plen, rows)
		}
		q := payload
		count, w := binary.Uvarint(q)
		if w <= 0 || count > colDictMaxEntries {
			return nil, fmt.Errorf("bad dictionary size")
		}
		q = q[w:]
		entries := make([][]byte, count)
		for e := range entries {
			n, w := binary.Uvarint(q)
			if w <= 0 || n > uint64(len(q)-w) {
				return nil, fmt.Errorf("bad dictionary entry %d", e)
			}
			entries[e] = q[w : w+int(n)]
			q = q[w+int(n):]
		}
		for i := 0; i < rows; i++ {
			id, w := binary.Uvarint(q)
			if w <= 0 {
				return nil, fmt.Errorf("bad dictionary code at slot %d", i)
			}
			q = q[w:]
			if nullAt(i) {
				v.AppendBytes(nil)
				continue
			}
			if id >= count {
				return nil, fmt.Errorf("dictionary code %d of %d at slot %d", id, count, i)
			}
			v.AppendBytes(entries[id])
		}
		if len(q) != 0 {
			return nil, fmt.Errorf("%d trailing dictionary bytes", len(q))
		}
	default:
		return nil, fmt.Errorf("encoding %d invalid for type %s", enc, typ)
	}
	if bitmap != nil {
		words := (rows + 63) / 64
		if cap(v.nulls) < words {
			v.nulls = make([]uint64, words)
		} else {
			v.nulls = v.nulls[:words]
		}
		any := uint64(0)
		for w := 0; w < words; w++ {
			v.nulls[w] = binary.LittleEndian.Uint64(bitmap[8*w:])
			any |= v.nulls[w]
		}
		v.hasNulls = any != 0
	}
	return rest, nil
}
