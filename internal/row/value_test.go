package row

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypeStringParseRoundTrip(t *testing.T) {
	for _, tt := range []Type{TypeInt, TypeFloat, TypeString, TypeBool} {
		got, err := ParseType(tt.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", tt.String(), err)
		}
		if got != tt {
			t.Errorf("round trip of %v produced %v", tt, got)
		}
	}
}

func TestParseTypeAliases(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "float": TypeFloat, "real": TypeFloat,
		"text": TypeString, "string": TypeString, "bool": TypeBool,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("Int accessor")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float accessor")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int widens to float")
	}
	if String_("x").AsString() != "x" {
		t.Error("String accessor")
	}
	if !Bool(true).AsBool() {
		t.Error("Bool accessor")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("null int", func() { NullOf(TypeInt).AsInt() })
	mustPanic("wrong kind", func() { String_("a").AsInt() })
	mustPanic("null float", func() { NullOf(TypeFloat).AsFloat() })
	mustPanic("string as float", func() { String_("1").AsFloat() })
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(2), Float(2.0), true}, // numeric cross-type equality
		{Float(2.5), Float(2.5), true},
		{String_("a"), String_("a"), true},
		{String_("a"), String_("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{NullOf(TypeInt), NullOf(TypeInt), true},
		{NullOf(TypeInt), Int(0), false},
		{String_("1"), Int(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{String_("a"), String_("b"), -1},
		{Bool(false), Bool(true), -1},
		{NullOf(TypeInt), Int(-100), -1}, // NULL sorts first
		{Int(-100), NullOf(TypeInt), 1},
		{NullOf(TypeString), NullOf(TypeString), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	v, err := String_("42").Coerce(TypeInt)
	if err != nil || v.AsInt() != 42 {
		t.Errorf("string->int: %v %v", v, err)
	}
	v, err = String_("2.5").Coerce(TypeFloat)
	if err != nil || v.AsFloat() != 2.5 {
		t.Errorf("string->float: %v %v", v, err)
	}
	v, err = Int(3).Coerce(TypeFloat)
	if err != nil || v.AsFloat() != 3 {
		t.Errorf("int->float: %v %v", v, err)
	}
	v, err = Float(3.9).Coerce(TypeInt)
	if err != nil || v.AsInt() != 3 {
		t.Errorf("float->int truncates: %v %v", v, err)
	}
	v, err = Bool(true).Coerce(TypeString)
	if err != nil || v.AsString() != "true" {
		t.Errorf("bool->string: %v %v", v, err)
	}
	v, err = String_("yes").Coerce(TypeBool)
	if err != nil || !v.AsBool() {
		t.Errorf("string->bool: %v %v", v, err)
	}
	if _, err := String_("abc").Coerce(TypeInt); err == nil {
		t.Error("bad int coercion should fail")
	}
	v, err = NullOf(TypeString).Coerce(TypeInt)
	if err != nil || !v.Null || v.Kind != TypeInt {
		t.Errorf("null coercion keeps null: %v %v", v, err)
	}
}

// genValue produces a random non-degenerate value for property tests.
func genValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Int(r.Int63() - r.Int63())
	case 1:
		return Float(r.NormFloat64() * 1e6)
	case 2:
		const alphabet = "abcXYZ,\"\n'0 é"
		n := r.Intn(12)
		b := make([]rune, n)
		runes := []rune(alphabet)
		for i := range b {
			b[i] = runes[r.Intn(len(runes))]
		}
		return String_(string(b))
	case 3:
		return Bool(r.Intn(2) == 0)
	default:
		return NullOf(Type(r.Intn(4)))
	}
}

func TestCompareIsAntisymmetricAndReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genValue(r), genValue(r)
		if a.Compare(a) != 0 || b.Compare(b) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCompareZeroMeansEqualForComparableKinds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genValue(r), genValue(r)
		if a.Compare(b) != 0 {
			return true
		}
		// NaN floats are the only values where Compare==0 but payloads differ.
		if a.Kind == TypeFloat && !a.Null && math.IsNaN(a.AsFloat()) {
			return true
		}
		// NULLs of different kinds sort together but are not Equal; they
		// never meet in practice because columns are homogeneously typed.
		if a.Null && b.Null && a.Kind != b.Kind {
			return true
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{Int(1), String_("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].AsInt() != 1 {
		t.Error("Clone must not alias the original")
	}
	if !reflect.DeepEqual(r.Clone(), r) {
		t.Error("Clone should be deep-equal to original")
	}
}

func TestRowConforms(t *testing.T) {
	s := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString})
	if err := (Row{Int(1), String_("x")}).Conforms(s); err != nil {
		t.Errorf("conforming row rejected: %v", err)
	}
	if err := (Row{Int(1)}).Conforms(s); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := (Row{String_("x"), String_("y")}).Conforms(s); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := (Row{NullOf(TypeInt), NullOf(TypeString)}).Conforms(s); err != nil {
		t.Errorf("nulls should conform: %v", err)
	}
}
