package row

import (
	"encoding/binary"
	"math"
)

// Key codec: a canonical, prefix-free binary encoding of values and rows
// used by the engine's hash paths (join build/probe, GROUP BY, DISTINCT,
// repartitioning, and transform's distinct-value discovery).
//
// Unlike AppendBinary — the wire format, which carries a frame-length
// prefix per row — the key codec is built for hashing and equality: the
// caller owns the destination buffer and reuses it row after row, so the
// hot paths encode keys with zero per-row allocation.
//
// Encoding per value:
//
//	uint8 tag: 0..3 = NULL of Type(tag); 4=int, 5=float, 6=string, 7=bool
//	payload    int/float: 8 fixed bytes; bool: 1 byte;
//	           string: uvarint length + bytes
//
// Every value encoding is self-delimiting, which makes the concatenation
// prefix-free across rows of equal arity: if enc(r1) is a prefix of
// enc(r2) and len(r1) == len(r2), then r1 == r2 value-by-value. Two rows
// encode to the same bytes iff they are equal under the grouping/DISTINCT
// notion of equality (NULLs of one type equal; float payloads compare by
// bit pattern, exactly as the previous AppendBinary-based keys did).

const (
	keyTagNullBase = 0 // 0..3: NULL of Type(tag)
	keyTagInt      = 4
	keyTagFloat    = 5
	keyTagString   = 6
	keyTagBool     = 7
)

// AppendKeyValue appends the canonical key encoding of v to dst and
// returns the grown buffer. It never allocates beyond growing dst.
func AppendKeyValue(dst []byte, v Value) []byte {
	if v.Null {
		return append(dst, byte(keyTagNullBase+int(v.Kind)))
	}
	switch v.Kind {
	case TypeInt:
		dst = append(dst, keyTagInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.i))
	case TypeFloat:
		dst = append(dst, keyTagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case TypeString:
		dst = append(dst, keyTagString)
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	default: // TypeBool
		dst = append(dst, keyTagBool)
		if v.b {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
}

// AppendNormKeyValue is AppendKeyValue with numeric normalization folded
// in: a non-null BIGINT encodes as the DOUBLE of the same magnitude, so
// BIGINT 2 and DOUBLE 2.0 produce identical key bytes. Join keys use it
// to give cross-type numeric equi-joins the semantics of Value.Equal.
func AppendNormKeyValue(dst []byte, v Value) []byte {
	if !v.Null && v.Kind == TypeInt {
		dst = append(dst, keyTagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v.i)))
	}
	return AppendKeyValue(dst, v)
}

// AppendVectorKey appends the canonical key encoding of slot p of a
// column vector — byte-identical to AppendKeyValue(dst, v.ValueAt(p)), but
// without materializing the Value. The columnar GROUP BY/DISTINCT paths
// encode group keys cell-by-cell with it.
func AppendVectorKey(dst []byte, v *Vector, p int) []byte {
	if v.Null(p) {
		return append(dst, byte(keyTagNullBase+int(v.typ)))
	}
	switch v.typ {
	case TypeInt:
		dst = append(dst, keyTagInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Ints[p]))
	case TypeFloat:
		dst = append(dst, keyTagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Floats[p]))
	case TypeString:
		s := v.Bytes(p)
		dst = append(dst, keyTagString)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	default: // TypeBool
		dst = append(dst, keyTagBool)
		if v.Bools[p] {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
}

// AppendNormVectorKey is AppendVectorKey with the join-key numeric
// normalization of AppendNormKeyValue: non-null BIGINT cells encode as the
// DOUBLE of the same magnitude.
func AppendNormVectorKey(dst []byte, v *Vector, p int) []byte {
	if v.typ == TypeInt && !v.Null(p) {
		dst = append(dst, keyTagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v.Ints[p])))
	}
	return AppendVectorKey(dst, v, p)
}

// AppendKey appends the canonical key encoding of every value of r.
func AppendKey(dst []byte, r Row) []byte {
	for _, v := range r {
		dst = AppendKeyValue(dst, v)
	}
	return dst
}

// FNV-1a constants, inlined so hashing a key is loop + two ops per byte
// with no hash.Hash allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the 64-bit FNV-1a hash of b.
func Hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}
