package row

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func randomColValue(rng *rand.Rand, t Type) Value {
	if rng.Intn(5) == 0 {
		return NullOf(t)
	}
	switch t {
	case TypeInt:
		return Int(rng.Int63n(1000) - 500)
	case TypeFloat:
		return Float(rng.NormFloat64())
	case TypeBool:
		return Bool(rng.Intn(2) == 1)
	default:
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return String_(string(b))
	}
}

func randomColRows(rng *rand.Rand, types []Type, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		r := make(Row, len(types))
		for c, t := range types {
			r[c] = randomColValue(rng, t)
		}
		rows[i] = r
	}
	return rows
}

func TestColBatchRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool}
	rows := randomColRows(rng, types, 100)

	b := NewColBatch(types)
	for _, r := range rows {
		b.AppendRow(r)
	}
	if b.Len() != len(rows) || b.FullLen() != len(rows) {
		t.Fatalf("Len=%d FullLen=%d, want %d", b.Len(), b.FullLen(), len(rows))
	}
	got := b.Rows(nil)
	if len(got) != len(rows) {
		t.Fatalf("materialized %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if !got[i][c].Equal(rows[i][c]) || got[i][c].Null != rows[i][c].Null {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[i][c], rows[i][c])
			}
		}
	}
}

func TestColBatchSelectionVector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []Type{TypeString, TypeInt}
	rows := randomColRows(rng, types, 50)
	b := NewColBatch(types)
	for _, r := range rows {
		b.AppendRow(r)
	}

	var sel []int32
	for i := 0; i < len(rows); i += 3 {
		sel = append(sel, int32(i))
	}
	b.SetSel(sel)
	if b.Len() != len(sel) {
		t.Fatalf("Len=%d want %d", b.Len(), len(sel))
	}
	got := b.Rows(nil)
	if len(got) != len(sel) {
		t.Fatalf("materialized %d, want %d", len(got), len(sel))
	}
	for si, p := range sel {
		for c := range types {
			if !got[si][c].Equal(rows[p][c]) {
				t.Fatalf("sel row %d (phys %d) col %d: got %v want %v", si, p, c, got[si][c], rows[p][c])
			}
		}
	}

	// Empty selection: zero live rows, nothing materialized.
	b.SetSel([]int32{})
	if b.Len() != 0 || len(b.Rows(nil)) != 0 {
		t.Fatalf("empty selection should yield no rows")
	}
	b.ClearSel()
	if b.Len() != len(rows) {
		t.Fatalf("ClearSel: Len=%d want %d", b.Len(), len(rows))
	}
}

// Rows must hand out owning copies: recycling the batch afterwards must not
// corrupt previously materialized rows (the boundary-shim contract).
func TestColBatchRowsSurviveRecycling(t *testing.T) {
	types := []Type{TypeString, TypeInt}
	b := NewColBatch(types)
	b.AppendRow(Row{String_("alpha"), Int(1)})
	b.AppendRow(Row{String_("beta"), Int(2)})
	got := b.Rows(nil)

	b.Reset(types)
	b.AppendRow(Row{String_("POISON-POISON"), Int(-987654321)})
	_ = b.Rows(nil)

	want := []Row{{String_("alpha"), Int(1)}, {String_("beta"), Int(2)}}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("row %d col %d corrupted after recycle: %v", i, c, got[i][c])
			}
		}
	}
}

func TestVectorDenseWrites(t *testing.T) {
	var v Vector
	v.ResetDense(TypeInt, 5)
	v.Ints[0] = 10
	v.Ints[4] = -4
	v.SetNull(2)
	if v.Len() != 5 {
		t.Fatalf("Len=%d", v.Len())
	}
	want := []Value{Int(10), Int(0), NullOf(TypeInt), Int(0), Int(-4)}
	for i, w := range want {
		got := v.ValueAt(i)
		if got.Null != w.Null || (!w.Null && !got.Equal(w)) {
			t.Fatalf("slot %d: got %v want %v", i, got, w)
		}
	}

	// ResetDense must clear stale nulls and values.
	v.ResetDense(TypeInt, 5)
	if v.HasNulls() || v.Null(2) || v.Ints[0] != 0 {
		t.Fatalf("ResetDense left stale state: nulls=%v ints=%v", v.nulls, v.Ints)
	}
}

func TestVectorPadToAndStrings(t *testing.T) {
	var v Vector
	v.Reset(TypeString)
	v.AppendString("aa")
	v.PadTo(3)
	v.AppendBytes([]byte("bb"))
	if v.Len() != 4 {
		t.Fatalf("Len=%d", v.Len())
	}
	if !v.Null(1) || !v.Null(2) || v.Null(0) || v.Null(3) {
		t.Fatalf("pad slots should be null")
	}
	if string(v.Bytes(0)) != "aa" || string(v.Bytes(3)) != "bb" {
		t.Fatalf("got %q %q", v.Bytes(0), v.Bytes(3))
	}
}

func TestVectorOrNullsFrom(t *testing.T) {
	var a, b Vector
	a.ResetDense(TypeFloat, 130)
	b.ResetDense(TypeFloat, 130)
	a.SetNull(0)
	b.SetNull(129)
	a.OrNullsFrom(&b)
	if !a.Null(0) || !a.Null(129) || a.Null(64) {
		t.Fatalf("OrNullsFrom wrong: %v", a.nulls)
	}
	if b.Null(0) {
		t.Fatalf("source bitmap mutated")
	}
}

// Vector-cell key encoding must be byte-identical to the Value-based codec:
// the columnar hash paths rely on it to probe tables built row-wise.
func TestVectorKeyByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool}
	rows := randomColRows(rng, types, 200)
	b := NewColBatch(types)
	for _, r := range rows {
		b.AppendRow(r)
	}
	for p, r := range rows {
		for c := range types {
			want := AppendKeyValue(nil, r[c])
			got := AppendVectorKey(nil, b.Col(c), p)
			if !bytes.Equal(got, want) {
				t.Fatalf("row %d col %d: key bytes %x != %x", p, c, got, want)
			}
			wantN := AppendNormKeyValue(nil, r[c])
			gotN := AppendNormVectorKey(nil, b.Col(c), p)
			if !bytes.Equal(gotN, wantN) {
				t.Fatalf("row %d col %d: norm key bytes %x != %x", p, c, gotN, wantN)
			}
		}
	}
}

// AppendBatchRow must produce frames byte-identical to Append of the
// materialized row, so the sender's columnar fast path cannot change the
// wire format.
func TestBlockEncoderAppendBatchRowByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool}
	rows := randomColRows(rng, types, 64)
	b := NewColBatch(types)
	for _, r := range rows {
		b.AppendRow(r)
	}

	var rowEnc, colEnc BlockEncoder
	for p, r := range rows {
		rowEnc.Append(r)
		colEnc.AppendBatchRow(b, p)
	}
	want := rowEnc.Finish()
	got := colEnc.Finish()
	if !bytes.Equal(got, want) {
		t.Fatalf("columnar block frame differs from row frame: %d vs %d bytes", len(got), len(want))
	}
	RecycleBlockBuffer(want)
	RecycleBlockBuffer(got)
}

func TestBlockTargetRowsIsDefaultBatchSize(t *testing.T) {
	if BlockTargetRows != DefaultBatchSize {
		t.Fatalf("BlockTargetRows=%d, DefaultBatchSize=%d", BlockTargetRows, DefaultBatchSize)
	}
}

func TestSchemaTypesAndConforms(t *testing.T) {
	s, err := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "b", Type: TypeString})
	if err != nil {
		t.Fatal(err)
	}
	ts := SchemaTypes(s)
	if !reflect.DeepEqual(ts, []Type{TypeInt, TypeString}) {
		t.Fatalf("SchemaTypes=%v", ts)
	}
	b := NewColBatch(ts)
	if err := b.Conforms(s); err != nil {
		t.Fatalf("Conforms: %v", err)
	}
	bad := NewColBatch([]Type{TypeInt})
	if err := bad.Conforms(s); err == nil {
		t.Fatalf("Conforms should reject arity mismatch")
	}
}

func TestColBatchPool(t *testing.T) {
	types := []Type{TypeInt}
	b := GetColBatch(types)
	b.AppendRow(Row{Int(7)})
	PutColBatch(b)
	b2 := GetColBatch(types)
	if b2.Len() != 0 {
		t.Fatalf("pooled batch not reset: Len=%d", b2.Len())
	}
	PutColBatch(b2)
}
