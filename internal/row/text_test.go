package row

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return MustSchema(
		Column{"id", TypeInt},
		Column{"amount", TypeFloat},
		Column{"name", TypeString},
		Column{"flag", TypeBool},
	)
}

func TestEncodeDecodeLineSimple(t *testing.T) {
	s := testSchema()
	r := Row{Int(7), Float(2.5), String_("alice"), Bool(true)}
	line := EncodeLine(r)
	if line != "7,2.5,alice,true" {
		t.Fatalf("EncodeLine = %q", line)
	}
	back, err := DecodeLine(line, s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("round trip: got %v want %v", back, r)
	}
}

func TestEncodeDecodeQuoting(t *testing.T) {
	s := MustSchema(Column{"a", TypeString}, Column{"b", TypeString})
	cases := []Row{
		{String_("has,comma"), String_("plain")},
		{String_(`has"quote`), String_("x")},
		{String_("line\nbreak"), String_("y")},
		{String_(""), String_("nonempty")}, // empty string vs NULL
		{NullOf(TypeString), String_("z")},
		{String_(`",",`), String_(`""`)},
	}
	for _, r := range cases {
		line := EncodeLine(r)
		back, err := DecodeLine(line, s)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if !back.Equal(r) {
			t.Errorf("round trip of %v via %q: got %v", r, line, back)
		}
	}
}

func TestDecodeLineErrors(t *testing.T) {
	s := testSchema()
	for _, line := range []string{
		"1,2.5,x",            // too few fields
		"1,2.5,x,true,extra", // too many fields
		"abc,2.5,x,true",     // bad int
		`1,2.5,"unterminated,true`,
		`1,2.5,"x"y,true`, // garbage after quote
	} {
		if _, err := DecodeLine(line, s); err == nil {
			t.Errorf("DecodeLine(%q) should fail", line)
		}
	}
}

func TestNullVsEmptyStringDistinguished(t *testing.T) {
	s := MustSchema(Column{"a", TypeString})
	null := EncodeLine(Row{NullOf(TypeString)})
	empty := EncodeLine(Row{String_("")})
	if null == empty {
		t.Fatalf("NULL and empty string encode identically: %q", null)
	}
	rn, err := DecodeLine(null, s)
	if err != nil || !rn[0].Null {
		t.Errorf("null round trip: %v %v", rn, err)
	}
	re, err := DecodeLine(empty, s)
	if err != nil || re[0].Null || re[0].AsString() != "" {
		t.Errorf("empty string round trip: %v %v", re, err)
	}
}

func TestAppendLineMatchesEncodeLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Row{genValue(rng), genValue(rng), genValue(rng)}
		return string(AppendLine(nil, r)) == EncodeLine(r)+"\n"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := make([]Column, 1+rng.Intn(5))
		r := make(Row, len(cols))
		for i := range cols {
			v := genValue(rng)
			// Avoid NaN/Inf: the text format targets finite SQL data.
			if v.Kind == TypeFloat && !v.Null && (math.IsNaN(v.AsFloat()) || math.IsInf(v.AsFloat(), 0)) {
				v = Float(0)
			}
			cols[i] = Column{Name: "c" + string(rune('a'+i)), Type: v.Kind}
			r[i] = v
		}
		s := MustSchema(cols...)
		back, err := DecodeLine(EncodeLine(r), s)
		if err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSplitLineFieldCount(t *testing.T) {
	fields, _, err := SplitLine("a,b,c")
	if err != nil || len(fields) != 3 {
		t.Errorf("SplitLine(a,b,c): %v %v", fields, err)
	}
	fields, _, err = SplitLine("")
	if err != nil || len(fields) != 1 {
		t.Errorf("SplitLine empty: %v %v", fields, err)
	}
	fields, _, err = SplitLine("a,,c")
	if err != nil || len(fields) != 3 || fields[1] != "" {
		t.Errorf("SplitLine with empty middle: %v %v", fields, err)
	}
	fields, _, err = SplitLine("a,b,")
	if err != nil || len(fields) != 3 || fields[2] != "" {
		t.Errorf("SplitLine with trailing sep: %v %v", fields, err)
	}
}

func TestEncodedLineNeverContainsBareNewline(t *testing.T) {
	r := Row{String_("a\nb\\c"), String_("c")}
	line := EncodeLine(r)
	if strings.ContainsRune(line, '\n') {
		t.Fatalf("encoded line contains a physical newline: %q", line)
	}
	back, err := DecodeLine(line, MustSchema(Column{"a", TypeString}, Column{"b", TypeString}))
	if err != nil || back[0].AsString() != "a\nb\\c" {
		t.Errorf("newline round trip: %v %v", back, err)
	}
	if !strings.Contains(line, `"`) {
		t.Error("newline field must be quoted")
	}
}
