package row

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Block frames amortize the per-row costs of the streaming transfer: one
// length word, one channel hand-off, one spool entry, and one disk write
// cover ~BlockTargetRows rows instead of one. The wire stays
// self-describing — a stream may interleave v1 single-row frames and v2
// block frames, and Reader decodes both — while the coordinator handshake
// (see internal/stream) lets mixed-version deployments pin a job to v1.
//
// Block frame layout (all little-endian):
//
//	uint32  blockFlag | n   (top bit set marks a block frame; the low 31
//	                         bits are the byte count that follows this word)
//	uint8   version         (WireProtoBlock)
//	uint8   flags           (reserved, 0)
//	uint32  row count
//	payload: row count × (uint32 body length + body), the same per-row
//	         body encoding as a v1 frame
//
// The flag bit cannot collide with a v1 frame: v1 lengths are bounded by
// MaxFrameSize (2^26), far below the 2^31 flag bit.

const (
	// WireProtoRow is the original one-frame-per-row wire format.
	WireProtoRow = 1
	// WireProtoBlock is the multi-row block-frame wire format.
	WireProtoBlock = 2
	// WireProtoLatest is what senders and readers advertise by default —
	// the columnar v3 format (WireProtoCol, colblock.go).
	WireProtoLatest = WireProtoCol

	blockFlag = uint32(1) << 31
	// blockTailLen is the header part covered by the length word:
	// version(1) + flags(1) + rowCount(4).
	blockTailLen = 6
	// blockHeaderLen is the full block frame header.
	blockHeaderLen = 4 + blockTailLen

	// BlockTargetRows and BlockTargetBytes are the default flush budgets:
	// a block is emitted when it reaches either. The row budget IS the
	// engine's batch granularity (DefaultBatchSize), so one pipeline batch
	// fills exactly one wire block; ~64 KB keeps a block inside a few
	// socket buffers.
	BlockTargetRows  = DefaultBatchSize
	BlockTargetBytes = 64 << 10
)

// MaxBlockSize bounds one block frame, guarding corrupt length words.
const MaxBlockSize = 128 << 20

// blockBufPool recycles block buffers across frames. Buffers are handed
// out by NewBlockBuffer and returned by RecycleBlockBuffer once the frame
// has left the process (written to a socket or spill file) — callers that
// retain frames (the §6 replay spool) simply never return them.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, BlockTargetBytes+4<<10)
		return &b
	},
}

// NewBlockBuffer returns an empty, pooled byte buffer sized for one block.
func NewBlockBuffer() []byte {
	return (*blockBufPool.Get().(*[]byte))[:0]
}

// RecycleBlockBuffer returns a buffer obtained from NewBlockBuffer (or a
// finished block frame built on one) to the pool. The caller must not
// touch the slice afterwards. Undersized buffers (e.g. ad-hoc v1 row
// frames that flow through the same code path) are dropped rather than
// pooled, so the pool only ever hands out block-capacity buffers.
func RecycleBlockBuffer(b []byte) {
	if cap(b) < BlockTargetBytes {
		return
	}
	blockBufPool.Put(&b)
}

// IsBlockFrame reports whether frame starts a v2 block frame (as opposed
// to a v1 single-row frame).
func IsBlockFrame(frame []byte) bool {
	return len(frame) >= 4 && binary.LittleEndian.Uint32(frame)&blockFlag != 0
}

// BlockEncoder packs rows into one block frame built on a pooled buffer.
// Append rows until Rows()/Len() hit the caller's budget, then Finish to
// take the frame; the encoder detaches and starts the next block lazily.
//
// EnableColumnar switches the encoder to v3 output: appends stage into a
// column-major ColBatch instead of encoding bytes row by row, and Finish
// emits one columnar frame (AppendColBlock). In that mode Len() is the
// v2-equivalent byte size of the staged rows — the same flush-budget
// currency as before, computed without encoding — and RawBytes() exposes
// it for the sender's compression-ratio accounting.
type BlockEncoder struct {
	buf  []byte
	rows int

	// columnar (v3) staging
	colMode  bool
	compress bool
	colTypes []Type
	col      *ColBatch
	rawBytes int
}

// EnableColumnar switches the encoder to columnar v3 frames over the
// given column types. With compress false every column keeps its raw
// encoding (the ablation grid's uncompressed arm). Must be called before
// the first append.
func (e *BlockEncoder) EnableColumnar(types []Type, compress bool) {
	e.colMode, e.compress, e.colTypes = true, compress, types
}

// staging returns the columnar staging batch, creating it on first use.
// The batch is plain (not pooled): it lives for the whole transfer and
// recycles its own vector capacity across Finish calls.
func (e *BlockEncoder) staging() *ColBatch {
	if e.col == nil {
		e.col = NewColBatch(e.colTypes)
	}
	return e.col
}

// Append encodes one row into the current block.
func (e *BlockEncoder) Append(r Row) {
	if e.colMode {
		e.staging().AppendRow(r)
		if e.rows == 0 {
			e.rawBytes = blockHeaderLen
		}
		e.rawBytes += 4
		for _, v := range r {
			e.rawBytes += v2CellSize(v.Kind, v.Null, len(v.s))
		}
		e.rows++
		return
	}
	if e.buf == nil {
		e.buf = append(NewBlockBuffer(), make([]byte, blockHeaderLen)...)
	}
	e.buf = AppendBinary(e.buf, r)
	e.rows++
}

// v2CellSize is the wire cost of one value in the v1/v2 row encoding:
// the tag byte plus the type's payload. It prices the columnar staging
// in the same currency as the row encoders, so flush budgets and the
// raw-vs-wire stats compare like with like.
func v2CellSize(t Type, null bool, strLen int) int {
	if null {
		return 1
	}
	switch t {
	case TypeString:
		return 5 + strLen
	case TypeBool:
		return 2
	default:
		return 9
	}
}

// AppendBatchRow encodes physical row p of a column-major batch into the
// current block, byte-identical to Append of the materialized row but
// straight off the vectors — the sender's columnar fast path, skipping the
// per-row Value materialization entirely.
func (e *BlockEncoder) AppendBatchRow(b *ColBatch, p int) {
	if e.colMode {
		st := e.staging()
		if e.rows == 0 {
			e.rawBytes = blockHeaderLen
		}
		e.rawBytes += 4
		for c := 0; c < b.NumCols(); c++ {
			col := b.Col(c)
			st.Col(c).AppendFrom(col, p)
			strLen := 0
			if col.Type() == TypeString && !col.Null(p) {
				strLen = len(col.Bytes(p))
			}
			e.rawBytes += v2CellSize(col.Type(), col.Null(p), strLen)
		}
		st.SetFullLen(st.FullLen() + 1)
		e.rows++
		return
	}
	if e.buf == nil {
		e.buf = append(NewBlockBuffer(), make([]byte, blockHeaderLen)...)
	}
	dst := e.buf
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	for c := 0; c < b.NumCols(); c++ {
		col := b.Col(c)
		if col.Null(p) {
			dst = append(dst, byte(tagNullBase+int(col.typ)))
			continue
		}
		switch col.typ {
		case TypeInt:
			dst = append(dst, tagIntV)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(col.Ints[p]))
		case TypeFloat:
			dst = append(dst, tagFloatV)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(col.Floats[p]))
		case TypeString:
			s := col.Bytes(p)
			dst = append(dst, tagStringV)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
			dst = append(dst, s...)
		case TypeBool:
			dst = append(dst, tagBoolV)
			if col.Bools[p] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	e.buf = dst
	e.rows++
}

// AppendBatch stages every live row of a column-major batch into the
// current block — the sender's zero-pivot path when one target consumes
// whole batches. Columnar mode only.
func (e *BlockEncoder) AppendBatch(b *ColBatch) {
	if !e.colMode {
		panic("row: BlockEncoder.AppendBatch without EnableColumnar")
	}
	rows := b.Len()
	if rows == 0 {
		return
	}
	st := e.staging()
	if e.rows == 0 {
		e.rawBytes = blockHeaderLen
	}
	e.rawBytes += 4 * rows
	for c := 0; c < b.NumCols(); c++ {
		src := b.Col(c)
		dstV := st.Col(c)
		for si := 0; si < rows; si++ {
			p := b.SelPos(si)
			dstV.AppendFrom(src, p)
			strLen := 0
			if src.Type() == TypeString && !src.Null(p) {
				strLen = len(src.Bytes(p))
			}
			e.rawBytes += v2CellSize(src.Type(), src.Null(p), strLen)
		}
	}
	st.SetFullLen(st.FullLen() + rows)
	e.rows += rows
}

// Rows returns the number of rows in the current block.
func (e *BlockEncoder) Rows() int { return e.rows }

// Len returns the current block's size in bytes for flush budgeting: the
// encoded frame so far (v1/v2), or the staged rows' v2-equivalent size
// (columnar mode, where encoding happens at Finish).
func (e *BlockEncoder) Len() int {
	if e.colMode {
		return e.rawBytes
	}
	return len(e.buf)
}

// RawBytes returns the current block's pre-compression size — what the
// staged rows would cost in the v2 row encoding. Callers sampling the
// compression ratio read it just before Finish.
func (e *BlockEncoder) RawBytes() int { return e.Len() }

// Finish seals and returns the block frame, transferring ownership to the
// caller (recycle it with RecycleBlockBuffer once it has left the
// process). It returns nil when no rows were appended.
func (e *BlockEncoder) Finish() []byte {
	if e.rows == 0 {
		return nil
	}
	if e.colMode {
		frame := AppendColBlock(NewBlockBuffer(), e.col, e.compress)
		e.col.Reset(e.colTypes)
		e.rows, e.rawBytes = 0, 0
		return frame
	}
	b := e.buf
	binary.LittleEndian.PutUint32(b, blockFlag|uint32(len(b)-4))
	b[4] = WireProtoBlock
	b[5] = 0
	binary.LittleEndian.PutUint32(b[6:], uint32(e.rows))
	e.buf, e.rows = nil, 0
	return b
}

// BlockDecoder iterates the rows of one encoded block frame — v2 row
// blocks in place (no per-row reads, no payload copies), v3 columnar
// blocks through an internal ColBatch. DecodeBatch is the column-major
// twin: one whole frame into a caller-owned batch, zero-pivot for v3.
type BlockDecoder struct {
	payload   []byte
	remaining int

	// v3 frames decode column-major; Next then serves owning rows off
	// the batch.
	colFrame bool
	col      *ColBatch
	colPos   int
}

// NewBlockDecoder validates the frame header and returns a decoder over
// the block's rows.
func NewBlockDecoder(frame []byte) (*BlockDecoder, error) {
	var d BlockDecoder
	if err := d.Reset(frame); err != nil {
		return nil, err
	}
	return &d, nil
}

// Reset re-points the decoder at another block frame.
func (d *BlockDecoder) Reset(frame []byte) error {
	if len(frame) < blockHeaderLen {
		return fmt.Errorf("row: short block frame (%d bytes)", len(frame))
	}
	word := binary.LittleEndian.Uint32(frame)
	if word&blockFlag == 0 {
		return fmt.Errorf("row: not a block frame")
	}
	if n := int(word &^ blockFlag); n != len(frame)-4 {
		return fmt.Errorf("row: block frame length %d, have %d bytes", n, len(frame)-4)
	}
	if frame[4] == WireProtoCol {
		if d.col == nil {
			d.col = &ColBatch{}
		}
		rows, err := decodeColTail(frame[4:], d.col)
		if err != nil {
			return err
		}
		d.payload, d.remaining = nil, rows
		d.colFrame, d.colPos = true, 0
		return nil
	}
	d.colFrame = false
	tail, rows, err := parseBlockTail(frame[4:])
	if err != nil {
		return err
	}
	d.payload, d.remaining = tail, rows
	return nil
}

// DecodeBatch decodes one whole block frame into dst, reset to the given
// column types: a v3 frame lands column-major with no row
// materialization; a v2 frame transposes its rows. It returns the row
// count.
func (d *BlockDecoder) DecodeBatch(frame []byte, dst *ColBatch, types []Type) (int, error) {
	if len(frame) >= 5 && IsBlockFrame(frame) && frame[4] == WireProtoCol {
		return DecodeColBlock(frame, dst)
	}
	if err := d.Reset(frame); err != nil {
		return 0, err
	}
	dst.Reset(types)
	for {
		r, ok, err := d.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return dst.Len(), nil
		}
		if len(r) != dst.NumCols() {
			return 0, fmt.Errorf("row: block row has %d values, batch has %d columns", len(r), dst.NumCols())
		}
		dst.AppendRow(r)
	}
}

// Rows returns how many rows remain undecoded.
func (d *BlockDecoder) Rows() int { return d.remaining }

// Next decodes the next row; ok is false once the block is exhausted.
// Rows from a v3 frame own their storage, like their v2 counterparts.
func (d *BlockDecoder) Next() (r Row, ok bool, err error) {
	if d.remaining == 0 {
		if len(d.payload) != 0 {
			return nil, false, fmt.Errorf("row: %d trailing block bytes", len(d.payload))
		}
		return nil, false, nil
	}
	if d.colFrame {
		r = d.col.RowAt(d.colPos, nil)
		d.colPos++
		d.remaining--
		return r, true, nil
	}
	r, rest, err := decodeBlockRow(d.payload)
	if err != nil {
		return nil, false, err
	}
	d.payload = rest
	d.remaining--
	return r, true, nil
}

// ReadRawFrame reads one whole wire frame — v1 single-row or v2 block —
// off r without decoding it, appended to buf (length word included). It
// returns io.EOF cleanly at a frame boundary; a frame cut short inside
// returns io.ErrUnexpectedEOF. The sender's spill replay uses it to re-send
// spilled bytes frame-aligned, which the credit window requires.
func ReadRawFrame(r io.Reader, buf []byte) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, err
		}
		return nil, io.EOF
	}
	word := binary.LittleEndian.Uint32(buf[start:])
	n := int(word &^ blockFlag)
	if word&blockFlag != 0 {
		if n < blockTailLen || n > MaxBlockSize {
			return nil, fmt.Errorf("row: bad block frame length %d", n)
		}
	} else if n > MaxFrameSize {
		return nil, fmt.Errorf("row: bad frame length %d", n)
	}
	body := len(buf)
	buf = append(buf, make([]byte, n)...)
	if _, err := io.ReadFull(r, buf[body:]); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return buf, nil
}

// parseBlockTail validates everything after the length word (version,
// flags, row count) and returns the row payload and row count.
func parseBlockTail(tail []byte) ([]byte, int, error) {
	if len(tail) < blockTailLen {
		return nil, 0, fmt.Errorf("row: truncated block header")
	}
	if v := tail[0]; v != WireProtoBlock {
		return nil, 0, fmt.Errorf("row: unsupported block version %d", v)
	}
	rows := int(binary.LittleEndian.Uint32(tail[2:]))
	if rows > MaxBlockSize {
		// Same bound the v3 column decoder applies: a row occupies at
		// least one payload byte, so a count past the frame byte cap is a
		// lie — reject it at the header instead of mid-decode.
		return nil, 0, fmt.Errorf("row: block declares %d rows, exceeding MaxBlockSize", rows)
	}
	return tail[blockTailLen:], rows, nil
}

// decodeBlockRow decodes one length-prefixed row body off the front of
// payload, returning the rest.
func decodeBlockRow(payload []byte) (Row, []byte, error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("row: truncated row header in block")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n > MaxFrameSize || 4+n > len(payload) {
		return nil, nil, fmt.Errorf("row: truncated row body in block (%d of %d bytes)", n, len(payload)-4)
	}
	r, err := DecodeBinary(payload[4 : 4+n])
	if err != nil {
		return nil, nil, err
	}
	return r, payload[4+n:], nil
}
