package row

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := make(Row, rng.Intn(6))
		for i := range r {
			r[i] = genValue(rng)
		}
		enc := AppendBinary(nil, r)
		back, err := DecodeBinary(enc[4:])
		if err != nil {
			return false
		}
		if len(back) != len(r) {
			return false
		}
		for i := range r {
			a, b := r[i], back[i]
			if a.Kind == TypeFloat && !a.Null && math.IsNaN(a.AsFloat()) {
				if b.Null || !math.IsNaN(b.AsFloat()) {
					return false
				}
				continue
			}
			if !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rows := []Row{
		{Int(1), String_("a"), Float(1.5), Bool(true)},
		{Int(2), NullOf(TypeString), Float(-2.5), Bool(false)},
		{NullOf(TypeInt), String_(""), NullOf(TypeFloat), NullOf(TypeBool)},
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	for i, want := range rows {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("row %d: got %v want %v", i, got, want)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("expected io.EOF at stream end, got %v", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrameSize+1))
	rd := NewReader(bytes.NewReader(hdr[:]))
	if _, err := rd.Read(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	enc := AppendBinary(nil, Row{String_("hello world")})
	rd := NewReader(bytes.NewReader(enc[:len(enc)-3]))
	if _, err := rd.Read(); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestDecodeBinaryCorruptTags(t *testing.T) {
	for _, body := range [][]byte{
		{99},                     // unknown tag
		{tagIntV, 1, 2},          // short int
		{tagFloatV, 1},           // short float
		{tagStringV, 5, 0, 0, 0}, // string length without payload
		{tagStringV, 0, 0},       // short string length
		{tagBoolV},               // missing bool payload
	} {
		if _, err := DecodeBinary(body); err == nil {
			t.Errorf("DecodeBinary(%v) should fail", body)
		}
	}
}

func TestSchemaHeaderRoundTrip(t *testing.T) {
	s := MustSchema(Column{"age", TypeInt}, Column{"gender", TypeString})
	var buf bytes.Buffer
	if err := WriteSchema(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Errorf("schema header round trip: got %v want %v", back, s)
	}
}

func TestSchemaThenRowsOnOneStream(t *testing.T) {
	s := MustSchema(Column{"id", TypeInt}, Column{"v", TypeFloat})
	var buf bytes.Buffer
	if err := WriteSchema(&buf, s); err != nil {
		t.Fatal(err)
	}
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(Row{Int(int64(i)), Float(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSchema(&buf)
	if err != nil || !got.Equal(s) {
		t.Fatalf("schema: %v %v", got, err)
	}
	rd := NewReader(&buf)
	n := 0
	for {
		r, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r[0].AsInt() != int64(n) {
			t.Fatalf("row %d out of order: %v", n, r)
		}
		n++
	}
	if n != 100 {
		t.Errorf("read %d rows, want 100", n)
	}
}

func BenchmarkAppendBinary(b *testing.B) {
	r := Row{Int(12345), Float(98.6), String_("some-categorical-value"), Bool(true)}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendBinary(buf[:0], r)
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	enc := AppendBinary(nil, Row{Int(12345), Float(98.6), String_("some-categorical-value"), Bool(true)})
	body := enc[4:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(body); err != nil {
			b.Fatal(err)
		}
	}
}
