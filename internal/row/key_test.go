package row

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randKeyValue draws a value across all four types, NULLs included, from
// a byte-driven source so both quick.Check and the fuzzer can reuse it.
func randKeyValue(next func() byte) Value {
	switch next() % 9 {
	case 0:
		return Int(int64(next()) | int64(next())<<8 | int64(next())<<56)
	case 1:
		return Int(-int64(next()))
	case 2:
		return Float(float64(next()) / (1 + float64(next())))
	case 3:
		return Float(math.Inf(1))
	case 4:
		s := make([]byte, int(next())%7)
		for i := range s {
			s[i] = next() // arbitrary bytes, including 0x00 and tag bytes
		}
		return String_(string(s))
	case 5:
		return Bool(next()%2 == 0)
	default:
		return NullOf(Type(next() % 4))
	}
}

func randKeyRow(next func() byte, arity int) Row {
	r := make(Row, arity)
	for i := range r {
		r[i] = randKeyValue(next)
	}
	return r
}

func byteSource(seed int64) func() byte {
	rng := rand.New(rand.NewSource(seed))
	return func() byte { return byte(rng.Intn(256)) }
}

// keyRowsEqual is the grouping/DISTINCT notion of row equality the codec
// must reproduce: same kind, NULLs of one type equal, floats by bits.
func keyRowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.Kind != vb.Kind || va.Null != vb.Null {
			return false
		}
		if va.Null {
			continue
		}
		switch va.Kind {
		case TypeFloat:
			if math.Float64bits(va.AsFloat()) != math.Float64bits(vb.AsFloat()) {
				return false
			}
		default:
			if !va.Equal(vb) {
				return false
			}
		}
	}
	return true
}

// TestKeyCodecCollisionFree: two rows of equal arity encode to the same
// bytes iff they are equal, and neither encoding is a proper prefix of
// the other (prefix-freedom at equal arity).
func TestKeyCodecCollisionFree(t *testing.T) {
	f := func(seed int64) bool {
		next := byteSource(seed)
		arity := 1 + int(next())%4
		a := randKeyRow(next, arity)
		b := randKeyRow(next, arity)
		ea := AppendKey(nil, a)
		eb := AppendKey(nil, b)
		if keyRowsEqual(a, b) != bytes.Equal(ea, eb) {
			return false
		}
		if !bytes.Equal(ea, eb) && (bytes.HasPrefix(ea, eb) || bytes.HasPrefix(eb, ea)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestKeyCodecAppendsInPlace: encoding reuses the caller's buffer without
// allocating when capacity suffices.
func TestKeyCodecAppendsInPlace(t *testing.T) {
	r := Row{Int(42), String_("hello"), NullOf(TypeFloat), Bool(true)}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendKey(buf[:0], r)
	})
	if allocs != 0 {
		t.Errorf("AppendKey allocated %.1f times per run with sufficient capacity", allocs)
	}
}

// TestKeyCodecNumericNormalization: the normalized form makes BIGINT n
// and DOUBLE n encode identically (the join-key semantics), while the
// exact form keeps them distinct (the GROUP BY / DISTINCT semantics).
func TestKeyCodecNumericNormalization(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, 1 << 40} {
		ni := AppendNormKeyValue(nil, Int(n))
		nf := AppendNormKeyValue(nil, Float(float64(n)))
		if !bytes.Equal(ni, nf) {
			t.Errorf("normalized BIGINT %d != DOUBLE %d: %x vs %x", n, n, ni, nf)
		}
		xi := AppendKeyValue(nil, Int(n))
		xf := AppendKeyValue(nil, Float(float64(n)))
		if bytes.Equal(xi, xf) {
			t.Errorf("exact BIGINT %d == DOUBLE %d; exact codec must distinguish types", n, n)
		}
	}
	// NULL BIGINT stays distinct from NULL DOUBLE even under normalization.
	if bytes.Equal(AppendNormKeyValue(nil, NullOf(TypeInt)), AppendNormKeyValue(nil, NullOf(TypeFloat))) {
		t.Error("normalized NULL BIGINT == NULL DOUBLE")
	}
}

// FuzzKeyCodec drives the collision/prefix properties from raw fuzz
// bytes: the input is split into a value stream generating two rows of
// equal arity.
func FuzzKeyCodec(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 0, 0, 4, 0, 0})                  // identical string values
	f.Add([]byte{6, 1, 6, 2, 6, 3, 6, 0})            // NULLs of mixed types
	f.Add([]byte("floats and ints and bools oh my")) // arbitrary
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		arity := 1 + int(next())%3
		a := randKeyRow(next, arity)
		b := randKeyRow(next, arity)
		ea := AppendKey(nil, a)
		eb := AppendKey(nil, b)
		if keyRowsEqual(a, b) != bytes.Equal(ea, eb) {
			t.Fatalf("codec equality mismatch: rows %v / %v, keys %x / %x", a, b, ea, eb)
		}
		if !bytes.Equal(ea, eb) && (bytes.HasPrefix(ea, eb) || bytes.HasPrefix(eb, ea)) {
			t.Fatalf("key of %v is a prefix of key of %v", a, b)
		}
	})
}

func TestHash64MatchesFNV1a(t *testing.T) {
	// Spot-check the inlined FNV-1a against known vectors.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := Hash64([]byte(c.in)); got != c.want {
			t.Errorf("Hash64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}
