// Package row defines the value model shared by every substrate in the
// repository: typed scalar values, rows, schemas, and a text serialization
// compatible with the DFS text-table format.
//
// The model deliberately mirrors what a big SQL system exchanges with an ML
// system in the paper: INT/BIGINT, DOUBLE, VARCHAR and BOOLEAN columns, with
// NULL as a first-class state of any value.
package row

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the scalar column types supported by the engines.
type Type int

// Supported column types.
const (
	TypeInt Type = iota
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a SQL-ish type name as produced by Type.String.
// It accepts a few common aliases (INT, INTEGER, FLOAT, TEXT, STRING).
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BIGINT", "INT", "INTEGER":
		return TypeInt, nil
	case "DOUBLE", "FLOAT", "REAL":
		return TypeFloat, nil
	case "VARCHAR", "STRING", "TEXT", "CHAR":
		return TypeString, nil
	case "BOOLEAN", "BOOL":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("row: unknown type %q", s)
	}
}

// Value is a single typed scalar. The zero Value is a NULL of type BIGINT.
//
// Value is a small tagged union rather than an interface so that rows can be
// streamed, hashed and compared without per-value heap allocation.
type Value struct {
	Kind Type
	Null bool

	i int64
	f float64
	s string
	b bool
}

// Int returns a non-null BIGINT value.
func Int(v int64) Value { return Value{Kind: TypeInt, i: v} }

// Float returns a non-null DOUBLE value.
func Float(v float64) Value { return Value{Kind: TypeFloat, f: v} }

// String_ returns a non-null VARCHAR value. The trailing underscore avoids
// colliding with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{Kind: TypeString, s: v} }

// Bool returns a non-null BOOLEAN value.
func Bool(v bool) Value { return Value{Kind: TypeBool, b: v} }

// Null returns a NULL value of the given type.
func NullOf(t Type) Value { return Value{Kind: t, Null: true} }

// AsInt returns the BIGINT payload. It panics if the value is not a
// non-null BIGINT; use Kind/Null to check first.
func (v Value) AsInt() int64 {
	v.mustBe(TypeInt)
	return v.i
}

// AsFloat returns the DOUBLE payload, widening BIGINT values.
func (v Value) AsFloat() float64 {
	if v.Null {
		panic("row: AsFloat on NULL")
	}
	switch v.Kind {
	case TypeFloat:
		return v.f
	case TypeInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("row: AsFloat on %s", v.Kind))
	}
}

// AsString returns the VARCHAR payload.
func (v Value) AsString() string {
	v.mustBe(TypeString)
	return v.s
}

// AsBool returns the BOOLEAN payload.
func (v Value) AsBool() bool {
	v.mustBe(TypeBool)
	return v.b
}

func (v Value) mustBe(t Type) {
	if v.Null {
		panic(fmt.Sprintf("row: access of NULL as %s", t))
	}
	if v.Kind != t {
		panic(fmt.Sprintf("row: access of %s as %s", v.Kind, t))
	}
}

// Numeric reports whether the value's type is BIGINT or DOUBLE.
func (v Value) Numeric() bool { return v.Kind == TypeInt || v.Kind == TypeFloat }

// String renders the value for debugging and for the text table format.
// NULLs render as an empty string; see EncodeField for the quoted form used
// on disk.
func (v Value) String() string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("<%d>", int(v.Kind))
	}
}

// Equal reports deep equality of two values. NULLs of the same type are
// equal to each other (this is the grouping/DISTINCT notion of equality,
// not the SQL three-valued one; predicates handle NULL separately).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Allow numeric cross-type equality so that joins between BIGINT
		// and DOUBLE columns behave as users expect.
		if v.Numeric() && o.Numeric() && !v.Null && !o.Null {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	if v.Null || o.Null {
		return v.Null && o.Null
	}
	switch v.Kind {
	case TypeInt:
		return v.i == o.i
	case TypeFloat:
		return v.f == o.f
	case TypeString:
		return v.s == o.s
	case TypeBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two values: -1 if v<o, 0 if equal, +1 if v>o.
// NULL sorts before every non-NULL. Cross numeric types compare by value.
// Comparing incomparable kinds (e.g. VARCHAR with BIGINT) orders by Kind so
// that sorting remains total; predicates reject such comparisons earlier.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	if v.Kind != o.Kind {
		if v.Numeric() && o.Numeric() {
			return cmpFloat(v.AsFloat(), o.AsFloat())
		}
		return cmpInt(int64(v.Kind), int64(o.Kind))
	}
	switch v.Kind {
	case TypeInt:
		return cmpInt(v.i, o.i)
	case TypeFloat:
		return cmpFloat(v.f, o.f)
	case TypeString:
		return strings.Compare(v.s, o.s)
	case TypeBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Coerce converts the value to the target type when a safe conversion
// exists (numeric widening/narrowing, string parse). It returns an error
// when no conversion applies.
func (v Value) Coerce(t Type) (Value, error) {
	if v.Null {
		return NullOf(t), nil
	}
	if v.Kind == t {
		return v, nil
	}
	switch t {
	case TypeFloat:
		if v.Kind == TypeInt {
			return Float(float64(v.i)), nil
		}
		if v.Kind == TypeString {
			f, err := strconv.ParseFloat(v.s, 64)
			if err != nil {
				return Value{}, fmt.Errorf("row: cannot coerce %q to DOUBLE: %w", v.s, err)
			}
			return Float(f), nil
		}
	case TypeInt:
		if v.Kind == TypeFloat {
			return Int(int64(v.f)), nil
		}
		if v.Kind == TypeString {
			i, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("row: cannot coerce %q to BIGINT: %w", v.s, err)
			}
			return Int(i), nil
		}
	case TypeString:
		return String_(v.String()), nil
	case TypeBool:
		if v.Kind == TypeString {
			switch strings.ToLower(v.s) {
			case "true", "t", "1", "yes":
				return Bool(true), nil
			case "false", "f", "0", "no":
				return Bool(false), nil
			}
		}
	}
	return Value{}, fmt.Errorf("row: cannot coerce %s to %s", v.Kind, t)
}

// ParseValue parses the text-format field s into a value of type t.
// An empty string parses as NULL (matching Value.String of a NULL).
func ParseValue(s string, t Type) (Value, error) {
	if s == "" {
		return NullOf(t), nil
	}
	return String_(s).Coerce(t)
}
