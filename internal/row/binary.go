package row

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary row format is used on the parallel streaming transfer path
// (paper §3): a compact, length-prefixed frame per row so that the SQL-side
// sender UDFs and the ML-side SQLStreamInputFormat can exchange rows without
// text re-parsing.
//
// Frame layout (all little-endian):
//
//	uint32  frame length (bytes after this header)
//	per value:
//	  uint8   tag: 0=NULL-int 1=NULL-float 2=NULL-string 3=NULL-bool
//	               4=int 5=float 6=string 7=bool
//	  payload int: varint-free int64 (8 bytes); float: IEEE754 bits;
//	          string: uint32 length + bytes; bool: 1 byte
//
// Arity is carried by the schema header exchanged at stream open
// (see WriteSchema / ReadSchema), not per frame.

const (
	tagNullBase = 0
	tagIntV     = 4
	tagFloatV   = 5
	tagStringV  = 6
	tagBoolV    = 7
)

// MaxFrameSize bounds a single encoded row to guard against corrupt
// length prefixes on the wire.
const MaxFrameSize = 64 << 20

// AppendBinary appends the binary encoding of the row (including the frame
// length prefix) to dst.
func AppendBinary(dst []byte, r Row) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	for _, v := range r {
		if v.Null {
			dst = append(dst, byte(tagNullBase+int(v.Kind)))
			continue
		}
		switch v.Kind {
		case TypeInt:
			dst = append(dst, tagIntV)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
		case TypeFloat:
			dst = append(dst, tagFloatV)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case TypeString:
			dst = append(dst, tagStringV)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.s)))
			dst = append(dst, v.s...)
		case TypeBool:
			dst = append(dst, tagBoolV)
			if v.b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeBinary decodes one frame body (without the length prefix) into a row.
func DecodeBinary(body []byte) (Row, error) {
	var out Row
	i := 0
	for i < len(body) {
		tag := body[i]
		i++
		switch {
		case tag < 4:
			out = append(out, NullOf(Type(tag)))
		case tag == tagIntV:
			if i+8 > len(body) {
				return nil, fmt.Errorf("row: truncated int payload")
			}
			out = append(out, Int(int64(binary.LittleEndian.Uint64(body[i:]))))
			i += 8
		case tag == tagFloatV:
			if i+8 > len(body) {
				return nil, fmt.Errorf("row: truncated float payload")
			}
			out = append(out, Float(math.Float64frombits(binary.LittleEndian.Uint64(body[i:]))))
			i += 8
		case tag == tagStringV:
			if i+4 > len(body) {
				return nil, fmt.Errorf("row: truncated string length")
			}
			n := int(binary.LittleEndian.Uint32(body[i:]))
			i += 4
			if i+n > len(body) {
				return nil, fmt.Errorf("row: truncated string payload")
			}
			out = append(out, String_(string(body[i:i+n])))
			i += n
		case tag == tagBoolV:
			if i >= len(body) {
				return nil, fmt.Errorf("row: truncated bool payload")
			}
			out = append(out, Bool(body[i] != 0))
			i++
		default:
			return nil, fmt.Errorf("row: unknown value tag %d", tag)
		}
	}
	return out, nil
}

// Writer streams binary row frames onto an io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes and buffers one row.
func (w *Writer) Write(r Row) error {
	w.buf = AppendBinary(w.buf[:0], r)
	_, err := w.w.Write(w.buf)
	return err
}

// Flush flushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes binary row frames from an io.Reader. It understands all
// three wire formats: v1 single-row frames, v2 multi-row block frames
// (block.go), and v3 columnar block frames (colblock.go) may be freely
// interleaved on one stream. A block is read off the wire in one I/O
// operation into a reused buffer, then its rows are served in place —
// per-row syscalls and allocations drop to per-block. Columnar consumers
// call ReadColBatch and skip row materialization entirely.
type Reader struct {
	r     *bufio.Reader
	buf   []byte
	nread int64

	// requireEOS makes a bare io.EOF an error: the stream must end with the
	// explicit end-of-stream frame (WriteEOS). See RequireEOS.
	requireEOS bool

	// pending block: rows still to serve, and the wire size to credit to
	// nread once the last of them has been consumed.
	block     []byte
	blockRows int
	blockWire int64

	// pending v3 columnar frame: the staged tail (aliasing buf — valid
	// until the next frame is read, i.e. until this one is fully served).
	// The row-path reads decode it lazily into colDec and serve rows off
	// the batch; ReadColBatch takes an untouched frame whole, zero-pivot.
	colTail    []byte
	colDec     *ColBatch
	colDecoded bool
	colServed  int
}

// Bytes returns the wire bytes of fully consumed frames (headers
// included); the streaming transfer's flow control is driven by this
// counter. A block frame counts only once all of its rows have been
// served, so a slow consumer does not grant credit for rows it has merely
// buffered.
func (r *Reader) Bytes() int64 { return r.nread }

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// RequireEOS makes the reader demand the explicit end-of-stream frame
// (WriteEOS): a stream that simply stops is then a truncation error, not a
// clean end. Transports where a peer's death closes the connection — which
// reads as EOF and could land exactly on a frame boundary — need this to
// tell completion from a mid-stream failure; readers over files or buffers,
// where EOF is authoritative, do not set it.
func (r *Reader) RequireEOS() { r.requireEOS = true }

// WriteEOS writes the explicit end-of-stream frame: a zero length word,
// which no data frame ever produces (v1 rows and blocks are both non-empty
// on the wire). Readers in RequireEOS mode treat it as the only clean end
// of stream.
func WriteEOS(w io.Writer) error {
	var hdr [4]byte
	_, err := w.Write(hdr[:])
	return err
}

// Read decodes the next row. It returns io.EOF cleanly at end of stream.
func (r *Reader) Read() (Row, error) {
	for r.blockRows == 0 {
		if err := r.nextFrame(); err != nil {
			return nil, err
		}
	}
	if r.colTail != nil {
		if err := r.decodeStagedCol(); err != nil {
			return nil, err
		}
		row := r.colDec.RowAt(r.colServed, nil)
		r.colServed++
		r.blockRows--
		if r.blockRows == 0 {
			r.nread += r.blockWire
			r.colTail, r.colDecoded = nil, false
		}
		return row, nil
	}
	row, rest, err := decodeBlockRow(r.block)
	if err != nil {
		return nil, err
	}
	r.block = rest
	r.blockRows--
	if r.blockRows == 0 {
		if len(r.block) != 0 {
			return nil, fmt.Errorf("row: %d trailing block bytes", len(r.block))
		}
		r.nread += r.blockWire
	}
	return row, nil
}

// decodeStagedCol decodes the staged v3 frame into the reader's scratch
// batch, once per frame.
func (r *Reader) decodeStagedCol() error {
	if r.colDecoded {
		return nil
	}
	if r.colDec == nil {
		r.colDec = &ColBatch{}
	}
	rows, err := decodeColTail(r.colTail, r.colDec)
	if err != nil {
		return err
	}
	if rows != r.blockRows {
		return fmt.Errorf("row: columnar frame decoded %d rows, staged %d", rows, r.blockRows)
	}
	r.colDecoded, r.colServed = true, 0
	return nil
}

// ReadBlock appends every remaining row of the current frame to dst and
// returns it: the rows of one block frame, or a single row for a v1
// frame. It returns io.EOF cleanly at end of stream. Batch consumers
// (hadoopfmt.BatchRecordReader) use it to amortize per-row call overhead.
func (r *Reader) ReadBlock(dst []Row) ([]Row, error) {
	for r.blockRows == 0 {
		if err := r.nextFrame(); err != nil {
			return nil, err
		}
	}
	if r.colTail != nil {
		if err := r.decodeStagedCol(); err != nil {
			return nil, err
		}
		for r.blockRows > 0 {
			dst = append(dst, r.colDec.RowAt(r.colServed, nil))
			r.colServed++
			r.blockRows--
		}
		r.nread += r.blockWire
		r.colTail, r.colDecoded = nil, false
		return dst, nil
	}
	for r.blockRows > 0 {
		row, rest, err := decodeBlockRow(r.block)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
		r.block = rest
		r.blockRows--
	}
	if len(r.block) != 0 {
		return nil, fmt.Errorf("row: %d trailing block bytes", len(r.block))
	}
	r.nread += r.blockWire
	return dst, nil
}

// ReadColBatch decodes the next frame into dst, reset to the given
// column types, and returns its remaining row count. An untouched v3
// frame decodes straight into dst — the zero-pivot path — while v1/v2
// frames and v3 frames already partially served row-wise (the resume
// handshake's duplicate skip) transpose the remaining rows. It returns
// io.EOF cleanly at end of stream, and always consumes (and credits) the
// whole frame.
func (r *Reader) ReadColBatch(dst *ColBatch, types []Type) (int, error) {
	for r.blockRows == 0 {
		if err := r.nextFrame(); err != nil {
			return 0, err
		}
	}
	if r.colTail != nil && !r.colDecoded {
		rows, err := decodeColTail(r.colTail, dst)
		if err != nil {
			return 0, err
		}
		if err := colTypesMatch(dst, types); err != nil {
			return 0, err
		}
		r.nread += r.blockWire
		r.colTail, r.blockRows = nil, 0
		return rows, nil
	}
	dst.Reset(types)
	if r.colTail != nil {
		if err := colTypesMatch(r.colDec, types); err != nil {
			return 0, err
		}
		for r.blockRows > 0 {
			for c := 0; c < dst.NumCols(); c++ {
				dst.Col(c).AppendFrom(r.colDec.Col(c), r.colServed)
			}
			dst.SetFullLen(dst.FullLen() + 1)
			r.colServed++
			r.blockRows--
		}
		r.colTail, r.colDecoded = nil, false
	} else {
		for r.blockRows > 0 {
			row, rest, err := decodeBlockRow(r.block)
			if err != nil {
				return 0, err
			}
			if len(row) != dst.NumCols() {
				return 0, fmt.Errorf("row: frame row has %d values, schema has %d columns", len(row), dst.NumCols())
			}
			dst.AppendRow(row)
			r.block = rest
			r.blockRows--
		}
		if len(r.block) != 0 {
			return 0, fmt.Errorf("row: %d trailing block bytes", len(r.block))
		}
	}
	r.nread += r.blockWire
	return dst.Len(), nil
}

// colTypesMatch verifies a decoded batch's shape against the stream
// schema's column types — a frame whose columns disagree with the
// handshake is corrupt.
func colTypesMatch(b *ColBatch, types []Type) error {
	if b.NumCols() != len(types) {
		return fmt.Errorf("row: columnar frame has %d columns, schema has %d", b.NumCols(), len(types))
	}
	for i := range types {
		if b.Col(i).Type() != types[i] {
			return fmt.Errorf("row: columnar frame column %d is %s, schema wants %s", i, b.Col(i).Type(), types[i])
		}
	}
	return nil
}

// nextFrame reads one wire frame into the reused buffer and stages its
// rows for serving. A v1 frame is staged as a one-row block (synthesizing
// the length prefix decodeBlockRow expects from the frame header it
// already consumed).
func (r *Reader) nextFrame() error {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("row: truncated frame header: %w", err)
		}
		if err == io.EOF && r.requireEOS {
			return fmt.Errorf("row: stream ended without end-of-stream frame: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	word := binary.LittleEndian.Uint32(hdr[:])
	if word == 0 {
		// Explicit end-of-stream frame (WriteEOS).
		return io.EOF
	}
	if word&blockFlag == 0 {
		// v1 single-row frame.
		n := int(word)
		if n > MaxFrameSize {
			return fmt.Errorf("row: frame of %d bytes exceeds limit", n)
		}
		if cap(r.buf) < 4+n {
			r.buf = make([]byte, 4+n)
		}
		body := r.buf[:4+n]
		copy(body, hdr[:])
		if _, err := io.ReadFull(r.r, body[4:]); err != nil {
			return fmt.Errorf("row: truncated frame body: %w", err)
		}
		r.block, r.blockRows, r.blockWire = body, 1, int64(4+n)
		return nil
	}
	n := int(word &^ blockFlag)
	if n > MaxBlockSize {
		return fmt.Errorf("row: block of %d bytes exceeds limit", n)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	tail := r.buf[:n]
	if _, err := io.ReadFull(r.r, tail); err != nil {
		return fmt.Errorf("row: truncated block frame: %w", err)
	}
	if tail[0] == WireProtoCol {
		// v3 columnar frame: stage the tail; the row path decodes it
		// lazily, ReadColBatch takes it whole.
		if n < colTailLen {
			return fmt.Errorf("row: truncated columnar header")
		}
		rows := int(binary.LittleEndian.Uint32(tail[2:]))
		if rows > MaxBlockSize {
			return fmt.Errorf("row: columnar frame claims %d rows", rows)
		}
		if rows == 0 {
			r.nread += int64(4 + n)
			return nil
		}
		r.block = nil
		r.colTail, r.colDecoded, r.colServed = tail, false, 0
		r.blockRows, r.blockWire = rows, int64(4+n)
		return nil
	}
	payload, rows, err := parseBlockTail(tail)
	if err != nil {
		return err
	}
	if rows == 0 {
		// Empty block: account it and move on.
		r.nread += int64(4 + n)
		return nil
	}
	r.block, r.blockRows, r.blockWire = payload, rows, int64(4+n)
	return nil
}

// WriteSchema writes a schema header: it precedes row frames on a stream so
// the receiving side can type its output without out-of-band agreement.
func WriteSchema(w io.Writer, s Schema) error {
	enc := []byte(s.String())
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(enc)
	return err
}

// ReadSchema reads a schema header written by WriteSchema.
func ReadSchema(r io.Reader) (Schema, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Schema{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return Schema{}, fmt.Errorf("row: schema header of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Schema{}, err
	}
	return ParseSchema(string(buf))
}
