package row

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

var colTestTypes = []Type{TypeInt, TypeFloat, TypeString, TypeBool}

// genColBatch builds a pseudo-random batch: nullFrac of slots NULL, string
// values drawn from a pool of ndv distinct values, and (optionally) a
// selection vector keeping roughly half the rows.
func genColBatch(rnd *rand.Rand, n int, nullFrac float64, ndv int, withSel bool) *ColBatch {
	b := NewColBatch(colTestTypes)
	for i := 0; i < n; i++ {
		r := make(Row, len(colTestTypes))
		for c, typ := range colTestTypes {
			if rnd.Float64() < nullFrac {
				r[c] = NullOf(typ)
				continue
			}
			switch typ {
			case TypeInt:
				r[c] = Int(rnd.Int63n(1<<20) - 1<<19)
			case TypeFloat:
				r[c] = Float(rnd.NormFloat64() * 100)
			case TypeString:
				r[c] = String_(strings.Repeat("v", 1+rnd.Intn(3)) + string(rune('a'+rnd.Intn(ndv))))
			case TypeBool:
				r[c] = Bool(rnd.Intn(2) == 0)
			}
		}
		b.AppendRow(r)
	}
	if withSel {
		var sel []int32
		for i := 0; i < n; i++ {
			if rnd.Intn(2) == 0 {
				sel = append(sel, int32(i))
			}
		}
		b.SetSel(sel)
	}
	return b
}

// TestColBlockRoundTripMatchesV2 is the value-identity property: for
// NULL-heavy and selection-heavy batches, encode→decode through the v3
// columnar frame yields exactly the rows the v2 row encoding yields —
// compressed and uncompressed.
func TestColBlockRoundTripMatchesV2(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rnd.Intn(200)
		nullFrac := []float64{0, 0.2, 0.9}[trial%3]
		ndv := []int{2, 26}[trial%2]
		withSel := trial%4 < 2
		compress := trial%2 == 0
		b := genColBatch(rnd, n, nullFrac, ndv, withSel)

		// v2 reference: row-encode the live rows, decode back.
		var v2enc BlockEncoder
		for si := 0; si < b.Len(); si++ {
			v2enc.AppendBatchRow(b, b.SelPos(si))
		}
		var want []Row
		if frame := v2enc.Finish(); frame != nil {
			dec, err := NewBlockDecoder(frame)
			if err != nil {
				t.Fatalf("trial %d: v2 decode: %v", trial, err)
			}
			for {
				r, ok, err := dec.Next()
				if err != nil {
					t.Fatalf("trial %d: v2 next: %v", trial, err)
				}
				if !ok {
					break
				}
				want = append(want, r)
			}
		}

		frame := AppendColBlock(nil, b, compress)
		if b.Len() == 0 {
			if frame != nil {
				t.Fatalf("trial %d: empty batch encoded %d bytes", trial, len(frame))
			}
			continue
		}
		got := NewColBatch(nil)
		rows, err := DecodeColBlock(frame, got)
		if err != nil {
			t.Fatalf("trial %d: v3 decode: %v", trial, err)
		}
		if rows != len(want) {
			t.Fatalf("trial %d: v3 rows = %d, v2 = %d", trial, rows, len(want))
		}
		gotRows := got.Rows(nil)
		for i := range want {
			if !gotRows[i].Equal(want[i]) {
				t.Fatalf("trial %d row %d (compress=%v sel=%v): v3 %v, v2 %v",
					trial, i, compress, withSel, gotRows[i], want[i])
			}
		}
	}
}

// TestColBlockEncodingSelection pins the per-column encoding choices: a
// clustered BIGINT column goes frame-of-reference, a low-NDV VARCHAR
// column goes dictionary, and both beat the v2 row encoding by a wide
// margin; high-entropy columns fall back to raw and still round-trip.
func TestColBlockEncodingSelection(t *testing.T) {
	b := NewColBatch([]Type{TypeInt, TypeString})
	for i := 0; i < 1024; i++ {
		b.AppendRow(Row{Int(int64(5_000_000 + i)), String_([]string{"alpha", "beta", "gamma"}[i%3])})
	}
	var v2enc BlockEncoder
	for i := 0; i < b.Len(); i++ {
		v2enc.AppendBatchRow(b, i)
	}
	v2 := v2enc.Finish()
	v3 := AppendColBlock(nil, b, true)
	if len(v3)*2 > len(v2) {
		t.Errorf("compressible block: v3 = %d bytes vs v2 = %d; want at least 2x smaller", len(v3), len(v2))
	}
	raw := AppendColBlock(nil, b, false)
	if len(raw) <= len(v3) {
		t.Errorf("uncompressed v3 = %d bytes, compressed = %d; the flag did nothing", len(raw), len(v3))
	}
	for _, frame := range [][]byte{v3, raw} {
		got := NewColBatch(nil)
		if _, err := DecodeColBlock(frame, got); err != nil {
			t.Fatal(err)
		}
		if got.Col(0).Ints[17] != 5_000_017 || got.Col(1).StringAt(17) != "gamma" {
			t.Fatalf("round-trip lost values: %d %q", got.Col(0).Ints[17], got.Col(1).StringAt(17))
		}
	}

	// A full-range random int column and unique strings must fall back raw.
	rnd := rand.New(rand.NewSource(7))
	hi := NewColBatch([]Type{TypeInt, TypeString})
	for i := 0; i < 512; i++ {
		hi.AppendRow(Row{Int(rnd.Int63() - rnd.Int63()), String_(strings.Repeat("u", i%7) + string(rune(i)))})
	}
	frame := AppendColBlock(nil, hi, true)
	got := NewColBatch(nil)
	if _, err := DecodeColBlock(frame, got); err != nil {
		t.Fatal(err)
	}
	want := hi.Rows(nil)
	for i, r := range got.Rows(nil) {
		if !r.Equal(want[i]) {
			t.Fatalf("high-entropy row %d = %v, want %v", i, r, want[i])
		}
	}
}

// TestBlockEncoderColumnarMode drives the encoder the way the sender
// does — EnableColumnar, then a mix of AppendBatch, AppendBatchRow and
// row Append — and checks Finish emits a decodable v3 frame, the encoder
// detaches, and RawBytes tracks the v2-equivalent size.
func TestBlockEncoderColumnarMode(t *testing.T) {
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool}
	rnd := rand.New(rand.NewSource(3))
	b := genColBatch(rnd, 100, 0.3, 2, true)

	var enc BlockEncoder
	enc.EnableColumnar(types, true)
	enc.AppendBatch(b)
	enc.AppendBatchRow(b, b.SelPos(0))
	extra := Row{Int(7), NullOf(TypeFloat), String_("vx"), Bool(true)}
	enc.Append(extra)
	wantRows := b.Len() + 2
	if enc.Rows() != wantRows {
		t.Fatalf("staged rows = %d, want %d", enc.Rows(), wantRows)
	}
	raw := enc.RawBytes()
	if raw <= 0 || enc.Len() != raw {
		t.Fatalf("RawBytes = %d, Len = %d", raw, enc.Len())
	}
	frame := enc.Finish()
	if frame == nil || !IsBlockFrame(frame) || frame[4] != WireProtoCol {
		t.Fatal("Finish did not produce a v3 frame")
	}
	if enc.Rows() != 0 || enc.Len() != 0 {
		t.Fatal("encoder not detached after Finish")
	}
	got := NewColBatch(nil)
	n, err := DecodeColBlock(frame, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantRows {
		t.Fatalf("decoded %d rows, want %d", n, wantRows)
	}
	want := b.Rows(nil)
	want = append(want, b.RowAt(0, nil), extra)
	for i, r := range got.Rows(nil) {
		if !r.Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, r, want[i])
		}
	}

	// The encoder must be reusable for the next block.
	enc.Append(extra)
	second := enc.Finish()
	if second == nil || second[4] != WireProtoCol {
		t.Fatal("second Finish broken")
	}
	if _, err := DecodeColBlock(second, got); err != nil {
		t.Fatal(err)
	}
}

// TestReaderMixedStreamWithV3 interleaves all three frame versions on one
// stream: the row path serves every row in order, credits each frame's
// wire bytes only when its last row is served, and ReadColBatch consumes
// whatever frame comes next.
func TestReaderMixedStreamWithV3(t *testing.T) {
	var wire bytes.Buffer
	var want []Row
	v1 := blockRows(3, 0)
	for _, r := range v1 {
		wire.Write(AppendBinary(nil, r))
	}
	want = append(want, v1...)
	var v2enc BlockEncoder
	v2 := blockRows(10, 100)
	for _, r := range v2 {
		v2enc.Append(r)
	}
	wire.Write(v2enc.Finish())
	want = append(want, v2...)
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool, TypeString}
	cb := NewColBatch(types)
	for _, r := range blockRows(20, 500) {
		cb.AppendRow(r)
		want = append(want, r)
	}
	wire.Write(AppendColBlock(nil, cb, true))

	wireLen := int64(wire.Len())
	rd := NewReader(bytes.NewReader(wire.Bytes()))
	for i, w := range want {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Equal(w) {
			t.Fatalf("row %d = %v, want %v", i, got, w)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("end err = %v", err)
	}
	if rd.Bytes() != wireLen {
		t.Fatalf("Bytes() = %d, wire had %d", rd.Bytes(), wireLen)
	}

	// Same stream through ReadColBatch: v1/v2 frames transpose, the v3
	// frame lands zero-pivot; every frame is fully credited.
	rd = NewReader(bytes.NewReader(wire.Bytes()))
	dst := NewColBatch(types)
	var got []Row
	for {
		_, err := rd.ReadColBatch(dst, types)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = dst.Rows(got)
	}
	if len(got) != len(want) {
		t.Fatalf("ReadColBatch rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("ReadColBatch row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if rd.Bytes() != wireLen {
		t.Fatalf("ReadColBatch Bytes() = %d, wire had %d", rd.Bytes(), wireLen)
	}
}

// TestReaderV3PartialThenBatch pins the resume-skip interaction: after the
// row path has served part of a v3 frame (the duplicate-prefix skip of
// the resume handshake), ReadColBatch returns exactly the remaining rows
// and the frame's bytes are credited once, in full.
func TestReaderV3PartialThenBatch(t *testing.T) {
	types := []Type{TypeInt, TypeFloat, TypeString, TypeBool, TypeString}
	cb := NewColBatch(types)
	rows := blockRows(10, 0)
	for _, r := range rows {
		cb.AppendRow(r)
	}
	frame := AppendColBlock(nil, cb, true)
	rd := NewReader(bytes.NewReader(frame))
	for i := 0; i < 4; i++ {
		got, err := rd.Read()
		if err != nil || !got.Equal(rows[i]) {
			t.Fatalf("skip row %d = %v (err %v)", i, got, err)
		}
	}
	if rd.Bytes() != 0 {
		t.Fatalf("credited %d bytes mid-frame", rd.Bytes())
	}
	dst := NewColBatch(types)
	n, err := rd.ReadColBatch(dst, types)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("remaining rows = %d, want 6", n)
	}
	for i, r := range dst.Rows(nil) {
		if !r.Equal(rows[4+i]) {
			t.Fatalf("remaining row %d = %v, want %v", i, r, rows[4+i])
		}
	}
	if rd.Bytes() != int64(len(frame)) {
		t.Fatalf("Bytes() = %d, want %d", rd.Bytes(), len(frame))
	}
}

// TestDecodeColBlockRejectsCorrupt feeds the decoder systematically
// damaged frames: every one must error, never panic.
func TestDecodeColBlockRejectsCorrupt(t *testing.T) {
	cb := NewColBatch(colTestTypes)
	rnd := rand.New(rand.NewSource(11))
	for _, r := range genColBatch(rnd, 64, 0.3, 3, false).Rows(nil) {
		cb.AppendRow(r)
	}
	frame := AppendColBlock(nil, cb, true)
	dst := NewColBatch(nil)
	mut := func(f func(c []byte) []byte) []byte {
		return f(append([]byte(nil), frame...))
	}
	cases := map[string][]byte{
		"truncated-tail":  frame[:len(frame)/2],
		"short-header":    frame[:4+colTailLen-2],
		"bad-version":     mut(func(c []byte) []byte { c[4] = 9; return c }),
		"flipped-payload": mut(func(c []byte) []byte { c[len(c)-3] ^= 0xff; return c }),
		"flipped-header":  mut(func(c []byte) []byte { c[4+colTailLen] ^= 0xff; return c }),
		"lying-rowcount":  mut(func(c []byte) []byte { c[6]++; return c }),
		"trailing-bytes":  mut(func(c []byte) []byte { return append(c, 0xaa) }),
		"huge-rowcount":   mut(func(c []byte) []byte { c[9] = 0x7f; return c }),
	}
	for name, c := range cases {
		if name == "truncated-tail" || name == "trailing-bytes" {
			// The length word no longer matches; fix it up so corruption
			// reaches the tail parser, as a lying sender would arrange.
			if len(c) >= 4 {
				w := uint32(len(c) - 4)
				c[0], c[1], c[2], c[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)|0x80
			}
		}
		if _, err := DecodeColBlock(c, dst); err == nil {
			t.Errorf("%s: corrupt frame decoded cleanly", name)
		}
	}
}

// FuzzBlockFrame hammers the frame decoders — the v3 columnar parser and
// the version-dispatching stream reader — with arbitrary bytes: they must
// return errors on garbage, never panic, and never allocate beyond the
// frame's own size (the per-encoding size checks run before any vector
// is grown). Seeds cover valid v2 and v3 frames so mutations explore the
// interesting neighborhoods.
func FuzzBlockFrame(f *testing.F) {
	var v2enc BlockEncoder
	for _, r := range blockRows(8, 0) {
		v2enc.Append(r)
	}
	f.Add(v2enc.Finish())
	cb := NewColBatch([]Type{TypeInt, TypeFloat, TypeString, TypeBool, TypeString})
	for _, r := range blockRows(8, 0) {
		cb.AppendRow(r)
	}
	v3 := AppendColBlock(nil, cb, true)
	f.Add(v3)
	f.Add(AppendColBlock(nil, cb, false))
	f.Add(v3[:len(v3)-3])
	f.Add(AppendBinary(nil, blockRows(1, 0)[0]))
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := NewColBatch(nil)
		_, _ = DecodeColBlock(data, dst)
		if len(data) >= 4 {
			// Bypass the length-word check to reach the tail parser with
			// arbitrary bytes, as a frame already staged off the wire would.
			_, _ = decodeColTail(data[4:], dst)
		}
		rd := NewReader(bytes.NewReader(data))
		for {
			if _, err := rd.Read(); err != nil {
				break
			}
		}
		rd = NewReader(bytes.NewReader(data))
		types := []Type{TypeInt, TypeFloat, TypeString, TypeBool, TypeString}
		for {
			if _, err := rd.ReadColBatch(dst, types); err != nil {
				break
			}
		}
	})
}
