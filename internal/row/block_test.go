package row

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func blockRows(n, base int) []Row {
	out := make([]Row, n)
	for i := range out {
		out[i] = Row{
			Int(int64(base + i)),
			Float(float64(i) / 3),
			String_("v" + string(rune('a'+i%26))),
			Bool(i%2 == 0),
			NullOf(TypeString),
		}
	}
	return out
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	rows := blockRows(37, 100)
	var enc BlockEncoder
	for _, r := range rows {
		enc.Append(r)
	}
	if enc.Rows() != len(rows) {
		t.Fatalf("encoder rows = %d", enc.Rows())
	}
	frame := enc.Finish()
	if frame == nil || !IsBlockFrame(frame) {
		t.Fatal("Finish did not produce a block frame")
	}
	if enc.Rows() != 0 || enc.Len() != 0 {
		t.Fatal("encoder not detached after Finish")
	}
	dec, err := NewBlockDecoder(frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows() != len(rows) {
		t.Fatalf("decoder rows = %d", dec.Rows())
	}
	for i, want := range rows {
		got, ok, err := dec.Next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		if !got.Equal(want) {
			t.Fatalf("row %d = %v, want %v", i, got, want)
		}
	}
	if _, ok, err := dec.Next(); ok || err != nil {
		t.Fatalf("decoder did not end cleanly: ok=%v err=%v", ok, err)
	}
}

func TestBlockEncoderEmptyFinish(t *testing.T) {
	var enc BlockEncoder
	if f := enc.Finish(); f != nil {
		t.Fatalf("empty Finish = %v", f)
	}
}

func TestBlockDecoderRejectsCorruptFrames(t *testing.T) {
	var enc BlockEncoder
	enc.Append(blockRows(1, 0)[0])
	frame := enc.Finish()
	cases := map[string][]byte{
		"short":        frame[:blockHeaderLen-1],
		"not-a-block":  append([]byte{1, 0, 0, 0}, frame[4:]...),
		"bad-length":   append(append([]byte{}, frame...), 0xff),
		"bad-version":  func() []byte { c := append([]byte{}, frame...); c[4] = 9; return c }(),
		"trailing-row": func() []byte { c := append([]byte{}, frame...); c[3] |= 0; c[8]++; return c }(), // rowCount+1 with no payload
	}
	for name, c := range cases {
		dec, err := NewBlockDecoder(c)
		if err != nil {
			continue // rejected at header validation — fine
		}
		ok := true
		for ok && err == nil {
			_, ok, err = dec.Next()
		}
		if err == nil {
			t.Errorf("%s: corrupt frame decoded cleanly", name)
		}
	}
}

// TestReaderDecodesMixedVersionStream interleaves v1 single-row frames and
// v2 block frames on one stream — what a mixed-version deployment (or a
// spool written under a different negotiated protocol) produces.
func TestReaderDecodesMixedVersionStream(t *testing.T) {
	var wire bytes.Buffer
	var want []Row
	// v1 run.
	v1 := blockRows(5, 0)
	for _, r := range v1 {
		wire.Write(AppendBinary(nil, r))
	}
	want = append(want, v1...)
	// v2 block.
	var enc BlockEncoder
	v2 := blockRows(20, 1000)
	for _, r := range v2 {
		enc.Append(r)
	}
	wire.Write(enc.Finish())
	want = append(want, v2...)
	// v1 again (a sender that fell back mid-stream).
	tail := blockRows(3, 5000)
	for _, r := range tail {
		wire.Write(AppendBinary(nil, r))
	}
	want = append(want, tail...)

	wireLen := int64(wire.Len())
	rd := NewReader(&wire)
	for i, w := range want {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !got.Equal(w) {
			t.Fatalf("row %d = %v, want %v", i, got, w)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("end of stream err = %v", err)
	}
	if rd.Bytes() != wireLen {
		t.Fatalf("Bytes() = %d, wire had %d", rd.Bytes(), wireLen)
	}
}

// TestReaderBytesCreditsBlockOnLastRow pins the flow-control contract: a
// block's wire bytes count only once its last row is served.
func TestReaderBytesCreditsBlockOnLastRow(t *testing.T) {
	var enc BlockEncoder
	rows := blockRows(4, 0)
	for _, r := range rows {
		enc.Append(r)
	}
	frame := enc.Finish()
	rd := NewReader(bytes.NewReader(frame))
	for i := 0; i < len(rows)-1; i++ {
		if _, err := rd.Read(); err != nil {
			t.Fatal(err)
		}
		if rd.Bytes() != 0 {
			t.Fatalf("credited %d bytes after %d of %d rows", rd.Bytes(), i+1, len(rows))
		}
	}
	if _, err := rd.Read(); err != nil {
		t.Fatal(err)
	}
	if rd.Bytes() != int64(len(frame)) {
		t.Fatalf("Bytes() = %d after last row, want %d", rd.Bytes(), len(frame))
	}
}

func TestReaderReadBlockBatches(t *testing.T) {
	var wire bytes.Buffer
	var enc BlockEncoder
	rows := blockRows(10, 0)
	for _, r := range rows {
		enc.Append(r)
	}
	wire.Write(enc.Finish())
	single := blockRows(1, 99)[0]
	wire.Write(AppendBinary(nil, single))

	rd := NewReader(&wire)
	batch, err := rd.ReadBlock(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(rows) {
		t.Fatalf("first batch = %d rows, want %d", len(batch), len(rows))
	}
	batch, err = rd.ReadBlock(batch[:0])
	if err != nil || len(batch) != 1 || !batch[0].Equal(single) {
		t.Fatalf("v1 batch = %v (err %v)", batch, err)
	}
	if _, err := rd.ReadBlock(nil); err != io.EOF {
		t.Fatalf("end err = %v", err)
	}
}

// TestBlocksRoundTripThroughDiskFile writes block frames to a file the way
// the sender's spill path does (raw frame bytes, one write per block) and
// re-reads them byte-identical through the frame reader.
func TestBlocksRoundTripThroughDiskFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Row
	var frames [][]byte
	for b := 0; b < 5; b++ {
		var enc BlockEncoder
		rows := blockRows(50+b, b*1000)
		for _, r := range rows {
			enc.Append(r)
		}
		want = append(want, rows...)
		frame := enc.Finish()
		frames = append(frames, append([]byte(nil), frame...))
		if _, err := f.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, bytes.Join(frames, nil)) {
		t.Fatal("spill file is not the byte-identical concatenation of the frames")
	}
	rd := NewReader(bytes.NewReader(raw))
	for i, w := range want {
		got, err := rd.Read()
		if err != nil || !got.Equal(w) {
			t.Fatalf("row %d after disk round-trip = %v (err %v), want %v", i, got, err, w)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("end err = %v", err)
	}
}

func TestBlockBufferPoolReuse(t *testing.T) {
	b := NewBlockBuffer()
	if len(b) != 0 {
		t.Fatalf("pooled buffer not empty: %d", len(b))
	}
	b = append(b, 1, 2, 3)
	RecycleBlockBuffer(b)
	// A recycled buffer must come back empty (the pool may also hand out a
	// fresh one; either way the contract is len==0).
	b2 := NewBlockBuffer()
	if len(b2) != 0 {
		t.Fatalf("reused buffer not reset: %d", len(b2))
	}
	RecycleBlockBuffer(b2)
}
