// Package datagen generates the paper's §7 synthetic workload: a carts
// table and a users table "in the context of the example query scenario
// described in Section 1", stored in text format on the DFS.
//
// The paper's tables are 1 billion carts (56 GB) and 10 million users
// (361 MB); Config.Scale shrinks both while keeping the 100:1 ratio. The
// abandoned label is drawn from a logistic model over age, gender and
// amount so the downstream SVM has real signal to learn.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// Config sizes the synthetic dataset.
type Config struct {
	// Users is the row count of the users table.
	Users int
	// CartsPerUser keeps the paper's 100:1 carts:users ratio by default.
	CartsPerUser int
	Seed         int64
}

// Default returns a laptop-scale configuration (2 000 users, 100 carts
// each — the paper's ratio at 1:5000 scale).
func Default() Config {
	return Config{Users: 2000, CartsPerUser: 100, Seed: 7}
}

// UsersSchema is the users table schema from the paper's example.
func UsersSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "country", Type: row.TypeString},
	)
}

// CartsSchema is the carts table schema (including the nitems and year
// columns §5.2's example query touches).
func CartsSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "cartid", Type: row.TypeInt},
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "nitems", Type: row.TypeInt},
		row.Column{Name: "year", Type: row.TypeInt},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
}

// countries weights the users' country field; USA dominates so the §1
// filter keeps most of the data, as in any US retailer's warehouse.
var countries = []struct {
	name   string
	weight float64
}{
	{"USA", 0.55}, {"Germany", 0.12}, {"Greece", 0.08}, {"Brazil", 0.10}, {"Japan", 0.15},
}

// Dataset holds generated rows for both tables.
type Dataset struct {
	Users []row.Row
	Carts []row.Row
}

// Generate produces the synthetic tables deterministically from the seed.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.CartsPerUser <= 0 {
		return nil, fmt.Errorf("datagen: need positive sizes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Users: make([]row.Row, 0, cfg.Users),
		Carts: make([]row.Row, 0, cfg.Users*cfg.CartsPerUser),
	}
	type userInfo struct {
		age    int64
		female bool
	}
	users := make([]userInfo, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		age := 18 + rng.Intn(63)
		female := rng.Intn(2) == 0
		gender := "M"
		if female {
			gender = "F"
		}
		c := pickCountry(rng)
		users[i] = userInfo{age: int64(age), female: female}
		d.Users = append(d.Users, row.Row{
			row.Int(int64(i + 1)),
			row.Int(int64(age)),
			row.String_(gender),
			row.String_(c),
		})
	}
	cartID := int64(1)
	for u := 0; u < cfg.Users; u++ {
		info := users[u]
		for c := 0; c < cfg.CartsPerUser; c++ {
			amount := math.Exp(rng.NormFloat64()*0.9 + 4.0) // log-normal dollars
			nitems := 1 + rng.Intn(12)
			year := 2012 + rng.Intn(3)
			// Logistic abandonment model: younger users and larger carts
			// abandon more; gender contributes a small shift.
			z := 0.04*(45-float64(info.age)) + 0.012*(amount-60)
			if info.female {
				z -= 0.3
			}
			abandoned := "No"
			if rng.Float64() < 1/(1+math.Exp(-z)) {
				abandoned = "Yes"
			}
			d.Carts = append(d.Carts, row.Row{
				row.Int(cartID),
				row.Int(int64(u + 1)),
				row.Float(round2(amount)),
				row.Int(int64(nitems)),
				row.Int(int64(year)),
				row.String_(abandoned),
			})
			cartID++
		}
	}
	return d, nil
}

func pickCountry(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	for _, c := range countries {
		acc += c.weight
		if r < acc {
			return c.name
		}
	}
	return countries[len(countries)-1].name
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

// WriteToDFS stores both tables as text files under dir, returning their
// paths. writerNode is the node issuing the writes.
func WriteToDFS(d *Dataset, fs *dfs.FileSystem, dir string, writerNode *cluster.Node) (usersPath, cartsPath string, err error) {
	usersPath = dir + "/users.txt"
	cartsPath = dir + "/carts.txt"
	if _, err := hadoopfmt.WriteTextTable(fs, usersPath, UsersSchema(), d.Users, writerNode); err != nil {
		return "", "", err
	}
	if _, err := hadoopfmt.WriteTextTable(fs, cartsPath, CartsSchema(), d.Carts, writerNode); err != nil {
		return "", "", err
	}
	return usersPath, cartsPath, nil
}
