package datagen

import (
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
)

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := Config{Users: 200, CartsPerUser: 10, Seed: 42}
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Users) != 200 || len(d1.Carts) != 2000 {
		t.Fatalf("sizes = %d users, %d carts", len(d1.Users), len(d1.Carts))
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Users {
		if !d1.Users[i].Equal(d2.Users[i]) {
			t.Fatalf("users not deterministic at %d", i)
		}
	}
	for i := range d1.Carts {
		if !d1.Carts[i].Equal(d2.Carts[i]) {
			t.Fatalf("carts not deterministic at %d", i)
		}
	}
	d3, err := Generate(Config{Users: 200, CartsPerUser: 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range d1.Users {
		if d1.Users[i].Equal(d3.Users[i]) {
			same++
		}
	}
	if same == len(d1.Users) {
		t.Error("different seeds produced identical users")
	}
}

func TestGeneratedRowsConformToSchemas(t *testing.T) {
	d, err := Generate(Config{Users: 50, CartsPerUser: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range d.Users {
		if err := r.Conforms(UsersSchema()); err != nil {
			t.Fatalf("user row %d: %v", i, err)
		}
	}
	for i, r := range d.Carts {
		if err := r.Conforms(CartsSchema()); err != nil {
			t.Fatalf("cart row %d: %v", i, err)
		}
	}
}

func TestGeneratedDistributions(t *testing.T) {
	d, err := Generate(Config{Users: 3000, CartsPerUser: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	countries := map[string]int{}
	genders := map[string]int{}
	usaIdx := UsersSchema().ColIndex("country")
	gIdx := UsersSchema().ColIndex("gender")
	ageIdx := UsersSchema().ColIndex("age")
	for _, r := range d.Users {
		countries[r[usaIdx].AsString()]++
		genders[r[gIdx].AsString()]++
		age := r[ageIdx].AsInt()
		if age < 18 || age > 80 {
			t.Fatalf("age %d out of range", age)
		}
	}
	usaShare := float64(countries["USA"]) / float64(len(d.Users))
	if usaShare < 0.45 || usaShare > 0.65 {
		t.Errorf("USA share = %.3f, want ~0.55", usaShare)
	}
	if genders["F"] == 0 || genders["M"] == 0 || len(genders) != 2 {
		t.Errorf("genders = %v", genders)
	}

	// Cart foreign keys reference existing users; amounts positive.
	uidIdx := CartsSchema().ColIndex("userid")
	amtIdx := CartsSchema().ColIndex("amount")
	abIdx := CartsSchema().ColIndex("abandoned")
	abandoned := 0
	for _, r := range d.Carts {
		uid := r[uidIdx].AsInt()
		if uid < 1 || uid > int64(len(d.Users)) {
			t.Fatalf("cart references user %d", uid)
		}
		if r[amtIdx].AsFloat() <= 0 {
			t.Fatalf("non-positive amount %v", r[amtIdx])
		}
		if r[abIdx].AsString() == "Yes" {
			abandoned++
		}
	}
	share := float64(abandoned) / float64(len(d.Carts))
	if share < 0.2 || share > 0.8 {
		t.Errorf("abandonment share = %.3f, want an informative mix", share)
	}
}

// TestLabelHasSignal: the abandonment label must correlate with the
// features, or the reproduced SVM experiment would be learning noise.
func TestLabelHasSignal(t *testing.T) {
	d, err := Generate(Config{Users: 2000, CartsPerUser: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	amtIdx := CartsSchema().ColIndex("amount")
	abIdx := CartsSchema().ColIndex("abandoned")
	var sumYes, sumNo float64
	var nYes, nNo int
	for _, r := range d.Carts {
		if r[abIdx].AsString() == "Yes" {
			sumYes += r[amtIdx].AsFloat()
			nYes++
		} else {
			sumNo += r[amtIdx].AsFloat()
			nNo++
		}
	}
	if nYes == 0 || nNo == 0 {
		t.Fatal("degenerate label")
	}
	if sumYes/float64(nYes) <= sumNo/float64(nNo) {
		t.Error("abandoned carts should have a higher mean amount (by construction)")
	}
}

func TestWriteToDFSRoundTrip(t *testing.T) {
	topo := cluster.NewTopology(3)
	fs := dfs.New(topo, dfs.Config{BlockSize: 4096, Replication: 2})
	d, err := Generate(Config{Users: 40, CartsPerUser: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	usersPath, cartsPath, err := WriteToDFS(d, fs, "/wh", topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	users, err := hadoopfmt.ReadAll(hadoopfmt.NewTextTableFormat(fs, usersPath, UsersSchema()), topo.Node(1))
	if err != nil {
		t.Fatal(err)
	}
	carts, err := hadoopfmt.ReadAll(hadoopfmt.NewTextTableFormat(fs, cartsPath, CartsSchema()), topo.Node(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 40 || len(carts) != 120 {
		t.Fatalf("round trip sizes: %d users, %d carts", len(users), len(carts))
	}
	if !users[0].Equal(d.Users[0]) {
		t.Errorf("first user differs: %v vs %v", users[0], d.Users[0])
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Users: 0, CartsPerUser: 1}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := Generate(Config{Users: 1, CartsPerUser: 0}); err == nil {
		t.Error("zero carts-per-user accepted")
	}
}

func TestRow2Rounding(t *testing.T) {
	if round2(1.005) != 1.01 && round2(1.005) != 1.0 {
		// Floating point may land either way for .005; just ensure 2dp.
	}
	if round2(3.14159) != 3.14 {
		t.Errorf("round2(3.14159) = %v", round2(3.14159))
	}
}
