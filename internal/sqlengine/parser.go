package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"sqlml/internal/row"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at byte %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "SHOW"):
		p.next()
		if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case p.at(tokKeyword, "DESCRIBE"):
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name.text}, nil
	default:
		return nil, p.errf("expected a statement, found %q", p.cur().text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	var joinConds []Expr
	first, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	sel.From = append(sel.From, first)
	for {
		if p.accept(tokSymbol, ",") {
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, item)
			continue
		}
		// Explicit [INNER] JOIN ... ON desugars to a comma join with the ON
		// condition conjoined into WHERE; the planner extracts equi-join
		// conditions from the conjunct list either way.
		if p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") {
			p.accept(tokKeyword, "INNER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, item)
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			joinConds = append(joinConds, cond)
			continue
		}
		break
	}

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if len(joinConds) > 0 {
		sel.Where = AndAll(append(joinConds, Conjuncts(sel.Where)...))
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* form
	if p.at(tokIdent, "") && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
		q := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, StarQualifier: q}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var item FromItem
	if p.accept(tokKeyword, "TABLE") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return item, err
		}
		fn, err := p.parseTableFunc()
		if err != nil {
			return item, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return item, err
		}
		item.Func = fn
	} else {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Table = t.text
	}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableFunc() (*TableFuncCall, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fn := &TableFuncCall{Name: name.text}
	if !p.at(tokSymbol, ")") {
		for {
			arg, err := p.parseTableFuncArg()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, arg)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) parseTableFuncArg() (TableFuncArg, error) {
	if p.at(tokIdent, "") {
		return TableFuncArg{Table: p.next().text}, nil
	}
	e, err := p.parsePrimary()
	if err != nil {
		return TableFuncArg{}, err
	}
	lit, ok := e.(*Lit)
	if !ok {
		return TableFuncArg{}, p.errf("table function arguments must be table names or literals")
	}
	return TableFuncArg{Lit: lit}, nil
}

// Expression grammar, loosest to tightest binding:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | pred
//	pred    := add (cmp add | IS [NOT] NULL | [NOT] IN (...) | BETWEEN a AND b)?
//	add     := mul (('+'|'-') mul)*
//	mul     := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
//	primary := literal | colref | func(args) | '(' expr ')'
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Negate: neg}, nil
	}
	neg := false
	if p.at(tokKeyword, "NOT") && p.i+1 < len(p.toks) &&
		(p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN") {
		p.next()
		neg = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InListExpr{E: left, List: list, Negate: neg}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		rangeExpr := &BinOp{Op: "AND",
			L: &BinOp{Op: ">=", L: left, R: lo},
			R: &BinOp{Op: "<=", L: left, R: hi},
		}
		if neg {
			return &NotExpr{E: rangeExpr}, nil
		}
		return rangeExpr, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinOp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinOp{Op: "+", L: left, R: right}
		case p.accept(tokSymbol, "-"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinOp{Op: "-", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinOp{Op: "*", L: left, R: right}
		case p.accept(tokSymbol, "/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinOp{Op: "/", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && lit.V.Numeric() && !lit.V.Null {
			if lit.V.Kind == row.TypeInt {
				return &Lit{V: row.Int(-lit.V.AsInt())}, nil
			}
			return &Lit{V: row.Float(-lit.V.AsFloat())}, nil
		}
		return &BinOp{Op: "-", L: &Lit{V: row.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{V: row.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{V: row.Int(n)}, nil
	case tokString:
		p.next()
		return &Lit{V: row.String_(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "CASE":
			return p.parseCase()
		case "NULL":
			p.next()
			return &Lit{V: row.NullOf(row.TypeString)}, nil
		case "TRUE":
			p.next()
			return &Lit{V: row.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Lit{V: row.Bool(false)}, nil
		}
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		p.next()
		// function call
		if p.at(tokSymbol, "(") {
			p.next()
			fc := &FuncCall{Name: t.text}
			if p.accept(tokSymbol, "*") {
				fc.Star = true
			} else if !p.at(tokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// qualified column
		if p.accept(tokSymbol, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: t.text, Name: c.text}, nil
		}
		return &ColRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCreate() (Statement, error) {
	if _, err := p.expect(tokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name.text}
	if p.accept(tokKeyword, "AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.AsSelect = sel
		return stmt, nil
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		cname, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ctype, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		t, err := row.ParseType(ctype.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		stmt.Cols = append(stmt.Cols, row.Column{Name: cname.text, Type: t})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, vals)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if _, err := p.expect(tokKeyword, "DROP"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name.text}, nil
}

// parseCase parses a searched CASE expression.
func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	out := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(out.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return out, nil
}
