package sqlengine

import (
	"sqlml/internal/row"
)

// Parallel hash-join build. The build side arrives as materialized
// partitions; building runs in two pool passes over morsels:
//
//  1. Key scan — every morsel independently evaluates the build key
//     expressions, packing its rows' norm-key bytes back to back and
//     hashing each key once (hash 0 marks a NULL key component, which
//     never matches). Morsels are claimed from the pool, so one skewed
//     build partition does not serialize the scan.
//  2. Sharded insert — the key space is split by the high hash bits into
//     power-of-two shards, one arena HashTable per shard, and each shard
//     is built by one pool task scanning the keyed morsels in
//     partition-major order. Rows of one key always live in one shard, so
//     shards need no locks, and the in-order scan keeps every bucket's
//     rows in exactly the global row order a sequential build produces.
//
// Both pass boundaries are deterministic functions of the input (morsel
// grid, hash routing), never of the schedule, so the probe output is
// byte-identical at any Parallelism — including the shard layout itself,
// which depends only on the shard count, and the shard count only on the
// pool size in a way the probe cannot observe (bucket contents and their
// order are shard-independent).

// buildShards picks the shard count for a pool of the given size: the
// smallest power of two covering the workers, capped so tiny tables do
// not fan out into dozens of near-empty tables.
func buildShards(workers int) (shards int, shift uint) {
	s, bits := 1, uint(0)
	for s < workers && s < 16 {
		s <<= 1
		bits++
	}
	return s, 64 - bits
}

// buildTable is the probe-side view of a sharded hash-join build: key
// lookup routes by the high hash bits to one shard's arena table, whose
// dense index addresses that shard's bucket of build rows.
type buildTable struct {
	shift   uint
	shards  []*HashTable
	buckets [][][]row.Row // per shard, per dense index: build rows
}

// bucket returns the build rows matching key, in global build-row order.
func (bt *buildTable) bucket(key []byte) []row.Row {
	h := hashNonZero(key)
	s := 0
	if len(bt.shards) > 1 {
		s = int(h >> bt.shift)
	}
	idx, ok := bt.shards[s].LookupHashed(key, h)
	if !ok {
		return nil
	}
	return bt.buckets[s][idx]
}

// keyedMorsel is one build morsel after the key scan: the packed norm
// keys of its rows (key i is flat[offs[i]:offs[i+1]]) and their hashes
// (0 ⇒ NULL key, skip).
type keyedMorsel struct {
	rows   []row.Row
	flat   []byte
	offs   []uint32
	hashes []uint64
}

// buildHashTable runs the two-pass parallel build over the drained build
// partitions.
func buildHashTable(qp *queryPool, parts [][]row.Row, keyFns []evalFn) (*buildTable, error) {
	morsels := morselize(parts)
	keyed := make([]keyedMorsel, len(morsels))
	err := qp.forEach(len(morsels), func(m, _ int) error {
		rows := morsels[m].rows
		km := &keyedMorsel{
			rows:   rows,
			offs:   make([]uint32, 1, len(rows)+1),
			hashes: make([]uint64, len(rows)),
		}
		for i, r := range rows {
			start := len(km.flat)
			flat, nullKey, err := appendEvalKey(km.flat, keyFns, r)
			if err != nil {
				return err
			}
			if nullKey {
				km.flat = flat[:start]
			} else {
				km.flat = flat
				km.hashes[i] = hashNonZero(km.flat[start:])
			}
			km.offs = append(km.offs, uint32(len(km.flat)))
		}
		keyed[m] = *km
		return nil
	})
	if err != nil {
		return nil, err
	}

	shards, shift := buildShards(qp.n)
	bt := &buildTable{
		shift:   shift,
		shards:  make([]*HashTable, shards),
		buckets: make([][][]row.Row, shards),
	}
	err = qp.forEach(shards, func(s, _ int) error {
		t := NewHashTable(0)
		var buckets [][]row.Row
		for mi := range keyed {
			km := &keyed[mi]
			for i, h := range km.hashes {
				if h == 0 {
					continue
				}
				if shards > 1 && int(h>>shift) != s {
					continue
				}
				idx, added := t.InsertHashed(km.flat[km.offs[i]:km.offs[i+1]], h)
				if added {
					buckets = append(buckets, nil)
				}
				buckets[idx] = append(buckets[idx], km.rows[i])
			}
		}
		bt.shards[s] = t
		bt.buckets[s] = buckets
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bt, nil
}
