package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input, for error messages
}

// keywords recognised by the parser. Identifiers matching these
// (case-insensitively) lex as tokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"JOIN": true, "INNER": true, "ON": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "TABLE": true,
	"CREATE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DROP": true, "IS": true, "NULL": true, "IN": true,
	"TRUE": true, "FALSE": true, "BETWEEN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"SHOW": true, "TABLES": true, "DESCRIBE": true, "HAVING": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input completely, returning a parse-ready token stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
		if l.pos == start {
			return nil, fmt.Errorf("sql: lexer stuck at byte %d near %q", l.pos, truncAt(l.src, l.pos))
		}
	}
}

func truncAt(s string, pos int) string {
	end := pos + 20
	if end > len(s) {
		end = len(s)
	}
	return s[pos:end]
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if text == "." {
		return fmt.Errorf("sql: bad number at byte %d", start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("sql: unterminated string starting at byte %d", start)
		}
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
	return nil
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', ';', '.':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at byte %d", c, l.pos)
}
