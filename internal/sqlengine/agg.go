package sqlengine

import (
	"fmt"
	"strings"

	"sqlml/internal/row"
)

// walkExpr visits every node of an expression tree, pre-order.
func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *BinOp:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *NotExpr:
		walkExpr(x.E, visit)
	case *IsNullExpr:
		walkExpr(x.E, visit)
	case *InListExpr:
		walkExpr(x.E, visit)
		for _, le := range x.List {
			walkExpr(le, visit)
		}
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, visit)
			walkExpr(w.Then, visit)
		}
		walkExpr(x.Else, visit)
	}
}

// exprHasAggregate reports whether the expression contains an aggregate
// function call anywhere.
func exprHasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(sub Expr) {
		if fc, ok := sub.(*FuncCall); ok && isAggregateName(fc.Name) {
			found = true
		}
	})
	return found
}

// aggKind enumerates the built-in aggregate functions.
type aggKind int

const (
	aggCount aggKind = iota
	aggSum
	aggAvg
	aggMin
	aggMax
)

func aggKindOf(name string) (aggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return aggCount, true
	case "sum":
		return aggSum, true
	case "avg":
		return aggAvg, true
	case "min":
		return aggMin, true
	case "max":
		return aggMax, true
	}
	return 0, false
}

// aggState is one aggregate's running accumulation within one group.
type aggState struct {
	kind  aggKind
	count int64
	sumF  float64
	sumI  int64
	isInt bool
	minV  row.Value
	maxV  row.Value
	any   bool
}

func (a *aggState) add(v row.Value, star bool) {
	if a.kind == aggCount {
		if star || !v.Null {
			a.count++
		}
		return
	}
	if v.Null {
		return
	}
	a.any = true
	switch a.kind {
	case aggSum, aggAvg:
		a.count++
		if a.isInt {
			a.sumI += v.AsInt()
		} else {
			a.sumF += v.AsFloat()
		}
	case aggMin:
		if a.minV.Null || v.Compare(a.minV) < 0 {
			a.minV = v
		}
	case aggMax:
		if a.maxV.Null || v.Compare(a.maxV) > 0 {
			a.maxV = v
		}
	}
}

func (a *aggState) merge(o *aggState) {
	switch a.kind {
	case aggCount:
		a.count += o.count
	case aggSum, aggAvg:
		a.count += o.count
		a.sumI += o.sumI
		a.sumF += o.sumF
		a.any = a.any || o.any
	case aggMin:
		if o.any && (!a.any || o.minV.Compare(a.minV) < 0) {
			a.minV = o.minV
		}
		a.any = a.any || o.any
	case aggMax:
		if o.any && (!a.any || o.maxV.Compare(a.maxV) > 0) {
			a.maxV = o.maxV
		}
		a.any = a.any || o.any
	}
}

func (a *aggState) finalize(t row.Type) row.Value {
	switch a.kind {
	case aggCount:
		return row.Int(a.count)
	case aggSum:
		if !a.any {
			return row.NullOf(t)
		}
		if a.isInt {
			return row.Int(a.sumI)
		}
		return row.Float(a.sumF)
	case aggAvg:
		if a.count == 0 {
			return row.NullOf(row.TypeFloat)
		}
		total := a.sumF
		if a.isInt {
			total = float64(a.sumI)
		}
		return row.Float(total / float64(a.count))
	case aggMin:
		if !a.any {
			return row.NullOf(t)
		}
		return a.minV
	default:
		if !a.any {
			return row.NullOf(t)
		}
		return a.maxV
	}
}

// aggSpec is one aggregate column of the output.
type aggSpec struct {
	kind    aggKind
	star    bool
	argFn   evalFn
	argType row.Type
	outType row.Type
}

func (s *aggSpec) newState() *aggState {
	st := &aggState{kind: s.kind, isInt: s.argType == row.TypeInt}
	st.minV = row.NullOf(s.argType)
	st.maxV = row.NullOf(s.argType)
	return st
}

// outputCol describes one select item of an aggregate query: either a
// group-by key (keyIdx >= 0) or an aggregate (aggIdx >= 0).
type outputCol struct {
	keyIdx int
	aggIdx int
	name   string
	typ    row.Type
}

// execAggregate evaluates an aggregate query: streaming partial
// aggregation per partition on the query pool (a pipeline breaker, but
// one that holds O(groups) memory, never the full input), then a merge at
// the head node. The merged result occupies partition 0.
//
// Partials stay partition-scoped rather than worker- or morsel-scoped on
// purpose: SUM/AVG over DOUBLE accumulate in floating point, where
// addition order is observable, so the partial boundaries must be a
// deterministic function of the input for the output to stay
// byte-identical at any Parallelism — and identical to the pre-pool
// engine, whose partials were also per partition.
func (e *Engine) execAggregate(qp *queryPool, sel *SelectStmt, in *dataset) (row.Schema, [][]row.Row, error) {
	// Compile group keys.
	keyFns := make([]evalFn, len(sel.GroupBy))
	keyStrs := make([]string, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		fn, _, err := compile(g, in.sc, e.registry)
		if err != nil {
			return row.Schema{}, nil, err
		}
		keyFns[i] = fn
		keyStrs[i] = g.String()
	}

	// Classify select items.
	var cols []outputCol
	var specs []*aggSpec
	var argExprs []Expr // aligned with specs; nil for COUNT(*)
	for _, item := range sel.Items {
		if item.Star {
			return row.Schema{}, nil, fmt.Errorf("sql: * not allowed with GROUP BY / aggregates")
		}
		if fc, ok := item.Expr.(*FuncCall); ok && isAggregateName(fc.Name) {
			kind, _ := aggKindOf(fc.Name)
			spec := &aggSpec{kind: kind, star: fc.Star}
			if !fc.Star {
				if len(fc.Args) != 1 {
					return row.Schema{}, nil, fmt.Errorf("sql: %s takes one argument", strings.ToUpper(fc.Name))
				}
				fn, t, err := compile(fc.Args[0], in.sc, e.registry)
				if err != nil {
					return row.Schema{}, nil, err
				}
				if (kind == aggSum || kind == aggAvg) && !numericType(t) {
					return row.Schema{}, nil, fmt.Errorf("sql: %s requires a numeric argument", strings.ToUpper(fc.Name))
				}
				spec.argFn = fn
				spec.argType = t
			} else if kind != aggCount {
				return row.Schema{}, nil, fmt.Errorf("sql: only COUNT may use *")
			}
			switch kind {
			case aggCount:
				spec.outType = row.TypeInt
			case aggAvg:
				spec.outType = row.TypeFloat
			default:
				spec.outType = spec.argType
			}
			specs = append(specs, spec)
			if fc.Star {
				argExprs = append(argExprs, nil)
			} else {
				argExprs = append(argExprs, fc.Args[0])
			}
			cols = append(cols, outputCol{keyIdx: -1, aggIdx: len(specs) - 1, name: outputName(item), typ: spec.outType})
			continue
		}
		// A non-aggregate item must match a GROUP BY expression.
		matched := -1
		for ki, ks := range keyStrs {
			if item.Expr.String() == ks {
				matched = ki
				break
			}
		}
		if matched < 0 {
			return row.Schema{}, nil, fmt.Errorf("sql: %s is neither an aggregate nor in GROUP BY", item.Expr)
		}
		_, t, err := compile(item.Expr, in.sc, e.registry)
		if err != nil {
			return row.Schema{}, nil, err
		}
		cols = append(cols, outputCol{keyIdx: matched, aggIdx: -1, name: outputName(item), typ: t})
	}

	type group struct {
		keys row.Row
		aggs []*aggState
	}
	newGroup := func(keys row.Row) *group {
		g := &group{keys: keys, aggs: make([]*aggState, len(specs))}
		for i, s := range specs {
			g.aggs[i] = s.newState()
		}
		return g
	}

	// Columnar accumulation kernels: group keys and aggregate arguments are
	// evaluated column-wise per batch, keys encoded cell-by-cell with the
	// vector key codec (byte-identical to the row codec, so partials merge
	// regardless of which path produced them) and inserted through the
	// column-at-a-time InsertKeys entry point.
	var vecKeyFns, vecArgFns []vecFn
	useVec := e.columnar
	if useVec {
		for _, g := range sel.GroupBy {
			fn, _, err := compileVec(g, in.sc, e.registry)
			if err != nil {
				useVec = false
				break
			}
			vecKeyFns = append(vecKeyFns, fn)
		}
	}
	if useVec {
		for _, ex := range argExprs {
			if ex == nil {
				vecArgFns = append(vecArgFns, nil)
				continue
			}
			fn, _, err := compileVec(ex, in.sc, e.registry)
			if err != nil {
				useVec = false
				break
			}
			vecArgFns = append(vecArgFns, fn)
		}
	}
	inTypes := row.SchemaTypes(in.sc.combined())

	// Streaming partial aggregation per partition: consume the input
	// pipeline batch-by-batch, accumulating only per-group state. The
	// arena hash table maps each row's key bytes (encoded into a reused
	// scratch buffer) to a dense group index; the key values are
	// materialized into a row only when a new group is created.
	primeIters(in.iters)
	partials := make([][]*group, len(in.iters))
	err := qp.forEach(len(in.iters), func(i, _ int) error {
		defer in.iters[i].Close()
		ht := NewHashTable(0)
		var groups []*group
		if useVec {
			cit := asColIterator(in.iters[i], inTypes)
			defer cit.Close()
			var ctx vecCtx
			kvecs := make([]*row.Vector, len(vecKeyFns))
			avecs := make([]*row.Vector, len(specs))
			var flat []byte
			var offs []uint32
			var idxs []uint32
			for {
				if qp.cancelled() {
					return errQueryCancelled
				}
				b, ok, err := cit.NextCol()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				ctx.reclaim()
				for ki, fn := range vecKeyFns {
					v, err := fn(&ctx, b, b.Sel())
					if err != nil {
						return err
					}
					kvecs[ki] = v
				}
				for ai, fn := range vecArgFns {
					if fn == nil {
						continue
					}
					v, err := fn(&ctx, b, b.Sel())
					if err != nil {
						return err
					}
					avecs[ai] = v
				}
				k := b.Len()
				flat = flat[:0]
				offs = append(offs[:0], 0)
				for si := 0; si < k; si++ {
					p := b.SelPos(si)
					for _, kv := range kvecs {
						flat = row.AppendVectorKey(flat, kv, p)
					}
					offs = append(offs, uint32(len(flat)))
				}
				idxs = ht.InsertKeys(flat, offs, idxs[:0])
				for si := 0; si < k; si++ {
					p := b.SelPos(si)
					var g *group
					if int(idxs[si]) == len(groups) {
						gk := make(row.Row, len(kvecs))
						for ki, kv := range kvecs {
							gk[ki] = kv.ValueAt(p)
						}
						g = newGroup(gk)
						groups = append(groups, g)
					} else {
						g = groups[idxs[si]]
					}
					for ai, s := range specs {
						var v row.Value
						if !s.star {
							v = avecs[ai].ValueAt(p)
						}
						g.aggs[ai].add(v, s.star)
					}
				}
			}
			partials[i] = groups
			return nil
		}
		var keyBuf []byte
		keyVals := make(row.Row, len(keyFns))
		it := &batchRows{in: in.iters[i]}
		for {
			if len(it.cur) == it.i && qp.cancelled() {
				return errQueryCancelled
			}
			r, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			keyBuf = keyBuf[:0]
			for ki, fn := range keyFns {
				v, err := fn(r)
				if err != nil {
					return err
				}
				keyVals[ki] = v
				keyBuf = row.AppendKeyValue(keyBuf, v)
			}
			idx, added := ht.Insert(keyBuf)
			var g *group
			if added {
				g = newGroup(append(row.Row(nil), keyVals...))
				groups = append(groups, g)
			} else {
				g = groups[idx]
			}
			for si, s := range specs {
				var v row.Value
				if !s.star {
					var err error
					v, err = s.argFn(r)
					if err != nil {
						return err
					}
				}
				g.aggs[si].add(v, s.star)
			}
		}
		partials[i] = groups
		return nil
	})
	if err != nil {
		closeAllIters(in.iters)
		return row.Schema{}, nil, err
	}

	// Merge at the head node (charge moving the partial states, approximated
	// by their key bytes plus a fixed accumulator size). Groups come out in
	// deterministic order: partials in partition order, first-seen within.
	mergedHT := NewHashTable(0)
	var merged []*group
	var keyBuf []byte
	for i, groups := range partials {
		if e.workers[i] != e.head && len(groups) > 0 {
			bytes := 0
			for _, g := range groups {
				bytes += rowBytes(g.keys) + 24*len(specs)
			}
			e.cost.ChargeNet(e.workers[i], e.head, bytes)
		}
		for _, g := range groups {
			keyBuf = row.AppendKey(keyBuf[:0], g.keys)
			idx, added := mergedHT.Insert(keyBuf)
			if added {
				merged = append(merged, g)
				continue
			}
			mg := merged[idx]
			for si := range specs {
				mg.aggs[si].merge(g.aggs[si])
			}
		}
	}

	// A global aggregate (no GROUP BY) over zero rows yields one row.
	if len(sel.GroupBy) == 0 && len(merged) == 0 {
		merged = append(merged, newGroup(row.Row{}))
	}

	names := make([]string, len(cols))
	types := make([]row.Type, len(cols))
	for i, c := range cols {
		names[i] = c.name
		types[i] = c.typ
	}
	schema, err := makeOutputSchema(names, types)
	if err != nil {
		return row.Schema{}, nil, err
	}

	var out []row.Row
	for _, g := range merged {
		r := make(row.Row, len(cols))
		for i, c := range cols {
			if c.keyIdx >= 0 {
				r[i] = g.keys[c.keyIdx]
			} else {
				r[i] = g.aggs[c.aggIdx].finalize(specs[c.aggIdx].outType)
			}
		}
		out = append(out, r)
	}
	parts := make([][]row.Row, len(in.iters))
	if len(parts) == 0 {
		parts = make([][]row.Row, e.NumWorkers())
	}
	parts[0] = out
	return schema, parts, nil
}
