package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"sqlml/internal/row"
)

// extraBuiltins are additional scalar builtins beyond the string basics in
// udf.go: NULL handling (COALESCE), math (ROUND, FLOOR, CEIL), string
// manipulation (SUBSTR, CONCAT, TRIM), and ordering helpers
// (LEAST, GREATEST) — the vocabulary preparation queries routinely need.
func extraBuiltins() []*ScalarUDF {
	numericIn := func(n int) func([]row.Type) (row.Type, error) {
		return func(args []row.Type) (row.Type, error) {
			if len(args) != n {
				return 0, fmt.Errorf("expected %d arguments", n)
			}
			for _, t := range args {
				if t != row.TypeInt && t != row.TypeFloat {
					return 0, fmt.Errorf("expected numeric arguments")
				}
			}
			return row.TypeFloat, nil
		}
	}
	return []*ScalarUDF{
		{
			Name: "coalesce",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) == 0 {
					return 0, fmt.Errorf("COALESCE needs at least one argument")
				}
				t := args[0]
				for _, a := range args[1:] {
					if a != t {
						if (a == row.TypeInt || a == row.TypeFloat) && (t == row.TypeInt || t == row.TypeFloat) {
							t = row.TypeFloat
							continue
						}
						return 0, fmt.Errorf("COALESCE arguments mix %s and %s", t, a)
					}
				}
				return t, nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				for _, v := range args {
					if !v.Null {
						return v, nil
					}
				}
				return args[0], nil
			},
		},
		{
			Name:       "round",
			ReturnType: numericIn(1),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				return row.Float(math.Round(args[0].AsFloat())), nil
			},
		},
		{
			Name:       "floor",
			ReturnType: numericIn(1),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				return row.Float(math.Floor(args[0].AsFloat())), nil
			},
		},
		{
			Name:       "ceil",
			ReturnType: numericIn(1),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				return row.Float(math.Ceil(args[0].AsFloat())), nil
			},
		},
		{
			Name: "substr",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) != 3 || args[0] != row.TypeString || args[1] != row.TypeInt || args[2] != row.TypeInt {
					return 0, fmt.Errorf("usage: SUBSTR(str, start, length) with 1-based start")
				}
				return row.TypeString, nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null || args[1].Null || args[2].Null {
					return row.NullOf(row.TypeString), nil
				}
				s := args[0].AsString()
				start := int(args[1].AsInt()) - 1
				length := int(args[2].AsInt())
				if start < 0 {
					start = 0
				}
				if start >= len(s) || length <= 0 {
					return row.String_(""), nil
				}
				end := start + length
				if end > len(s) {
					end = len(s)
				}
				return row.String_(s[start:end]), nil
			},
		},
		{
			Name: "concat",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) < 2 {
					return 0, fmt.Errorf("CONCAT needs at least two arguments")
				}
				return row.TypeString, nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				var b strings.Builder
				for _, v := range args {
					if v.Null {
						return row.NullOf(row.TypeString), nil
					}
					b.WriteString(v.String())
				}
				return row.String_(b.String()), nil
			},
		},
		{
			Name: "trim",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) != 1 || args[0] != row.TypeString {
					return 0, fmt.Errorf("expected one VARCHAR argument")
				}
				return row.TypeString, nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeString), nil
				}
				return row.String_(strings.TrimSpace(args[0].AsString())), nil
			},
		},
		{
			Name:       "least",
			ReturnType: numericIn(2),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null || args[1].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				return row.Float(math.Min(args[0].AsFloat(), args[1].AsFloat())), nil
			},
		},
		{
			Name:       "greatest",
			ReturnType: numericIn(2),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null || args[1].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				return row.Float(math.Max(args[0].AsFloat(), args[1].AsFloat())), nil
			},
		},
		{
			Name:       "sqrt",
			ReturnType: numericIn(1),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				f := args[0].AsFloat()
				if f < 0 {
					return row.Value{}, fmt.Errorf("SQRT of negative value %v", f)
				}
				return row.Float(math.Sqrt(f)), nil
			},
		},
		{
			Name:       "ln",
			ReturnType: numericIn(1),
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeFloat), nil
				}
				f := args[0].AsFloat()
				if f <= 0 {
					return row.Value{}, fmt.Errorf("LN of non-positive value %v", f)
				}
				return row.Float(math.Log(f)), nil
			},
		},
	}
}
