// Package sqlengine implements the "big SQL system" substrate: a
// massively-parallel SQL engine with a text-protocol-free, in-process
// design — lexer, parser, catalog, logical planner, and a distributed
// executor running one worker per cluster node over hash-partitioned or
// DFS-backed tables.
//
// Its two properties are exactly the ones the paper requires of a big SQL
// system: (1) partitioned parallel execution, and (2) extensibility through
// scalar and *parallel table* user-defined functions (UDFs) — the vehicle
// for the In-SQL transformations of §2 and the streaming sender of §3.
package sqlengine

import (
	"fmt"
	"strings"

	"sqlml/internal/row"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr // nil when absent
	GroupBy  []Expr
	// Having filters groups after aggregation; it may reference the output
	// column names of the select list (including aggregate aliases).
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star          bool   // SELECT * or alias.*
	StarQualifier string // non-empty for alias.*
	Expr          Expr   // nil when Star
	Alias         string
}

// FromItem is one entry of the FROM clause: a base table or a table
// function invocation TABLE(f(...)).
type FromItem struct {
	Table string
	Alias string
	Func  *TableFuncCall
}

// Name returns the binding name of the item (alias, table, or function).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	if f.Func != nil {
		return f.Func.Name
	}
	return f.Table
}

// TableFuncCall is TABLE(name(arg, ...)) in a FROM clause. Arguments are
// either table references (by name) or literals — exactly the shape the
// paper's UDF examples need: the table to transform plus parameters such as
// the column list or coordinator address.
type TableFuncCall struct {
	Name string
	Args []TableFuncArg
}

// TableFuncArg is one argument of a table function call.
type TableFuncArg struct {
	Table string // table reference when non-empty
	Lit   *Lit   // literal otherwise
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt is CREATE TABLE, either with an explicit column list or
// as CREATE TABLE ... AS SELECT (the materialization path for §5 caching).
type CreateTableStmt struct {
	Name     string
	Cols     []row.Column
	AsSelect *SelectStmt
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

func (*ShowTablesStmt) stmt() {}

// DescribeStmt is DESCRIBE <table>.
type DescribeStmt struct {
	Table string
}

func (*DescribeStmt) stmt() {}

// Expr is a scalar expression. The String form is canonical (upper-cased
// keywords, minimal parentheses) and is what the query rewriter compares
// when testing cache applicability.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColRef references a column, optionally qualified by a table binding name.
type ColRef struct {
	Qualifier string
	Name      string
}

func (*ColRef) expr() {}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Qualifier != "" {
		return strings.ToLower(c.Qualifier) + "." + strings.ToLower(c.Name)
	}
	return strings.ToLower(c.Name)
}

// Lit is a literal value.
type Lit struct {
	V row.Value
}

func (*Lit) expr() {}

// String implements Expr.
func (l *Lit) String() string {
	if l.V.Null {
		return "NULL"
	}
	if l.V.Kind == row.TypeString {
		return "'" + strings.ReplaceAll(l.V.AsString(), "'", "''") + "'"
	}
	return l.V.String()
}

// BinOp is a binary operation: comparisons (= <> < <= > >=), arithmetic
// (+ - * /), and the logical connectives AND / OR.
type BinOp struct {
	Op   string
	L, R Expr
}

func (*BinOp) expr() {}

// String implements Expr.
func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// NotExpr is logical negation.
type NotExpr struct {
	E Expr
}

func (*NotExpr) expr() {}

// String implements Expr.
func (n *NotExpr) String() string { return "(NOT " + n.E.String() + ")" }

// IsNullExpr is IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// String implements Expr.
func (e *IsNullExpr) String() string {
	if e.Negate {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

// InListExpr is expr [NOT] IN (e1, e2, ...).
type InListExpr struct {
	E      Expr
	List   []Expr
	Negate bool
}

func (*InListExpr) expr() {}

// String implements Expr.
func (e *InListExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := " IN ("
	if e.Negate {
		op = " NOT IN ("
	}
	return "(" + e.E.String() + op + strings.Join(parts, ", ") + "))"
}

// CaseExpr is a searched CASE expression:
// CASE WHEN cond THEN value [WHEN ...] [ELSE value] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// String implements Expr.
func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Then.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// FuncCall is a scalar function or aggregate invocation.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncCall) expr() {}

// String implements Expr.
func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(f.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// Conjuncts flattens nested ANDs into a conjunct list; a nil expression
// yields none. The rewriter and planner both work on conjunct lists.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from a list (nil for an empty list).
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinOp{Op: "AND", L: out, R: e}
		}
	}
	return out
}
