package sqlengine

import "sqlml/internal/row"

// Parallel sort-merge ORDER BY: each partition evaluates its sort keys
// once per row and stable-sorts locally (in parallel, one goroutine per
// partition like every other per-partition pass), then the head node
// merges the sorted runs with a stable k-way loser tree. Ties break
// toward the lower partition index and, within a partition, toward the
// earlier row — exactly the order the old gather-then-sort.SliceStable
// implementation produced over the concatenated partitions.

// sortedRun is one partition's sorted output: rows and their precomputed
// sort-key rows, aligned index-for-index, plus the merge cursor.
type sortedRun struct {
	rows []row.Row
	keys []row.Row
	pos  int
}

// orderSpec is one ORDER BY item: a compiled key expression and its
// direction.
type orderSpec struct {
	fn   evalFn
	desc bool
}

// compareKeyRows orders two precomputed key rows under the ORDER BY
// directions.
func compareKeyRows(specs []orderSpec, a, b row.Row) int {
	for i, s := range specs {
		c := a[i].Compare(b[i])
		if c == 0 {
			continue
		}
		if s.desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRun evaluates the sort keys for every row of part (one evaluation
// per row, not one per comparison) and returns the stably sorted run.
func sortRun(specs []orderSpec, part []row.Row) (*sortedRun, error) {
	keys := make([]row.Row, len(part))
	flat := make(row.Row, len(part)*len(specs)) // one backing array for all key rows
	for j, r := range part {
		kr := flat[j*len(specs) : (j+1)*len(specs) : (j+1)*len(specs)]
		for ki, s := range specs {
			v, err := s.fn(r)
			if err != nil {
				return nil, err
			}
			kr[ki] = v
		}
		keys[j] = kr
	}
	return sortRunPrepared(specs, part, keys), nil
}

// sortRunPrepared stably sorts a partition whose sort-key rows are already
// evaluated and aligned index-for-index with the rows — the columnar drain
// computes keys column-wise per batch and hands both slices here.
func sortRunPrepared(specs []orderSpec, part, keys []row.Row) *sortedRun {
	ord := make([]int, len(part))
	for j := range ord {
		ord[j] = j
	}
	stableSortBy(ord, func(a, b int) int { return compareKeyRows(specs, keys[a], keys[b]) })
	rows := make([]row.Row, len(part))
	sortedKeys := make([]row.Row, len(part))
	for j, o := range ord {
		rows[j] = part[o]
		sortedKeys[j] = keys[o]
	}
	return &sortedRun{rows: rows, keys: sortedKeys}
}

// stableSortBy stably sorts ord under cmp applied to its elements — a
// bottom-up merge sort (merges prefer the left half on ties, which makes
// stability structural) with a single scratch slice instead of
// sort.SliceStable's comparator indirection and block rotations.
func stableSortBy(ord []int, cmp func(a, b int) int) {
	n := len(ord)
	if n < 2 {
		return
	}
	buf := make([]int, n)
	src, dst := ord, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if cmp(src[i], src[j]) <= 0 {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			copy(dst[k:hi], src[i:mid])
			copy(dst[k+(mid-i):hi], src[j:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &ord[0] {
		copy(ord, src)
	}
}

// mergeRuns merges the sorted runs into one slice with a loser tree:
// k-1 internal nodes each hold the loser of their subtree's match, the
// root's winner is the next row to emit, and replacing the emitted run's
// head replays only its leaf-to-root path — O(log k) comparisons per row.
func mergeRuns(specs []orderSpec, runs []*sortedRun) []row.Row {
	total := 0
	for _, r := range runs {
		total += len(r.rows)
	}
	out := make([]row.Row, 0, total)
	k := len(runs)
	if k == 1 {
		return append(out, runs[0].rows...)
	}

	// beats reports whether run a's head must be emitted before run b's:
	// exhausted runs lose to everything, equal keys break toward the lower
	// partition index (stability across partitions).
	beats := func(a, b int) bool {
		ra, rb := runs[a], runs[b]
		if ra.pos >= len(ra.rows) {
			return false
		}
		if rb.pos >= len(rb.rows) {
			return true
		}
		c := compareKeyRows(specs, ra.keys[ra.pos], rb.keys[rb.pos])
		if c != 0 {
			return c < 0
		}
		return a < b
	}

	// tree[1..k-1] are internal nodes (losers); leaves live implicitly at
	// positions k..2k-1, leaf k+i holding run i. Build bottom-up.
	tree := make([]int, k)
	var build func(node int) int
	build = func(node int) int {
		if node >= k {
			return node - k
		}
		l := build(2 * node)
		r := build(2*node + 1)
		if beats(l, r) {
			tree[node] = r
			return l
		}
		tree[node] = l
		return r
	}
	winner := build(1)

	for range total {
		r := runs[winner]
		out = append(out, r.rows[r.pos])
		r.pos++
		// Replay the winner's path: at each ancestor, the stored loser
		// challenges; the new winner continues up.
		for node := (k + winner) / 2; node >= 1; node /= 2 {
			if beats(tree[node], winner) {
				winner, tree[node] = tree[node], winner
			}
		}
	}
	return out
}
