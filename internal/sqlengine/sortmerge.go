package sqlengine

import "sqlml/internal/row"

// Parallel sort-merge ORDER BY: each partition evaluates its sort keys
// once per row and stable-sorts locally (in parallel, one goroutine per
// partition like every other per-partition pass), then the head node
// merges the sorted runs with a stable k-way loser tree. Ties break
// toward the lower partition index and, within a partition, toward the
// earlier row — exactly the order the old gather-then-sort.SliceStable
// implementation produced over the concatenated partitions.

// sortedRun is one partition's sorted output: rows and their precomputed
// sort-key rows, aligned index-for-index, plus the merge cursor.
type sortedRun struct {
	rows []row.Row
	keys []row.Row
	pos  int
}

// orderSpec is one ORDER BY item: a compiled key expression and its
// direction.
type orderSpec struct {
	fn   evalFn
	desc bool
}

// compareKeyRows orders two precomputed key rows under the ORDER BY
// directions.
func compareKeyRows(specs []orderSpec, a, b row.Row) int {
	for i, s := range specs {
		c := a[i].Compare(b[i])
		if c == 0 {
			continue
		}
		if s.desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRun evaluates the sort keys for every row of part (one evaluation
// per row, not one per comparison) and returns the stably sorted run.
func sortRun(specs []orderSpec, part []row.Row) (*sortedRun, error) {
	keys := make([]row.Row, len(part))
	flat := make(row.Row, len(part)*len(specs)) // one backing array for all key rows
	for j, r := range part {
		kr := flat[j*len(specs) : (j+1)*len(specs) : (j+1)*len(specs)]
		for ki, s := range specs {
			v, err := s.fn(r)
			if err != nil {
				return nil, err
			}
			kr[ki] = v
		}
		keys[j] = kr
	}
	return sortRunPrepared(specs, part, keys), nil
}

// sortRunPrepared stably sorts a partition whose sort-key rows are already
// evaluated and aligned index-for-index with the rows — the columnar drain
// computes keys column-wise per batch and hands both slices here.
func sortRunPrepared(specs []orderSpec, part, keys []row.Row) *sortedRun {
	ord := make([]int, len(part))
	for j := range ord {
		ord[j] = j
	}
	stableSortBy(ord, func(a, b int) int { return compareKeyRows(specs, keys[a], keys[b]) })
	rows := make([]row.Row, len(part))
	sortedKeys := make([]row.Row, len(part))
	for j, o := range ord {
		rows[j] = part[o]
		sortedKeys[j] = keys[o]
	}
	return &sortedRun{rows: rows, keys: sortedKeys}
}

// stableSortBy stably sorts ord under cmp applied to its elements — a
// bottom-up merge sort (merges prefer the left half on ties, which makes
// stability structural) with a single scratch slice instead of
// sort.SliceStable's comparator indirection and block rotations.
func stableSortBy(ord []int, cmp func(a, b int) int) {
	n := len(ord)
	if n < 2 {
		return
	}
	buf := make([]int, n)
	src, dst := ord, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if cmp(src[i], src[j]) <= 0 {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			copy(dst[k:hi], src[i:mid])
			copy(dst[k+(mid-i):hi], src[j:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &ord[0] {
		copy(ord, src)
	}
}

// mergeRuns merges the sorted runs into one slice with a loser tree:
// k-1 internal nodes each hold the loser of their subtree's match, the
// root's winner is the next row to emit, and replacing the emitted run's
// head replays only its leaf-to-root path — O(log k) comparisons per row.
func mergeRuns(specs []orderSpec, runs []*sortedRun) []row.Row {
	return mergeRunsInto(specs, runs, false).rows
}

// mergeRunsKeyed is mergeRuns carrying the sort keys through, so the
// merged run can feed a further merge level (the parallel intermediate
// merges of the morsel-run tree).
func mergeRunsKeyed(specs []orderSpec, runs []*sortedRun) *sortedRun {
	if len(runs) == 1 {
		return runs[0]
	}
	return mergeRunsInto(specs, runs, true)
}

func mergeRunsInto(specs []orderSpec, runs []*sortedRun, withKeys bool) *sortedRun {
	total := 0
	for _, r := range runs {
		total += len(r.rows)
	}
	out := make([]row.Row, 0, total)
	var outKeys []row.Row
	if withKeys {
		outKeys = make([]row.Row, 0, total)
	}
	k := len(runs)
	if k == 0 {
		return &sortedRun{}
	}
	if k == 1 {
		return &sortedRun{rows: append(out, runs[0].rows...), keys: runs[0].keys}
	}

	// beats reports whether run a's head must be emitted before run b's:
	// exhausted runs lose to everything, equal keys break toward the lower
	// partition index (stability across partitions).
	beats := func(a, b int) bool {
		ra, rb := runs[a], runs[b]
		if ra.pos >= len(ra.rows) {
			return false
		}
		if rb.pos >= len(rb.rows) {
			return true
		}
		c := compareKeyRows(specs, ra.keys[ra.pos], rb.keys[rb.pos])
		if c != 0 {
			return c < 0
		}
		return a < b
	}

	// tree[1..k-1] are internal nodes (losers); leaves live implicitly at
	// positions k..2k-1, leaf k+i holding run i. Build bottom-up.
	tree := make([]int, k)
	var build func(node int) int
	build = func(node int) int {
		if node >= k {
			return node - k
		}
		l := build(2 * node)
		r := build(2*node + 1)
		if beats(l, r) {
			tree[node] = r
			return l
		}
		tree[node] = l
		return r
	}
	winner := build(1)

	for range total {
		r := runs[winner]
		out = append(out, r.rows[r.pos])
		if withKeys {
			outKeys = append(outKeys, r.keys[r.pos])
		}
		r.pos++
		// Replay the winner's path: at each ancestor, the stored loser
		// challenges; the new winner continues up.
		for node := (k + winner) / 2; node >= 1; node /= 2 {
			if beats(tree[node], winner) {
				winner, tree[node] = tree[node], winner
			}
		}
	}
	return &sortedRun{rows: out, keys: outKeys}
}

// sortChunkRows is the finest run granularity of the parallel sort: large
// enough that the final merge tree stays shallow, small enough that one
// skewed partition still splits into many parallel sort tasks.
const sortChunkRows = 8 * DefaultBatchSize

// sortChunk is one contiguous slice of one partition, the sort-task unit.
// keys, when present, are the precomputed sort-key rows aligned
// index-for-index (the columnar drain hands them in; the row path leaves
// them nil and sortRun evaluates).
type sortChunk struct {
	rows []row.Row
	keys []row.Row
}

// chunkForSort cuts the partitions into a chunk grid in partition-major
// order. The grid may vary with Parallelism without breaking the
// byte-identity invariant: a stable sort of every chunk followed by a
// stable merge of consecutive runs equals the stable sort of the whole
// input — ties always break toward the lower global input position — so
// ANY grid yields the same output and the choice is pure performance.
// The chunk size targets ~2 sort tasks per worker for load balancing but
// never drops below sortChunkRows: balanced partitions at small pool
// sizes stay one-chunk-per-partition (the shallowest merge tree), while
// a skewed or single partition still splits across a wide pool.
func chunkForSort(parts, keys [][]row.Row, workers int) []sortChunk {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	size := total
	if workers > 0 {
		size = (total + 2*workers - 1) / (2 * workers)
	}
	if size < sortChunkRows {
		size = sortChunkRows
	}
	var chunks []sortChunk
	for pi, part := range parts {
		for lo := 0; lo < len(part); lo += size {
			hi := lo + size
			if hi > len(part) {
				hi = len(part)
			}
			c := sortChunk{rows: part[lo:hi]}
			if keys != nil {
				c.keys = keys[pi][lo:hi]
			}
			chunks = append(chunks, c)
		}
	}
	return chunks
}

// sortChunksMerge sorts every chunk as a pool task and merges the runs:
// consecutive run groups merge in parallel, then one serial merge of the
// group outputs. Stable merging of consecutive runs is associative — any
// grouping yields the rows stably ordered by (key, global input index) —
// so the output is byte-identical at any Parallelism.
func sortChunksMerge(qp *queryPool, specs []orderSpec, chunks []sortChunk) ([]row.Row, error) {
	runs := make([]*sortedRun, len(chunks))
	err := qp.forEach(len(chunks), func(i, _ int) error {
		c := chunks[i]
		if c.keys != nil {
			runs[i] = sortRunPrepared(specs, c.rows, c.keys)
			return nil
		}
		run, err := sortRun(specs, c.rows)
		runs[i] = run
		return err
	})
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, nil
	}
	// A grouped pre-merge pass re-copies every row (and key), so it only
	// pays when the run count is high enough that flattening the final
	// merge tree beats the extra pass. Few runs: one serial merge.
	g := qp.n
	if g > len(runs) {
		g = len(runs)
	}
	if g <= 1 || len(runs) <= 2*qp.n {
		return mergeRuns(specs, runs), nil
	}
	groups := make([]*sortedRun, g)
	err = qp.forEach(g, func(i, _ int) error {
		lo := i * len(runs) / g
		hi := (i + 1) * len(runs) / g
		groups[i] = mergeRunsKeyed(specs, runs[lo:hi])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRuns(specs, groups), nil
}
