package sqlengine

import (
	"fmt"
	"strings"

	"sqlml/internal/row"
)

// scope resolves column references against the bindings visible at a point
// in the plan (one binding per FROM item, or one for a derived input).
type scope struct {
	bindings []binding
}

type binding struct {
	name   string // binding (alias) name, lower-cased
	schema row.Schema
	offset int // column offset of this binding in the combined row
}

func newScope() *scope { return &scope{} }

func (s *scope) add(name string, schema row.Schema) error {
	name = strings.ToLower(name)
	for _, b := range s.bindings {
		if b.name == name && name != "" {
			return fmt.Errorf("sql: duplicate table binding %q", name)
		}
	}
	off := s.width()
	s.bindings = append(s.bindings, binding{name: name, schema: schema, offset: off})
	return nil
}

func (s *scope) width() int {
	n := 0
	for _, b := range s.bindings {
		n += b.schema.Len()
	}
	return n
}

// combined returns the concatenated schema of all bindings. Duplicate
// column names across bindings are allowed here; they are only an error if
// referenced ambiguously.
func (s *scope) combined() row.Schema {
	var cols []row.Column
	for _, b := range s.bindings {
		cols = append(cols, b.schema.Cols...)
	}
	return row.Schema{Cols: cols}
}

// resolve finds the combined-row index of a (qualified) column reference.
func (s *scope) resolve(qualifier, name string) (int, row.Column, error) {
	qualifier = strings.ToLower(qualifier)
	found := -1
	var col row.Column
	for _, b := range s.bindings {
		if qualifier != "" && b.name != qualifier {
			continue
		}
		if i := b.schema.ColIndex(name); i >= 0 {
			if found >= 0 {
				return 0, row.Column{}, fmt.Errorf("sql: ambiguous column %q", name)
			}
			found = b.offset + i
			col = b.schema.Cols[i]
		}
	}
	if found < 0 {
		if qualifier != "" {
			return 0, row.Column{}, fmt.Errorf("sql: unknown column %s.%s", qualifier, name)
		}
		return 0, row.Column{}, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, col, nil
}

// evalFn evaluates a compiled expression against one combined row.
type evalFn func(r row.Row) (row.Value, error)

// compile type-checks an expression against the scope and returns an
// evaluator plus the static result type.
func compile(e Expr, s *scope, reg *Registry) (evalFn, row.Type, error) {
	switch x := e.(type) {
	case *Lit:
		v := x.V
		return func(row.Row) (row.Value, error) { return v, nil }, v.Kind, nil

	case *ColRef:
		idx, col, err := s.resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, 0, err
		}
		return func(r row.Row) (row.Value, error) { return r[idx], nil }, col.Type, nil

	case *NotExpr:
		inner, t, err := compile(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		if t != row.TypeBool {
			return nil, 0, fmt.Errorf("sql: NOT requires a BOOLEAN operand")
		}
		return func(r row.Row) (row.Value, error) {
			v, err := inner(r)
			if err != nil {
				return row.Value{}, err
			}
			if v.Null {
				return row.NullOf(row.TypeBool), nil
			}
			return row.Bool(!v.AsBool()), nil
		}, row.TypeBool, nil

	case *IsNullExpr:
		inner, _, err := compile(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		neg := x.Negate
		return func(r row.Row) (row.Value, error) {
			v, err := inner(r)
			if err != nil {
				return row.Value{}, err
			}
			return row.Bool(v.Null != neg), nil
		}, row.TypeBool, nil

	case *InListExpr:
		inner, _, err := compile(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		elems := make([]evalFn, len(x.List))
		for i, le := range x.List {
			fn, _, err := compile(le, s, reg)
			if err != nil {
				return nil, 0, err
			}
			elems[i] = fn
		}
		neg := x.Negate
		return func(r row.Row) (row.Value, error) {
			v, err := inner(r)
			if err != nil {
				return row.Value{}, err
			}
			if v.Null {
				return row.Bool(false), nil
			}
			for _, fn := range elems {
				ev, err := fn(r)
				if err != nil {
					return row.Value{}, err
				}
				if !ev.Null && v.Equal(ev) {
					return row.Bool(!neg), nil
				}
			}
			return row.Bool(neg), nil
		}, row.TypeBool, nil

	case *FuncCall:
		if isAggregateName(x.Name) {
			return nil, 0, fmt.Errorf("sql: aggregate %s not allowed here", strings.ToUpper(x.Name))
		}
		udf, ok := reg.Scalar(x.Name)
		if !ok {
			return nil, 0, fmt.Errorf("sql: unknown function %q", x.Name)
		}
		args := make([]evalFn, len(x.Args))
		types := make([]row.Type, len(x.Args))
		for i, a := range x.Args {
			fn, t, err := compile(a, s, reg)
			if err != nil {
				return nil, 0, err
			}
			args[i] = fn
			types[i] = t
		}
		ret, err := udf.ReturnType(types)
		if err != nil {
			return nil, 0, fmt.Errorf("sql: %s: %w", udf.Name, err)
		}
		return func(r row.Row) (row.Value, error) {
			vals := make([]row.Value, len(args))
			for i, fn := range args {
				v, err := fn(r)
				if err != nil {
					return row.Value{}, err
				}
				vals[i] = v
			}
			out, err := udf.Fn(vals)
			if err != nil {
				return row.Value{}, fmt.Errorf("sql: %s: %w", udf.Name, err)
			}
			return out, nil
		}, ret, nil

	case *BinOp:
		return compileBinOp(x, s, reg)

	case *CaseExpr:
		return compileCase(x, s, reg)
	}
	return nil, 0, fmt.Errorf("sql: cannot compile %T", e)
}

func compileBinOp(x *BinOp, s *scope, reg *Registry) (evalFn, row.Type, error) {
	lf, lt, err := compile(x.L, s, reg)
	if err != nil {
		return nil, 0, err
	}
	rf, rt, err := compile(x.R, s, reg)
	if err != nil {
		return nil, 0, err
	}
	switch x.Op {
	case "AND", "OR":
		if lt != row.TypeBool || rt != row.TypeBool {
			return nil, 0, fmt.Errorf("sql: %s requires BOOLEAN operands", x.Op)
		}
		and := x.Op == "AND"
		return func(r row.Row) (row.Value, error) {
			lv, err := lf(r)
			if err != nil {
				return row.Value{}, err
			}
			// Treat NULL as false at connectives (two-valued filter logic).
			lb := !lv.Null && lv.AsBool()
			if and && !lb {
				return row.Bool(false), nil
			}
			if !and && lb {
				return row.Bool(true), nil
			}
			rv, err := rf(r)
			if err != nil {
				return row.Value{}, err
			}
			rb := !rv.Null && rv.AsBool()
			return row.Bool(rb), nil
		}, row.TypeBool, nil

	case "=", "<>", "<", "<=", ">", ">=":
		if !comparable(lt, rt) {
			return nil, 0, fmt.Errorf("sql: cannot compare %s with %s", lt, rt)
		}
		op := x.Op
		return func(r row.Row) (row.Value, error) {
			lv, err := lf(r)
			if err != nil {
				return row.Value{}, err
			}
			rv, err := rf(r)
			if err != nil {
				return row.Value{}, err
			}
			if lv.Null || rv.Null {
				return row.Bool(false), nil
			}
			switch op {
			case "=":
				return row.Bool(lv.Equal(rv)), nil
			case "<>":
				return row.Bool(!lv.Equal(rv)), nil
			}
			c := lv.Compare(rv)
			switch op {
			case "<":
				return row.Bool(c < 0), nil
			case "<=":
				return row.Bool(c <= 0), nil
			case ">":
				return row.Bool(c > 0), nil
			default:
				return row.Bool(c >= 0), nil
			}
		}, row.TypeBool, nil

	case "+", "-", "*", "/":
		if !numericType(lt) || !numericType(rt) {
			return nil, 0, fmt.Errorf("sql: %s requires numeric operands", x.Op)
		}
		outType := row.TypeInt
		if lt == row.TypeFloat || rt == row.TypeFloat {
			outType = row.TypeFloat
		}
		op := x.Op
		return func(r row.Row) (row.Value, error) {
			lv, err := lf(r)
			if err != nil {
				return row.Value{}, err
			}
			rv, err := rf(r)
			if err != nil {
				return row.Value{}, err
			}
			if lv.Null || rv.Null {
				return row.NullOf(outType), nil
			}
			if outType == row.TypeInt {
				a, b := lv.AsInt(), rv.AsInt()
				switch op {
				case "+":
					return row.Int(a + b), nil
				case "-":
					return row.Int(a - b), nil
				case "*":
					return row.Int(a * b), nil
				default:
					if b == 0 {
						return row.Value{}, fmt.Errorf("sql: division by zero")
					}
					return row.Int(a / b), nil
				}
			}
			a, b := lv.AsFloat(), rv.AsFloat()
			switch op {
			case "+":
				return row.Float(a + b), nil
			case "-":
				return row.Float(a - b), nil
			case "*":
				return row.Float(a * b), nil
			default:
				if b == 0 {
					return row.Value{}, fmt.Errorf("sql: division by zero")
				}
				return row.Float(a / b), nil
			}
		}, outType, nil
	}
	return nil, 0, fmt.Errorf("sql: unknown operator %q", x.Op)
}

func numericType(t row.Type) bool { return t == row.TypeInt || t == row.TypeFloat }

func comparable(a, b row.Type) bool {
	if a == b {
		return true
	}
	return numericType(a) && numericType(b)
}

var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func isAggregateName(name string) bool { return aggregateNames[strings.ToLower(name)] }

// compileCase type-checks a searched CASE: all conditions BOOLEAN, all
// result arms of one common type (numerics unify to DOUBLE).
func compileCase(x *CaseExpr, s *scope, reg *Registry) (evalFn, row.Type, error) {
	type arm struct {
		cond evalFn
		then evalFn
		t    row.Type
	}
	arms := make([]arm, len(x.Whens))
	var outType row.Type
	seen := false
	unify := func(t row.Type) error {
		if !seen {
			outType, seen = t, true
			return nil
		}
		if outType == t {
			return nil
		}
		if numericType(outType) && numericType(t) {
			outType = row.TypeFloat
			return nil
		}
		return fmt.Errorf("sql: CASE arms mix %s and %s", outType, t)
	}
	for i, w := range x.Whens {
		cond, ct, err := compile(w.Cond, s, reg)
		if err != nil {
			return nil, 0, err
		}
		if ct != row.TypeBool {
			return nil, 0, fmt.Errorf("sql: CASE WHEN condition must be BOOLEAN, got %s", ct)
		}
		then, tt, err := compile(w.Then, s, reg)
		if err != nil {
			return nil, 0, err
		}
		if err := unify(tt); err != nil {
			return nil, 0, err
		}
		arms[i] = arm{cond: cond, then: then, t: tt}
	}
	var elseFn evalFn
	if x.Else != nil {
		fn, t, err := compile(x.Else, s, reg)
		if err != nil {
			return nil, 0, err
		}
		if err := unify(t); err != nil {
			return nil, 0, err
		}
		elseFn = fn
	}
	coerce := func(v row.Value) (row.Value, error) {
		if v.Null || v.Kind == outType {
			if v.Null {
				return row.NullOf(outType), nil
			}
			return v, nil
		}
		return v.Coerce(outType)
	}
	return func(r row.Row) (row.Value, error) {
		for _, a := range arms {
			c, err := a.cond(r)
			if err != nil {
				return row.Value{}, err
			}
			if !c.Null && c.AsBool() {
				v, err := a.then(r)
				if err != nil {
					return row.Value{}, err
				}
				return coerce(v)
			}
		}
		if elseFn == nil {
			return row.NullOf(outType), nil
		}
		v, err := elseFn(r)
		if err != nil {
			return row.Value{}, err
		}
		return coerce(v)
	}, outType, nil
}
