package sqlengine

import (
	"fmt"
	"strings"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// Run parses and executes one statement. SELECT (and CREATE TABLE AS
// SELECT) return a materialized result; DDL and INSERT return nil.
func (e *Engine) Run(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		res, err := e.ExecSelect(s)
		if err != nil {
			return nil, err
		}
		if err := res.Materialize(); err != nil {
			return nil, err
		}
		return res, nil
	case *CreateTableStmt:
		return nil, e.execCreate(s)
	case *InsertStmt:
		return nil, e.execInsert(s)
	case *DropTableStmt:
		return nil, e.catalog.Drop(s.Name)
	case *ShowTablesStmt:
		return e.showTables()
	case *DescribeStmt:
		return e.describe(s.Table)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// Query executes a SELECT statement given as SQL text and materializes the
// result, so runtime errors surface here (the pre-pipelining contract).
func (e *Engine) Query(sql string) (*Result, error) {
	res, err := e.QueryStream(sql)
	if err != nil {
		return nil, err
	}
	if err := res.Materialize(); err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStream executes a SELECT and returns a streaming result: per-worker
// batch pipelines that run as the caller consumes Batches(). Plan-time
// errors (unknown tables/columns, type errors) still surface here; row
// production errors surface from the iterators.
func (e *Engine) QueryStream(sql string) (*Result, error) {
	sel, err := ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecSelect(sel)
}

// MustQuery is Query that panics on error; for tests and examples.
func (e *Engine) MustQuery(sql string) *Result {
	res, err := e.Query(sql)
	if err != nil {
		panic(err)
	}
	return res
}

func (e *Engine) execCreate(s *CreateTableStmt) error {
	if s.AsSelect != nil {
		res, err := e.ExecSelect(s.AsSelect)
		if err != nil {
			return err
		}
		parts, err := res.Parts()
		if err != nil {
			return err
		}
		return e.LoadPartitionedTable(s.Name, res.Schema, parts)
	}
	schema, err := row.NewSchema(s.Cols...)
	if err != nil {
		return err
	}
	return e.CreateTable(s.Name, schema)
}

func (e *Engine) execInsert(s *InsertStmt) error {
	t, err := e.catalog.Get(s.Table)
	if err != nil {
		return err
	}
	if t.External != nil {
		return fmt.Errorf("sql: cannot INSERT into external table %q", t.Name)
	}
	if t.streaming {
		return fmt.Errorf("sql: cannot INSERT into streaming table %q", t.Name)
	}
	empty := newScope()
	var rows []row.Row
	for _, exprs := range s.Rows {
		if len(exprs) != t.Schema.Len() {
			return fmt.Errorf("sql: INSERT arity %d does not match table %q arity %d", len(exprs), t.Name, t.Schema.Len())
		}
		out := make(row.Row, len(exprs))
		for i, ex := range exprs {
			fn, _, err := compile(ex, empty, e.registry)
			if err != nil {
				return err
			}
			v, err := fn(nil)
			if err != nil {
				return err
			}
			cv, err := v.Coerce(t.Schema.Cols[i].Type)
			if err != nil {
				return fmt.Errorf("sql: column %q: %w", t.Schema.Cols[i].Name, err)
			}
			out[i] = cv
		}
		rows = append(rows, out)
	}
	t.appendRows(rows, e.NumWorkers())
	return nil
}

// appendRows distributes new rows round-robin over partitions.
func (t *Table) appendRows(rows []row.Row, numWorkers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.parts) == 0 {
		t.parts = make([][]row.Row, numWorkers)
	}
	base := 0
	for _, p := range t.parts {
		base += len(p)
	}
	for i, r := range rows {
		w := (base + i) % len(t.parts)
		t.parts[w] = append(t.parts[w], r)
	}
}

// dataset is an intermediate distributed relation: iters[i] is the pending
// operator pipeline of worker i's partition, and sc resolves column
// references against its bindings.
type dataset struct {
	sc    *scope
	iters []BatchIterator
}

// ExecSelect plans a SELECT into per-partition batch pipelines. Streaming
// operators (scan, filter, project, per-partition table UDFs, hash-join
// probe) run lazily as the result is consumed; pipeline breakers (join
// build, aggregation, DISTINCT, ORDER BY, LIMIT, global UDFs) drain their
// input during this call.
func (e *Engine) ExecSelect(sel *SelectStmt) (res *Result, retErr error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}
	// One worker pool per query: every parallel pass of this plan — breaker
	// drains, partial aggregation, hash build, sort runs, DISTINCT — claims
	// tasks from it, and it carries the query-wide cancellation that the
	// returned Result's Close trips.
	qp := newQueryPool(e.parallelism)

	// Every iterator ever created is recorded here; if planning fails the
	// whole set is closed (Close is idempotent, and wrappers cascade).
	var allIters []BatchIterator
	defer func() {
		if retErr != nil {
			closeAllIters(allIters)
		}
	}()
	track := func(iters []BatchIterator) []BatchIterator {
		allIters = append(allIters, iters...)
		return iters
	}

	// Evaluate FROM items into per-source pipelines.
	type source struct {
		name   string
		schema row.Schema
		iters  []BatchIterator
	}
	srcs := make([]*source, len(sel.From))
	seenNames := make(map[string]bool)
	for i, item := range sel.From {
		name := strings.ToLower(item.Name())
		if seenNames[name] {
			return nil, fmt.Errorf("sql: duplicate table binding %q", name)
		}
		seenNames[name] = true
		var (
			schema row.Schema
			iters  []BatchIterator
			err    error
		)
		if item.Func != nil {
			schema, iters, err = e.execTableFunc(qp, item.Func)
		} else {
			var t *Table
			t, err = e.catalog.Get(item.Table)
			if err == nil {
				schema = t.Schema
				iters, err = e.scanTable(t)
			}
		}
		if err != nil {
			return nil, err
		}
		srcs[i] = &source{name: name, schema: schema, iters: track(iters)}
	}

	// Classify WHERE conjuncts.
	sourceOf := func(ex Expr) (map[int]bool, error) {
		refs := make(map[int]bool)
		var werr error
		walkExpr(ex, func(sub Expr) {
			cr, ok := sub.(*ColRef)
			if !ok || werr != nil {
				return
			}
			found := -1
			for si, s := range srcs {
				if cr.Qualifier != "" && strings.ToLower(cr.Qualifier) != s.name {
					continue
				}
				if s.schema.ColIndex(cr.Name) >= 0 {
					if found >= 0 {
						werr = fmt.Errorf("sql: ambiguous column %q", cr.Name)
						return
					}
					found = si
				}
			}
			if found < 0 {
				werr = fmt.Errorf("sql: unknown column %q", cr.String())
				return
			}
			refs[found] = true
		})
		return refs, werr
	}

	type conjunct struct {
		ex   Expr
		refs map[int]bool
		used bool
	}
	var conjs []*conjunct
	for _, ex := range Conjuncts(sel.Where) {
		refs, err := sourceOf(ex)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, &conjunct{ex: ex, refs: refs})
	}

	// Push single-source predicates down to their source as streaming
	// filter operators.
	for si, s := range srcs {
		var push []Expr
		for _, c := range conjs {
			if c.used || len(c.refs) > 1 {
				continue
			}
			if len(c.refs) == 0 || c.refs[si] {
				// Constant predicates apply everywhere; attach to source 0.
				if len(c.refs) == 0 && si != 0 {
					continue
				}
				push = append(push, c.ex)
				c.used = true
			}
		}
		if len(push) == 0 {
			continue
		}
		sc := newScope()
		if err := sc.add(s.name, s.schema); err != nil {
			return nil, err
		}
		pred, _, err := compilePredicate(AndAll(push), sc, e.registry)
		if err != nil {
			return nil, err
		}
		if vpred, ok := e.vecPredicate(AndAll(push), sc); ok {
			types := row.SchemaTypes(s.schema)
			for j := range s.iters {
				s.iters[j] = rowsIter(newColFilterIter(asColIterator(s.iters[j], types), vpred))
			}
		} else {
			for j := range s.iters {
				s.iters[j] = newFilterIter(s.iters[j], pred)
			}
		}
		track(s.iters)
	}

	// Left-deep joins in FROM order: each newly joined source is drained
	// and built into a hash table (pipeline breaker), the accumulated left
	// side keeps streaming through probe operators.
	cur := &dataset{sc: newScope(), iters: srcs[0].iters}
	if err := cur.sc.add(srcs[0].name, srcs[0].schema); err != nil {
		return nil, err
	}
	inCur := map[int]bool{0: true}
	for next := 1; next < len(srcs); next++ {
		s := srcs[next]
		nextScope := newScope()
		if err := nextScope.add(s.name, s.schema); err != nil {
			return nil, err
		}
		// Find equi-join conjuncts linking cur to s.
		var leftKeys, rightKeys []Expr
		for _, c := range conjs {
			if c.used || !c.refs[next] {
				continue
			}
			covered := true
			touchesCur := false
			for r := range c.refs {
				if r == next {
					continue
				}
				if inCur[r] {
					touchesCur = true
				} else {
					covered = false
				}
			}
			if !covered || !touchesCur {
				continue
			}
			b, ok := c.ex.(*BinOp)
			if !ok || b.Op != "=" {
				continue
			}
			lrefs, err := sourceOf(b.L)
			if err != nil {
				return nil, err
			}
			rrefs, err := sourceOf(b.R)
			if err != nil {
				return nil, err
			}
			switch {
			case sideIn(lrefs, inCur) && onlySource(rrefs, next):
				leftKeys = append(leftKeys, b.L)
				rightKeys = append(rightKeys, b.R)
				c.used = true
			case onlySource(lrefs, next) && sideIn(rrefs, inCur):
				leftKeys = append(leftKeys, b.R)
				rightKeys = append(rightKeys, b.L)
				c.used = true
			}
		}
		joined, err := e.hashJoin(qp, cur, &dataset{sc: nextScope, iters: s.iters}, leftKeys, rightKeys)
		if err != nil {
			return nil, err
		}
		cur = joined
		track(cur.iters)
		inCur[next] = true
	}

	// Residual predicates after all joins, as streaming filters.
	var residual []Expr
	for _, c := range conjs {
		if !c.used {
			residual = append(residual, c.ex)
		}
	}
	if len(residual) > 0 {
		pred, _, err := compilePredicate(AndAll(residual), cur.sc, e.registry)
		if err != nil {
			return nil, err
		}
		if vpred, ok := e.vecPredicate(AndAll(residual), cur.sc); ok {
			types := row.SchemaTypes(cur.sc.combined())
			for j := range cur.iters {
				cur.iters[j] = rowsIter(newColFilterIter(asColIterator(cur.iters[j], types), vpred))
			}
		} else {
			for j := range cur.iters {
				cur.iters[j] = newFilterIter(cur.iters[j], pred)
			}
		}
		track(cur.iters)
	}

	// Aggregation (breaker) or streaming projection.
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var (
		outSchema row.Schema
		outIters  []BatchIterator // set while the tail is still streaming
		outParts  [][]row.Row     // set once a breaker materializes it
		streaming bool
		err       error
	)
	if hasAgg {
		outSchema, outParts, err = e.execAggregate(qp, sel, cur)
	} else {
		outSchema, outIters, err = e.execProject(sel.Items, cur)
		streaming = true
		track(outIters)
	}
	if err != nil {
		return nil, err
	}

	// tailIters hands the current tail to a breaker, whichever form it is in.
	tailIters := func() []BatchIterator {
		if streaming {
			streaming = false
			return outIters
		}
		return partIters(outParts)
	}

	if sel.Having != nil {
		if !hasAgg {
			return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
		}
		// HAVING references the aggregate output columns by name.
		hsc := newScope()
		if err := hsc.add("", outSchema); err != nil {
			return nil, err
		}
		pred, _, err := compilePredicate(sel.Having, hsc, e.registry)
		if err != nil {
			return nil, err
		}
		outParts, err = e.filterParts(qp, outParts, pred)
		if err != nil {
			return nil, err
		}
	}

	if sel.Distinct {
		outParts, err = e.distinct(qp, tailIters())
		if err != nil {
			return nil, err
		}
	}

	if len(sel.OrderBy) > 0 {
		outParts, err = e.orderBy(qp, sel.OrderBy, outSchema, tailIters())
		if err != nil {
			return nil, err
		}
	}

	if sel.Limit >= 0 {
		outParts, err = e.limit(tailIters(), sel.Limit)
		if err != nil {
			return nil, err
		}
	}

	if streaming {
		res = NewStreamingResult(outSchema, outIters)
	} else {
		res = NewResult(outSchema, outParts)
	}
	res.pool = qp
	return res, nil
}

func sideIn(refs map[int]bool, in map[int]bool) bool {
	if len(refs) == 0 {
		return false
	}
	for r := range refs {
		if !in[r] {
			return false
		}
	}
	return true
}

func onlySource(refs map[int]bool, si int) bool {
	return len(refs) == 1 && refs[si]
}

// compilePredicate compiles a boolean expression.
func compilePredicate(ex Expr, sc *scope, reg *Registry) (evalFn, row.Type, error) {
	fn, t, err := compile(ex, sc, reg)
	if err != nil {
		return nil, 0, err
	}
	if t != row.TypeBool {
		return nil, 0, fmt.Errorf("sql: predicate must be BOOLEAN, got %s", t)
	}
	return fn, t, nil
}

// filterParts applies a predicate to every materialized partition on the
// query pool (used by HAVING, whose input the aggregate already drained).
func (e *Engine) filterParts(qp *queryPool, parts [][]row.Row, pred evalFn) ([][]row.Row, error) {
	out := make([][]row.Row, len(parts))
	err := qp.forEach(len(parts), func(i, _ int) error {
		var kept []row.Row
		for _, r := range parts[i] {
			v, err := pred(r)
			if err != nil {
				return err
			}
			if !v.Null && v.AsBool() {
				kept = append(kept, r)
			}
		}
		out[i] = kept
		return nil
	})
	return out, err
}

// scanTable produces per-partition batch pipelines for a table: managed
// tables yield zero-copy sub-slice batches; streaming tables hand over
// their (single-use) pipelines; external tables stream their DFS splits
// with locality-aware assignment, never materializing a partition.
func (e *Engine) scanTable(t *Table) ([]BatchIterator, error) {
	if t.streaming {
		iters, ok := t.takeStream()
		if !ok {
			return nil, fmt.Errorf("sql: streaming table %q already consumed", t.Name)
		}
		return iters, nil
	}
	if t.External == nil {
		parts := t.partitions()
		if len(parts) == 0 {
			return emptyIters(e.NumWorkers()), nil
		}
		return partIters(parts), nil
	}
	fs := t.External.FS
	paths := []string{t.External.Path}
	if !fs.Exists(t.External.Path) {
		paths = fs.List(t.External.Path)
		if len(paths) == 0 {
			return nil, fmt.Errorf("sql: external table %q: no file or directory %q", t.Name, t.External.Path)
		}
	}
	loads := make([]int64, e.NumWorkers())
	assignments := make([][]assignedSplit, e.NumWorkers())
	for _, p := range paths {
		fm := hadoopfmt.NewTextTableFormat(fs, p, t.Schema)
		splits, err := fm.Splits(0)
		if err != nil {
			return nil, err
		}
		for _, sp := range splits {
			w := e.pickWorker(sp.Locations(), loads)
			loads[w] += sp.Length()
			assignments[w] = append(assignments[w], assignedSplit{fm: fm, split: sp})
		}
	}
	iters := make([]BatchIterator, e.NumWorkers())
	for i := range iters {
		iters[i] = &externalScan{assigned: assignments[i], node: e.workers[i]}
	}
	return iters, nil
}

// pickWorker chooses the least-loaded worker among those local to the
// split, falling back to the least-loaded worker overall.
func (e *Engine) pickWorker(locations []string, loads []int64) int {
	best := -1
	for i, w := range e.workers {
		local := false
		for _, loc := range locations {
			if w.Addr == loc {
				local = true
				break
			}
		}
		if local && (best < 0 || loads[i] < loads[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	for i := range e.workers {
		if loads[i] < loads[best] {
			best = i
		}
	}
	return best
}

// execTableFunc plans TABLE(f(...)) from a FROM clause. Per-partition UDFs
// become pipelined operators: the UDF runs in a goroutine per partition,
// pulling input batches and emitting output batches as the consumer asks
// for them. Global UDFs are pipeline breakers: gather input to the head,
// run once, scatter output. Every emitted row is checked against the
// declared output schema so a misbehaving UDF fails loudly.
func (e *Engine) execTableFunc(qp *queryPool, call *TableFuncCall) (row.Schema, []BatchIterator, error) {
	udf, ok := e.registry.Table(call.Name)
	if !ok {
		return row.Schema{}, nil, fmt.Errorf("sql: unknown table function %q", call.Name)
	}
	var (
		inSchema row.Schema
		inIters  []BatchIterator
		litArgs  []row.Value
		hasTable bool
	)
	for _, a := range call.Args {
		if a.Table != "" {
			if hasTable {
				return row.Schema{}, nil, fmt.Errorf("sql: table function %q takes at most one table argument", call.Name)
			}
			hasTable = true
			t, err := e.catalog.Get(a.Table)
			if err != nil {
				return row.Schema{}, nil, err
			}
			inSchema = t.Schema
			iters, err := e.scanTable(t)
			if err != nil {
				return row.Schema{}, nil, err
			}
			inIters = iters
			continue
		}
		litArgs = append(litArgs, a.Lit.V)
	}
	outSchema, err := udf.OutSchema(inSchema, litArgs)
	if err != nil {
		closeAllIters(inIters)
		return row.Schema{}, nil, fmt.Errorf("sql: %s: %w", udf.Name, err)
	}
	if inIters == nil {
		inIters = emptyIters(e.NumWorkers())
	}

	if udf.PerPartition {
		outIters := make([]BatchIterator, len(inIters))
		for i := range inIters {
			node := e.workers[i]
			// Consuming the input is one pass over the local partition,
			// charged batch-by-batch as the UDF pulls.
			input := &chargeIter{in: inIters[i], cost: e.cost, node: node}
			ctx := &UDFContext{Engine: e, Node: node, Partition: i, NumPartitions: len(inIters), InSchema: inSchema}
			outIters[i] = newUDFPipe(input, func(in Iterator, emit func(row.Row) error) error {
				checked := func(r row.Row) error {
					if err := r.Conforms(outSchema); err != nil {
						return fmt.Errorf("sql: %s: %w", udf.Name, err)
					}
					return emit(r)
				}
				if err := udf.Fn(ctx, in, litArgs, checked); err != nil {
					return fmt.Errorf("sql: %s: %w", udf.Name, err)
				}
				return nil
			})
		}
		return outSchema, outIters, nil
	}

	// Global UDF: gather input to the head node, run once, scatter output.
	inParts, err := qp.drainAll(inIters)
	if err != nil {
		return row.Schema{}, nil, err
	}
	var gathered []row.Row
	for i, p := range inParts {
		if i < len(e.workers) && e.workers[i] != e.head {
			e.cost.ChargeNet(e.workers[i], e.head, partBytes(p))
		}
		gathered = append(gathered, p...)
	}
	e.cost.ChargeProc(e.head, partBytes(gathered))
	ctx := &UDFContext{Engine: e, Node: e.head, Partition: 0, NumPartitions: 1, InSchema: inSchema}
	var outRows []row.Row
	emit := func(r row.Row) error {
		if err := r.Conforms(outSchema); err != nil {
			return fmt.Errorf("sql: %s: %w", udf.Name, err)
		}
		outRows = append(outRows, r)
		return nil
	}
	if err := udf.Fn(ctx, &SliceIterator{Rows: gathered}, litArgs, emit); err != nil {
		return row.Schema{}, nil, fmt.Errorf("sql: %s: %w", udf.Name, err)
	}
	outParts := make([][]row.Row, e.NumWorkers())
	for i, r := range outRows {
		w := i % e.NumWorkers()
		outParts[w] = append(outParts[w], r)
	}
	for i, p := range outParts {
		if e.workers[i] != e.head {
			e.cost.ChargeNet(e.head, e.workers[i], partBytes(p))
		}
	}
	return outSchema, partIters(outParts), nil
}

// hashJoin joins two datasets. The right (newly joined) side is drained and
// built into a hash table that is broadcast to every probe worker; the left
// side streams through probe operators — a pipelined broadcast hash join.
// With no keys it degrades to a broadcast nested-loop (cartesian) join.
// Output binding order is always left-then-right, matching FROM order.
// Drain and build both run on the query pool: the drain partition-wise,
// the build as morsel key scans plus hash-sharded inserts (joinbuild.go).
func (e *Engine) hashJoin(qp *queryPool, left, right *dataset, leftKeys, rightKeys []Expr) (*dataset, error) {
	outScope := newScope()
	for _, b := range left.sc.bindings {
		if err := outScope.add(b.name, b.schema); err != nil {
			return nil, err
		}
	}
	for _, b := range right.sc.bindings {
		if err := outScope.add(b.name, b.schema); err != nil {
			return nil, err
		}
	}

	buildKeyFns, err := compileKeys(rightKeys, right.sc, e.registry)
	if err != nil {
		return nil, err
	}
	probeKeyFns, err := compileKeys(leftKeys, left.sc, e.registry)
	if err != nil {
		return nil, err
	}

	// Drain the build side (pipeline breaker).
	buildParts, err := qp.drainAll(right.iters)
	if err != nil {
		return nil, err
	}

	// Broadcast: every probe worker receives the full build side. Charge
	// the network once per (build partition, remote probe worker) pair.
	for bi, bp := range buildParts {
		bytes := partBytes(bp)
		for pi := range left.iters {
			if bi < len(e.workers) && pi < len(e.workers) && e.workers[bi] != e.workers[pi] {
				e.cost.ChargeNet(e.workers[bi], e.workers[pi], bytes)
			}
		}
	}

	// Build the sharded hash table (shared read-only across probe workers)
	// on the pool; a key-less (cartesian) join just concatenates the build
	// rows instead.
	var build *buildTable
	var buildAll []row.Row
	if len(buildKeyFns) == 0 {
		for _, bp := range buildParts {
			buildAll = append(buildAll, bp...)
		}
	} else {
		build, err = buildHashTable(qp, buildParts, buildKeyFns)
		if err != nil {
			return nil, err
		}
	}

	concat := func(probeRow, buildRow row.Row) row.Row {
		out := make(row.Row, 0, len(probeRow)+len(buildRow))
		out = append(out, probeRow...)
		return append(out, buildRow...)
	}

	// A keyed probe over a pipeline with a columnar core runs column-wise:
	// key kernels over whole batches, LookupKeys against the same table.
	// Cartesian joins and row-major inputs keep the row probe.
	var vecKeyFns []vecFn
	vecOK := len(leftKeys) > 0
	if vecOK {
		vecKeyFns, vecOK = e.vecExprs(leftKeys, left.sc)
	}

	outIters := make([]BatchIterator, len(left.iters))
	for i := range left.iters {
		var node *cluster.Node
		if i < len(e.workers) {
			node = e.workers[i]
		}
		if vecOK {
			if core, ok := unwrapColCore(left.iters[i]); ok {
				outIters[i] = &colProbeIter{
					in:     core,
					keyFns: vecKeyFns,
					build:  build,
					concat: concat,
					cost:   e.cost,
					node:   node,
				}
				continue
			}
		}
		outIters[i] = &probeIter{
			in:       left.iters[i],
			keyFns:   probeKeyFns,
			build:    build,
			buildAll: buildAll,
			concat:   concat,
			cost:     e.cost,
			node:     node,
		}
	}
	return &dataset{sc: outScope, iters: outIters}, nil
}

func compileKeys(keys []Expr, sc *scope, reg *Registry) ([]evalFn, error) {
	fns := make([]evalFn, len(keys))
	for i, k := range keys {
		fn, _, err := compile(k, sc, reg)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return fns, nil
}

// execProject compiles the select list into streaming projection
// operators — columnar kernels assembling output batches from result
// vectors when the engine runs columnar, per-row closures otherwise.
func (e *Engine) execProject(items []SelectItem, in *dataset) (row.Schema, []BatchIterator, error) {
	fns, schema, err := compileSelectList(items, in.sc, e.registry)
	if err != nil {
		return row.Schema{}, nil, err
	}
	if vfns, ok := e.vecSelectList(items, in.sc); ok {
		inTypes := row.SchemaTypes(in.sc.combined())
		outTypes := row.SchemaTypes(schema)
		outIters := make([]BatchIterator, len(in.iters))
		for i := range in.iters {
			outIters[i] = rowsIter(newColProjectIter(asColIterator(in.iters[i], inTypes), vfns, outTypes))
		}
		return schema, outIters, nil
	}
	outIters := make([]BatchIterator, len(in.iters))
	for i := range in.iters {
		outIters[i] = newProjectIter(in.iters[i], fns)
	}
	return schema, outIters, nil
}

// compileSelectList expands stars and compiles each output column.
func compileSelectList(items []SelectItem, sc *scope, reg *Registry) ([]evalFn, row.Schema, error) {
	var fns []evalFn
	var names []string
	var types []row.Type
	for _, item := range items {
		if item.Star {
			q := strings.ToLower(item.StarQualifier)
			matched := false
			for _, b := range sc.bindings {
				if q != "" && b.name != q {
					continue
				}
				matched = true
				for ci, col := range b.schema.Cols {
					idx := b.offset + ci
					fns = append(fns, func(r row.Row) (row.Value, error) { return r[idx], nil })
					names = append(names, col.Name)
					types = append(types, col.Type)
				}
			}
			if !matched {
				return nil, row.Schema{}, fmt.Errorf("sql: unknown binding %q in star expansion", item.StarQualifier)
			}
			continue
		}
		fn, t, err := compile(item.Expr, sc, reg)
		if err != nil {
			return nil, row.Schema{}, err
		}
		fns = append(fns, fn)
		names = append(names, outputName(item))
		types = append(types, t)
	}
	schema, err := makeOutputSchema(names, types)
	if err != nil {
		return nil, row.Schema{}, err
	}
	return fns, schema, nil
}

func outputName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch x := item.Expr.(type) {
	case *ColRef:
		return x.Name
	case *FuncCall:
		return strings.ToLower(x.Name)
	default:
		return "expr"
	}
}

// makeOutputSchema builds a schema, de-duplicating column names by
// suffixing _2, _3, ...
func makeOutputSchema(names []string, types []row.Type) (row.Schema, error) {
	seen := make(map[string]int)
	cols := make([]row.Column, len(names))
	for i, n := range names {
		base := strings.ToLower(n)
		seen[base]++
		if seen[base] > 1 {
			n = fmt.Sprintf("%s_%d", n, seen[base])
		}
		cols[i] = row.Column{Name: n, Type: types[i]}
	}
	return row.NewSchema(cols...)
}

// repartitionByKey moves rows so that equal rows colocate (hashing each
// row's canonical key bytes), charging network for cross-worker movement.
// The per-source bucketing runs on the query pool.
func (e *Engine) repartitionByKey(qp *queryPool, parts [][]row.Row) ([][]row.Row, error) {
	n := len(parts)
	buckets := make([][][]row.Row, n) // [src][dst]rows
	err := qp.forEach(n, func(i, _ int) error {
		b := make([][]row.Row, n)
		var scratch []byte
		var h uint64
		for _, r := range parts[i] {
			scratch, h = hashKey(scratch, r)
			d := int(h % uint64(n))
			b[d] = append(b[d], r)
		}
		buckets[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]row.Row, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			rows := buckets[src][dst]
			if len(rows) == 0 {
				continue
			}
			if e.workers[src] != e.workers[dst] {
				e.cost.ChargeNet(e.workers[src], e.workers[dst], partBytes(rows))
			}
			out[dst] = append(out[dst], rows...)
		}
	}
	return out, nil
}

// orderBy drains the pipeline (breaker) on the query pool, cuts the
// partitions into sort chunks that sort as pool tasks (sort keys
// evaluated once per row, not once per comparison), then merges the runs
// with stable loser trees — intermediate merges in parallel, one final
// merge at the head; the merged result occupies partition 0. Tie order is
// identical to the old gather-then-sort.SliceStable implementation.
func (e *Engine) orderBy(qp *queryPool, items []OrderItem, schema row.Schema, iters []BatchIterator) ([][]row.Row, error) {
	sc := newScope()
	if err := sc.add("", schema); err != nil {
		closeAllIters(iters)
		return nil, err
	}
	specs := make([]orderSpec, len(items))
	for i, it := range items {
		fn, _, err := compile(it.Expr, sc, e.registry)
		if err != nil {
			closeAllIters(iters)
			return nil, err
		}
		specs[i] = orderSpec{fn: fn, desc: it.Desc}
	}

	// When the tail pipeline has a columnar core, the drain evaluates the
	// sort keys column-wise per batch (one kernel pass per key instead of
	// one closure call per row) and sorts the prepared runs.
	if cores, ok := e.colSortCores(iters); ok {
		exprs := make([]Expr, len(items))
		for i, it := range items {
			exprs[i] = it.Expr
		}
		if keyFns, ok := e.vecExprs(exprs, sc); ok {
			return e.orderByColumnar(qp, specs, keyFns, iters, cores)
		}
	}

	parts, err := qp.drainAll(iters)
	if err != nil {
		return nil, err
	}
	for i, p := range parts {
		if i < len(e.workers) && e.workers[i] != e.head {
			e.cost.ChargeNet(e.workers[i], e.head, partBytes(p))
		}
	}
	merged, err := sortChunksMerge(qp, specs, chunkForSort(parts, nil, qp.n))
	if err != nil {
		return nil, err
	}
	out := make([][]row.Row, len(parts))
	out[0] = merged
	return out, nil
}

// colSortCores unwraps every partition's columnar core for the ORDER BY
// drain. All-or-nothing: a single row-major partition keeps the whole sort
// on the row path, so no partition pays a transpose just to sort.
func (e *Engine) colSortCores(iters []BatchIterator) ([]colIterator, bool) {
	if !e.columnar {
		return nil, false
	}
	cores := make([]colIterator, len(iters))
	for i := range iters {
		c, ok := unwrapColCore(iters[i])
		if !ok {
			return nil, false
		}
		cores[i] = c
	}
	return cores, true
}

// orderByColumnar drains each partition's columnar core, evaluating sort
// keys kernel-per-key over whole batches and materializing rows and key
// rows together (both owning), then sorts and merges exactly like the row
// path. iters are the row shells over the cores, closed per partition.
func (e *Engine) orderByColumnar(qp *queryPool, specs []orderSpec, keyFns []vecFn, iters []BatchIterator, cores []colIterator) ([][]row.Row, error) {
	primeIters(iters)
	parts := make([][]row.Row, len(cores))
	keys := make([][]row.Row, len(cores))
	err := qp.forEach(len(cores), func(i, _ int) error {
		defer iters[i].Close()
		var ctx vecCtx
		kvecs := make([]*row.Vector, len(keyFns))
		for {
			if qp.cancelled() {
				return errQueryCancelled
			}
			b, ok, err := cores[i].NextCol()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			ctx.reclaim()
			for ki, fn := range keyFns {
				v, err := fn(&ctx, b, b.Sel())
				if err != nil {
					return err
				}
				kvecs[ki] = v
			}
			parts[i] = b.Rows(parts[i])
			k := b.Len()
			flat := make(row.Row, k*len(specs))
			for si := 0; si < k; si++ {
				p := b.SelPos(si)
				kr := flat[si*len(specs) : (si+1)*len(specs) : (si+1)*len(specs)]
				for ki, kv := range kvecs {
					kr[ki] = kv.ValueAt(p)
				}
				keys[i] = append(keys[i], kr)
			}
		}
	})
	if err != nil {
		closeAllIters(iters)
		return nil, err
	}
	for i, p := range parts {
		if i < len(e.workers) && e.workers[i] != e.head {
			e.cost.ChargeNet(e.workers[i], e.head, partBytes(p))
		}
	}
	merged, err := sortChunksMerge(qp, specs, chunkForSort(parts, keys, qp.n))
	if err != nil {
		return nil, err
	}
	out := make([][]row.Row, len(parts))
	out[0] = merged
	return out, nil
}

// limit truncates the result to n rows (taken in partition order), pulling
// only the batches it needs and closing the rest of the pipeline early —
// the early-termination path of the batch-iterator model.
func (e *Engine) limit(iters []BatchIterator, n int) ([][]row.Row, error) {
	primeIters(iters)
	out := make([][]row.Row, len(iters))
	remaining := n
	var firstErr error
	for i, it := range iters {
		if remaining <= 0 || firstErr != nil {
			it.Close()
			continue
		}
		for remaining > 0 {
			b, ok, err := it.Next()
			if err != nil {
				firstErr = err
				break
			}
			if !ok {
				break
			}
			if len(b) > remaining {
				b = b[:remaining]
			}
			out[i] = append(out[i], b...)
			remaining -= len(b)
		}
		it.Close()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ExportToDFS writes a result to the DFS as a directory of text part
// files, one per partition, written in parallel by each worker — the
// materialization step of the paper's naive pipeline. A streaming result
// is written batch-by-batch as its pipeline produces rows, so the export
// overlaps with the query instead of following it.
func (e *Engine) ExportToDFS(res *Result, fs *dfs.FileSystem, dir string) error {
	iters, err := res.Batches()
	if err != nil {
		return err
	}
	qp := newQueryPool(e.parallelism)
	primeIters(iters)
	return qp.forEach(len(iters), func(i, _ int) error {
		defer iters[i].Close()
		node := e.workers[i%len(e.workers)]
		path := fmt.Sprintf("%s/part-%05d", dir, i)
		w, err := hadoopfmt.NewTextTableWriter(fs, path, res.Schema, node)
		if err != nil {
			return err
		}
		for {
			if qp.cancelled() {
				w.Abort()
				return errQueryCancelled
			}
			b, ok, berr := iters[i].Next()
			if berr != nil {
				w.Abort()
				return berr
			}
			if !ok {
				break
			}
			// Encoding and writing the batch is one pass over it.
			e.cost.ChargeProc(node, partBytes(b))
			for _, r := range b {
				if werr := w.WriteRow(r); werr != nil {
					return werr
				}
			}
		}
		_, err = w.Close()
		return err
	})
}

// showTables answers SHOW TABLES with one row per catalog table.
func (e *Engine) showTables() (*Result, error) {
	schema := row.MustSchema(
		row.Column{Name: "name", Type: row.TypeString},
		row.Column{Name: "rows", Type: row.TypeInt},
		row.Column{Name: "storage", Type: row.TypeString},
	)
	parts := make([][]row.Row, e.NumWorkers())
	for _, name := range e.catalog.Names() {
		t, err := e.catalog.Get(name)
		if err != nil {
			continue
		}
		storage := "managed"
		if t.External != nil {
			storage = "external:" + t.External.Path
		}
		if t.streaming {
			storage = "streaming"
		}
		parts[0] = append(parts[0], row.Row{
			row.String_(t.Name), row.Int(int64(t.NumRows())), row.String_(storage),
		})
	}
	return NewResult(schema, parts), nil
}

// describe answers DESCRIBE <table> with one row per column.
func (e *Engine) describe(name string) (*Result, error) {
	t, err := e.catalog.Get(name)
	if err != nil {
		return nil, err
	}
	schema := row.MustSchema(
		row.Column{Name: "column", Type: row.TypeString},
		row.Column{Name: "type", Type: row.TypeString},
	)
	parts := make([][]row.Row, e.NumWorkers())
	for _, c := range t.Schema.Cols {
		parts[0] = append(parts[0], row.Row{row.String_(c.Name), row.String_(c.Type.String())})
	}
	return NewResult(schema, parts), nil
}
