package sqlengine

import "sqlml/internal/row"

// DefaultBatchSize is how many rows flow through the pipeline per batch —
// the single sizing constant shared with the wire layer (one pipeline
// batch fills one v2 block frame; see row.DefaultBatchSize).
const DefaultBatchSize = row.DefaultBatchSize

// RowBatch is the unit of data flowing between pipelined operators.
type RowBatch []row.Row

// BatchIterator is the Volcano-style pull interface of one partition's
// operator pipeline. Next returns the next batch (ok=false at end of
// stream); a batch is only valid until the following Next call. Close
// releases the pipeline early — it must be safe to call at any point,
// more than once, and must stop any producer goroutines upstream.
type BatchIterator interface {
	Next() (b RowBatch, ok bool, err error)
	Close()
}

// sliceBatches iterates an in-memory partition as zero-copy sub-slices.
type sliceBatches struct {
	rows []row.Row
	i    int
}

// NewSliceBatches returns a BatchIterator over an in-memory row slice,
// yielding DefaultBatchSize-row sub-slices without copying.
func NewSliceBatches(rows []row.Row) BatchIterator { return &sliceBatches{rows: rows} }

func (s *sliceBatches) Next() (RowBatch, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	end := s.i + DefaultBatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := RowBatch(s.rows[s.i:end])
	s.i = end
	return b, true, nil
}

func (s *sliceBatches) Close() { s.i = len(s.rows) }

// batchRows adapts a BatchIterator to the row-at-a-time Iterator consumed
// by table UDFs. Closing is the owner's job, not the adapter's.
type batchRows struct {
	in  BatchIterator
	cur RowBatch
	i   int
}

// Next implements Iterator.
func (a *batchRows) Next() (row.Row, bool, error) {
	for a.i >= len(a.cur) {
		b, ok, err := a.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		//lint:allow batchretain cursor parks the batch only until its own Next exhausts it, which is exactly the validity window the contract grants
		a.cur, a.i = b, 0
	}
	r := a.cur[a.i]
	a.i++
	return r, true, nil
}

// drainBatches pulls an iterator to completion, materializing one
// partition. The iterator is closed either way.
func drainBatches(it BatchIterator) ([]row.Row, error) {
	defer it.Close()
	var out []row.Row
	for {
		b, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, b...)
	}
}

func closeAllIters(iters []BatchIterator) {
	for _, it := range iters {
		if it != nil {
			it.Close()
		}
	}
}

// errorIterator yields a single error; used when a partition's pipeline
// cannot even be constructed.
type errorIterator struct{ err error }

func (e *errorIterator) Next() (RowBatch, bool, error) { return nil, false, e.err }
func (e *errorIterator) Close()                        {}
