package sqlengine

import "testing"

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, "SELECT a1, 'it''s', 3.14 FROM t")
	want := []struct {
		kind tokKind
		text string
	}{
		{tokKeyword, "SELECT"},
		{tokIdent, "a1"},
		{tokSymbol, ","},
		{tokString, "it's"},
		{tokSymbol, ","},
		{tokNumber, "3.14"},
		{tokKeyword, "FROM"},
		{tokIdent, "t"},
		{tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].kind != w.kind || toks[i].text != w.text {
			t.Errorf("token %d = (%d, %q), want (%d, %q)", i, toks[i].kind, toks[i].text, w.kind, w.text)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexKinds(t, "select Select SELECT sElEcT")
	for i := 0; i < 4; i++ {
		if toks[i].kind != tokKeyword || toks[i].text != "SELECT" {
			t.Errorf("token %d = %+v", i, toks[i])
		}
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks := lexKinds(t, "<= >= <> != < >")
	want := []string{"<=", ">=", "<>", "!=", "<", ">"}
	for i, w := range want {
		if toks[i].kind != tokSymbol || toks[i].text != w {
			t.Errorf("token %d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "SELECT -- whole line ignored\n a")
	if len(toks) != 3 || toks[1].text != "a" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"'unterminated",
		"a @ b",
		"a # b",
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexIdentifiersWithUnderscoresAndDigits(t *testing.T) {
	toks := lexKinds(t, "_tmp col_2 x9")
	for i, want := range []string{"_tmp", "col_2", "x9"} {
		if toks[i].kind != tokIdent || toks[i].text != want {
			t.Errorf("token %d = %+v", i, toks[i])
		}
	}
}

func TestLexNumbersEdgeCases(t *testing.T) {
	toks := lexKinds(t, "0 007 1.5 .5")
	if toks[0].text != "0" || toks[1].text != "007" || toks[2].text != "1.5" || toks[3].text != ".5" {
		t.Errorf("numbers: %v", toks[:4])
	}
	// A lone dot is a symbol (qualified-name separator), not a number.
	toks = lexKinds(t, "a.b")
	if toks[1].kind != tokSymbol || toks[1].text != "." {
		t.Errorf("qualified dot: %+v", toks[1])
	}
}
