package sqlengine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sqlml/internal/row"
)

// Morsel-driven intra-query parallelism. Every query gets one queryPool —
// a bounded set of workers sized by Config.Parallelism — and every
// CPU-heavy per-partition pass (pipeline drains, aggregation partials,
// hash-join build morsels, sort runs, DISTINCT passes) runs as tasks
// claimed from it instead of spawning one goroutine per partition. The
// pool carries the query's cancellation: the first failing task (or an
// external Result.Close) trips the cancel channel, every other task stops
// at its next batch boundary, and the partition pipelines are closed so
// producer goroutines and pooled ColBatches are released.
//
// Parallelism: 1 is the sequential oracle — one worker executes every
// task in index order, so its output is the reference the parallel
// schedules must reproduce byte-for-byte. The operators keep that
// guarantee by accumulating into partials whose boundaries are a
// deterministic function of the input (per partition, per morsel), never
// of the schedule, and merging them in a deterministic order.

// errQueryCancelled is returned by pool tasks that stopped early because
// the query was cancelled (a sibling partition failed, or the consumer
// closed the result mid-stream).
var errQueryCancelled = errors.New("sql: query cancelled")

// queryPool is one query's worker pool: a parallelism budget plus the
// query-wide cancellation signal. Workers are spawned per parallel pass
// and joined before the pass returns — the pool owns no long-lived
// goroutines, so an abandoned plan leaks nothing.
type queryPool struct {
	n          int
	cancel     chan struct{}
	cancelOnce sync.Once
}

// resolveParallelism maps the Config.Parallelism convention to a concrete
// worker count: n <= 0 selects the default, one worker per available CPU.
func resolveParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func newQueryPool(n int) *queryPool {
	return &queryPool{n: resolveParallelism(n), cancel: make(chan struct{})}
}

// Cancel trips the query-wide cancellation signal. Safe to call from any
// goroutine, any number of times.
func (p *queryPool) Cancel() { p.cancelOnce.Do(func() { close(p.cancel) }) }

// cancelled reports whether the query has been cancelled.
func (p *queryPool) cancelled() bool {
	select {
	case <-p.cancel:
		return true
	default:
		return false
	}
}

// forEach runs f(task, worker) for task = 0..n-1 across min(n, pool size)
// workers. Tasks are claimed from a shared counter — morsel dispatch —
// so a skewed task keeps only one worker busy while the rest drain the
// remaining queue. worker is a dense id < pool size, for indexing
// per-worker partial state. The first real task error wins (cancellation
// aborts of sibling tasks never mask it); if tasks were skipped because
// the query was cancelled with no task failing, errQueryCancelled is
// returned.
func (p *queryPool) forEach(n int, f func(task, worker int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.n
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var skipped atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				if p.cancelled() {
					skipped.Store(true)
					return
				}
				if err := f(t, w); err != nil {
					errs[t] = err
					p.Cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errQueryCancelled) {
			cancelErr = err
			continue
		}
		return err
	}
	if cancelErr != nil {
		return cancelErr
	}
	if skipped.Load() {
		return errQueryCancelled
	}
	return nil
}

// drainAll drains every partition pipeline on the pool, materializing the
// partitions. Pipelines with lazily started producer goroutines are primed
// first: partitions of a stream-send query register with their coordinator
// from their own goroutines, so a pool smaller than the partition count
// (including the Parallelism: 1 oracle) cannot deadlock their barrier.
// On error (or cancellation) every iterator is closed.
func (p *queryPool) drainAll(iters []BatchIterator) ([][]row.Row, error) {
	primeIters(iters)
	parts := make([][]row.Row, len(iters))
	err := p.forEach(len(iters), func(i, _ int) error {
		part, err := p.drainBatches(iters[i])
		parts[i] = part
		return err
	})
	if err != nil {
		closeAllIters(iters)
		return nil, err
	}
	return parts, nil
}

// drainBatches is drainBatches with a cancellation check at every batch
// boundary, so a failed sibling partition stops this one within one batch.
func (p *queryPool) drainBatches(it BatchIterator) ([]row.Row, error) {
	defer it.Close()
	var out []row.Row
	for {
		if p.cancelled() {
			return nil, errQueryCancelled
		}
		b, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, b...)
	}
}

// primeIters eagerly starts every lazily started producer goroutine
// reachable from the given pipelines (today: udfPipe). Operators that
// merely wrap another iterator forward the priming to their input.
func primeIters(iters []BatchIterator) {
	for _, it := range iters {
		primeAny(it)
	}
}

func primeAny(it any) {
	switch x := it.(type) {
	case *udfPipe:
		x.prime()
	case *filterIter:
		primeAny(x.in)
	case *projectIter:
		primeAny(x.in)
	case *probeIter:
		primeAny(x.in)
	case *chargeIter:
		primeAny(x.in)
	case *colToRows:
		primeAny(x.c)
	case *colScanIter:
		primeAny(x.in)
	case *colFilterIter:
		primeAny(x.in)
	case *colProjectIter:
		primeAny(x.in)
	case *colProbeIter:
		primeAny(x.in)
	case *chargeColIter:
		primeAny(x.c)
	}
}

// morsel is one contiguous run of rows of one materialized partition — the
// unit of work the parallel breakers (hash-join build, ORDER BY sort runs)
// dispatch over the pool. seq is the global partition-major index of the
// morsel's first row, so per-morsel results can be recombined in exactly
// the order a sequential pass over the partitions would have produced.
type morsel struct {
	part    int
	rows    []row.Row
	seq     int64
	morselN int // dense morsel index in partition-major order
}

// morselize splits materialized partitions into DefaultBatchSize-row
// morsels in partition-major order.
func morselize(parts [][]row.Row) []morsel {
	var out []morsel
	var seq int64
	for pi, part := range parts {
		for lo := 0; lo < len(part); lo += DefaultBatchSize {
			hi := lo + DefaultBatchSize
			if hi > len(part) {
				hi = len(part)
			}
			out = append(out, morsel{part: pi, rows: part[lo:hi], seq: seq + int64(lo), morselN: len(out)})
		}
		seq += int64(len(part))
	}
	return out
}
