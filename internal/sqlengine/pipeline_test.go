package sqlengine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlml/internal/row"
)

// genSchema is the output schema of the generator UDFs below.
func genSchema(in row.Schema, args []row.Value) (row.Schema, error) {
	return row.NewSchema(row.Column{Name: "v", Type: row.TypeInt})
}

// TestTableUDFValidatesEveryRow is the regression test for the schema check
// that used to inspect only the first emitted row: a UDF whose FIRST row
// conforms but whose SECOND violates the declared schema must still fail,
// on both the per-partition and the global execution path.
func TestTableUDFValidatesEveryRow(t *testing.T) {
	for _, perPart := range []bool{true, false} {
		name := fmt.Sprintf("bad_second_row_%v", perPart)
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t)
			loadPaperTables(t, e)
			err := e.Registry().RegisterTable(&TableUDF{
				Name:         name,
				PerPartition: perPart,
				OutSchema:    genSchema,
				Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
					if err := emit(row.Row{row.Int(1)}); err != nil {
						return err
					}
					// Second row has the wrong type for column v.
					return emit(row.Row{row.String_("oops")})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, qerr := e.Query(fmt.Sprintf("SELECT v FROM TABLE(%s(users))", name)); qerr == nil {
				t.Errorf("perPartition=%v: schema violation in second emitted row not caught", perPart)
			}
		})
	}
}

// registerGenerator installs a per-partition UDF emitting n rows per
// partition, counting every emit in the given counter (may be nil).
func registerGenerator(t *testing.T, e *Engine, name string, n int, emitted *atomic.Int64) {
	t.Helper()
	err := e.Registry().RegisterTable(&TableUDF{
		Name:         name,
		PerPartition: true,
		OutSchema:    genSchema,
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			for i := 0; i < n; i++ {
				if emitted != nil {
					emitted.Add(1)
				}
				if err := emit(row.Row{row.Int(int64(i))}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline, failing the test after the deadline.
func waitGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked pipeline goroutines: baseline=%d now=%d",
				what, baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEarlyCloseReleasesPipelineGoroutines checks that a consumer stopping
// early — closing the result after one batch, or a LIMIT that never pulls
// the tail — shuts the per-partition UDF goroutines down rather than
// leaving them blocked on a full channel.
func TestEarlyCloseReleasesPipelineGoroutines(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	registerGenerator(t, e, "gen_many", 100*DefaultBatchSize, nil)
	baseline := runtime.NumGoroutine()

	// Abandon a streaming result after a single batch.
	res, err := e.QueryStream("SELECT v FROM TABLE(gen_many(users))")
	if err != nil {
		t.Fatal(err)
	}
	iters, err := res.Batches()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := iters[0].Next(); err != nil || !ok {
		t.Fatalf("first batch: ok=%v err=%v", ok, err)
	}
	closeAllIters(iters)
	waitGoroutines(t, baseline, "early Close")

	// LIMIT terminates the pipeline after a prefix.
	res, err = e.Query("SELECT v FROM TABLE(gen_many(users)) LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("limit rows = %d", res.NumRows())
	}
	waitGoroutines(t, baseline, "LIMIT")

	// An unconsumed streaming result closed outright starts nothing.
	res, err = e.QueryStream("SELECT v FROM TABLE(gen_many(users))")
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	waitGoroutines(t, baseline, "Close without consuming")
}

// TestPipelineHoldsOnlyBatchResidentRows is the tentpole's acceptance
// check: a scan → table-UDF → filter → project pipeline drained in
// parallel (as the stream sender drains it) must keep only O(batch) rows
// in flight per worker, not the whole relation. In-flight is measured as
// rows emitted by the UDFs minus rows the consumer has taken; under the
// old materialize-everything executor the peak would be the full row
// count.
func TestPipelineHoldsOnlyBatchResidentRows(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	const perPartition = 16 * DefaultBatchSize
	var emitted, consumed, peak atomic.Int64
	registerGenerator(t, e, "gen_counted", perPartition, &emitted)

	res, err := e.QueryStream("SELECT v FROM TABLE(gen_counted(users)) WHERE v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	iters, err := res.Batches()
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, len(iters))
	var wg sync.WaitGroup
	for _, it := range iters {
		wg.Add(1)
		go func(it BatchIterator) {
			defer wg.Done()
			defer it.Close()
			for {
				b, ok, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return
				}
				consumed.Add(int64(len(b)))
				inflight := emitted.Load() - consumed.Load()
				for {
					p := peak.Load()
					if inflight <= p || peak.CompareAndSwap(p, inflight) {
						break
					}
				}
			}
		}(it)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(e.NumWorkers()) * perPartition
	if consumed.Load() != total {
		t.Fatalf("consumed %d rows, want %d", consumed.Load(), total)
	}
	// Each worker's pipeline may hold a few batches (one being filled, one
	// in the hand-off channel, one at the consumer); anything near the full
	// relation means a stage materialized.
	bound := int64(e.NumWorkers()) * 4 * DefaultBatchSize
	if p := peak.Load(); p > bound {
		t.Errorf("pipeline held %d rows in flight (bound %d, relation %d): a stage is materializing",
			p, bound, total)
	}
}
