package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// randomTables loads two small random tables into a fresh engine and
// returns the raw rows for oracle computations in plain Go.
func randomTables(t testing.TB, rng *rand.Rand) (*Engine, []row.Row, []row.Row) {
	t.Helper()
	topo := cluster.NewTopology(1 + 1 + rng.Intn(4))
	workers := make([]int, topo.Len()-1)
	for i := range workers {
		workers[i] = i + 1
	}
	e, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: workers})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "c", "d"}
	var left []row.Row
	for i := 0; i < rng.Intn(60); i++ {
		left = append(left, row.Row{
			row.Int(int64(rng.Intn(10))),
			row.Int(int64(rng.Intn(100))),
			row.String_(cats[rng.Intn(len(cats))]),
		})
	}
	var right []row.Row
	for i := 0; i < rng.Intn(30); i++ {
		right = append(right, row.Row{
			row.Int(int64(rng.Intn(10))),
			row.Float(rng.Float64() * 100),
		})
	}
	lschema := row.MustSchema(
		row.Column{Name: "k", Type: row.TypeInt},
		row.Column{Name: "v", Type: row.TypeInt},
		row.Column{Name: "cat", Type: row.TypeString},
	)
	rschema := row.MustSchema(
		row.Column{Name: "k", Type: row.TypeInt},
		row.Column{Name: "w", Type: row.TypeFloat},
	)
	if err := e.LoadTable("l", lschema, left); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("r", rschema, right); err != nil {
		t.Fatal(err)
	}
	return e, left, right
}

// TestPropertyCountMatchesRows: COUNT(*) equals the row count of the same
// filtered SELECT, for random data and a random threshold.
func TestPropertyCountMatchesRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, _, _ := randomTables(t, rng)
		thr := rng.Intn(100)
		all, err := e.Query(fmt.Sprintf("SELECT v FROM l WHERE v < %d", thr))
		if err != nil {
			return false
		}
		cnt, err := e.Query(fmt.Sprintf("SELECT COUNT(*) FROM l WHERE v < %d", thr))
		if err != nil {
			return false
		}
		return cnt.Rows()[0][0].AsInt() == int64(all.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinMatchesNestedLoopOracle: the distributed broadcast hash
// join returns exactly the pairs a nested loop over the raw rows produces.
func TestPropertyJoinMatchesNestedLoopOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, right := randomTables(t, rng)
		res, err := e.Query("SELECT l.v, r.w FROM l, r WHERE l.k = r.k")
		if err != nil {
			return false
		}
		var oracle []string
		for _, lr := range left {
			for _, rr := range right {
				if lr[0].Equal(rr[0]) {
					oracle = append(oracle, fmt.Sprintf("%v|%v", lr[1], rr[1]))
				}
			}
		}
		var got []string
		for _, r := range res.Rows() {
			got = append(got, fmt.Sprintf("%v|%v", r[0], r[1]))
		}
		sort.Strings(oracle)
		sort.Strings(got)
		if len(oracle) != len(got) {
			return false
		}
		for i := range got {
			if got[i] != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistinctIdempotent: DISTINCT of DISTINCT equals DISTINCT, and
// its cardinality matches a map-based oracle.
func TestPropertyDistinctIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, _ := randomTables(t, rng)
		res, err := e.Query("SELECT DISTINCT cat FROM l")
		if err != nil {
			return false
		}
		oracle := map[string]bool{}
		for _, r := range left {
			oracle[r[2].AsString()] = true
		}
		if res.NumRows() != len(oracle) {
			return false
		}
		if err := e.RegisterResult("d1", res); err != nil {
			return false
		}
		res2, err := e.Query("SELECT DISTINCT cat FROM d1")
		if err != nil {
			return false
		}
		return res2.NumRows() == res.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupByMatchesOracle: GROUP BY sums equal a plain-Go
// aggregation of the raw rows.
func TestPropertyGroupByMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, _ := randomTables(t, rng)
		res, err := e.Query("SELECT cat, SUM(v), COUNT(*) FROM l GROUP BY cat")
		if err != nil {
			return false
		}
		sums := map[string]int64{}
		counts := map[string]int64{}
		for _, r := range left {
			sums[r[2].AsString()] += r[1].AsInt()
			counts[r[2].AsString()]++
		}
		if res.NumRows() != len(sums) {
			return false
		}
		for _, r := range res.Rows() {
			cat := r[0].AsString()
			if r[1].AsInt() != sums[cat] || r[2].AsInt() != counts[cat] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrderBySorted: ORDER BY output is sorted and LIMIT truncates.
func TestPropertyOrderBySorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, _ := randomTables(t, rng)
		limit := rng.Intn(20)
		res, err := e.Query(fmt.Sprintf("SELECT v FROM l ORDER BY v DESC LIMIT %d", limit))
		if err != nil {
			return false
		}
		rows := res.Rows()
		want := limit
		if len(left) < want {
			want = len(left)
		}
		if len(rows) != want {
			return false
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1][0].AsInt() < rows[i][0].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPartitionCountInvariance: the same query over the same rows
// returns identical multisets regardless of the worker count the engine
// was configured with.
func TestPropertyPartitionCountInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, left, right := randomTables(t, rng)
		fingerprint := func(workers int) (string, bool) {
			topo := cluster.NewTopology(workers + 1)
			ids := make([]int, workers)
			for i := range ids {
				ids[i] = i + 1
			}
			e, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: ids})
			if err != nil {
				return "", false
			}
			lschema := row.MustSchema(
				row.Column{Name: "k", Type: row.TypeInt},
				row.Column{Name: "v", Type: row.TypeInt},
				row.Column{Name: "cat", Type: row.TypeString},
			)
			rschema := row.MustSchema(
				row.Column{Name: "k", Type: row.TypeInt},
				row.Column{Name: "w", Type: row.TypeFloat},
			)
			if err := e.LoadTable("l", lschema, left); err != nil {
				return "", false
			}
			if err := e.LoadTable("r", rschema, right); err != nil {
				return "", false
			}
			res, err := e.Query("SELECT l.cat, r.w FROM l, r WHERE l.k = r.k AND l.v > 20")
			if err != nil {
				return "", false
			}
			var keys []string
			for _, r := range res.Rows() {
				keys = append(keys, r.String())
			}
			sort.Strings(keys)
			return fmt.Sprint(keys), true
		}
		a, ok1 := fingerprint(1)
		b, ok2 := fingerprint(4)
		return ok1 && ok2 && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
