package sqlengine

import (
	"math"
	"testing"

	"sqlml/internal/row"
)

func one(t *testing.T, e *Engine, sql string) row.Value {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	rows := res.Rows()
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("%s: expected a single value, got %v", sql, rows)
	}
	return rows[0][0]
}

func TestCaseExpression(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)

	// The classic label-construction use: CASE over a categorical column.
	res, err := e.Query(`
		SELECT userid, CASE WHEN age < 30 THEN 'young'
		                    WHEN age < 55 THEN 'middle'
		                    ELSE 'senior' END AS bracket
		FROM users ORDER BY userid`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	want := []string{"senior", "middle", "middle", "young", "senior"}
	for i, w := range want {
		if got := rows[i][1].AsString(); got != w {
			t.Errorf("user %d: bracket = %q, want %q", i+1, got, w)
		}
	}
	if res.Schema.Cols[1].Type != row.TypeString {
		t.Errorf("CASE type = %s", res.Schema.Cols[1].Type)
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT CASE WHEN age > 100 THEN 1 END FROM users LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows()[0][0].Null {
		t.Error("CASE without matching arm and no ELSE should be NULL")
	}
}

func TestCaseNumericUnification(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	v := one(t, e, "SELECT CASE WHEN 1 = 1 THEN 2 ELSE 2.5 END FROM users LIMIT 1")
	if v.Kind != row.TypeFloat || v.AsFloat() != 2.0 {
		t.Errorf("unified CASE value = %v (%s)", v, v.Kind)
	}
}

func TestCaseInWhereAndAggregates(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	// CASE inside an aggregate argument: count the young users.
	v := one(t, e, "SELECT SUM(CASE WHEN age < 40 THEN 1 ELSE 0 END) FROM users")
	if v.AsInt() != 2 {
		t.Errorf("young users = %v, want 2", v)
	}
}

func TestCaseErrors(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	for _, sql := range []string{
		"SELECT CASE END FROM users",                              // no arms
		"SELECT CASE WHEN age THEN 1 END FROM users",              // non-boolean condition
		"SELECT CASE WHEN age > 1 THEN 1 ELSE 'x' END FROM users", // mixed arm types
		"SELECT CASE WHEN age > 1 THEN 1 ELSE 2 FROM users",       // missing END
	} {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestBuiltinFunctions(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	cases := []struct {
		expr string
		want row.Value
	}{
		{"COALESCE(NULL, 'x')", row.String_("x")},
		{"ROUND(2.6)", row.Float(3)},
		{"FLOOR(2.6)", row.Float(2)},
		{"CEIL(2.1)", row.Float(3)},
		{"SUBSTR('abcdef', 2, 3)", row.String_("bcd")},
		{"SUBSTR('abc', 10, 2)", row.String_("")},
		{"CONCAT('a', 'b', 'c')", row.String_("abc")},
		{"TRIM('  x  ')", row.String_("x")},
		{"LEAST(3, 1.5)", row.Float(1.5)},
		{"GREATEST(3, 1.5)", row.Float(3)},
		{"SQRT(9)", row.Float(3)},
		{"UPPER('usa')", row.String_("USA")},
		{"LENGTH('hello')", row.Int(5)},
		{"ABS(-4)", row.Int(4)},
	}
	for _, c := range cases {
		got := one(t, e, "SELECT "+c.expr+" FROM users LIMIT 1")
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	if got := one(t, e, "SELECT LN(1) FROM users LIMIT 1"); math.Abs(got.AsFloat()) > 1e-12 {
		t.Errorf("LN(1) = %v", got)
	}
}

func TestBuiltinErrors(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	for _, sql := range []string{
		"SELECT COALESCE() FROM users",
		"SELECT COALESCE(1, 'x') FROM users",
		"SELECT SUBSTR('a', 'b', 1) FROM users",
		"SELECT SQRT(-1) FROM users",
		"SELECT LN(0) FROM users",
		"SELECT CONCAT('a') FROM users",
	} {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestBuiltinNullPropagation(t *testing.T) {
	e := newTestEngine(t)
	if err := e.LoadTable("n", row.MustSchema(row.Column{Name: "s", Type: row.TypeString}), []row.Row{{row.NullOf(row.TypeString)}}); err != nil {
		t.Fatal(err)
	}
	for _, expr := range []string{"UPPER(s)", "TRIM(s)", "SUBSTR(s, 1, 2)", "CONCAT(s, 'x')"} {
		got := one(t, e, "SELECT "+expr+" FROM n")
		if !got.Null {
			t.Errorf("%s on NULL = %v, want NULL", expr, got)
		}
	}
}
