package sqlengine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"sqlml/internal/row"
)

// This file holds the morsel-parallelism oracle: every query runs on a
// Parallelism: 1 engine (one pool worker executes every task in claim
// order — the sequential reference) and on a Parallelism: N engine over
// identical data, and the outputs must be byte-identical as ordered
// sequences — not multisets. Partition contents, group-merge order,
// DISTINCT survivors, hash-join bucket order, and ORDER BY ties must all
// be deterministic functions of the input, never of the schedule.

// parallelOracleQueries extends the columnar corpus with the shapes whose
// determinism depends on partial/merge discipline: float SUM/AVG (addition
// order is observable), DISTINCT (first-instance-per-partition), HAVING,
// and ORDER BY ties on duplicate keys.
var parallelOracleQueries = []string{
	"SELECT cat, SUM(f), AVG(f) FROM t GROUP BY cat",
	"SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 1",
	"SELECT SUM(f), MIN(v), MAX(f) FROM t",
	"SELECT DISTINCT cat, k FROM t",
	"SELECT DISTINCT v FROM t ORDER BY v",
	"SELECT t.v, u.w FROM t, u WHERE t.k = u.k",
	"SELECT t.cat, u.w FROM t, u WHERE t.k = u.k AND t.v > 0 ORDER BY u.w DESC",
	"SELECT cat, v FROM t WHERE v IS NOT NULL ORDER BY cat",
	"SELECT v FROM t ORDER BY k LIMIT 13",
	"SELECT v + 1, f * 2.0 FROM t WHERE f > v",
	"SELECT v FROM t LIMIT 7",
}

// TestPropertyParallelismOracle runs the corpus (the columnar-oracle
// queries plus the parallelism-sensitive ones above) over random
// NULL-heavy tables at Parallelism 1 vs N and requires exactly equal row
// sequences on both the columnar and the row path.
func TestPropertyParallelismOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(4)
		par := 2 + rng.Intn(7) // 2..8
		nl, nr := rng.Intn(80), rng.Intn(30)
		disableCol := rng.Intn(2) == 0
		data := rng.Int63()
		seqEng := nullableTablesCfg(t, rand.New(rand.NewSource(data)), workers, nl, nr,
			Config{DisableColumnar: disableCol, Parallelism: 1})
		parEng := nullableTablesCfg(t, rand.New(rand.NewSource(data)), workers, nl, nr,
			Config{DisableColumnar: disableCol, Parallelism: par})
		var queries []string
		for _, q := range columnarOracleQueries {
			queries = append(queries, q.sql)
		}
		queries = append(queries, parallelOracleQueries...)
		for _, sql := range queries {
			want, werr := runOracle(seqEng, sql)
			got, gerr := runOracle(parEng, sql)
			if (werr != nil) != (gerr != nil) {
				t.Logf("seed %d (P=%d, cols=%v): %s: sequential err=%v, parallel err=%v",
					seed, par, !disableCol, sql, werr, gerr)
				return false
			}
			if werr != nil {
				continue
			}
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Logf("seed %d (P=%d, cols=%v): %s:\n P=1: %v\n P=%d: %v",
					seed, par, !disableCol, sql, want, par, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestParallelismValidation pins the Config contract: negative rejected,
// zero defaults to GOMAXPROCS, explicit values stick.
func TestParallelismValidation(t *testing.T) {
	e := newTestEngine(t)
	if got, want := e.Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Parallelism = %d, want GOMAXPROCS %d", got, want)
	}
	rng := rand.New(rand.NewSource(1))
	if e := nullableTablesCfg(t, rng, 2, 0, 0, Config{Parallelism: 3}); e.Parallelism() != 3 {
		t.Errorf("Parallelism = %d, want 3", e.Parallelism())
	}
	topo := e.Topology()
	if _, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1}, Parallelism: -1}); err == nil {
		t.Error("negative Parallelism accepted")
	}
}

// TestCancelMidQueryTearsDown closes a result while a background
// Materialize is mid-drain over endless per-partition UDF pipelines: the
// drain must stop at a batch boundary with errQueryCancelled, every UDF
// goroutine must exit, and the goroutine count must return to baseline —
// for the parallel pool and for the Parallelism: 1 oracle alike.
func TestCancelMidQueryTearsDown(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism_%d", par), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			e := nullableTablesCfg(t, rng, 3, 40, 10, Config{Parallelism: par})
			var emitted atomic.Int64
			registerGenerator(t, e, "gen_endless", 1<<30, &emitted)
			baseline := runtime.NumGoroutine()

			res, err := e.QueryStream("SELECT v FROM TABLE(gen_endless(t)) WHERE v >= 0")
			if err != nil {
				t.Fatal(err)
			}
			errc := make(chan error, 1)
			go func() { errc <- res.Materialize() }()
			// Let the drain make real progress before pulling the plug.
			for emitted.Load() < 10*int64(DefaultBatchSize) {
				runtime.Gosched()
			}
			res.Close()
			if err := <-errc; !errors.Is(err, errQueryCancelled) {
				t.Errorf("Materialize after Close = %v, want errQueryCancelled", err)
			}
			waitGoroutines(t, baseline, "cancelled materialize")
		})
	}
}

// TestCancelledColScanReturnsPooledBatch pins the pooled-ColBatch side of
// cancellation teardown: closing a columnar scan mid-stream (what
// closeAllIters does for every partition when the pool cancels) must
// return its pooled batch rather than strand it.
func TestCancelledColScanReturnsPooledBatch(t *testing.T) {
	types := []row.Type{row.TypeInt}
	s := &colScanIter{in: NewSliceBatches(intRows(1, 2, 3, 4)), types: types}
	if _, ok, err := s.NextCol(); err != nil || !ok {
		t.Fatalf("NextCol: ok=%v err=%v", ok, err)
	}
	if s.buf == nil {
		t.Fatal("scan should hold a pooled batch mid-stream")
	}
	s.Close()
	if s.buf != nil {
		t.Error("Close left the pooled ColBatch stranded instead of returning it")
	}
}

// TestPartitionErrorCancelsSiblings checks first-error teardown through
// the pool: one partition's UDF fails, the query returns that error (not
// a cancellation), sibling pipelines stop, and nothing leaks.
func TestPartitionErrorCancelsSiblings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := nullableTablesCfg(t, rng, 4, 40, 10, Config{Parallelism: 4})
	boom := errors.New("boom")
	err := e.Registry().RegisterTable(&TableUDF{
		Name:         "gen_partial_fail",
		PerPartition: true,
		OutSchema:    genSchema,
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			if ctx.Partition == 2 {
				return boom
			}
			for i := 0; ; i++ {
				if err := emit(row.Row{row.Int(int64(i))}); err != nil {
					return err
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	_, qerr := e.Query("SELECT v FROM TABLE(gen_partial_fail(t))")
	if qerr == nil || !errors.Is(qerr, boom) && !containsBoom(qerr) {
		t.Fatalf("query error = %v, want the partition's own failure", qerr)
	}
	if errors.Is(qerr, errQueryCancelled) {
		t.Fatalf("cancellation masked the real error: %v", qerr)
	}
	waitGoroutines(t, baseline, "failed partition")
}

// containsBoom tolerates the UDF error wrapper (fmt.Errorf with %w keeps
// the chain, but the UDF layer may wrap with plain %v formatting).
func containsBoom(err error) bool {
	return err != nil && (errors.Is(err, errPipeClosed) == false) &&
		(len(err.Error()) > 0 && (stringsContains(err.Error(), "boom")))
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestQueryPoolForEach exercises the pool scheduler directly: every task
// runs exactly once, worker ids stay dense and within the pool size, a
// task error cancels the remaining queue, and a pre-cancelled pool runs
// nothing.
func TestQueryPoolForEach(t *testing.T) {
	p := newQueryPool(3)
	if p.n != 3 {
		t.Fatalf("pool size = %d, want 3", p.n)
	}
	const n = 100
	var ran [n]atomic.Int32
	var maxWorker atomic.Int32
	if err := p.forEach(n, func(task, worker int) error {
		ran[task].Add(1)
		if int32(worker) > maxWorker.Load() {
			maxWorker.Store(int32(worker))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, ran[i].Load())
		}
	}
	if maxWorker.Load() >= 3 {
		t.Errorf("worker id %d out of range for pool of 3", maxWorker.Load())
	}

	// A failing task cancels the rest of the queue; the real error wins.
	p = newQueryPool(2)
	boom := errors.New("task boom")
	var after atomic.Int32
	err := p.forEach(n, func(task, worker int) error {
		if task == 5 {
			return boom
		}
		if p.cancelled() {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("forEach error = %v, want task error", err)
	}
	if !p.cancelled() {
		t.Error("task error did not cancel the pool")
	}

	// Pre-cancelled pools run nothing.
	p = newQueryPool(2)
	p.Cancel()
	var touched atomic.Int32
	err = p.forEach(4, func(task, worker int) error { touched.Add(1); return nil })
	if !errors.Is(err, errQueryCancelled) {
		t.Fatalf("cancelled forEach error = %v, want errQueryCancelled", err)
	}
	if touched.Load() != 0 {
		t.Errorf("cancelled pool still ran %d tasks", touched.Load())
	}
}

// TestMorselize pins the morsel grid: partition-major order, batch-sized
// chunks, per-row global sequence numbers.
func TestMorselize(t *testing.T) {
	parts := [][]row.Row{
		intRows(make([]int64, DefaultBatchSize+2)...),
		nil,
		intRows(1, 2, 3),
	}
	ms := morselize(parts)
	if len(ms) != 3 {
		t.Fatalf("%d morsels, want 3", len(ms))
	}
	check := func(i, part, nrows int, seq int64) {
		m := ms[i]
		if m.part != part || len(m.rows) != nrows || m.seq != seq || m.morselN != i {
			t.Errorf("morsel %d = part %d/%d rows/seq %d/n %d, want part %d/%d rows/seq %d/n %d",
				i, m.part, len(m.rows), m.seq, m.morselN, part, nrows, seq, i)
		}
	}
	check(0, 0, DefaultBatchSize, 0)
	check(1, 0, 2, int64(DefaultBatchSize))
	check(2, 2, 3, int64(DefaultBatchSize)+2)
}
