package sqlengine

import (
	"fmt"
	"sort"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/row"
)

// newTestEngine builds a 5-node engine: node 0 is the head, 1-4 are
// workers — the paper's testbed layout.
func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	topo := cluster.NewTopology(5)
	e, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func usersSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "country", Type: row.TypeString},
	)
}

func cartsSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "cartid", Type: row.TypeInt},
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
}

func loadPaperTables(t testing.TB, e *Engine) {
	t.Helper()
	users := []row.Row{
		{row.Int(1), row.Int(57), row.String_("F"), row.String_("USA")},
		{row.Int(2), row.Int(40), row.String_("M"), row.String_("USA")},
		{row.Int(3), row.Int(35), row.String_("F"), row.String_("USA")},
		{row.Int(4), row.Int(22), row.String_("M"), row.String_("Germany")},
		{row.Int(5), row.Int(61), row.String_("F"), row.String_("Greece")},
	}
	carts := []row.Row{
		{row.Int(100), row.Int(1), row.Float(314.62), row.String_("Yes")},
		{row.Int(101), row.Int(2), row.Float(former40_40), row.String_("Yes")},
		{row.Int(102), row.Int(3), row.Float(151.17), row.String_("No")},
		{row.Int(103), row.Int(4), row.Float(99.99), row.String_("No")},
		{row.Int(104), row.Int(1), row.Float(12.50), row.String_("No")},
	}
	if err := e.LoadTable("users", usersSchema(), users); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("carts", cartsSchema(), carts); err != nil {
		t.Fatal(err)
	}
}

const former40_40 = 40.40

func sortedRows(res *Result) []row.Row {
	rows := res.Rows()
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			c := rows[i][k].Compare(rows[j][k])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return rows
}

func TestPaperExampleQuery(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query(`
		SELECT U.age, U.gender, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 (USA carts only)", res.NumRows())
	}
	want := "age BIGINT, gender VARCHAR, amount DOUBLE, abandoned VARCHAR"
	if res.Schema.String() != want {
		t.Errorf("schema = %s", res.Schema)
	}
	rows := sortedRows(res)
	if rows[0][0].AsInt() != 35 || rows[0][1].AsString() != "F" {
		t.Errorf("first row = %v", rows[0])
	}
}

func TestSelectStarAndQualifiedStar(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT * FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 4 || res.NumRows() != 5 {
		t.Fatalf("star: %s, %d rows", res.Schema, res.NumRows())
	}
	res, err = e.Query("SELECT u.*, c.amount FROM users u, carts c WHERE u.userid = c.userid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 5 {
		t.Errorf("qualified star schema: %s", res.Schema)
	}
	if res.NumRows() != 5 {
		t.Errorf("join rows = %d", res.NumRows())
	}
}

func TestFilterPredicates(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	cases := []struct {
		where string
		want  int
	}{
		{"age > 40", 2},
		{"age >= 40", 3},
		{"age BETWEEN 30 AND 50", 2},
		{"country = 'USA' AND gender = 'F'", 2},
		{"country = 'USA' OR country = 'Greece'", 4},
		{"country IN ('Germany', 'Greece')", 2},
		{"country NOT IN ('USA')", 2},
		{"NOT country = 'USA'", 2},
		{"gender IS NULL", 0},
		{"gender IS NOT NULL", 5},
		{"age + 10 > 50", 2},
		{"age * 2 = 80", 1},
		{"UPPER(country) = 'USA'", 3},
	}
	for _, c := range cases {
		res, err := e.Query("SELECT userid FROM users WHERE " + c.where)
		if err != nil {
			t.Fatalf("%s: %v", c.where, err)
		}
		if res.NumRows() != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, res.NumRows(), c.want)
		}
	}
}

func TestJoinThreeWay(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	// Recode-map style self-join: the paper's phase-2 recode query shape.
	if err := e.LoadTable("m", row.MustSchema(
		row.Column{Name: "colname", Type: row.TypeString},
		row.Column{Name: "colval", Type: row.TypeString},
		row.Column{Name: "recodeval", Type: row.TypeInt},
	), []row.Row{
		{row.String_("gender"), row.String_("F"), row.Int(1)},
		{row.String_("gender"), row.String_("M"), row.Int(2)},
		{row.String_("abandoned"), row.String_("Yes"), row.Int(1)},
		{row.String_("abandoned"), row.String_("No"), row.Int(2)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`
		SELECT U.age, Mg.recodeVal AS gender, C.amount, Ma.recodeVal AS abandoned
		FROM carts C, users U, m AS Mg, m AS Ma
		WHERE C.userid = U.userid
		  AND Mg.colName = 'gender' AND U.gender = Mg.colVal
		  AND Ma.colName = 'abandoned' AND C.abandoned = Ma.colVal`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", res.NumRows())
	}
	for _, r := range res.Rows() {
		g := r[1].AsInt()
		if g != 1 && g != 2 {
			t.Errorf("recoded gender = %d", g)
		}
	}
	if res.Schema.Cols[1].Name != "gender" || res.Schema.Cols[1].Type != row.TypeInt {
		t.Errorf("recoded schema: %s", res.Schema)
	}
}

func TestJoinOnClause(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT c.cartid FROM carts c JOIN users u ON c.userid = u.userid WHERE u.age > 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2 (user 1 has two carts)", res.NumRows())
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	e := newTestEngine(t)
	s := row.MustSchema(row.Column{Name: "k", Type: row.TypeInt}, row.Column{Name: "v", Type: row.TypeString})
	if err := e.LoadTable("l", s, []row.Row{
		{row.Int(1), row.String_("a")},
		{row.NullOf(row.TypeInt), row.String_("b")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("r", s, []row.Row{
		{row.Int(1), row.String_("x")},
		{row.NullOf(row.TypeInt), row.String_("y")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT l.v, r.v FROM l, r WHERE l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("null join keys matched: %d rows", res.NumRows())
	}
}

func TestCrossNumericJoinKey(t *testing.T) {
	e := newTestEngine(t)
	if err := e.LoadTable("li", row.MustSchema(row.Column{Name: "k", Type: row.TypeInt}), []row.Row{{row.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("rf", row.MustSchema(row.Column{Name: "k", Type: row.TypeFloat}), []row.Row{{row.Float(2.0)}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT li.k FROM li, rf WHERE li.k = rf.k")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("BIGINT/DOUBLE join failed: %d rows", res.NumRows())
	}
}

func TestCartesianJoin(t *testing.T) {
	e := newTestEngine(t)
	s := row.MustSchema(row.Column{Name: "v", Type: row.TypeInt})
	if err := e.LoadTable("a", s, []row.Row{{row.Int(1)}, {row.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	s2 := row.MustSchema(row.Column{Name: "w", Type: row.TypeInt})
	if err := e.LoadTable("b", s2, []row.Row{{row.Int(10)}, {row.Int(20)}, {row.Int(30)}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT v, w FROM a, b")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Errorf("cartesian rows = %d, want 6", res.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT DISTINCT country FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("distinct countries = %d, want 3", res.NumRows())
	}
	res, err = e.Query("SELECT DISTINCT gender, country FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("distinct pairs = %d, want 4", res.NumRows())
	}
}

func TestAggregates(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("global aggregate rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].AsInt() != 5 || r[1].AsInt() != 215 || r[3].AsInt() != 22 || r[4].AsInt() != 61 {
		t.Errorf("aggregates = %v", r)
	}
	if av := r[2].AsFloat(); av != 43.0 {
		t.Errorf("avg = %v", av)
	}
}

func TestGroupBy(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query(`SELECT country, COUNT(*) AS n, AVG(age) AS avg_age
		FROM users GROUP BY country ORDER BY country`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][0].AsString() != "Germany" || rows[0][1].AsInt() != 1 {
		t.Errorf("group 0 = %v", rows[0])
	}
	if rows[2][0].AsString() != "USA" || rows[2][1].AsInt() != 3 {
		t.Errorf("group 2 = %v", rows[2])
	}
}

func TestGroupByQualifiedColumn(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query(`SELECT u.gender, COUNT(*) FROM users u GROUP BY u.gender`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("groups = %d", res.NumRows())
	}
}

func TestAggregateErrors(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	for _, sql := range []string{
		"SELECT age FROM users GROUP BY country",      // not in group by
		"SELECT SUM(gender) FROM users",               // non-numeric sum
		"SELECT MIN(*) FROM users",                    // star on non-count
		"SELECT * FROM users GROUP BY country",        // star with group by
		"SELECT COUNT(age, gender) FROM users",        // arity
		"SELECT userid FROM users WHERE SUM(age) > 1", // aggregate in WHERE
	} {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("%s should fail", sql)
		}
	}
}

func TestCountNullSkipping(t *testing.T) {
	e := newTestEngine(t)
	s := row.MustSchema(row.Column{Name: "v", Type: row.TypeInt})
	if err := e.LoadTable("nt", s, []row.Row{{row.Int(1)}, {row.NullOf(row.TypeInt)}, {row.Int(3)}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT COUNT(*), COUNT(v), SUM(v) FROM nt")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows()[0]
	if r[0].AsInt() != 3 || r[1].AsInt() != 2 || r[2].AsInt() != 4 {
		t.Errorf("null handling: %v", r)
	}
}

func TestEmptyAggregate(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT COUNT(*), SUM(age), MIN(age) FROM users WHERE age > 1000")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows()[0]
	if r[0].AsInt() != 0 {
		t.Errorf("count over empty = %v", r[0])
	}
	if !r[1].Null || !r[2].Null {
		t.Errorf("sum/min over empty should be NULL: %v", r)
	}
}

func TestOrderByLimit(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT userid, age FROM users ORDER BY age DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][1].AsInt() != 61 || rows[1][1].AsInt() != 57 {
		t.Errorf("order/limit: %v", rows)
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT userid FROM users LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("limit rows = %d", res.NumRows())
	}
	res, err = e.Query("SELECT userid FROM users LIMIT 0")
	if err != nil || res.NumRows() != 0 {
		t.Errorf("limit 0: %d rows, %v", res.NumRows(), err)
	}
}

func TestCreateInsertDrop(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Run("CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', NULL), (3, NULL, 2)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// INSERT coerces BIGINT literal 2 into DOUBLE column c.
	found := false
	for _, r := range res.Rows() {
		if r[0].AsInt() == 3 && !r[2].Null && r[2].AsFloat() == 2.0 {
			found = true
		}
	}
	if !found {
		t.Error("coerced insert row missing")
	}
	if _, err := e.Run("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT * FROM t"); err == nil {
		t.Error("query after drop should fail")
	}
}

func TestCreateTableAsSelect(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	if _, err := e.Run("CREATE TABLE usa AS SELECT userid, age FROM users WHERE country = 'USA'"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT COUNT(*) FROM usa")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].AsInt() != 3 {
		t.Errorf("CTAS count = %v", res.Rows()[0][0])
	}
}

func TestTableUDFPerPartition(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	// A parallel table UDF that tags each row with its partition id.
	err := e.Registry().RegisterTable(&TableUDF{
		Name:         "tag_partition",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			return in.Concat(row.MustSchema(row.Column{Name: "part", Type: row.TypeInt}))
		},
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				out := append(r.Clone(), row.Int(int64(ctx.Partition)))
				if err := emit(out); err != nil {
					return err
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT userid, part FROM TABLE(tag_partition(users))")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	partsSeen := map[int64]bool{}
	for _, r := range res.Rows() {
		partsSeen[r[1].AsInt()] = true
	}
	if len(partsSeen) < 2 {
		t.Errorf("UDF did not run per partition: partitions seen = %v", partsSeen)
	}
}

func TestTableUDFGlobal(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	// A global UDF numbering rows consecutively (like recode-id assignment).
	err := e.Registry().RegisterTable(&TableUDF{
		Name: "number_rows",
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			return in.Concat(row.MustSchema(row.Column{Name: "rn", Type: row.TypeInt}))
		},
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			if ctx.NumPartitions != 1 {
				return fmt.Errorf("global UDF saw %d partitions", ctx.NumPartitions)
			}
			n := int64(0)
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				n++
				if err := emit(append(r.Clone(), row.Int(n))); err != nil {
					return err
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT rn FROM TABLE(number_rows(users)) ORDER BY rn")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 5 || rows[0][0].AsInt() != 1 || rows[4][0].AsInt() != 5 {
		t.Errorf("global numbering: %v", rows)
	}
}

func TestUDFWithLiteralArgs(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	err := e.Registry().RegisterTable(&TableUDF{
		Name:         "filter_gt",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) != 2 {
				return row.Schema{}, fmt.Errorf("need column name and threshold")
			}
			return in, nil
		},
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			// Column index is resolved per call; cheap for the test.
			col := args[0].AsString()
			thr := args[1].AsInt()
			idx := usersSchema().ColIndex(col)
			for {
				r, ok, err := in.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if !r[idx].Null && r[idx].AsInt() > thr {
					if err := emit(r); err != nil {
						return err
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT userid FROM TABLE(filter_gt(users, 'age', 40))")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("filtered rows = %d, want 2", res.NumRows())
	}
}

func TestExternalTableScan(t *testing.T) {
	topo := cluster.NewTopology(5)
	cost := &cluster.CostModel{DiskReadBps: 1e6, DiskWriteBps: 1e6, NetBps: 1e6, TimeScale: 0}
	fsys := dfs.New(topo, dfs.Config{BlockSize: 64, Replication: 3, Cost: cost})
	e, err := New(topo, cost, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []row.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, row.Row{row.Int(int64(i)), row.Int(int64(20 + i%50)), row.String_([]string{"F", "M"}[i%2]), row.String_("USA")})
	}
	var buf []byte
	w, err := fsys.Create("/tables/users.txt", topo.Node(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		buf = row.AppendLine(buf[:0], r)
		if _, err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterExternalTable("eusers", fsys, "/tables/users.txt", usersSchema()); err != nil {
		t.Fatal(err)
	}
	cost.ResetStats()
	res, err := e.Query("SELECT COUNT(*) FROM eusers")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].AsInt() != 50 {
		t.Fatalf("count = %v", res.Rows()[0][0])
	}
	if cost.Stats().DiskReadBytes == 0 {
		t.Error("external scan did not charge DFS reads")
	}
	// Second scan pays again (no hidden caching).
	before := cost.Stats().DiskReadBytes
	if _, err := e.Query("SELECT COUNT(*) FROM eusers"); err != nil {
		t.Fatal(err)
	}
	if cost.Stats().DiskReadBytes <= before {
		t.Error("second external scan should charge DFS reads again")
	}
}

func TestExportToDFSAndScanDirectory(t *testing.T) {
	topo := cluster.NewTopology(5)
	fsys := dfs.New(topo, dfs.Config{BlockSize: 128})
	e, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	loadPaperTables(t, e)
	res, err := e.Query("SELECT userid, age FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ExportToDFS(res, fsys, "/out/users"); err != nil {
		t.Fatal(err)
	}
	files := fsys.List("/out/users")
	if len(files) != 4 {
		t.Fatalf("part files = %v", files)
	}
	if err := e.RegisterExternalTable("back", fsys, "/out/users", res.Schema); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Query("SELECT COUNT(*) FROM back")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows()[0][0].AsInt() != 5 {
		t.Errorf("directory scan count = %v", res2.Rows()[0][0])
	}
}

func TestQueryErrors(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	for _, sql := range []string{
		"SELECT nosuch FROM users",
		"SELECT userid FROM nosuch",
		"SELECT users.userid FROM users u",                          // alias replaces the table name
		"SELECT userid FROM users, carts",                           // ambiguous userid
		"SELECT u.userid FROM users u, users u2 WHERE u.gender = 1", // type mismatch... actually string vs int
		"SELECT userid FROM users WHERE country + 1 = 2",            // string arithmetic
		"SELECT userid FROM users WHERE age = 'x' AND nosuchfn(age) = 1",
		"SELECT userid FROM TABLE(nosuchudf(users))",
		"SELECT userid FROM users u, carts u", // duplicate binding
	} {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	if _, err := e.Run("INSERT INTO users VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := e.Run("INSERT INTO users VALUES ('x', 1, 'F', 'USA')"); err == nil {
		t.Error("uncoercible value accepted")
	}
	if _, err := e.Run("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Error("insert into missing table accepted")
	}
}

func TestDivisionByZero(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	if _, err := e.Query("SELECT age / 0 FROM users"); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := e.Query("SELECT amount / 0 FROM carts"); err == nil {
		t.Error("float division by zero should error")
	}
}

func TestCollectChargesNetwork(t *testing.T) {
	topo := cluster.NewTopology(5)
	cost := &cluster.CostModel{NetBps: 1e6, TimeScale: 0}
	e, err := New(topo, cost, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	loadPaperTables(t, e)
	res, err := e.Query("SELECT * FROM users")
	if err != nil {
		t.Fatal(err)
	}
	cost.ResetStats()
	rows, err := e.Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("collected %d rows", len(rows))
	}
	if cost.Stats().NetBytes == 0 {
		t.Error("Collect should charge network transfer to the head node")
	}
}

func TestScalarUDFRegistration(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	err := e.Registry().RegisterScalar(&ScalarUDF{
		Name: "double_it",
		ReturnType: func(args []row.Type) (row.Type, error) {
			return row.TypeInt, nil
		},
		Fn: func(args []row.Value) (row.Value, error) {
			if args[0].Null {
				return row.NullOf(row.TypeInt), nil
			}
			return row.Int(args[0].AsInt() * 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT double_it(age) AS d FROM users WHERE userid = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].AsInt() != 114 {
		t.Errorf("scalar UDF: %v", res.Rows()[0])
	}
	// Duplicate registration rejected.
	if e.Registry().RegisterScalar(&ScalarUDF{Name: "double_it", ReturnType: func([]row.Type) (row.Type, error) { return row.TypeInt, nil }, Fn: func([]row.Value) (row.Value, error) { return row.Int(0), nil }}) == nil {
		t.Error("duplicate scalar UDF accepted")
	}
}

func TestDuplicateOutputNamesDeduplicated(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT u.userid, c.userid FROM users u, carts c WHERE u.userid = c.userid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Cols[0].Name == res.Schema.Cols[1].Name {
		t.Errorf("duplicate output names: %s", res.Schema)
	}
}

func TestResultRegisterAndRequery(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query("SELECT userid, age FROM users WHERE country = 'USA'")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterResult("usa2", res); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Query("SELECT MAX(age) FROM usa2")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows()[0][0].AsInt() != 57 {
		t.Errorf("requery: %v", res2.Rows()[0])
	}
}

func TestShowTablesAndDescribe(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Run("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int64{}
	for _, r := range res.Rows() {
		names[r[0].AsString()] = r[1].AsInt()
	}
	if names["users"] != 5 || names["carts"] != 5 {
		t.Errorf("SHOW TABLES = %v", names)
	}
	res, err = e.Run("DESCRIBE users")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("DESCRIBE rows = %d", res.NumRows())
	}
	if got := res.Rows()[2]; got[0].AsString() != "gender" || got[1].AsString() != "VARCHAR" {
		t.Errorf("DESCRIBE row = %v", got)
	}
	if _, err := e.Run("DESCRIBE nosuch"); err == nil {
		t.Error("DESCRIBE of missing table accepted")
	}
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	res, err := e.Query(`SELECT country, COUNT(*) AS n FROM users
		GROUP BY country HAVING n >= 2 ORDER BY country`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0][0].AsString() != "USA" || rows[0][1].AsInt() != 3 {
		t.Errorf("HAVING result = %v", rows)
	}
	// HAVING can also reference the default aggregate output name.
	res, err = e.Query(`SELECT country, COUNT(*) FROM users GROUP BY country HAVING count = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("HAVING count=1 rows = %d, want 2", res.NumRows())
	}
	if _, err := e.Query("SELECT userid FROM users HAVING userid > 1"); err == nil {
		t.Error("HAVING without aggregation accepted")
	}
}
