package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// This file holds the columnar pipeline to the row-at-a-time oracle: every
// query runs twice over identical data and topology — once with
// DisableColumnar (the reference interpreter) and once on the vectorized
// path — and the results must agree exactly. The random tables are heavy
// on NULLs, and the query list is chosen to drive the kernels through
// their edge cases: three-valued comparisons, short-circuit AND/OR at
// narrowed positions, division guarded by the left conjunct, CASE arms,
// IN lists with NULL needles, and filters that leave batches empty or
// fully selected (the selection-vector extremes).

// nullableTables loads one fact table (with ~25% NULLs in every column)
// and one small join table into an engine built with the given columnar
// setting, returning the engine.
func nullableTables(t testing.TB, rng *rand.Rand, workers, nl, nr int, disableColumnar bool) *Engine {
	t.Helper()
	return nullableTablesCfg(t, rng, workers, nl, nr, Config{DisableColumnar: disableColumnar})
}

// nullableTablesCfg is nullableTables with full Config control (the
// parallelism property tests vary Parallelism alongside the columnar
// switch). cfg's topology fields are filled in here.
func nullableTablesCfg(t testing.TB, rng *rand.Rand, workers, nl, nr int, cfg Config) *Engine {
	t.Helper()
	topo := cluster.NewTopology(workers + 1)
	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i + 1
	}
	cfg.HeadNodeID = 0
	cfg.WorkerNodeIDs = ids
	e, err := New(topo, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "c", "dd"}
	maybeNull := func(v row.Value, typ row.Type) row.Value {
		if rng.Intn(4) == 0 {
			return row.NullOf(typ)
		}
		return v
	}
	var left []row.Row
	for i := 0; i < nl; i++ {
		left = append(left, row.Row{
			maybeNull(row.Int(int64(rng.Intn(8))), row.TypeInt),
			maybeNull(row.Int(int64(rng.Intn(100)-50)), row.TypeInt),
			maybeNull(row.Float(rng.Float64()*100-50), row.TypeFloat),
			maybeNull(row.String_(cats[rng.Intn(len(cats))]), row.TypeString),
		})
	}
	var right []row.Row
	for i := 0; i < nr; i++ {
		right = append(right, row.Row{
			maybeNull(row.Int(int64(rng.Intn(8))), row.TypeInt),
			maybeNull(row.Float(rng.Float64()*10), row.TypeFloat),
		})
	}
	lschema := row.MustSchema(
		row.Column{Name: "k", Type: row.TypeInt},
		row.Column{Name: "v", Type: row.TypeInt},
		row.Column{Name: "f", Type: row.TypeFloat},
		row.Column{Name: "cat", Type: row.TypeString},
	)
	rschema := row.MustSchema(
		row.Column{Name: "k", Type: row.TypeInt},
		row.Column{Name: "w", Type: row.TypeFloat},
	)
	if err := e.LoadTable("t", lschema, left); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("u", rschema, right); err != nil {
		t.Fatal(err)
	}
	return e
}

// columnarOracleQueries is the query corpus both engines run. Ordered
// queries (ORDER BY) are compared as exact sequences; the rest as sorted
// multisets.
var columnarOracleQueries = []struct {
	sql     string
	ordered bool
}{
	// Selection-vector extremes: everything filtered, nothing filtered.
	{"SELECT v FROM t WHERE v < -10000", false},
	{"SELECT v, cat FROM t WHERE v IS NULL OR v IS NOT NULL", false},
	// Short-circuit AND: the division must only run where v <> 0.
	{"SELECT k FROM t WHERE v <> 0 AND 100 / v > 3", false},
	// OR with NULL operands, NOT, IS NULL.
	{"SELECT v FROM t WHERE NOT (f < 0.0) OR v IS NULL", false},
	// Mixed-type comparison and arithmetic with NULL propagation.
	{"SELECT v + 1, f * 2.0, v - f FROM t WHERE f > v", false},
	// IN over strings, NOT IN with possible NULL needle.
	{"SELECT cat FROM t WHERE cat IN ('a', 'dd')", false},
	{"SELECT v FROM t WHERE v NOT IN (1, 2, 3)", false},
	// CASE arms evaluated progressively at narrowed positions.
	{"SELECT CASE WHEN v > 25 THEN v * 10 WHEN v > 0 THEN v ELSE 0 - 1 END FROM t", false},
	{"SELECT CASE WHEN v IS NULL THEN 'none' WHEN cat = 'a' THEN 'hit' ELSE cat END FROM t", false},
	// Projection over a filtered batch (kernels see the selection).
	{"SELECT v * v, f / 2.0 FROM t WHERE k >= 4", false},
	// Join with NULL keys on both sides (never match).
	{"SELECT t.v, u.w FROM t, u WHERE t.k = u.k", false},
	{"SELECT t.cat, u.w FROM t, u WHERE t.k = u.k AND t.v > 0", false},
	// Grouped aggregates over every accumulator, NULL-skipping.
	{"SELECT cat, COUNT(*), SUM(v), MIN(f), MAX(v) FROM t GROUP BY cat", false},
	{"SELECT k, AVG(f), COUNT(*) FROM t WHERE v IS NOT NULL GROUP BY k", false},
	// Global aggregate (empty grouping key) incl. the zero-row case.
	{"SELECT COUNT(*), SUM(v) FROM t WHERE v < -10000", false},
	{"SELECT MIN(v), MAX(f) FROM t", false},
	// Sorts keyed by computed expressions.
	{"SELECT v FROM t WHERE v IS NOT NULL ORDER BY v DESC LIMIT 11", true},
	{"SELECT k, f FROM t WHERE f IS NOT NULL AND k IS NOT NULL ORDER BY k, f", true},
}

// runOracle executes sql and flattens the result rows to strings.
func runOracle(e *Engine, sql string) ([]string, error) {
	res, err := e.Query(sql)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range res.Rows() {
		out = append(out, r.String())
	}
	return out, nil
}

// TestPropertyColumnarMatchesRowOracle runs the corpus over random
// NULL-heavy tables on both execution modes and requires identical
// results (or errors from both modes).
func TestPropertyColumnarMatchesRowOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(4)
		nl, nr := rng.Intn(80), rng.Intn(30)
		data := rng.Int63()
		rowEng := nullableTables(t, rand.New(rand.NewSource(data)), workers, nl, nr, true)
		colEng := nullableTables(t, rand.New(rand.NewSource(data)), workers, nl, nr, false)
		for _, q := range columnarOracleQueries {
			want, werr := runOracle(rowEng, q.sql)
			got, gerr := runOracle(colEng, q.sql)
			if (werr != nil) != (gerr != nil) {
				t.Logf("seed %d: %s: row err=%v, columnar err=%v", seed, q.sql, werr, gerr)
				return false
			}
			if werr != nil {
				continue
			}
			if !q.ordered {
				sort.Strings(want)
				sort.Strings(got)
			}
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Logf("seed %d: %s:\n row path: %v\n columnar: %v", seed, q.sql, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestColumnarDisableFlag double-checks the oracle switch actually
// switches: a columnar engine wires vector operators, a disabled one must
// not (observed through the engine flag — the plans themselves are
// internal).
func TestColumnarDisableFlag(t *testing.T) {
	topo := cluster.NewTopology(2)
	on, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: []int{1}, DisableColumnar: true})
	if err != nil {
		t.Fatal(err)
	}
	if !on.columnar {
		t.Error("default engine should run columnar")
	}
	if off.columnar {
		t.Error("DisableColumnar engine still columnar")
	}
}
