package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// These properties pin the arena hash-table paths to the semantics of the
// old map[string]-based operators: for every consumer (join, GROUP BY,
// DISTINCT) the engine's output must match an oracle computed in plain Go
// with string-keyed maps over the same raw rows.

// sortedFingerprints renders rows as strings and sorts them, for
// order-insensitive comparison.
func sortedFingerprints(rows []row.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func fingerprintsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyJoinMatchesMapOracle: the arena-table hash join returns
// exactly the multiset a map[string][]row build+probe over the raw rows
// produces (numeric-normalized keys, NULL keys never match).
func TestPropertyJoinMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, right := randomTables(t, rng)
		res, err := e.Query("SELECT l.v, l.cat, r.w FROM l, r WHERE l.k = r.k")
		if err != nil {
			return false
		}
		// Map-based oracle, the pre-arena implementation verbatim: build
		// side keyed by the normalized binary key string.
		normKey := func(v row.Value) string {
			if v.Kind == row.TypeInt {
				v = row.Float(v.AsFloat())
			}
			return string(row.AppendBinary(nil, row.Row{v}))
		}
		table := make(map[string][]row.Row)
		for _, rr := range right {
			if rr[0].Null {
				continue
			}
			k := normKey(rr[0])
			table[k] = append(table[k], rr)
		}
		var oracle []row.Row
		for _, lr := range left {
			if lr[0].Null {
				continue
			}
			for _, rr := range table[normKey(lr[0])] {
				oracle = append(oracle, row.Row{lr[1], lr[2], rr[1]})
			}
		}
		return fingerprintsEqual(sortedFingerprints(res.Rows()), sortedFingerprints(oracle))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupByMatchesMapOracle: multi-key GROUP BY aggregates
// match a map[string]-keyed oracle over the raw rows.
func TestPropertyGroupByMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, _ := randomTables(t, rng)
		res, err := e.Query("SELECT cat, k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM l GROUP BY cat, k")
		if err != nil {
			return false
		}
		type acc struct {
			n        int64
			sum      int64
			min, max int64
		}
		oracle := make(map[string]*acc)
		for _, r := range left {
			k := string(row.AppendBinary(nil, row.Row{r[2], r[0]}))
			a, ok := oracle[k]
			if !ok {
				a = &acc{min: r[1].AsInt(), max: r[1].AsInt()}
				oracle[k] = a
			}
			v := r[1].AsInt()
			a.n++
			a.sum += v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
		}
		if res.NumRows() != len(oracle) {
			return false
		}
		for _, r := range res.Rows() {
			k := string(row.AppendBinary(nil, row.Row{r[0], r[1]}))
			a, ok := oracle[k]
			if !ok {
				return false
			}
			if r[2].AsInt() != a.n || r[3].AsInt() != a.sum ||
				r[4].AsInt() != a.min || r[5].AsInt() != a.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistinctMatchesMapOracle: multi-column DISTINCT returns
// exactly the rows a map[string]bool oracle keeps, each exactly once.
func TestPropertyDistinctMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, left, _ := randomTables(t, rng)
		res, err := e.Query("SELECT DISTINCT k, cat FROM l")
		if err != nil {
			return false
		}
		oracle := make(map[string]bool)
		var want []row.Row
		for _, r := range left {
			k := string(row.AppendBinary(nil, row.Row{r[0], r[2]}))
			if !oracle[k] {
				oracle[k] = true
				want = append(want, row.Row{r[0], r[2]})
			}
		}
		return fingerprintsEqual(sortedFingerprints(res.Rows()), sortedFingerprints(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOrderByStableMergePreservesTieOrder: for rows with duplicate sort
// keys, the parallel sort-merge emits ties in exactly the order a stable
// sort of the concatenated partitions produces — the old sequential
// implementation's contract. Partitions are loaded explicitly so the
// expected concatenation order is known.
func TestOrderByStableMergePreservesTieOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(5)
		topo := cluster.NewTopology(workers + 1)
		ids := make([]int, workers)
		for i := range ids {
			ids[i] = i + 1
		}
		e, err := New(topo, nil, Config{HeadNodeID: 0, WorkerNodeIDs: ids})
		if err != nil {
			return false
		}
		// Low-cardinality sort key + unique serial so ties are plentiful
		// and every row is identifiable.
		parts := make([][]row.Row, workers)
		serial := int64(0)
		for w := range parts {
			for i := 0; i < rng.Intn(40); i++ {
				parts[w] = append(parts[w], row.Row{row.Int(int64(rng.Intn(4))), row.Int(serial)})
				serial++
			}
		}
		schema := row.MustSchema(
			row.Column{Name: "k", Type: row.TypeInt},
			row.Column{Name: "id", Type: row.TypeInt},
		)
		if err := e.LoadPartitionedTable("t", schema, parts); err != nil {
			return false
		}
		res, err := e.Query("SELECT k, id FROM t ORDER BY k DESC")
		if err != nil {
			return false
		}
		var concat []row.Row
		for _, p := range parts {
			concat = append(concat, p...)
		}
		want := append([]row.Row(nil), concat...)
		sort.SliceStable(want, func(a, b int) bool { return want[a][0].AsInt() > want[b][0].AsInt() })
		got := res.Rows()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i][0].AsInt() != want[i][0].AsInt() || got[i][1].AsInt() != want[i][1].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMergeRunsEdgeCases exercises the loser tree directly: empty runs,
// a single run, and run counts around power-of-two boundaries.
func TestMergeRunsEdgeCases(t *testing.T) {
	specs := []orderSpec{{desc: false}}
	mkRun := func(keys ...int64) *sortedRun {
		r := &sortedRun{}
		for _, k := range keys {
			r.rows = append(r.rows, row.Row{row.Int(k)})
			r.keys = append(r.keys, row.Row{row.Int(k)})
		}
		return r
	}
	for _, tc := range []struct {
		name string
		runs []*sortedRun
		want []int64
	}{
		{"single", []*sortedRun{mkRun(1, 2, 3)}, []int64{1, 2, 3}},
		{"two", []*sortedRun{mkRun(1, 3), mkRun(2, 4)}, []int64{1, 2, 3, 4}},
		{"empty-runs", []*sortedRun{mkRun(), mkRun(5), mkRun(), mkRun(1)}, []int64{1, 5}},
		{"all-empty", []*sortedRun{mkRun(), mkRun(), mkRun()}, nil},
		{"three", []*sortedRun{mkRun(2, 2), mkRun(1, 2), mkRun(2, 3)}, []int64{1, 2, 2, 2, 2, 3}},
		{"five", []*sortedRun{mkRun(9), mkRun(1, 8), mkRun(4), mkRun(2, 7), mkRun(3)}, []int64{1, 2, 3, 4, 7, 8, 9}},
	} {
		got := mergeRuns(specs, tc.runs)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d rows, want %d", tc.name, len(got), len(tc.want))
		}
		for i, r := range got {
			if r[0].AsInt() != tc.want[i] {
				t.Fatalf("%s: row %d = %d, want %d (%v)", tc.name, i, r[0].AsInt(), tc.want[i], got)
			}
		}
	}
}

// TestMergeRunsStableAcrossRunIndex: equal keys come out in run order.
func TestMergeRunsStableAcrossRunIndex(t *testing.T) {
	specs := []orderSpec{{desc: false}}
	runs := make([]*sortedRun, 4)
	for i := range runs {
		r := &sortedRun{}
		// every run holds the same keys; payload identifies (run, pos)
		for j := 0; j < 3; j++ {
			r.rows = append(r.rows, row.Row{row.Int(int64(j)), row.String_(fmt.Sprintf("r%d-%d", i, j))})
			r.keys = append(r.keys, row.Row{row.Int(int64(j))})
		}
		runs[i] = r
	}
	got := mergeRuns(specs, runs)
	k := 0
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			want := fmt.Sprintf("r%d-%d", i, j)
			if got[k][1].AsString() != want {
				t.Fatalf("pos %d: got %s, want %s", k, got[k][1].AsString(), want)
			}
			k++
		}
	}
}
