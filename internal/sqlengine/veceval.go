package sqlengine

import (
	"bytes"
	"fmt"

	"sqlml/internal/row"
)

// Vectorized expression evaluation: compileVec builds a column→column twin
// of eval.go's compile. A kernel consumes a whole ColBatch and a position
// list and returns one output vector; the hot loops are typed (no
// row.Value traffic, no per-row closure calls). Kernels evaluate ONLY at
// the listed positions — a must for semantics, not just speed: in
// `WHERE b <> 0 AND a/b > 2` the division must never run on rows the left
// conjunct filtered out, exactly as the row-at-a-time path short-circuits.
//
// Positions are physical row indices into the batch, ascending; nil means
// every physical row. Output vectors span the batch's full physical length
// with meaningful slots only at the evaluated positions. Expressions
// without a native kernel — scalar UDF calls, string-typed CASE — fall
// back to the row evaluator over a scratch row, so every expression the
// row path accepts still runs.

// vecFn evaluates a compiled expression over a batch at the given
// positions. The returned vector belongs to the kernel's vecCtx (or
// aliases an input column) and obeys the batch validity window.
type vecFn func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error)

// vecCtx is one operator instance's scratch arena: output vectors and
// position lists handed out stack-style and reclaimed wholesale at the
// start of each Next, so results stay valid for exactly the batch
// validity window. Kernels themselves are stateless — one compiled kernel
// is shared across per-partition goroutines, each with its own vecCtx.
type vecCtx struct {
	vecs    []*row.Vector
	nv      int
	poss    []*[]int32
	np      int
	idPos   []int32 // cached identity position list 0,1,2,...
	scratch row.Row // fallback-eval row materialization buffer
}

// reclaim recycles every vector and position list handed out since the
// previous reclaim. Call at the start of each operator Next.
func (c *vecCtx) reclaim() { c.nv, c.np = 0, 0 }

// get hands out a scratch vector, valid until the next reclaim.
func (c *vecCtx) get() *row.Vector {
	if c.nv == len(c.vecs) {
		c.vecs = append(c.vecs, &row.Vector{})
	}
	v := c.vecs[c.nv]
	c.nv++
	return v
}

// getPos hands out a reusable position-list buffer, valid until the next
// reclaim. Callers append to *p after truncating it.
func (c *vecCtx) getPos() *[]int32 {
	if c.np == len(c.poss) {
		c.poss = append(c.poss, new([]int32))
	}
	p := c.poss[c.np]
	c.np++
	return p
}

// allPos returns the identity position list of length n (read-only).
func (c *vecCtx) allPos(n int) []int32 {
	for len(c.idPos) < n {
		c.idPos = append(c.idPos, int32(len(c.idPos)))
	}
	return c.idPos[:n]
}

// compileVec compiles e into a vector kernel against the scope's combined
// schema. Typing and error behavior mirror compile exactly; the row
// evaluator is compiled alongside both to type-check and to serve as the
// fallback body.
func compileVec(e Expr, s *scope, reg *Registry) (vecFn, row.Type, error) {
	rowFn, t, err := compile(e, s, reg)
	if err != nil {
		return nil, 0, err
	}
	// Constant folding: a subtree with no column refs and no UDF calls
	// evaluates once at compile time. If it errors (e.g. 1/0) keep the
	// row-path timing — the error must surface only when rows flow.
	if exprIsConst(e) {
		if v, evalErr := rowFn(nil); evalErr == nil {
			return constKernel(v, t), t, nil
		}
		return fallbackKernel(rowFn, t), t, nil
	}

	switch x := e.(type) {
	case *ColRef:
		idx, _, err := s.resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, 0, err
		}
		return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
			return b.Col(idx), nil
		}, t, nil

	case *NotExpr:
		inner, _, err := compileVec(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		return notKernel(inner), t, nil

	case *IsNullExpr:
		inner, _, err := compileVec(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		return isNullKernel(inner, x.Negate), t, nil

	case *InListExpr:
		inner, _, err := compileVec(x.E, s, reg)
		if err != nil {
			return nil, 0, err
		}
		elems := make([]vecFn, len(x.List))
		for i, le := range x.List {
			fn, _, err := compileVec(le, s, reg)
			if err != nil {
				return nil, 0, err
			}
			elems[i] = fn
		}
		return inListKernel(inner, elems, x.Negate), t, nil

	case *BinOp:
		lf, lt, err := compileVec(x.L, s, reg)
		if err != nil {
			return nil, 0, err
		}
		rf, rt, err := compileVec(x.R, s, reg)
		if err != nil {
			return nil, 0, err
		}
		switch x.Op {
		case "AND":
			return andKernel(lf, rf), t, nil
		case "OR":
			return orKernel(lf, rf), t, nil
		case "=", "<>", "<", "<=", ">", ">=":
			return compareKernel(lf, rf, lt, rt, x.Op), t, nil
		default: // + - * /
			return arithKernel(lf, rf, lt, rt, x.Op[0], t), t, nil
		}

	case *CaseExpr:
		if t == row.TypeString {
			// Scatter can't write a sequential string vector out of order;
			// string-typed CASE stays on the row evaluator.
			return fallbackKernel(rowFn, t), t, nil
		}
		return compileCaseVec(x, s, reg, t)

	case *FuncCall:
		// Scalar UDFs take row.Values by contract; the per-row fallback is
		// the designed boundary, not a missing kernel.
		return fallbackKernel(rowFn, t), t, nil
	}
	return fallbackKernel(rowFn, t), t, nil
}

// exprIsConst reports whether e references no columns and calls no UDFs,
// making it evaluable at compile time.
func exprIsConst(e Expr) bool {
	switch x := e.(type) {
	case *Lit:
		return true
	case *NotExpr:
		return exprIsConst(x.E)
	case *IsNullExpr:
		return exprIsConst(x.E)
	case *InListExpr:
		if !exprIsConst(x.E) {
			return false
		}
		for _, le := range x.List {
			if !exprIsConst(le) {
				return false
			}
		}
		return true
	case *BinOp:
		return exprIsConst(x.L) && exprIsConst(x.R)
	case *CaseExpr:
		for _, w := range x.Whens {
			if !exprIsConst(w.Cond) || !exprIsConst(w.Then) {
				return false
			}
		}
		return x.Else == nil || exprIsConst(x.Else)
	}
	return false
}

// constKernel fills a vector with one compile-time value.
func constKernel(v row.Value, t row.Type) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		out := c.get()
		n := b.FullLen()
		if t == row.TypeString {
			out.Reset(t)
			if v.Null {
				out.PadTo(n)
				return out, nil
			}
			s := v.AsString()
			for i := 0; i < n; i++ {
				out.AppendString(s)
			}
			return out, nil
		}
		out.ResetDense(t, n)
		if v.Null {
			for i := 0; i < n; i++ {
				out.SetNull(i)
			}
			return out, nil
		}
		switch t {
		case row.TypeInt:
			x := v.AsInt()
			for i := range out.Ints {
				out.Ints[i] = x
			}
		case row.TypeFloat:
			x := v.AsFloat()
			for i := range out.Floats {
				out.Floats[i] = x
			}
		case row.TypeBool:
			x := v.AsBool()
			for i := range out.Bools {
				out.Bools[i] = x
			}
		}
		return out, nil
	}
}

// fallbackKernel runs the row evaluator position-by-position over a
// scratch row — the boundary for UDF calls and unvectorized shapes.
func fallbackKernel(rowFn evalFn, t row.Type) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		n := b.FullLen()
		if t == row.TypeString {
			out.Reset(t)
			for _, pp := range pos {
				p := int(pp)
				out.PadTo(p)
				c.scratch = b.PhysicalRow(p, c.scratch)
				v, err := rowFn(c.scratch)
				if err != nil {
					return nil, err
				}
				if err := appendFallbackString(out, v); err != nil {
					return nil, err
				}
			}
			out.PadTo(n)
			return out, nil
		}
		out.ResetDense(t, n)
		for _, pp := range pos {
			p := int(pp)
			c.scratch = b.PhysicalRow(p, c.scratch)
			v, err := rowFn(c.scratch)
			if err != nil {
				return nil, err
			}
			if v.Null {
				out.SetNull(p)
				continue
			}
			switch t {
			case row.TypeInt:
				if v.Kind != row.TypeInt {
					cv, err := v.Coerce(t)
					if err != nil {
						return nil, err
					}
					v = cv
				}
				out.Ints[p] = v.AsInt()
			case row.TypeFloat:
				if !v.Numeric() {
					cv, err := v.Coerce(t)
					if err != nil {
						return nil, err
					}
					v = cv
				}
				out.Floats[p] = v.AsFloat()
			case row.TypeBool:
				if v.Kind != row.TypeBool {
					cv, err := v.Coerce(t)
					if err != nil {
						return nil, err
					}
					v = cv
				}
				out.Bools[p] = v.AsBool()
			}
		}
		return out, nil
	}
}

func appendFallbackString(out *row.Vector, v row.Value) error {
	if v.Null {
		out.AppendNull()
		return nil
	}
	if v.Kind != row.TypeString {
		cv, err := v.Coerce(row.TypeString)
		if err != nil {
			return err
		}
		v = cv
	}
	out.AppendString(v.AsString())
	return nil
}

// notKernel: NOT propagates NULL, else negates.
func notKernel(inner vecFn) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		iv, err := inner(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		if iv.HasNulls() {
			for _, pp := range pos {
				p := int(pp)
				if iv.Null(p) {
					out.SetNull(p)
					continue
				}
				out.Bools[p] = !iv.Bools[p]
			}
			return out, nil
		}
		for _, pp := range pos {
			p := int(pp)
			out.Bools[p] = !iv.Bools[p]
		}
		return out, nil
	}
}

// isNullKernel: IS [NOT] NULL reads the bitmap; the result is never NULL.
func isNullKernel(inner vecFn, neg bool) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		iv, err := inner(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		for _, pp := range pos {
			p := int(pp)
			out.Bools[p] = iv.Null(p) != neg
		}
		return out, nil
	}
}

// andKernel implements the engine's two-valued AND: NULL counts as false
// and the result is never NULL. The right operand is evaluated only where
// the left was true — the vectorized form of short-circuiting, which also
// keeps right-side runtime errors confined to rows the row path would
// have reached.
func andKernel(lf, rf vecFn) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		lv, err := lf(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		pb := c.getPos()
		sel := (*pb)[:0]
		lnull := lv.HasNulls()
		for _, pp := range pos {
			p := int(pp)
			if (!lnull || !lv.Null(p)) && lv.Bools[p] {
				sel = append(sel, pp)
			}
		}
		*pb = sel
		if len(sel) == 0 {
			return out, nil
		}
		rv, err := rf(c, b, sel)
		if err != nil {
			return nil, err
		}
		rnull := rv.HasNulls()
		for _, pp := range sel {
			p := int(pp)
			out.Bools[p] = (!rnull || !rv.Null(p)) && rv.Bools[p]
		}
		return out, nil
	}
}

// orKernel: two-valued OR, right side evaluated only where the left was
// not true.
func orKernel(lf, rf vecFn) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		lv, err := lf(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		pb := c.getPos()
		rest := (*pb)[:0]
		lnull := lv.HasNulls()
		for _, pp := range pos {
			p := int(pp)
			if (!lnull || !lv.Null(p)) && lv.Bools[p] {
				out.Bools[p] = true
			} else {
				rest = append(rest, pp)
			}
		}
		*pb = rest
		if len(rest) == 0 {
			return out, nil
		}
		rv, err := rf(c, b, rest)
		if err != nil {
			return nil, err
		}
		rnull := rv.HasNulls()
		for _, pp := range rest {
			p := int(pp)
			out.Bools[p] = (!rnull || !rv.Null(p)) && rv.Bools[p]
		}
		return out, nil
	}
}

// Comparison opcodes, resolved from the operator string at compile time.
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func cmpCode(op string) int {
	switch op {
	case "=":
		return cmpEq
	case "<>":
		return cmpNe
	case "<":
		return cmpLt
	case "<=":
		return cmpLe
	case ">":
		return cmpGt
	default:
		return cmpGe
	}
}

// compareKernel: comparisons are two-valued here — a NULL operand yields
// non-null FALSE, matching the row evaluator. Float ordering mirrors
// Value.Compare exactly: `<=` is !(a>b) and `>=` is !(a<b), so NaN
// operands order as "equal" on both paths.
func compareKernel(lf, rf vecFn, lt, rt row.Type, op string) vecFn {
	code := cmpCode(op)
	mixedNumeric := lt != rt // comparable() already held, so mixed == numeric pair
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		lv, err := lf(c, b, pos)
		if err != nil {
			return nil, err
		}
		rv, err := rf(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		if mixedNumeric || lt == row.TypeFloat {
			lv = toFloatVec(c, lv, b.FullLen(), pos)
			rv = toFloatVec(c, rv, b.FullLen(), pos)
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		anyNull := lv.HasNulls() || rv.HasNulls()
		switch {
		case mixedNumeric || lt == row.TypeFloat:
			for _, pp := range pos {
				p := int(pp)
				if anyNull && (lv.Null(p) || rv.Null(p)) {
					continue // stays false
				}
				a, bb := lv.Floats[p], rv.Floats[p]
				var r bool
				switch code {
				case cmpEq:
					r = a == bb
				case cmpNe:
					r = a != bb
				case cmpLt:
					r = a < bb
				case cmpLe:
					r = !(a > bb)
				case cmpGt:
					r = a > bb
				default:
					r = !(a < bb)
				}
				out.Bools[p] = r
			}
		case lt == row.TypeInt:
			for _, pp := range pos {
				p := int(pp)
				if anyNull && (lv.Null(p) || rv.Null(p)) {
					continue
				}
				a, bb := lv.Ints[p], rv.Ints[p]
				var r bool
				switch code {
				case cmpEq:
					r = a == bb
				case cmpNe:
					r = a != bb
				case cmpLt:
					r = a < bb
				case cmpLe:
					r = a <= bb
				case cmpGt:
					r = a > bb
				default:
					r = a >= bb
				}
				out.Bools[p] = r
			}
		case lt == row.TypeString:
			for _, pp := range pos {
				p := int(pp)
				if anyNull && (lv.Null(p) || rv.Null(p)) {
					continue
				}
				var r bool
				switch code {
				case cmpEq:
					r = bytes.Equal(lv.Bytes(p), rv.Bytes(p))
				case cmpNe:
					r = !bytes.Equal(lv.Bytes(p), rv.Bytes(p))
				default:
					cc := bytes.Compare(lv.Bytes(p), rv.Bytes(p))
					switch code {
					case cmpLt:
						r = cc < 0
					case cmpLe:
						r = cc <= 0
					case cmpGt:
						r = cc > 0
					default:
						r = cc >= 0
					}
				}
				out.Bools[p] = r
			}
		default: // BOOLEAN: false < true, as Value.Compare orders
			for _, pp := range pos {
				p := int(pp)
				if anyNull && (lv.Null(p) || rv.Null(p)) {
					continue
				}
				a, bb := b2i(lv.Bools[p]), b2i(rv.Bools[p])
				var r bool
				switch code {
				case cmpEq:
					r = a == bb
				case cmpNe:
					r = a != bb
				case cmpLt:
					r = a < bb
				case cmpLe:
					r = a <= bb
				case cmpGt:
					r = a > bb
				default:
					r = a >= bb
				}
				out.Bools[p] = r
			}
		}
		return out, nil
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// toFloatVec widens a BIGINT vector to DOUBLE in one pass (nulls carried);
// DOUBLE vectors pass through untouched.
func toFloatVec(c *vecCtx, v *row.Vector, n int, pos []int32) *row.Vector {
	if v.Type() == row.TypeFloat {
		return v
	}
	out := c.get()
	out.ResetDense(row.TypeFloat, n)
	for _, pp := range pos {
		p := int(pp)
		out.Floats[p] = float64(v.Ints[p])
	}
	out.OrNullsFrom(v)
	return out
}

// arithKernel: + - * / with NULL propagation (NULL operand → NULL result,
// checked before division by zero, as the row path does).
func arithKernel(lf, rf vecFn, lt, rt row.Type, op byte, outType row.Type) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		lv, err := lf(c, b, pos)
		if err != nil {
			return nil, err
		}
		rv, err := rf(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(outType, b.FullLen())
		if outType == row.TypeFloat {
			lv = toFloatVec(c, lv, b.FullLen(), pos)
			rv = toFloatVec(c, rv, b.FullLen(), pos)
			if op == '/' {
				anyNull := lv.HasNulls() || rv.HasNulls()
				for _, pp := range pos {
					p := int(pp)
					if anyNull && (lv.Null(p) || rv.Null(p)) {
						out.SetNull(p)
						continue
					}
					if rv.Floats[p] == 0 {
						return nil, fmt.Errorf("sql: division by zero")
					}
					out.Floats[p] = lv.Floats[p] / rv.Floats[p]
				}
				return out, nil
			}
			switch op {
			case '+':
				for _, pp := range pos {
					p := int(pp)
					out.Floats[p] = lv.Floats[p] + rv.Floats[p]
				}
			case '-':
				for _, pp := range pos {
					p := int(pp)
					out.Floats[p] = lv.Floats[p] - rv.Floats[p]
				}
			default:
				for _, pp := range pos {
					p := int(pp)
					out.Floats[p] = lv.Floats[p] * rv.Floats[p]
				}
			}
			out.OrNullsFrom(lv)
			out.OrNullsFrom(rv)
			return out, nil
		}
		// BIGINT arithmetic.
		if op == '/' {
			anyNull := lv.HasNulls() || rv.HasNulls()
			for _, pp := range pos {
				p := int(pp)
				if anyNull && (lv.Null(p) || rv.Null(p)) {
					out.SetNull(p)
					continue
				}
				if rv.Ints[p] == 0 {
					return nil, fmt.Errorf("sql: division by zero")
				}
				out.Ints[p] = lv.Ints[p] / rv.Ints[p]
			}
			return out, nil
		}
		switch op {
		case '+':
			for _, pp := range pos {
				p := int(pp)
				out.Ints[p] = lv.Ints[p] + rv.Ints[p]
			}
		case '-':
			for _, pp := range pos {
				p := int(pp)
				out.Ints[p] = lv.Ints[p] - rv.Ints[p]
			}
		default:
			for _, pp := range pos {
				p := int(pp)
				out.Ints[p] = lv.Ints[p] * rv.Ints[p]
			}
		}
		out.OrNullsFrom(lv)
		out.OrNullsFrom(rv)
		return out, nil
	}
}

// inListKernel: list elements are evaluated lazily over the still-unmatched
// positions, preserving the row path's left-to-right short-circuit (an
// erroring element after a match never runs). A NULL needle yields FALSE
// even for NOT IN, matching the row evaluator.
func inListKernel(inner vecFn, elems []vecFn, neg bool) vecFn {
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		v, err := inner(c, b, pos)
		if err != nil {
			return nil, err
		}
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(row.TypeBool, b.FullLen())
		pb := c.getPos()
		remaining := (*pb)[:0]
		vnull := v.HasNulls()
		for _, pp := range pos {
			if vnull && v.Null(int(pp)) {
				continue // NULL needle → false, already zeroed
			}
			remaining = append(remaining, pp)
		}
		*pb = remaining
		for _, ef := range elems {
			if len(remaining) == 0 {
				break
			}
			ev, err := ef(c, b, remaining)
			if err != nil {
				return nil, err
			}
			keep := remaining[:0]
			enull := ev.HasNulls()
			for _, pp := range remaining {
				p := int(pp)
				if (!enull || !ev.Null(p)) && vecCellsEqual(v, ev, p) {
					out.Bools[p] = !neg
				} else {
					keep = append(keep, pp)
				}
			}
			remaining = keep
			*pb = remaining
		}
		for _, pp := range remaining {
			out.Bools[int(pp)] = neg
		}
		return out, nil
	}
}

// vecCellsEqual mirrors Value.Equal for two non-null cells at the same
// position: same-kind deep equality, plus numeric cross-type equality.
func vecCellsEqual(a, b *row.Vector, pp int) bool {
	at, bt := a.Type(), b.Type()
	if at != bt {
		if (at == row.TypeInt || at == row.TypeFloat) && (bt == row.TypeInt || bt == row.TypeFloat) {
			return cellFloat(a, pp) == cellFloat(b, pp)
		}
		return false
	}
	switch at {
	case row.TypeInt:
		return a.Ints[pp] == b.Ints[pp]
	case row.TypeFloat:
		return a.Floats[pp] == b.Floats[pp]
	case row.TypeBool:
		return a.Bools[pp] == b.Bools[pp]
	default:
		return bytes.Equal(a.Bytes(pp), b.Bytes(pp))
	}
}

func cellFloat(v *row.Vector, pp int) float64 {
	if v.Type() == row.TypeInt {
		return float64(v.Ints[pp])
	}
	return v.Floats[pp]
}

// compileCaseVec vectorizes a searched CASE by progressive position
// refinement: each arm's condition runs over the rows no prior arm
// claimed, its result expression runs only over the rows it matched, and
// the (numeric-unified) results scatter into one dense output.
func compileCaseVec(x *CaseExpr, s *scope, reg *Registry, outType row.Type) (vecFn, row.Type, error) {
	type vecArm struct {
		cond vecFn
		then vecFn
		t    row.Type
	}
	arms := make([]vecArm, len(x.Whens))
	for i, w := range x.Whens {
		cond, _, err := compileVec(w.Cond, s, reg)
		if err != nil {
			return nil, 0, err
		}
		then, tt, err := compileVec(w.Then, s, reg)
		if err != nil {
			return nil, 0, err
		}
		arms[i] = vecArm{cond: cond, then: then, t: tt}
	}
	var elseFn vecFn
	var elseT row.Type
	if x.Else != nil {
		fn, t, err := compileVec(x.Else, s, reg)
		if err != nil {
			return nil, 0, err
		}
		elseFn, elseT = fn, t
	}
	return func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		if pos == nil {
			pos = c.allPos(b.FullLen())
		}
		out := c.get()
		out.ResetDense(outType, b.FullLen())
		pb := c.getPos()
		remaining := append((*pb)[:0], pos...)
		*pb = remaining
		mb := c.getPos()
		for _, a := range arms {
			if len(remaining) == 0 {
				break
			}
			cv, err := a.cond(c, b, remaining)
			if err != nil {
				return nil, err
			}
			matched := (*mb)[:0]
			keep := remaining[:0]
			cnull := cv.HasNulls()
			for _, pp := range remaining {
				p := int(pp)
				if (!cnull || !cv.Null(p)) && cv.Bools[p] {
					matched = append(matched, pp)
				} else {
					keep = append(keep, pp)
				}
			}
			*mb = matched
			remaining = keep
			*pb = remaining
			if len(matched) == 0 {
				continue
			}
			tv, err := a.then(c, b, matched)
			if err != nil {
				return nil, err
			}
			scatterCoerced(out, tv, a.t, outType, matched)
		}
		if len(remaining) > 0 {
			if elseFn == nil {
				for _, pp := range remaining {
					out.SetNull(int(pp))
				}
			} else {
				ev, err := elseFn(c, b, remaining)
				if err != nil {
					return nil, err
				}
				scatterCoerced(out, ev, elseT, outType, remaining)
			}
		}
		return out, nil
	}, outType, nil
}

// scatterCoerced writes src's cells into the dense dst at the given
// positions, widening BIGINT→DOUBLE when the CASE unified numerics.
func scatterCoerced(dst, src *row.Vector, srcT, dstT row.Type, pos []int32) {
	snull := src.HasNulls()
	for _, pp := range pos {
		p := int(pp)
		if snull && src.Null(p) {
			dst.SetNull(p)
			continue
		}
		switch dstT {
		case row.TypeInt:
			dst.Ints[p] = src.Ints[p]
		case row.TypeFloat:
			if srcT == row.TypeInt {
				dst.Floats[p] = float64(src.Ints[p])
			} else {
				dst.Floats[p] = src.Floats[p]
			}
		case row.TypeBool:
			dst.Bools[p] = src.Bools[p]
		}
	}
}
