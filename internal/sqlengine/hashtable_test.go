package sqlengine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHashTableMatchesMapOracle: a random sequence of Insert/Lookup calls
// behaves exactly like a map[string]uint32 assigning dense indices in
// insertion order — including empty keys, duplicate keys, and enough
// distinct keys to force several growths.
func TestHashTableMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ht := NewHashTable(rng.Intn(64))
		oracle := make(map[string]uint32)
		for op := 0; op < 2000; op++ {
			// Keys from a zipf-ish small space so duplicates are common.
			key := []byte(fmt.Sprintf("key-%d", rng.Intn(600)))
			if rng.Intn(20) == 0 {
				key = nil // empty key is a valid composite (global aggregate)
			}
			if rng.Intn(3) == 0 {
				idx, ok := ht.Lookup(key)
				widx, wok := oracle[string(key)]
				if ok != wok || (ok && idx != widx) {
					return false
				}
				continue
			}
			idx, added := ht.Insert(key)
			widx, seen := oracle[string(key)]
			if added == seen {
				return false
			}
			if seen {
				if idx != widx {
					return false
				}
			} else {
				if idx != uint32(len(oracle)) {
					return false
				}
				oracle[string(key)] = idx
			}
		}
		return ht.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHashTableLargeKeys: keys larger than the arena chunk get dedicated
// chunks and survive growth.
func TestHashTableLargeKeys(t *testing.T) {
	ht := NewHashTable(0)
	big := bytes.Repeat([]byte("x"), htChunkSize+100)
	idx, added := ht.Insert(big)
	if !added || idx != 0 {
		t.Fatalf("big key insert: idx=%d added=%v", idx, added)
	}
	// Force growth with many small keys.
	for i := 0; i < 500; i++ {
		ht.Insert([]byte(fmt.Sprintf("small-%d", i)))
	}
	got, ok := ht.Lookup(big)
	if !ok || got != 0 {
		t.Fatalf("big key lost after growth: idx=%d ok=%v", got, ok)
	}
	if !bytes.Equal(ht.Key(0), big) {
		t.Fatal("stored big key bytes corrupted")
	}
}

// TestHashTableInsertNoPerKeyAlloc: hitting an existing key allocates
// nothing, and the caller's buffer may be reused across inserts (the
// table copies).
func TestHashTableInsertNoPerKeyAlloc(t *testing.T) {
	ht := NewHashTable(4)
	buf := []byte("stable-key")
	ht.Insert(buf)
	allocs := testing.AllocsPerRun(200, func() {
		if _, added := ht.Insert(buf); added {
			t.Fatal("key unexpectedly re-added")
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate Insert allocated %.1f times per call", allocs)
	}
	// Mutating the caller's buffer after insert must not corrupt the table.
	copy(buf, "XXXXXXXXXX")
	if _, ok := ht.Lookup([]byte("stable-key")); !ok {
		t.Error("table aliased the caller's buffer instead of copying")
	}
}
