package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sqlml/internal/dfs"
	"sqlml/internal/row"
)

// ExternalBacking marks a table whose data lives as a text file on the DFS
// (the paper's "tables stored in text format on HDFS"). Scanning such a
// table re-reads the file — and pays its I/O — on every query, exactly like
// a SQL-on-Hadoop engine.
type ExternalBacking struct {
	FS   *dfs.FileSystem
	Path string
}

// Table is a catalog entry. Managed tables hold their rows partitioned
// across the engine's workers; external tables are scanned from the DFS;
// streaming tables (RegisterResultStream) hold a live per-partition batch
// pipeline that exactly one scan may consume.
type Table struct {
	Name     string
	Schema   row.Schema
	External *ExternalBacking

	mu        sync.RWMutex
	parts     [][]row.Row
	streaming bool
	stream    []BatchIterator
}

// NumRows returns the managed row count (0 for external tables; their
// cardinality is only known after a scan).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.parts {
		n += len(p)
	}
	return n
}

// partitions returns the managed partition slices. Callers treat them as
// read-only.
func (t *Table) partitions() [][]row.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts
}

// takeStream hands over a streaming table's one-shot pipeline; the second
// caller gets ok=false.
func (t *Table) takeStream() ([]BatchIterator, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stream
	t.stream = nil
	return s, s != nil
}

// Catalog is the engine's table namespace. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func key(name string) string { return strings.ToLower(name) }

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return t, nil
}

// Exists reports whether a table is defined.
func (c *Catalog) Exists(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// Put registers a table, failing if the name is taken.
func (c *Catalog) Put(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("sql: table %q already exists", t.Name)
	}
	c.tables[k] = t
	return nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	delete(c.tables, k)
	return nil
}

// Names lists defined tables, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
