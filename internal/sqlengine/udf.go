package sqlengine

import (
	"fmt"
	"strings"
	"sync"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// Iterator is the pull-based row stream flowing through table UDFs.
type Iterator interface {
	// Next returns the next row; ok is false at the end of the stream.
	Next() (r row.Row, ok bool, err error)
}

// SliceIterator iterates an in-memory row slice.
type SliceIterator struct {
	Rows []row.Row
	i    int
}

// Next implements Iterator.
func (s *SliceIterator) Next() (row.Row, bool, error) {
	if s.i >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.i]
	s.i++
	return r, true, nil
}

// Drain reads an iterator to completion.
func Drain(it Iterator) ([]row.Row, error) {
	var out []row.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// UDFContext carries execution-site information into a UDF invocation: the
// worker's node (for cost charging and streaming), its partition index, and
// the total number of SQL workers — the paper's UDFs need all three (e.g.
// the stream sender registers "its own worker id, IP address, and the total
// number of active SQL workers" with the coordinator).
type UDFContext struct {
	Engine        *Engine
	Node          *cluster.Node
	Partition     int
	NumPartitions int
	// InSchema is the schema of the rows arriving on the input iterator
	// (the zero schema for table functions invoked without a table).
	InSchema row.Schema
}

// TableUDF is a table-valued user-defined function, the extensibility
// mechanism the whole paper builds on.
//
// PerPartition functions run once per SQL worker over that worker's local
// partition (the paper's "parallel table UDF"); otherwise the input is
// gathered and the function runs once at the head node (used for steps
// that need a global view, such as assigning consecutive recode IDs).
type TableUDF struct {
	Name         string
	PerPartition bool
	// OutSchema derives the output schema from the input schema and the
	// literal arguments. Called at plan time.
	OutSchema func(in row.Schema, args []row.Value) (row.Schema, error)
	// Fn consumes the input iterator and emits output rows.
	Fn func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error
}

// ScalarUDF is a scalar user-defined function usable in any expression.
type ScalarUDF struct {
	Name string
	// ReturnType derives the result type from argument types at plan time.
	ReturnType func(args []row.Type) (row.Type, error)
	Fn         func(args []row.Value) (row.Value, error)
}

// Registry holds the UDFs known to an engine. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	scalars map[string]*ScalarUDF
	tables  map[string]*TableUDF
}

// NewRegistry returns a registry preloaded with the built-in scalar
// functions (UPPER, LOWER, LENGTH, ABS).
func NewRegistry() *Registry {
	r := &Registry{
		scalars: make(map[string]*ScalarUDF),
		tables:  make(map[string]*TableUDF),
	}
	for _, udf := range builtinScalars() {
		r.scalars[key(udf.Name)] = udf
	}
	for _, udf := range extraBuiltins() {
		r.scalars[key(udf.Name)] = udf
	}
	return r
}

// RegisterScalar adds a scalar UDF, failing on duplicate names.
func (r *Registry) RegisterScalar(u *ScalarUDF) error {
	if u == nil || u.Name == "" || u.Fn == nil || u.ReturnType == nil {
		return fmt.Errorf("sql: incomplete scalar UDF")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(u.Name)
	if _, ok := r.scalars[k]; ok {
		return fmt.Errorf("sql: scalar UDF %q already registered", u.Name)
	}
	r.scalars[k] = u
	return nil
}

// RegisterTable adds a table UDF, failing on duplicate names.
func (r *Registry) RegisterTable(u *TableUDF) error {
	if u == nil || u.Name == "" || u.Fn == nil || u.OutSchema == nil {
		return fmt.Errorf("sql: incomplete table UDF")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(u.Name)
	if _, ok := r.tables[k]; ok {
		return fmt.Errorf("sql: table UDF %q already registered", u.Name)
	}
	r.tables[k] = u
	return nil
}

// Scalar looks up a scalar UDF by name.
func (r *Registry) Scalar(name string) (*ScalarUDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.scalars[key(name)]
	return u, ok
}

// Table looks up a table UDF by name.
func (r *Registry) Table(name string) (*TableUDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.tables[key(name)]
	return u, ok
}

func builtinScalars() []*ScalarUDF {
	stringIn := func(args []row.Type) (row.Type, error) {
		if len(args) != 1 || args[0] != row.TypeString {
			return 0, fmt.Errorf("expected one VARCHAR argument")
		}
		return row.TypeString, nil
	}
	return []*ScalarUDF{
		{
			Name:       "upper",
			ReturnType: stringIn,
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeString), nil
				}
				return row.String_(strings.ToUpper(args[0].AsString())), nil
			},
		},
		{
			Name:       "lower",
			ReturnType: stringIn,
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeString), nil
				}
				return row.String_(strings.ToLower(args[0].AsString())), nil
			},
		},
		{
			Name: "length",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) != 1 || args[0] != row.TypeString {
					return 0, fmt.Errorf("expected one VARCHAR argument")
				}
				return row.TypeInt, nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				if args[0].Null {
					return row.NullOf(row.TypeInt), nil
				}
				return row.Int(int64(len(args[0].AsString()))), nil
			},
		},
		{
			Name: "abs",
			ReturnType: func(args []row.Type) (row.Type, error) {
				if len(args) != 1 || (args[0] != row.TypeInt && args[0] != row.TypeFloat) {
					return 0, fmt.Errorf("expected one numeric argument")
				}
				return args[0], nil
			},
			Fn: func(args []row.Value) (row.Value, error) {
				v := args[0]
				if v.Null {
					return v, nil
				}
				if v.Kind == row.TypeInt {
					if n := v.AsInt(); n < 0 {
						return row.Int(-n), nil
					}
					return v, nil
				}
				if f := v.AsFloat(); f < 0 {
					return row.Float(-f), nil
				}
				return v, nil
			},
		},
	}
}
