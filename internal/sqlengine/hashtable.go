package sqlengine

import (
	"bytes"

	"sqlml/internal/row"
)

// HashTable is the shared hash structure behind every hash path of the
// engine: join build/probe, GROUP BY partials and their merge, both
// DISTINCT passes, and transform's distinct-value discovery.
//
// It maps variable-length byte keys (produced by the row key codec) to
// dense uint32 indices in insertion order: the first distinct key gets 0,
// the next 1, and so on. Consumers keep their per-key payload (build-side
// row buckets, aggregation groups) in an ordinary slice indexed by that,
// which keeps the table itself payload-agnostic and the payloads free of
// per-entry map overhead.
//
// Key bytes are copied into chunked arenas — append-only byte slabs that
// grow by whole chunks, so inserting never moves previously stored keys
// and the per-key cost is a bump-pointer copy, not an allocation. The
// index is open-addressed with quadratic (triangular-number) probing over
// a power-of-two slot array; each slot carries the full 64-bit hash, so a
// probe compares key bytes only on a hash match.
//
// A HashTable is not safe for concurrent mutation; the engine uses one
// per partition (and one for the head-node merge), matching its
// one-goroutine-per-partition execution model.
type HashTable struct {
	slots []htSlot
	mask  uint64
	n     int

	chunks [][]byte // arenas; the last one is the active chunk
}

// htSlot is one open-addressing slot. hash == 0 marks an empty slot;
// stored hashes are forced non-zero.
type htSlot struct {
	hash  uint64
	chunk uint32 // arena chunk holding the key
	off   uint32 // offset of the key within its chunk
	klen  uint32
	idx   uint32 // dense insertion index
}

// htChunkSize is the arena chunk granularity. Keys longer than a chunk
// get a dedicated chunk of their exact size.
const htChunkSize = 1 << 16

// NewHashTable returns a table pre-sized for about hint distinct keys
// (hint <= 0 means small).
func NewHashTable(hint int) *HashTable {
	capSlots := 16
	for capSlots*3 < hint*4 {
		capSlots <<= 1
	}
	return &HashTable{
		slots: make([]htSlot, capSlots),
		mask:  uint64(capSlots - 1),
	}
}

// Len returns the number of distinct keys stored.
func (t *HashTable) Len() int { return t.n }

// key returns the stored key bytes of a filled slot.
func (t *HashTable) key(s *htSlot) []byte {
	return t.chunks[s.chunk][s.off : s.off+uint32(s.klen)]
}

// Key returns the stored bytes of dense index idx. It is O(slots) and
// meant for tests and diagnostics, not hot paths.
func (t *HashTable) Key(idx uint32) []byte {
	for i := range t.slots {
		s := &t.slots[i]
		if s.hash != 0 && s.idx == idx {
			return t.key(s)
		}
	}
	return nil
}

// Insert returns the dense index of key, adding it if absent. added
// reports whether the key was new. The key bytes are copied into the
// table's arena, so the caller may (and should) reuse its buffer.
func (t *HashTable) Insert(key []byte) (idx uint32, added bool) {
	return t.InsertHashed(key, hashNonZero(key))
}

// InsertHashed is Insert for callers that already hold key's hashNonZero
// hash — the parallel hash-join build computes hashes once in its
// morsel-scan phase and reuses them to route keys to shards and to insert.
func (t *HashTable) InsertHashed(key []byte, h uint64) (idx uint32, added bool) {
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := h & t.mask
	for step := uint64(1); ; step++ {
		s := &t.slots[i]
		if s.hash == 0 {
			chunk, off := t.arenaAppend(key)
			*s = htSlot{hash: h, chunk: chunk, off: off, klen: uint32(len(key)), idx: uint32(t.n)}
			t.n++
			return s.idx, true
		}
		if s.hash == h && bytes.Equal(t.key(s), key) {
			return s.idx, false
		}
		i = (i + step) & t.mask
	}
}

// InsertKeys is the column-at-a-time Insert: it inserts a run of packed
// keys — key i is flat[offs[i]:offs[i+1]], offs carrying one trailing
// bound — appending each key's dense index to out (reused across batches
// via out[:0]). Indices come out in insertion order, so a caller keeping a
// dense payload slice detects a new key by out[i] == len(payloads) at the
// moment it processes entry i.
func (t *HashTable) InsertKeys(flat []byte, offs []uint32, out []uint32) []uint32 {
	for i := 0; i+1 < len(offs); i++ {
		idx, _ := t.Insert(flat[offs[i]:offs[i+1]])
		out = append(out, idx)
	}
	return out
}

// htAbsent marks a missing key in LookupKeys results.
const htAbsent = ^uint32(0)

// LookupKeys is the column-at-a-time Lookup over the same packed-key run
// shape as InsertKeys, appending each key's dense index — or htAbsent — to
// out.
func (t *HashTable) LookupKeys(flat []byte, offs []uint32, out []uint32) []uint32 {
	for i := 0; i+1 < len(offs); i++ {
		idx, ok := t.Lookup(flat[offs[i]:offs[i+1]])
		if !ok {
			idx = htAbsent
		}
		out = append(out, idx)
	}
	return out
}

// Lookup returns the dense index of key, if present.
func (t *HashTable) Lookup(key []byte) (uint32, bool) {
	return t.LookupHashed(key, hashNonZero(key))
}

// LookupHashed is Lookup with a caller-supplied hashNonZero hash, the
// probe-side twin of InsertHashed.
func (t *HashTable) LookupHashed(key []byte, h uint64) (uint32, bool) {
	i := h & t.mask
	for step := uint64(1); ; step++ {
		s := &t.slots[i]
		if s.hash == 0 {
			return 0, false
		}
		if s.hash == h && bytes.Equal(t.key(s), key) {
			return s.idx, true
		}
		i = (i + step) & t.mask
	}
}

// hashNonZero hashes key, reserving 0 as the empty-slot marker.
func hashNonZero(key []byte) uint64 {
	h := row.Hash64(key)
	if h == 0 {
		return 1
	}
	return h
}

// arenaAppend copies key into the active chunk (opening a new one when it
// does not fit) and returns its (chunk, offset) address.
func (t *HashTable) arenaAppend(key []byte) (chunk, off uint32) {
	last := len(t.chunks) - 1
	if last < 0 || len(t.chunks[last])+len(key) > cap(t.chunks[last]) {
		size := htChunkSize
		if len(key) > size {
			size = len(key)
		}
		t.chunks = append(t.chunks, make([]byte, 0, size))
		last = len(t.chunks) - 1
	}
	c := t.chunks[last]
	off = uint32(len(c))
	t.chunks[last] = append(c, key...)
	return uint32(last), off
}

// grow doubles the slot array and reinserts every filled slot by its
// stored hash. Keys stay where they are in the arenas; no compares are
// needed because all stored keys are distinct.
func (t *HashTable) grow() {
	old := t.slots
	t.slots = make([]htSlot, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	for oi := range old {
		s := old[oi]
		if s.hash == 0 {
			continue
		}
		i := s.hash & t.mask
		for step := uint64(1); ; step++ {
			if t.slots[i].hash == 0 {
				t.slots[i] = s
				break
			}
			i = (i + step) & t.mask
		}
	}
}
