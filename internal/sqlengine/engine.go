package sqlengine

import (
	"fmt"
	"sync"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/row"
)

// Config selects which cluster nodes host SQL workers and which acts as the
// head (coordinator) node. The paper's testbed dedicates one server as the
// Big SQL head node and runs one multi-threaded worker on each of the rest.
type Config struct {
	WorkerNodeIDs []int
	HeadNodeID    int

	// DisableColumnar forces every operator onto the row-at-a-time
	// pipeline. The columnar engine is on by default; the switch exists so
	// the two paths can be compared — the property tests hold the columnar
	// operators to the row path as an oracle, and the benchmarks measure
	// the same query both ways.
	DisableColumnar bool

	// Parallelism bounds how many pool workers one query may run
	// concurrently (morsel dispatch, partition drains, parallel hash
	// build, sort runs). Zero selects the default, one worker per
	// available CPU (runtime.GOMAXPROCS). Parallelism: 1 is the
	// sequential oracle: every parallel schedule must produce output
	// byte-identical to it, the companion switch to DisableColumnar.
	Parallelism int
}

// Engine is the MPP SQL engine: a catalog of partitioned tables, a UDF
// registry, and a distributed executor running one worker per configured
// node.
type Engine struct {
	topo    *cluster.Topology
	cost    *cluster.CostModel
	workers []*cluster.Node
	head    *cluster.Node

	catalog     *Catalog
	registry    *Registry
	columnar    bool
	parallelism int
}

// New creates an engine on the given topology. cost may be nil (no
// simulated I/O charging).
func New(topo *cluster.Topology, cost *cluster.CostModel, cfg Config) (*Engine, error) {
	if len(cfg.WorkerNodeIDs) == 0 {
		return nil, fmt.Errorf("sql: engine needs at least one worker node")
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("sql: negative Parallelism %d", cfg.Parallelism)
	}
	e := &Engine{
		topo:        topo,
		cost:        cost,
		head:        topo.Node(cfg.HeadNodeID),
		catalog:     NewCatalog(),
		registry:    NewRegistry(),
		columnar:    !cfg.DisableColumnar,
		parallelism: cfg.Parallelism,
	}
	seen := make(map[int]bool)
	for _, id := range cfg.WorkerNodeIDs {
		if seen[id] {
			return nil, fmt.Errorf("sql: duplicate worker node %d", id)
		}
		seen[id] = true
		e.workers = append(e.workers, topo.Node(id))
	}
	return e, nil
}

// NumWorkers returns the number of SQL workers.
func (e *Engine) NumWorkers() int { return len(e.workers) }

// Parallelism returns the engine's effective per-query worker budget.
func (e *Engine) Parallelism() int { return resolveParallelism(e.parallelism) }

// WorkerNode returns the node hosting worker i.
func (e *Engine) WorkerNode(i int) *cluster.Node { return e.workers[i] }

// HeadNode returns the engine's head node.
func (e *Engine) HeadNode() *cluster.Node { return e.head }

// Topology returns the engine's cluster.
func (e *Engine) Topology() *cluster.Topology { return e.topo }

// Cost returns the engine's cost model (possibly nil).
func (e *Engine) Cost() *cluster.CostModel { return e.cost }

// Catalog returns the table catalog.
func (e *Engine) Catalog() *Catalog { return e.catalog }

// Registry returns the UDF registry.
func (e *Engine) Registry() *Registry { return e.registry }

// CreateTable defines an empty managed table.
func (e *Engine) CreateTable(name string, schema row.Schema) error {
	t := &Table{Name: name, Schema: schema, parts: make([][]row.Row, e.NumWorkers())}
	return e.catalog.Put(t)
}

// LoadTable defines a managed table and distributes rows round-robin
// across workers.
func (e *Engine) LoadTable(name string, schema row.Schema, rows []row.Row) error {
	parts := make([][]row.Row, e.NumWorkers())
	for i, r := range rows {
		w := i % len(parts)
		parts[w] = append(parts[w], r)
	}
	return e.LoadPartitionedTable(name, schema, parts)
}

// LoadPartitionedTable defines a managed table from pre-partitioned data
// (len(parts) must equal NumWorkers). The partitions are adopted without
// copying; callers must not mutate them afterwards.
func (e *Engine) LoadPartitionedTable(name string, schema row.Schema, parts [][]row.Row) error {
	if len(parts) != e.NumWorkers() {
		return fmt.Errorf("sql: %d partitions for %d workers", len(parts), e.NumWorkers())
	}
	t := &Table{Name: name, Schema: schema, parts: parts}
	return e.catalog.Put(t)
}

// RegisterExternalTable defines a table backed by a DFS text file (or a
// directory of part files). Scans re-read the DFS every time.
func (e *Engine) RegisterExternalTable(name string, fs *dfs.FileSystem, path string, schema row.Schema) error {
	t := &Table{Name: name, Schema: schema, External: &ExternalBacking{FS: fs, Path: path}}
	return e.catalog.Put(t)
}

// RegisterResult defines a managed table adopting a query result's
// partitions (no copy), materializing the result if it is still
// streaming. This is how pipelines chain query → table UDF → query
// without leaving engine memory.
func (e *Engine) RegisterResult(name string, res *Result) error {
	parts, err := res.Parts()
	if err != nil {
		return err
	}
	return e.LoadPartitionedTable(name, res.Schema, parts)
}

// RegisterResultStream defines a table over a streaming result WITHOUT
// materializing it: the table hands the result's per-partition pipelines
// to its first (and only) scan, so a downstream query keeps the whole
// chain pipelined. A materialized result falls back to RegisterResult.
func (e *Engine) RegisterResultStream(name string, res *Result) error {
	if !res.Streaming() {
		return e.RegisterResult(name, res)
	}
	iters, err := res.Batches()
	if err != nil {
		return err
	}
	if len(iters) != e.NumWorkers() {
		closeAllIters(iters)
		return fmt.Errorf("sql: %d stream partitions for %d workers", len(iters), e.NumWorkers())
	}
	t := &Table{Name: name, Schema: res.Schema, streaming: true, stream: iters}
	if err := e.catalog.Put(t); err != nil {
		closeAllIters(iters)
		return err
	}
	return nil
}

// DropTable removes a table from the catalog.
func (e *Engine) DropTable(name string) error { return e.catalog.Drop(name) }

// Result is a query result partitioned across the engine's workers:
// partition i lives on WorkerNode(i). A result starts out either
// materialized (pipeline breakers, DDL answers) or streaming — per-worker
// batch pipelines that run as they are consumed. Materialize is the
// compatibility shim: it drains a streaming result in parallel, after
// which the result behaves exactly like the pre-pipelining one.
type Result struct {
	Schema row.Schema

	mu       sync.Mutex
	stream   []BatchIterator
	parts    [][]row.Row
	done     bool       // parts is valid
	consumed bool       // stream handed off or drained
	pool     *queryPool // the query's worker pool; nil on ad-hoc results
}

// NewResult wraps materialized partitions as a result.
func NewResult(schema row.Schema, parts [][]row.Row) *Result {
	return &Result{Schema: schema, parts: parts, done: true, consumed: true}
}

// NewStreamingResult wraps per-partition batch pipelines as a result.
func NewStreamingResult(schema row.Schema, iters []BatchIterator) *Result {
	return &Result{Schema: schema, stream: iters}
}

// Streaming reports whether the result still holds an unconsumed pipeline.
func (r *Result) Streaming() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stream != nil
}

// Materialize drains a streaming result into in-memory partitions on the
// query's pool (pipelines whose partitions coordinate — like the stream
// sender — are primed first, so any pool size drains them). It is
// idempotent; on a materialized result it is a no-op. The drain runs
// outside the result lock so a concurrent Close can cancel it mid-flight.
func (r *Result) Materialize() error {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return nil
	}
	if r.stream == nil {
		r.mu.Unlock()
		return fmt.Errorf("sql: streaming result already consumed")
	}
	s := r.stream
	r.stream = nil
	r.consumed = true
	pool := r.pool
	r.mu.Unlock()
	if pool == nil {
		pool = newQueryPool(0)
	}
	parts, err := pool.drainAll(s)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.parts = parts
	r.done = true
	r.mu.Unlock()
	return nil
}

// Batches returns the per-partition batch pipelines. On a streaming
// result this hands off the live pipeline — callable once, and the caller
// owns closing the iterators. On a materialized result it returns fresh
// zero-copy iterators every call.
func (r *Result) Batches() ([]BatchIterator, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return partIters(r.parts), nil
	}
	if r.stream == nil {
		return nil, fmt.Errorf("sql: streaming result already consumed")
	}
	s := r.stream
	r.stream = nil
	r.consumed = true
	return s, nil
}

// Parts materializes the result if needed and returns its partitions.
func (r *Result) Parts() ([][]row.Row, error) {
	if err := r.Materialize(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.parts, nil
}

// NumParts returns the partition count (known without materializing).
func (r *Result) NumParts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return len(r.parts)
	}
	return len(r.stream)
}

// Close releases an unconsumed streaming pipeline without draining it,
// and cancels the query's pool so any in-flight parallel pass (a
// Materialize racing on another goroutine, pool tasks between batches)
// tears down instead of completing. Safe on any result, any number of
// times.
func (r *Result) Close() {
	r.mu.Lock()
	s := r.stream
	r.stream = nil
	if s != nil {
		r.consumed = true
	}
	pool := r.pool
	r.mu.Unlock()
	if pool != nil {
		pool.Cancel()
	}
	closeAllIters(s)
}

// NumRows returns the total row count, materializing first if needed.
// It panics if draining the pipeline fails; error-aware callers should
// use Materialize or Parts instead.
func (r *Result) NumRows() int {
	n := 0
	for _, p := range r.mustParts() {
		n += len(p)
	}
	return n
}

// Rows flattens the partitions in worker order (materializing first if
// needed), without charging transfer costs; use Engine.Collect to model
// fetching results to the head node. Panics if draining fails.
func (r *Result) Rows() []row.Row {
	parts := r.mustParts()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]row.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func (r *Result) mustParts() [][]row.Row {
	parts, err := r.Parts()
	if err != nil {
		panic(fmt.Sprintf("sqlengine: draining streaming result: %v", err))
	}
	return parts
}

// Collect gathers a result to the head node, charging network transfer for
// remote partitions, and returns the flattened rows.
func (e *Engine) Collect(r *Result) ([]row.Row, error) {
	parts, err := r.Parts()
	if err != nil {
		return nil, err
	}
	for i, p := range parts {
		if i < len(e.workers) && e.workers[i] != e.head {
			e.cost.ChargeNet(e.workers[i], e.head, partBytes(p))
		}
	}
	return r.Rows(), nil
}

// rowBytes estimates the wire size of a row for cost charging.
func rowBytes(r row.Row) int {
	n := 4 // frame overhead
	for _, v := range r {
		switch v.Kind {
		case row.TypeString:
			if !v.Null {
				n += 5 + len(v.AsString())
			} else {
				n += 1
			}
		case row.TypeBool:
			n += 2
		default:
			n += 9
		}
	}
	return n
}

func partBytes(p []row.Row) int {
	n := 0
	for _, r := range p {
		n += rowBytes(r)
	}
	return n
}

// hashKey appends r's canonical key encoding to scratch and returns the
// grown buffer along with its 64-bit hash. Callers thread the returned
// buffer back in across rows, so repartitioning hashes without a per-row
// allocation (the old implementation built a new fnv.New64a and re-encoded
// every value into a fresh buffer per call).
func hashKey(scratch []byte, r row.Row) ([]byte, uint64) {
	scratch = row.AppendKey(scratch[:0], r)
	return scratch, row.Hash64(scratch)
}

// appendEvalKey evaluates the key expressions over r and appends their
// canonical encoding to dst (numerics normalized so BIGINT 2 joins DOUBLE
// 2.0). nullKey reports a NULL component, which never matches. The caller
// owns dst and reuses it row after row — this replaces evalKey's per-row
// values slice + string conversion.
func appendEvalKey(dst []byte, fns []evalFn, r row.Row) (key []byte, nullKey bool, err error) {
	for _, fn := range fns {
		v, err := fn(r)
		if err != nil {
			return dst, false, err
		}
		if v.Null {
			return dst, true, nil
		}
		dst = row.AppendNormKeyValue(dst, v)
	}
	return dst, false, nil
}
