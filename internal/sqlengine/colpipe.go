package sqlengine

import (
	"strings"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// Columnar operator pipeline. Operators exchange *row.ColBatch through
// NextCol under the same validity contract as row batches: a batch (and
// every vector aliasing it) is valid only until the following NextCol.
// Filters refine the batch's selection vector in place — zero copies —
// and projections assemble output batches from kernel result vectors.
// colToRows materializes owning rows at the boundary, so every existing
// row consumer keeps working unchanged.

// colIterator is the column-major twin of BatchIterator.
type colIterator interface {
	NextCol() (b *row.ColBatch, ok bool, err error)
	Close()
}

// colScanIter transposes a row iterator's batches into a reused pooled
// ColBatch — the row→column boundary at the bottom of a columnar chain.
type colScanIter struct {
	in    BatchIterator
	types []row.Type
	buf   *row.ColBatch
	done  bool
}

func (s *colScanIter) NextCol() (*row.ColBatch, bool, error) {
	if s.done {
		return nil, false, nil
	}
	b, ok, err := s.in.Next()
	if err != nil || !ok {
		s.done = true
		return nil, false, err
	}
	if s.buf == nil {
		s.buf = row.GetColBatch(s.types)
	}
	s.buf.FromRows(s.types, b)
	return s.buf, true, nil
}

func (s *colScanIter) Close() {
	s.done = true
	s.in.Close()
	if s.buf != nil {
		row.PutColBatch(s.buf)
		s.buf = nil
	}
}

// colFilterIter evaluates a boolean kernel over each batch and narrows the
// selection vector to the surviving positions; no rows move. Batches left
// with zero live rows are skipped, like the row filter's empty batches.
type colFilterIter struct {
	in   colIterator
	pred vecFn
	ctx  vecCtx
	sel  []int32
	done bool
}

func newColFilterIter(in colIterator, pred vecFn) *colFilterIter {
	return &colFilterIter{in: in, pred: pred}
}

func (f *colFilterIter) NextCol() (*row.ColBatch, bool, error) {
	if f.done {
		return nil, false, nil
	}
	for {
		b, ok, err := f.in.NextCol()
		if err != nil || !ok {
			f.done = true
			return nil, false, err
		}
		f.ctx.reclaim()
		v, err := f.pred(&f.ctx, b, b.Sel())
		if err != nil {
			f.done = true
			return nil, false, err
		}
		sel := f.sel[:0]
		vnull := v.HasNulls()
		if cur := b.Sel(); cur != nil {
			for _, pp := range cur {
				p := int(pp)
				if (!vnull || !v.Null(p)) && v.Bools[p] {
					sel = append(sel, pp)
				}
			}
		} else {
			for p := 0; p < b.FullLen(); p++ {
				if (!vnull || !v.Null(p)) && v.Bools[p] {
					sel = append(sel, int32(p))
				}
			}
		}
		f.sel = sel
		if len(sel) == 0 {
			continue
		}
		b.SetSel(sel)
		return b, true, nil
	}
}

func (f *colFilterIter) Close() {
	f.done = true
	f.in.Close()
}

// colProjectIter evaluates the compiled select-list kernels over each
// batch and assembles the output batch from the result vectors (zero-copy
// struct-header adoption; the selection vector carries through).
type colProjectIter struct {
	in    colIterator
	fns   []vecFn
	types []row.Type
	ctx   vecCtx
	out   *row.ColBatch
	done  bool
}

func newColProjectIter(in colIterator, fns []vecFn, types []row.Type) *colProjectIter {
	return &colProjectIter{in: in, fns: fns, types: types}
}

func (p *colProjectIter) NextCol() (*row.ColBatch, bool, error) {
	if p.done {
		return nil, false, nil
	}
	b, ok, err := p.in.NextCol()
	if err != nil || !ok {
		p.done = true
		return nil, false, err
	}
	p.ctx.reclaim()
	if p.out == nil {
		// Deliberately NOT pooled: passthrough kernels return input column
		// headers, so out's vectors can alias the scan's pooled batch —
		// returning both to the pool would hand the same backing arrays to
		// two future owners.
		p.out = row.NewColBatch(p.types)
	}
	for i, fn := range p.fns {
		v, err := fn(&p.ctx, b, b.Sel())
		if err != nil {
			p.done = true
			return nil, false, err
		}
		p.out.SetCol(i, v)
	}
	p.out.SetFullLen(b.FullLen())
	p.out.SetSel(b.Sel())
	return p.out, true, nil
}

func (p *colProjectIter) Close() {
	p.done = true
	p.in.Close()
}

// vecPredicate compiles the columnar twin of a boolean predicate when the
// engine runs columnar; ok=false keeps the row-at-a-time filter.
func (e *Engine) vecPredicate(ex Expr, sc *scope) (vecFn, bool) {
	if !e.columnar {
		return nil, false
	}
	fn, t, err := compileVec(ex, sc, e.registry)
	if err != nil || t != row.TypeBool {
		return nil, false
	}
	return fn, true
}

// vecExprs compiles a kernel per expression, or reports false when the
// engine runs row-at-a-time (compileVec itself never rejects an expression
// the row compiler accepts — unvectorizable shapes get fallback bodies).
func (e *Engine) vecExprs(exprs []Expr, sc *scope) ([]vecFn, bool) {
	if !e.columnar || len(exprs) == 0 {
		return nil, false
	}
	fns := make([]vecFn, len(exprs))
	for i, ex := range exprs {
		fn, _, err := compileVec(ex, sc, e.registry)
		if err != nil {
			return nil, false
		}
		fns[i] = fn
	}
	return fns, true
}

// vecSelectList compiles the columnar twin of a select list, mirroring
// compileSelectList's star expansion with column-passthrough kernels
// (zero-copy: the output batch adopts the input vector header). The caller
// has already validated the list via compileSelectList, so resolution
// errors here only demote to the row path.
func (e *Engine) vecSelectList(items []SelectItem, sc *scope) ([]vecFn, bool) {
	if !e.columnar {
		return nil, false
	}
	var fns []vecFn
	for _, item := range items {
		if item.Star {
			q := strings.ToLower(item.StarQualifier)
			for _, bd := range sc.bindings {
				if q != "" && bd.name != q {
					continue
				}
				for ci := range bd.schema.Cols {
					idx := bd.offset + ci
					fns = append(fns, func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
						return b.Col(idx), nil
					})
				}
			}
			continue
		}
		fn, _, err := compileVec(item.Expr, sc, e.registry)
		if err != nil {
			return nil, false
		}
		fns = append(fns, fn)
	}
	return fns, true
}

// colProbeIter is the columnar hash-join probe: key kernels run over the
// whole batch at its live positions, the per-position norm keys probe the
// sharded build table, and a probe row is materialized only on a match.
// It produces row batches — the concat closure makes owning output rows,
// same as the row probe.
type colProbeIter struct {
	in     colIterator
	keyFns []vecFn
	ctx    vecCtx
	build  *buildTable // read-only, shared across probe workers
	concat func(probeRow, buildRow row.Row) row.Row
	cost   *cluster.CostModel
	node   *cluster.Node

	kvecs    []*row.Vector
	keyFlat  []byte
	keyOffs  []uint32
	nullKey  []bool
	probeRow row.Row
	buf      []row.Row
	done     bool
}

func (p *colProbeIter) Next() (RowBatch, bool, error) {
	if p.done {
		return nil, false, nil
	}
	for {
		b, ok, err := p.in.NextCol()
		if err != nil || !ok {
			p.done = true
			return nil, false, err
		}
		// Probing the batch is one pass over it.
		if p.node != nil {
			p.cost.ChargeProc(p.node, colBatchBytes(b))
		}
		p.ctx.reclaim()
		p.kvecs = p.kvecs[:0]
		for _, fn := range p.keyFns {
			v, err := fn(&p.ctx, b, b.Sel())
			if err != nil {
				p.done = true
				return nil, false, err
			}
			p.kvecs = append(p.kvecs, v)
		}
		// Pack the live rows' norm keys back-to-back; a NULL component never
		// matches, so those rows pack an empty key and are skipped below.
		k := b.Len()
		p.keyFlat = p.keyFlat[:0]
		p.keyOffs = append(p.keyOffs[:0], 0)
		p.nullKey = p.nullKey[:0]
		for si := 0; si < k; si++ {
			pp := b.SelPos(si)
			null := false
			for _, kv := range p.kvecs {
				if kv.Null(pp) {
					null = true
					break
				}
			}
			p.nullKey = append(p.nullKey, null)
			if !null {
				for _, kv := range p.kvecs {
					p.keyFlat = row.AppendNormVectorKey(p.keyFlat, kv, pp)
				}
			}
			p.keyOffs = append(p.keyOffs, uint32(len(p.keyFlat)))
		}
		out := p.buf[:0]
		for si := 0; si < k; si++ {
			if p.nullKey[si] {
				continue
			}
			bucket := p.build.bucket(p.keyFlat[p.keyOffs[si]:p.keyOffs[si+1]])
			if len(bucket) == 0 {
				continue
			}
			p.probeRow = b.RowAt(si, p.probeRow)
			for _, br := range bucket {
				out = append(out, p.concat(p.probeRow, br))
			}
		}
		p.buf = out
		if len(out) == 0 {
			continue
		}
		return RowBatch(out), true, nil
	}
}

func (p *colProbeIter) Close() {
	p.done = true
	p.in.Close()
}

// colToRows is the row-view shim over a columnar chain: each batch's live
// rows are materialized as owning copies (flat value backing, one string
// slab copy per VARCHAR column), so downstream retention — drainBatches,
// sort runs, result materialization — stays safe while the column vectors
// recycle underneath.
type colToRows struct {
	c    colIterator
	rows []row.Row
	done bool
}

func rowsIter(c colIterator) BatchIterator { return &colToRows{c: c} }

func (a *colToRows) Next() (RowBatch, bool, error) {
	if a.done {
		return nil, false, nil
	}
	for {
		b, ok, err := a.c.NextCol()
		if err != nil || !ok {
			a.done = true
			return nil, false, err
		}
		if b.Len() == 0 {
			continue
		}
		a.rows = b.Rows(a.rows[:0])
		return RowBatch(a.rows), true, nil
	}
}

func (a *colToRows) Close() {
	a.done = true
	a.c.Close()
}

// asColIterator lifts a row iterator into the columnar world: a colToRows
// shim unwraps to its columnar core (no materialize→re-transpose bounce);
// anything else gets a transposing scan.
func asColIterator(it BatchIterator, types []row.Type) colIterator {
	if w, ok := it.(*colToRows); ok && len(w.rows) == 0 {
		return w.c
	}
	return &colScanIter{in: it, types: types}
}

// chargeColIter is chargeIter's columnar twin — cost charging must survive
// the columnar fast path, so unwrapping a charge wrapper re-wraps its
// accounting around the columnar core.
type chargeColIter struct {
	c    colIterator
	cost *cluster.CostModel
	node *cluster.Node
}

func (c *chargeColIter) NextCol() (*row.ColBatch, bool, error) {
	b, ok, err := c.c.NextCol()
	if ok {
		c.cost.ChargeProc(c.node, colBatchBytes(b))
	}
	return b, ok, err
}

func (c *chargeColIter) Close() { c.c.Close() }

// colBatchBytes estimates the wire bytes of a batch's live rows — the
// columnar analog of partBytes, using the same per-value estimate.
func colBatchBytes(b *row.ColBatch) int {
	k := b.Len()
	n := k * 4 // frame overhead
	for c := 0; c < b.NumCols(); c++ {
		col := b.Col(c)
		switch col.Type() {
		case row.TypeString:
			for si := 0; si < k; si++ {
				p := b.SelPos(si)
				if col.Null(p) {
					n++
				} else {
					n += 5 + len(col.Bytes(p))
				}
			}
		case row.TypeBool:
			n += k * 2
		default:
			n += k * 9
		}
	}
	return n
}

// unwrapColCore finds the columnar core of a row-iterator chain, when one
// exists and no side effects would be lost: colToRows peels off directly,
// and a chargeIter re-wraps as chargeColIter so cost accounting continues.
func unwrapColCore(it BatchIterator) (colIterator, bool) {
	switch x := it.(type) {
	case *colToRows:
		return x.c, true
	case *chargeIter:
		if inner, ok := unwrapColCore(x.in); ok {
			return &chargeColIter{c: inner, cost: x.cost, node: x.node}, true
		}
	}
	return nil, false
}

// ColBatchSource yields column-major batches under the batch validity
// contract. It is the exported face of the columnar pipeline for
// boundary consumers (the stream sender encodes vector runs straight into
// wire blocks through it).
type ColBatchSource interface {
	NextColBatch() (*row.ColBatch, bool, error)
	Close()
}

type colSource struct{ c colIterator }

func (s colSource) NextColBatch() (*row.ColBatch, bool, error) { return s.c.NextCol() }
func (s colSource) Close()                                     { s.c.Close() }

// AsColBatchSource recognizes a row Iterator that is a thin cursor over a
// columnar pipeline and returns the columnar view, or false when the
// iterator has already buffered rows or has no columnar core. Callers
// that get a source must consume it instead of the row iterator.
func AsColBatchSource(it Iterator) (ColBatchSource, bool) {
	a, ok := it.(*batchRows)
	if !ok || a.i < len(a.cur) {
		return nil, false
	}
	c, ok := unwrapColCore(a.in)
	if !ok {
		return nil, false
	}
	return colSource{c}, true
}
