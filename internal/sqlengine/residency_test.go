package sqlengine

import (
	"sync"
	"sync/atomic"
	"testing"

	"sqlml/internal/row"
)

// This file is the dynamic twin of the batchretain analyzer: the static
// pass forbids retaining a RowBatch past the next Next call, and these
// tests prove the PR-4 operators (hash-join probe, grouped-agg merge,
// parallel ORDER BY) actually honor that contract — both that they stay
// O(batch)-resident where they stream, and that they survive a producer
// which aggressively recycles (and poisons) its batch container.

// registerModGenerator installs a per-partition UDF emitting n rows with
// v = i%mod + 1, counting every emit in the given counter (may be nil).
// The +1 lines the values up with the userid domain of the paper's users
// table, so every generated row joins to exactly one build row.
func registerModGenerator(t *testing.T, e *Engine, name string, n, mod int, emitted *atomic.Int64) {
	t.Helper()
	err := e.Registry().RegisterTable(&TableUDF{
		Name:         name,
		PerPartition: true,
		OutSchema:    genSchema,
		Fn: func(ctx *UDFContext, in Iterator, args []row.Value, emit func(row.Row) error) error {
			for i := 0; i < n; i++ {
				if emitted != nil {
					emitted.Add(1)
				}
				if err := emit(row.Row{row.Int(int64(i%mod + 1))}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestJoinProbeHoldsOnlyBatchResidentRows extends the pipeline residency
// check to the hash-join probe: the build side (users, 5 rows) is drained
// as the pipeline-breaker it is, but the probe side — a generator 16×
// the batch size per partition — must stream through probeIter without
// accumulating. Every generated row matches exactly one build row, so
// join output rows equal probe input rows and emitted−consumed measures
// the probe-side rows in flight.
func TestJoinProbeHoldsOnlyBatchResidentRows(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	const perPartition = 16 * DefaultBatchSize
	var emitted, consumed, peak atomic.Int64
	registerModGenerator(t, e, "gen_probe", perPartition, 5, &emitted)

	res, err := e.QueryStream(
		"SELECT u.userid FROM TABLE(gen_probe(users)) g JOIN users u ON g.v = u.userid")
	if err != nil {
		t.Fatal(err)
	}
	iters, err := res.Batches()
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, len(iters))
	var wg sync.WaitGroup
	for _, it := range iters {
		wg.Add(1)
		go func(it BatchIterator) {
			defer wg.Done()
			defer it.Close()
			for {
				b, ok, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return
				}
				consumed.Add(int64(len(b)))
				inflight := emitted.Load() - consumed.Load()
				for {
					p := peak.Load()
					if inflight <= p || peak.CompareAndSwap(p, inflight) {
						break
					}
				}
			}
		}(it)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(e.NumWorkers()) * perPartition
	if consumed.Load() != total {
		t.Fatalf("consumed %d join rows, want %d", consumed.Load(), total)
	}
	// The probe pipeline is one stage deeper than the plain scan→UDF
	// pipeline, so allow a little more slack; anything near the full
	// relation means probeIter (or a stage around it) materialized.
	bound := int64(e.NumWorkers()) * 6 * DefaultBatchSize
	if p := peak.Load(); p > bound {
		t.Errorf("peak in-flight probe rows = %d, want <= %d (O(batch), not O(dataset)=%d)",
			p, bound, total)
	}
}

// recyclingBatches is a hostile-but-contract-abiding producer: it reuses
// one RowBatch container for every Next call and, before refilling it,
// poisons the slots handed out last time. Any downstream operator that
// kept a reference to the container (instead of copying rows out before
// its next pull) reads poison rows and produces wrong results.
type recyclingBatches struct {
	rows   []row.Row
	size   int
	i      int
	buf    RowBatch
	poison row.Row
}

func newRecyclingBatches(rows []row.Row, batchSize int) *recyclingBatches {
	return &recyclingBatches{
		rows:   rows,
		size:   batchSize,
		poison: row.Row{row.Int(-987654321)},
	}
}

func (rc *recyclingBatches) Next() (RowBatch, bool, error) {
	for j := range rc.buf {
		rc.buf[j] = rc.poison
	}
	if rc.i >= len(rc.rows) {
		return nil, false, nil
	}
	end := rc.i + rc.size
	if end > len(rc.rows) {
		end = len(rc.rows)
	}
	out := rc.buf[:0]
	out = append(out, rc.rows[rc.i:end]...)
	rc.i = end
	rc.buf = out
	return out, true, nil
}

func (rc *recyclingBatches) Close() { rc.i = len(rc.rows) }

// intRows builds single-column rows from the given values.
func intRows(vs ...int64) []row.Row {
	out := make([]row.Row, len(vs))
	for i, v := range vs {
		out[i] = row.Row{row.Int(v)}
	}
	return out
}

// TestProbeIterUnderBatchRecycling drives probeIter directly with a
// poisoning recycling producer, the way hashJoin wires it, and checks the
// exact join output. probeIter itself also reuses its output buffer, so
// the drain below copies rows out batch by batch — the same spread-append
// discipline drainBatches uses.
func TestProbeIterUnderBatchRecycling(t *testing.T) {
	// Build side: keys 1..3, one row each carrying key*10 as payload.
	table := NewHashTable(0)
	var buckets [][]row.Row
	var keyBuf []byte
	keyFn := func(r row.Row) (row.Value, error) { return r[0], nil }
	for k := int64(1); k <= 3; k++ {
		br := row.Row{row.Int(k), row.Int(k * 10)}
		key, nullKey, err := appendEvalKey(keyBuf[:0], []evalFn{keyFn}, br)
		keyBuf = key
		if err != nil {
			t.Fatal(err)
		}
		if nullKey {
			t.Fatal("unexpected null key")
		}
		idx, added := table.Insert(key)
		if added {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], br)
	}

	// Probe side: 2, 5 (no match), 1, 3, 2 in batches of 2, through a
	// container-recycling producer.
	probe := newRecyclingBatches(intRows(2, 5, 1, 3, 2), 2)
	p := &probeIter{
		in:     probe,
		keyFns: []evalFn{keyFn},
		build:  &buildTable{shards: []*HashTable{table}, buckets: [][][]row.Row{buckets}},
		concat: func(probeRow, buildRow row.Row) row.Row {
			out := make(row.Row, 0, len(probeRow)+len(buildRow))
			out = append(out, probeRow...)
			return append(out, buildRow...)
		},
	}
	got, err := drainBatches(p)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{2, 20}, {1, 10}, {3, 30}, {2, 20}}
	if len(got) != len(want) {
		t.Fatalf("join produced %d rows, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i][0].AsInt() != w[0] || got[i][2].AsInt() != w[1] {
			t.Errorf("row %d = %v, want (%d, _, %d)", i, got[i], w[0], w[1])
		}
	}
}

// TestOrderByUnderBatchRecycling drains recycling producers the way
// orderBy does (drainBatches per partition), sorts each run, and merges —
// checking the exact global order and the cross-partition stability rule
// (ties break toward the lower partition index).
func TestOrderByUnderBatchRecycling(t *testing.T) {
	parts := [][]row.Row{
		intRows(3, 1, 7, 3),
		intRows(2, 3, 9),
	}
	specs := []orderSpec{{fn: func(r row.Row) (row.Value, error) { return r[0], nil }}}

	runs := make([]*sortedRun, len(parts))
	for i, part := range parts {
		drained, err := drainBatches(newRecyclingBatches(part, 2))
		if err != nil {
			t.Fatal(err)
		}
		run, err := sortRun(specs, drained)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = run
	}
	merged := mergeRuns(specs, runs)
	want := []int64{1, 2, 3, 3, 3, 7, 9}
	if len(merged) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(merged), len(want))
	}
	for i, w := range want {
		if merged[i][0].AsInt() != w {
			t.Errorf("merged[%d] = %d, want %d", i, merged[i][0].AsInt(), w)
		}
	}
}

// TestAggregateAndOrderByOverRecyclingProducer runs GROUP BY and ORDER BY
// over a table-UDF source end to end. udfPipe — the operator beneath
// TABLE(...) — reuses its batch container between Next calls, so the
// streaming grouped-agg merge and the parallel sort both consume from a
// genuinely recycling producer; exact results prove they copied what they
// kept.
func TestAggregateAndOrderByOverRecyclingProducer(t *testing.T) {
	e := newTestEngine(t)
	loadPaperTables(t, e)
	const mod = 3
	const perPartition = mod * DefaultBatchSize // divisible by mod: equal group sizes
	registerModGenerator(t, e, "gen_mod", perPartition, mod, nil)

	// Grouped aggregation: mod groups, each with exactly
	// workers × perPartition/mod rows, values 1..mod summing per group to
	// count × v.
	res, err := e.Query(
		"SELECT v, COUNT(*) AS n, SUM(v) AS s FROM TABLE(gen_mod(users)) GROUP BY v ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != mod {
		t.Fatalf("groups = %d, want %d", len(rows), mod)
	}
	perGroup := int64(e.NumWorkers()) * perPartition / mod
	for i, r := range rows {
		v := int64(i + 1)
		if r[0].AsInt() != v || r[1].AsInt() != perGroup || r[2].AsInt() != perGroup*v {
			t.Errorf("group %d = %v, want (%d, %d, %d)", i, r, v, perGroup, perGroup*v)
		}
	}

	// Parallel ORDER BY DESC over the same recycling source: the merged
	// output must be exactly the generated multiset in non-increasing
	// order.
	res, err = e.Query("SELECT v FROM TABLE(gen_mod(users)) ORDER BY v DESC")
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Rows()
	total := e.NumWorkers() * perPartition
	if len(rows) != total {
		t.Fatalf("rows = %d, want %d", len(rows), total)
	}
	counts := make(map[int64]int64)
	prev := int64(mod + 1)
	for i, r := range rows {
		v := r[0].AsInt()
		if v > prev {
			t.Fatalf("row %d: %d after %d — not descending", i, v, prev)
		}
		prev = v
		counts[v]++
	}
	for v := int64(1); v <= mod; v++ {
		if counts[v] != perGroup {
			t.Errorf("value %d appears %d times, want %d", v, counts[v], perGroup)
		}
	}
	if len(counts) != mod {
		t.Errorf("distinct values = %d, want %d", len(counts), mod)
	}
}
