package sqlengine

import (
	"strings"
	"testing"

	"sqlml/internal/row"
)

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", sql, err)
	}
	return sel
}

func TestParsePaperExampleQuery(t *testing.T) {
	sel := mustSelect(t, `
		SELECT U.age, U.gender, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA'`)
	if len(sel.Items) != 4 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if len(sel.From) != 2 || sel.From[0].Table != "carts" || sel.From[0].Alias != "C" {
		t.Errorf("from = %+v", sel.From)
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if conj[0].String() != "(c.userid = u.userid)" {
		t.Errorf("join cond = %s", conj[0])
	}
	if conj[1].String() != "(u.country = 'USA')" {
		t.Errorf("filter = %s", conj[1])
	}
}

func TestParseSelectAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT a AS x, b y, c FROM t")
	if sel.Items[0].Alias != "x" || sel.Items[1].Alias != "y" || sel.Items[2].Alias != "" {
		t.Errorf("aliases: %+v", sel.Items)
	}
}

func TestParseStarForms(t *testing.T) {
	sel := mustSelect(t, "SELECT *, t.* FROM t")
	if !sel.Items[0].Star || sel.Items[0].StarQualifier != "" {
		t.Errorf("item0 = %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].StarQualifier != "t" {
		t.Errorf("item1 = %+v", sel.Items[1])
	}
}

func TestParseExplicitJoinDesugarsToWhere(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id WHERE t1.x > 5")
	if len(sel.From) != 2 {
		t.Fatalf("from = %+v", sel.From)
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %v", conj)
	}
}

func TestParseTableFunction(t *testing.T) {
	sel := mustSelect(t, "SELECT colname, colval FROM TABLE(distinct_values(T, 'gender,abandoned')) AS dv")
	if sel.From[0].Func == nil {
		t.Fatal("expected table function")
	}
	fn := sel.From[0].Func
	if fn.Name != "distinct_values" || len(fn.Args) != 2 {
		t.Fatalf("fn = %+v", fn)
	}
	if fn.Args[0].Table != "T" {
		t.Errorf("arg0 = %+v", fn.Args[0])
	}
	if fn.Args[1].Lit == nil || fn.Args[1].Lit.V.AsString() != "gender,abandoned" {
		t.Errorf("arg1 = %+v", fn.Args[1])
	}
	if sel.From[0].Name() != "dv" {
		t.Errorf("binding name = %q", sel.From[0].Name())
	}
}

func TestParseGroupByOrderByLimit(t *testing.T) {
	sel := mustSelect(t, `SELECT gender, COUNT(*), AVG(amount) a
		FROM t GROUP BY gender ORDER BY gender DESC, a LIMIT 10`)
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].String() != "gender" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
	fc, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || !fc.Star {
		t.Errorf("COUNT(*) not parsed: %+v", sel.Items[1].Expr)
	}
}

func TestParseDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT colname, colvalue FROM v")
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestParsePredicates(t *testing.T) {
	cases := map[string]string{
		"SELECT a FROM t WHERE a IS NULL":             "(a IS NULL)",
		"SELECT a FROM t WHERE a IS NOT NULL":         "(a IS NOT NULL)",
		"SELECT a FROM t WHERE a IN (1, 2, 3)":        "(a IN (1, 2, 3))",
		"SELECT a FROM t WHERE a NOT IN (1)":          "(a NOT IN (1))",
		"SELECT a FROM t WHERE NOT a = 1":             "(NOT (a = 1))",
		"SELECT a FROM t WHERE a != 1":                "(a <> 1)",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 5":     "((a >= 1) AND (a <= 5))",
		"SELECT a FROM t WHERE a = 1 OR b = 2":        "((a = 1) OR (b = 2))",
		"SELECT a FROM t WHERE a < 1 AND b >= 2.5":    "((a < 1) AND (b >= 2.5))",
		"SELECT a FROM t WHERE name = 'O''Brien'":     "(name = 'O''Brien')",
		"SELECT a FROM t WHERE a + 1 * 2 = 7":         "((a + (1 * 2)) = 7)",
		"SELECT a FROM t WHERE (a + 1) * 2 = 7":       "(((a + 1) * 2) = 7)",
		"SELECT a FROM t WHERE a = -3":                "(a = -3)",
		"SELECT a FROM t WHERE flag = TRUE":           "(flag = true)",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2": "(NOT ((a >= 1) AND (a <= 2)))",
	}
	for sql, want := range cases {
		sel := mustSelect(t, sql)
		if got := sel.Where.String(); got != want {
			t.Errorf("%s:\n  got  %s\n  want %s", sql, got, want)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")
	want := "(((a = 1) AND (b = 2)) OR (c = 3))"
	if got := sel.Where.String(); got != want {
		t.Errorf("precedence: got %s want %s", got, want)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE users (userid BIGINT, age BIGINT, gender VARCHAR, country VARCHAR)")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok || ct.Name != "users" || len(ct.Cols) != 4 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if ct.Cols[1].Type != row.TypeInt || ct.Cols[2].Type != row.TypeString {
		t.Errorf("col types: %+v", ct.Cols)
	}
}

func TestParseCreateTableAsSelect(t *testing.T) {
	stmt, err := Parse("CREATE TABLE m AS SELECT DISTINCT colname FROM v")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.AsSelect == nil || !ct.AsSelect.Distinct {
		t.Fatalf("CTAS not parsed: %+v", ct)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseDrop(t *testing.T) {
	stmt, err := Parse("DROP TABLE old;")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Name != "old" {
		t.Errorf("drop = %+v", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t LIMIT x",
		"SELECT a t1 FROM t trailing garbage",
		"INSERT INTO t",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"SELECT a FROM t WHERE name = 'unterminated",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT a FROM TABLE(f(1 + 2))", // table func args must be literals
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestConjunctsAndAll(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3")
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	rebuilt := AndAll(conj)
	if !strings.Contains(rebuilt.String(), "(a = 1)") {
		t.Errorf("AndAll lost a conjunct: %s", rebuilt)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if got := Conjuncts(nil); got != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestParseComments(t *testing.T) {
	sel := mustSelect(t, `SELECT a -- trailing comment
		FROM t -- another
		WHERE a = 1`)
	if sel.Where == nil {
		t.Error("comment swallowed the WHERE clause")
	}
}
