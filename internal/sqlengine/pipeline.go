package sqlengine

import (
	"errors"
	"sync"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// errPipeClosed is the cancellation signal delivered to a running table
// UDF through its emit function when the consumer closes the pipeline
// early (e.g. LIMIT, or a first-error abort downstream).
var errPipeClosed = errors.New("sql: pipeline closed")

// filterIter streams a predicate over its input, yielding only batches
// with at least one surviving row. The returned batch is reused between
// Next calls (rows themselves are not copied).
type filterIter struct {
	in   BatchIterator
	pred evalFn
	buf  RowBatch
	done bool
}

func newFilterIter(in BatchIterator, pred evalFn) BatchIterator {
	return &filterIter{in: in, pred: pred}
}

func (f *filterIter) Next() (RowBatch, bool, error) {
	if f.done {
		return nil, false, nil
	}
	for {
		b, ok, err := f.in.Next()
		if err != nil || !ok {
			f.done = true
			return nil, false, err
		}
		out := f.buf[:0]
		for _, r := range b {
			v, err := f.pred(r)
			if err != nil {
				f.done = true
				return nil, false, err
			}
			if !v.Null && v.AsBool() {
				out = append(out, r)
			}
		}
		f.buf = out
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

func (f *filterIter) Close() {
	f.done = true
	f.in.Close()
}

// projectIter evaluates the compiled select list batch-at-a-time.
type projectIter struct {
	in   BatchIterator
	fns  []evalFn
	buf  RowBatch
	done bool
}

func newProjectIter(in BatchIterator, fns []evalFn) BatchIterator {
	return &projectIter{in: in, fns: fns}
}

func (p *projectIter) Next() (RowBatch, bool, error) {
	if p.done {
		return nil, false, nil
	}
	b, ok, err := p.in.Next()
	if err != nil || !ok {
		p.done = true
		return nil, false, err
	}
	out := p.buf[:0]
	for _, r := range b {
		or := make(row.Row, len(p.fns))
		for j, fn := range p.fns {
			v, err := fn(r)
			if err != nil {
				p.done = true
				return nil, false, err
			}
			or[j] = v
		}
		out = append(out, or)
	}
	p.buf = out
	return out, true, nil
}

func (p *projectIter) Close() {
	p.done = true
	p.in.Close()
}

// probeIter is the streaming probe side of a hash join: the build side has
// been drained into a sharded buildTable (or buildAll for a key-less
// join), probing is one pipelined pass. Each consumed input batch is
// charged as processing work on the probe worker. Probe keys are encoded
// into a per-iterator scratch buffer, so probing allocates only for
// output rows.
type probeIter struct {
	in       BatchIterator
	keyFns   []evalFn    // empty => broadcast nested-loop join
	build    *buildTable // read-only, shared across probe workers
	buildAll []row.Row
	concat   func(probeRow, buildRow row.Row) row.Row
	cost     *cluster.CostModel
	node     *cluster.Node
	keyBuf   []byte
	buf      RowBatch
	done     bool
}

func (p *probeIter) Next() (RowBatch, bool, error) {
	if p.done {
		return nil, false, nil
	}
	for {
		b, ok, err := p.in.Next()
		if err != nil || !ok {
			p.done = true
			return nil, false, err
		}
		if p.node != nil {
			p.cost.ChargeProc(p.node, partBytes(b))
		}
		out := p.buf[:0]
		for _, r := range b {
			if len(p.keyFns) == 0 {
				for _, br := range p.buildAll {
					out = append(out, p.concat(r, br))
				}
				continue
			}
			key, nullKey, err := appendEvalKey(p.keyBuf[:0], p.keyFns, r)
			p.keyBuf = key
			if err != nil {
				p.done = true
				return nil, false, err
			}
			if nullKey {
				continue
			}
			for _, br := range p.build.bucket(key) {
				out = append(out, p.concat(r, br))
			}
		}
		p.buf = out
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

func (p *probeIter) Close() {
	p.done = true
	p.in.Close()
}

// chargeIter charges each consumed batch as one processing pass over its
// bytes — the streaming equivalent of the old per-partition upfront charge.
type chargeIter struct {
	in   BatchIterator
	cost *cluster.CostModel
	node *cluster.Node
}

func (c *chargeIter) Next() (RowBatch, bool, error) {
	b, ok, err := c.in.Next()
	if ok {
		c.cost.ChargeProc(c.node, partBytes(b))
	}
	return b, ok, err
}

func (c *chargeIter) Close() { c.in.Close() }

// udfPipe runs a push-style table UDF as a pull-style batch operator: the
// UDF executes in its own goroutine, emitted rows are batched onto a
// channel, and closing the iterator cancels the UDF through its emit
// function. The goroutine starts lazily on the first Next, so building a
// plan (or abandoning it) spawns nothing.
type udfPipe struct {
	input BatchIterator
	run   func(in Iterator, emit func(row.Row) error) error

	mu      sync.Mutex
	started bool
	closed  bool

	out    chan RowBatch
	errc   chan error
	cancel chan struct{}
	done   chan struct{}
}

func newUDFPipe(input BatchIterator, run func(in Iterator, emit func(row.Row) error) error) *udfPipe {
	return &udfPipe{
		input:  input,
		run:    run,
		out:    make(chan RowBatch, 1),
		errc:   make(chan error, 1),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func (p *udfPipe) start() {
	go func() {
		defer close(p.done)
		defer p.input.Close()
		defer close(p.out)
		batch := make(RowBatch, 0, DefaultBatchSize)
		send := func(b RowBatch) error {
			select {
			case p.out <- b:
				return nil
			case <-p.cancel:
				return errPipeClosed
			}
		}
		emit := func(r row.Row) error {
			batch = append(batch, r)
			if len(batch) >= DefaultBatchSize {
				if err := send(batch); err != nil {
					return err
				}
				batch = make(RowBatch, 0, DefaultBatchSize)
			}
			return nil
		}
		err := p.run(&batchRows{in: p.input}, emit)
		if err == nil && len(batch) > 0 {
			err = send(batch)
		}
		if err != nil && !errors.Is(err, errPipeClosed) {
			p.errc <- err
		}
	}()
}

// prime starts the UDF goroutine ahead of the first Next. The pool's
// bounded drains call this on every partition before claiming drain tasks:
// UDFs that rendezvous across partitions (the stream sender's coordinator
// barrier) then make progress from their own goroutines no matter how few
// pool workers are pulling, including the Parallelism: 1 oracle.
func (p *udfPipe) prime() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.started {
		return
	}
	p.started = true
	p.start()
}

func (p *udfPipe) Next() (RowBatch, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, nil
	}
	if !p.started {
		p.started = true
		p.start()
	}
	p.mu.Unlock()
	b, ok := <-p.out
	if ok {
		return b, true, nil
	}
	select {
	case err := <-p.errc:
		return nil, false, err
	default:
		return nil, false, nil
	}
}

// Close cancels the UDF (if running) and waits for its goroutine to exit,
// so early-terminating consumers leak nothing.
func (p *udfPipe) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	p.mu.Unlock()
	if !started {
		p.input.Close()
		return
	}
	close(p.cancel)
	for range p.out {
	}
	<-p.done
}

// assignedSplit is one external-table split assigned to a worker.
type assignedSplit struct {
	fm    *hadoopfmt.TextTableFormat
	split hadoopfmt.InputSplit
}

// externalScan streams a worker's assigned DFS splits batch-at-a-time —
// an external scan never materializes its partition.
type externalScan struct {
	assigned []assignedSplit
	node     *cluster.Node
	idx      int
	rr       hadoopfmt.RecordReader
	done     bool
}

func (s *externalScan) Next() (RowBatch, bool, error) {
	if s.done {
		return nil, false, nil
	}
	batch := make(RowBatch, 0, DefaultBatchSize)
	for len(batch) < DefaultBatchSize {
		if s.rr == nil {
			if s.idx >= len(s.assigned) {
				break
			}
			a := s.assigned[s.idx]
			rr, err := a.fm.Open(a.split, s.node)
			if err != nil {
				s.done = true
				return nil, false, err
			}
			s.rr = rr
		}
		r, ok, err := s.rr.Next()
		if err != nil {
			// The read error is what the caller needs; teardown is best-effort.
			_ = s.rr.Close()
			s.rr = nil
			s.done = true
			return nil, false, err
		}
		if !ok {
			err := s.rr.Close()
			s.rr = nil
			s.idx++
			if err != nil {
				s.done = true
				return nil, false, err
			}
			continue
		}
		batch = append(batch, r)
	}
	if len(batch) == 0 {
		s.done = true
		return nil, false, nil
	}
	return batch, true, nil
}

func (s *externalScan) Close() {
	s.done = true
	if s.rr != nil {
		// BatchIterator.Close has no error to carry it up.
		_ = s.rr.Close()
		s.rr = nil
	}
	s.idx = len(s.assigned)
}

// emptyIters returns n empty partitions.
func emptyIters(n int) []BatchIterator {
	iters := make([]BatchIterator, n)
	for i := range iters {
		iters[i] = NewSliceBatches(nil)
	}
	return iters
}

// partIters wraps materialized partitions back into iterators.
func partIters(parts [][]row.Row) []BatchIterator {
	iters := make([]BatchIterator, len(parts))
	for i, p := range parts {
		iters[i] = NewSliceBatches(p)
	}
	return iters
}
