package sqlengine

import (
	"testing"

	"sqlml/internal/row"
)

// The columnar twin of residency_test.go: a hostile-but-contract-abiding
// producer reuses one ColBatch for every NextCol call and, before
// refilling it, poisons every slot it handed out last time — value arrays,
// string slab, and selection vector alike. Any operator that kept a
// vector view or selection alias (instead of copying what it retains
// before its next pull) reads poison and produces wrong results. The
// tests drive the retention-critical columnar paths — filter→project,
// hash probe, sort-run preparation, and grouped-agg key materialization —
// and check exact outputs.

// recyclingColBatches produces rows in column-major batches through one
// recycled ColBatch. With junk=true each batch also carries a physical
// poison row masked off by a selection vector, so consumers must honor
// SelPos; the selection slice itself is recycled and re-pointed at the
// poison slot on the following call.
type recyclingColBatches struct {
	types  []row.Type
	rows   []row.Row
	size   int
	junk   bool
	i      int
	buf    *row.ColBatch
	sel    []int32
	poison row.Row
	prev   int // physical rows handed out by the previous call
}

func newRecyclingColBatches(types []row.Type, rows []row.Row, size int, junk bool) *recyclingColBatches {
	poison := make(row.Row, len(types))
	for i, t := range types {
		switch t {
		case row.TypeInt:
			poison[i] = row.Int(-987654321)
		case row.TypeFloat:
			poison[i] = row.Float(-987654321)
		case row.TypeBool:
			poison[i] = row.Bool(true)
		case row.TypeString:
			poison[i] = row.String_("POISON")
		}
	}
	return &recyclingColBatches{types: types, rows: rows, size: size, junk: junk, poison: poison}
}

func (rc *recyclingColBatches) NextCol() (*row.ColBatch, bool, error) {
	if rc.buf == nil {
		rc.buf = row.NewColBatch(rc.types)
	} else {
		// Overwrite last batch's slots in their own backing arrays, and
		// re-point any retained selection entries at slot 0.
		rc.buf.Reset(rc.types)
		for j := 0; j < rc.prev; j++ {
			rc.buf.AppendRow(rc.poison)
		}
		for j := range rc.sel {
			rc.sel[j] = 0
		}
	}
	if rc.i >= len(rc.rows) {
		return nil, false, nil
	}
	end := min(rc.i+rc.size, len(rc.rows))
	rc.buf.Reset(rc.types)
	for _, r := range rc.rows[rc.i:end] {
		rc.buf.AppendRow(r)
	}
	n := end - rc.i
	rc.i = end
	rc.prev = n
	if rc.junk {
		rc.buf.AppendRow(rc.poison)
		rc.prev = n + 1
		rc.sel = rc.sel[:0]
		for j := 0; j < n; j++ {
			rc.sel = append(rc.sel, int32(j))
		}
		rc.buf.SetSel(rc.sel)
	}
	return rc.buf, true, nil
}

func (rc *recyclingColBatches) Close() { rc.i = len(rc.rows) }

// intColRows builds (v BIGINT) rows.
func intColRows(vs ...int64) []row.Row {
	out := make([]row.Row, len(vs))
	for i, v := range vs {
		out[i] = row.Row{row.Int(v)}
	}
	return out
}

// oddKernel is a handmade predicate kernel: v at column 0 is odd.
func oddKernel(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
	col := b.Col(0)
	out := c.get()
	out.ResetDense(row.TypeBool, b.FullLen())
	if pos == nil {
		pos = c.allPos(b.FullLen())
	}
	for _, pp := range pos {
		p := int(pp)
		if col.Null(p) {
			out.SetNull(p)
			continue
		}
		out.Bools[p] = col.Ints[p]%2 != 0
	}
	return out, nil
}

// timesTenKernel projects v*10.
func timesTenKernel(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
	col := b.Col(0)
	out := c.get()
	out.ResetDense(row.TypeInt, b.FullLen())
	if pos == nil {
		pos = c.allPos(b.FullLen())
	}
	for _, pp := range pos {
		p := int(pp)
		if col.Null(p) {
			out.SetNull(p)
			continue
		}
		out.Ints[p] = col.Ints[p] * 10
	}
	return out, nil
}

// TestColFilterProjectUnderVectorRecycling pulls a filter→project chain
// over the poisoning producer, with the producer masking a physical
// poison row behind the selection vector, and checks the exact surviving
// values. The row materialization at the end (colToRows) must copy before
// the chain's next pull recycles the vectors.
func TestColFilterProjectUnderVectorRecycling(t *testing.T) {
	for _, junk := range []bool{false, true} {
		src := newRecyclingColBatches(
			[]row.Type{row.TypeInt},
			intColRows(1, 2, 3, 4, 5, 6, 7, 8, 9),
			4, junk)
		chain := rowsIter(newColProjectIter(
			newColFilterIter(src, oddKernel),
			[]vecFn{timesTenKernel},
			[]row.Type{row.TypeInt}))
		got, err := drainBatches(chain)
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{10, 30, 50, 70, 90}
		if len(got) != len(want) {
			t.Fatalf("junk=%v: %d rows, want %d: %v", junk, len(got), len(want), got)
		}
		for i, w := range want {
			if got[i][0].AsInt() != w {
				t.Errorf("junk=%v: row %d = %v, want %d", junk, i, got[i], w)
			}
		}
	}
}

// TestColProbeIterUnderVectorRecycling drives the columnar hash-join
// probe with the poisoning producer, the way hashJoin wires it over an
// unwrapped columnar core, and checks the exact join output. The probe
// must materialize its output rows (RowAt + concat copies) before pulling
// the next batch.
func TestColProbeIterUnderVectorRecycling(t *testing.T) {
	table := NewHashTable(0)
	var buckets [][]row.Row
	var keyBuf []byte
	keyFn := func(r row.Row) (row.Value, error) { return r[0], nil }
	for k := int64(1); k <= 3; k++ {
		br := row.Row{row.Int(k), row.Int(k * 10)}
		key, nullKey, err := appendEvalKey(keyBuf[:0], []evalFn{keyFn}, br)
		keyBuf = key
		if err != nil {
			t.Fatal(err)
		}
		if nullKey {
			t.Fatal("unexpected null key")
		}
		idx, added := table.Insert(key)
		if added {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], br)
	}

	colKey := func(c *vecCtx, b *row.ColBatch, pos []int32) (*row.Vector, error) {
		return b.Col(0), nil
	}
	for _, junk := range []bool{false, true} {
		probe := newRecyclingColBatches(
			[]row.Type{row.TypeInt}, intColRows(2, 5, 1, 3, 2), 2, junk)
		p := &colProbeIter{
			in:     probe,
			keyFns: []vecFn{colKey},
			build:  &buildTable{shards: []*HashTable{table}, buckets: [][][]row.Row{buckets}},
			concat: func(probeRow, buildRow row.Row) row.Row {
				out := make(row.Row, 0, len(probeRow)+len(buildRow))
				out = append(out, probeRow...)
				return append(out, buildRow...)
			},
		}
		got, err := drainBatches(p)
		if err != nil {
			t.Fatal(err)
		}
		want := [][2]int64{{2, 20}, {1, 10}, {3, 30}, {2, 20}}
		if len(got) != len(want) {
			t.Fatalf("junk=%v: join produced %d rows, want %d: %v", junk, len(got), len(want), got)
		}
		for i, w := range want {
			if got[i][0].AsInt() != w[0] || got[i][2].AsInt() != w[1] {
				t.Errorf("junk=%v: row %d = %v, want (%d, _, %d)", junk, i, got[i], w[0], w[1])
			}
		}
	}
}

// TestColSortRunsUnderVectorRecycling prepares sort runs the way
// orderByColumnar does — owning rows via ColBatch.Rows, key rows
// materialized per batch through Vector.ValueAt (which must copy string
// payloads out of the recycled slab) — then merges and checks the exact
// global order, including cross-partition tie-breaking.
func TestColSortRunsUnderVectorRecycling(t *testing.T) {
	strRows := func(pairs ...any) []row.Row {
		var out []row.Row
		for i := 0; i < len(pairs); i += 2 {
			out = append(out, row.Row{row.String_(pairs[i].(string)), row.Int(int64(pairs[i+1].(int)))})
		}
		return out
	}
	parts := [][]row.Row{
		strRows("mm", 1, "aa", 2, "zz", 3, "mm", 4),
		strRows("bb", 5, "mm", 6, "aa", 7),
	}
	types := []row.Type{row.TypeString, row.TypeInt}
	specs := []orderSpec{{fn: func(r row.Row) (row.Value, error) { return r[0], nil }}}

	runs := make([]*sortedRun, len(parts))
	for i, part := range parts {
		src := newRecyclingColBatches(types, part, 2, true)
		var rows, keys []row.Row
		for {
			b, ok, err := src.NextCol()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rows = b.Rows(rows)
			kv := b.Col(0)
			k := b.Len()
			flat := make(row.Row, k)
			for si := 0; si < k; si++ {
				flat[si] = kv.ValueAt(b.SelPos(si))
			}
			for si := 0; si < k; si++ {
				keys = append(keys, flat[si:si+1])
			}
		}
		runs[i] = sortRunPrepared(specs, rows, keys)
	}
	merged := mergeRuns(specs, runs)
	// Sorted by cat ascending; ties keep partition order, lower partition
	// first: aa(2) from part 0 before aa(7) from part 1, then the three
	// mm's as 1, 4 (part 0) then 6 (part 1).
	want := []int64{2, 7, 5, 1, 4, 6, 3}
	wantCat := []string{"aa", "aa", "bb", "mm", "mm", "mm", "zz"}
	if len(merged) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(merged), len(want))
	}
	for i := range want {
		if merged[i][0].AsString() != wantCat[i] || merged[i][1].AsInt() != want[i] {
			t.Errorf("merged[%d] = %v, want (%s, %d)", i, merged[i], wantCat[i], want[i])
		}
	}
}

// TestColGroupKeysSurviveVectorRecycling runs the grouped-agg columnar
// inner loop — vector key packing, column-at-a-time InsertKeys, group-key
// materialization via ValueAt — over the poisoning producer. String group
// keys are the dangerous retention: they must be copied out of the slab
// the producer recycles.
func TestColGroupKeysSurviveVectorRecycling(t *testing.T) {
	cats := []string{"alpha", "beta", "gamma"}
	var rows []row.Row
	for i := 0; i < 13; i++ {
		rows = append(rows, row.Row{row.String_(cats[i%3]), row.Int(int64(i))})
	}
	types := []row.Type{row.TypeString, row.TypeInt}
	src := newRecyclingColBatches(types, rows, 4, true)

	type grp struct {
		key row.Row
		sum int64
		n   int64
	}
	ht := NewHashTable(0)
	var groups []*grp
	var flat []byte
	var offs, idxs []uint32
	for {
		b, ok, err := src.NextCol()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		kv, av := b.Col(0), b.Col(1)
		k := b.Len()
		flat = flat[:0]
		offs = append(offs[:0], 0)
		for si := 0; si < k; si++ {
			flat = row.AppendVectorKey(flat, kv, b.SelPos(si))
			offs = append(offs, uint32(len(flat)))
		}
		idxs = ht.InsertKeys(flat, offs, idxs[:0])
		for si := 0; si < k; si++ {
			p := b.SelPos(si)
			if int(idxs[si]) == len(groups) {
				groups = append(groups, &grp{key: row.Row{kv.ValueAt(p)}})
			}
			g := groups[idxs[si]]
			g.sum += av.Ints[p]
			g.n++
		}
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// 13 rows, i%3 cycling: alpha gets i∈{0,3,6,9,12}, beta {1,4,7,10},
	// gamma {2,5,8,11}.
	want := map[string][2]int64{
		"alpha": {30, 5},
		"beta":  {22, 4},
		"gamma": {26, 4},
	}
	for _, g := range groups {
		cat := g.key[0].AsString()
		w, ok := want[cat]
		if !ok {
			t.Errorf("unexpected group key %q (poison leaked into a retained key)", cat)
			continue
		}
		if g.sum != w[0] || g.n != w[1] {
			t.Errorf("group %q = (sum %d, n %d), want (%d, %d)", cat, g.sum, g.n, w[0], w[1])
		}
	}
}
