package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
)

// benchEngine loads a mid-size fact/dimension pair for operator benchmarks.
func benchEngine(b *testing.B, facts, dims int) *Engine {
	return benchEngineMode(b, facts, dims, false)
}

// benchEngineMode is benchEngine with the columnar path toggled — the
// row-vs-columnar benchmarks measure the same query on both executors.
func benchEngineMode(b *testing.B, facts, dims int, disableColumnar bool) *Engine {
	return benchEngineCfg(b, facts, dims, Config{DisableColumnar: disableColumnar})
}

// benchEngineCfg is the fully configurable loader — the morsel-parallelism
// benchmarks vary Config.Parallelism over the same data.
func benchEngineCfg(b *testing.B, facts, dims int, cfg Config) *Engine {
	b.Helper()
	topo := cluster.NewTopology(5)
	cfg.HeadNodeID = 0
	cfg.WorkerNodeIDs = []int{1, 2, 3, 4}
	e, err := New(topo, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	factRows := make([]row.Row, facts)
	cats := []string{"red", "green", "blue", "black", "white"}
	for i := range factRows {
		factRows[i] = row.Row{
			row.Int(int64(i)),
			row.Int(int64(rng.Intn(dims))),
			row.Float(rng.Float64() * 1000),
			row.String_(cats[rng.Intn(len(cats))]),
		}
	}
	dimRows := make([]row.Row, dims)
	for i := range dimRows {
		dimRows[i] = row.Row{row.Int(int64(i)), row.String_(fmt.Sprintf("dim-%d", i))}
	}
	if err := e.LoadTable("fact", row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "dimid", Type: row.TypeInt},
		row.Column{Name: "v", Type: row.TypeFloat},
		row.Column{Name: "cat", Type: row.TypeString},
	), factRows); err != nil {
		b.Fatal(err)
	}
	if err := e.LoadTable("dim", row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "name", Type: row.TypeString},
	), dimRows); err != nil {
		b.Fatal(err)
	}
	return e
}

func runQuery(b *testing.B, e *Engine, sql string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFilterScan(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT id FROM fact WHERE v > 500")
}

func BenchmarkEngineHashJoin(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT f.v, d.name FROM fact f, dim d WHERE f.dimid = d.id")
}

func BenchmarkEngineGroupBy(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT cat, COUNT(*), AVG(v) FROM fact GROUP BY cat")
}

func BenchmarkEngineDistinct(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT DISTINCT cat FROM fact")
}

func BenchmarkEngineOrderByLimit(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT id, v FROM fact ORDER BY v DESC LIMIT 10")
}

// The four hot-path benchmarks below isolate the hash/sort operators the
// arena hash-table work targets: multi-key grouping, a selective equi-join,
// a wide DISTINCT (local pass + repartition + final pass), and a full
// ORDER BY with no LIMIT (per-partition sorts + k-way merge at the head).
// scripts/bench_hotpath.sh dumps their numbers as BENCH_hotpath.json.

func BenchmarkGroupBy(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT cat, dimid, COUNT(*), SUM(v), MIN(v), MAX(v) FROM fact GROUP BY cat, dimid")
}

func BenchmarkHashJoin(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT f.id, f.v, d.name FROM fact f, dim d WHERE f.dimid = d.id AND f.v > 250")
}

func BenchmarkDistinct(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT DISTINCT cat, dimid FROM fact")
}

func BenchmarkOrderBy(b *testing.B) {
	e := benchEngine(b, 50_000, 100)
	runQuery(b, e, "SELECT id, v FROM fact ORDER BY v DESC, id")
}

// The Filter and Project pairs below measure the columnar tentpole
// directly: the identical query on the row-at-a-time executor
// (DisableColumnar) and on the vectorized one. Filter is
// selection-vector refinement vs. per-row predicate closures; Project is
// typed arithmetic kernels vs. per-row output allocation.
// scripts/bench_hotpath.sh folds their numbers into BENCH_hotpath.json.

func benchModes(b *testing.B, sql string) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Row", true}, {"Columnar", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := benchEngineMode(b, 50_000, 100, mode.disable)
			runQuery(b, e, sql)
		})
	}
}

func BenchmarkFilter(b *testing.B) {
	benchModes(b, "SELECT id FROM fact WHERE v > 250.0 AND v < 750.0")
}

func BenchmarkProject(b *testing.B) {
	benchModes(b, "SELECT v * 2.0 - 1.0, id + dimid, v / 4.0 FROM fact WHERE v > 100.0")
}

// The P1/P4 pairs below measure the morsel-driven pool directly: the same
// query with the pool pinned to one worker (the sequential oracle) and to
// four. Output is byte-identical by construction (the parallelism property
// tests enforce it); only the wall clock may differ.
// scripts/bench_hotpath.sh folds their numbers into BENCH_hotpath.json.

func benchParallelism(b *testing.B, sql string) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", par), func(b *testing.B) {
			e := benchEngineCfg(b, 50_000, 100, Config{Parallelism: par})
			runQuery(b, e, sql)
		})
	}
}

func BenchmarkParGroupBy(b *testing.B) {
	benchParallelism(b, "SELECT cat, dimid, COUNT(*), SUM(v), MIN(v), MAX(v) FROM fact GROUP BY cat, dimid")
}

func BenchmarkParHashJoin(b *testing.B) {
	benchParallelism(b, "SELECT f.id, f.v, d.name FROM fact f, dim d WHERE f.dimid = d.id AND f.v > 250")
}

func BenchmarkParOrderBy(b *testing.B) {
	benchParallelism(b, "SELECT id, v FROM fact ORDER BY v DESC, id")
}

func BenchmarkEngineParse(b *testing.B) {
	const sql = `
		SELECT U.age, Mg.recodeVal AS gender, C.amount, Ma.recodeVal AS abandoned
		FROM carts C, users U, m AS Mg, m AS Ma
		WHERE C.userid = U.userid
		  AND Mg.colName = 'gender' AND U.gender = Mg.colVal
		  AND Ma.colName = 'abandoned' AND C.abandoned = Ma.colVal`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}
