package sqlengine

import (
	"sort"
	"sync"
	"sync/atomic"

	"sqlml/internal/row"
)

// Parallel DISTINCT. Both de-duplication passes (the streaming local pass
// and the post-shuffle pass) run as per-worker morsel consumers: pool
// workers claim batches from whichever partition has one ready — so a
// skewed partition is chewed by every idle worker, not one goroutine —
// and de-duplicate into per-worker arena tables keyed by (partition,
// row key). DISTINCT carries no floating-point accumulation, so unlike
// GROUP BY its partials may be worker-scoped: the merge keeps, for every
// (partition, key), the instance with the smallest partition-local
// sequence number, which is exactly the first instance a sequential pass
// over that partition keeps. Output rows are then ordered by that
// sequence within each partition — byte-identical at any Parallelism.

// pipeCursor hands out batches of a set of partition pipelines to
// competing pool workers. Each partition is guarded by its own mutex;
// claiming copies the batch headers out (row contents are stable, only
// the producer's batch slice is reused) and stamps the batch with its
// partition-local row sequence.
type pipeCursor struct {
	iters []BatchIterator
	mus   []sync.Mutex
	done  []atomic.Bool // set under mus[i]
	seqs  []int64       // guarded by mus[i]
	nDone atomic.Int64
}

func newPipeCursor(iters []BatchIterator) *pipeCursor {
	return &pipeCursor{
		iters: iters,
		mus:   make([]sync.Mutex, len(iters)),
		done:  make([]atomic.Bool, len(iters)),
		seqs:  make([]int64, len(iters)),
	}
}

// next claims one batch, preferring unlocked partitions (rotating from
// start so workers spread out) and blocking on a live one only when every
// other is busy. buf is the caller's reusable batch-header buffer; the
// returned rows alias its (possibly regrown) backing array. part < 0
// means every partition is exhausted.
func (c *pipeCursor) next(start int, buf []row.Row) (part int, seq int64, rows []row.Row, err error) {
	n := len(c.iters)
	for c.nDone.Load() < int64(n) {
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if c.done[i].Load() || !c.mus[i].TryLock() {
				continue
			}
			part, seq, rows, ok, err := c.pull(i, buf)
			if ok || err != nil {
				return part, seq, rows, err
			}
		}
		// Every live partition is being pulled by someone else right now;
		// block on the first one still live.
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if c.done[i].Load() {
				continue
			}
			c.mus[i].Lock()
			part, seq, rows, ok, err := c.pull(i, buf)
			if ok || err != nil {
				return part, seq, rows, err
			}
			break
		}
	}
	return -1, 0, buf, nil
}

// pull advances partition i by one batch; the caller holds mus[i] and
// pull releases it.
func (c *pipeCursor) pull(i int, buf []row.Row) (part int, seq int64, rows []row.Row, ok bool, err error) {
	defer c.mus[i].Unlock()
	if c.done[i].Load() {
		return -1, 0, buf, false, nil
	}
	b, more, err := c.iters[i].Next()
	if err != nil || !more {
		c.done[i].Store(true)
		c.nDone.Add(1)
		c.iters[i].Close()
		return -1, 0, buf, false, err
	}
	seq = c.seqs[i]
	c.seqs[i] += int64(len(b))
	return i, seq, append(buf[:0], b...), true, nil
}

// dedupEntry is one distinct (partition, key) instance held by a worker
// partial: the row and its partition-local sequence number.
type dedupEntry struct {
	seq  int64
	part int32
	r    row.Row
}

// appendDedupKey encodes the (partition, row key) compound key.
func appendDedupKey(dst []byte, part int, r row.Row) []byte {
	dst = append(dst, byte(part), byte(part>>8), byte(part>>16), byte(part>>24))
	return row.AppendKey(dst, r)
}

// dedupPooled de-duplicates every partition independently (first instance
// wins, input order kept). With at least as many partitions as workers,
// each pool worker owns whole partitions — no shared cursor, no
// contention, and the per-partition first-instance scan is trivially
// schedule-independent. Only when the pool is wider than the partition
// count do workers race over a shared pipeCursor with per-worker
// partials, which spreads a skewed partition across idle workers at the
// cost of per-batch locking. Both paths produce identical output.
func dedupPooled(qp *queryPool, iters []BatchIterator) ([][]row.Row, error) {
	nParts := len(iters)
	if nParts == 0 {
		return nil, nil
	}
	primeIters(iters)
	if nParts >= qp.n {
		out := make([][]row.Row, nParts)
		err := qp.forEach(nParts, func(i, _ int) error {
			defer iters[i].Close()
			table := NewHashTable(0)
			var keyBuf []byte
			var keep []row.Row
			for {
				if qp.cancelled() {
					return errQueryCancelled
				}
				b, ok, err := iters[i].Next()
				if err != nil {
					return err
				}
				if !ok {
					out[i] = keep
					return nil
				}
				for _, r := range b {
					keyBuf = row.AppendKey(keyBuf[:0], r)
					if _, added := table.Insert(keyBuf); added {
						keep = append(keep, r)
					}
				}
			}
		})
		if err != nil {
			closeAllIters(iters)
			return nil, err
		}
		return out, nil
	}
	cur := newPipeCursor(iters)
	workers := qp.n
	type partial struct {
		table   *HashTable
		entries []dedupEntry
	}
	partials := make([]partial, workers)
	err := qp.forEach(workers, func(w, _ int) error {
		p := &partials[w]
		p.table = NewHashTable(0)
		var keyBuf []byte
		buf := make([]row.Row, 0, DefaultBatchSize)
		for {
			if qp.cancelled() {
				return errQueryCancelled
			}
			part, seq, rows, err := cur.next(w, buf)
			if err != nil {
				return err
			}
			if part < 0 {
				return nil
			}
			buf = rows
			for _, r := range rows {
				keyBuf = appendDedupKey(keyBuf[:0], part, r)
				if _, added := p.table.Insert(keyBuf); added {
					p.entries = append(p.entries, dedupEntry{seq: seq, part: int32(part), r: r})
				}
				seq++
			}
		}
	})
	if err != nil {
		closeAllIters(iters)
		return nil, err
	}

	// Merge the worker partials: min-seq wins per (partition, key). Worker
	// order does not matter — the minimum does.
	merged := NewHashTable(0)
	var best []dedupEntry
	var keyBuf []byte
	for w := range partials {
		for _, en := range partials[w].entries {
			keyBuf = appendDedupKey(keyBuf[:0], int(en.part), en.r)
			idx, added := merged.Insert(keyBuf)
			if added {
				best = append(best, en)
			} else if en.seq < best[idx].seq {
				best[idx] = en
			}
		}
	}
	byPart := make([][]dedupEntry, nParts)
	for _, en := range best {
		byPart[en.part] = append(byPart[en.part], en)
	}
	out := make([][]row.Row, nParts)
	err = qp.forEach(nParts, func(i, _ int) error {
		ens := byPart[i]
		sort.Slice(ens, func(a, b int) bool { return ens[a].seq < ens[b].seq })
		rows := make([]row.Row, len(ens))
		for j, en := range ens {
			rows[j] = en.r
		}
		out[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// distinct de-duplicates rows (pipeline breaker): a streaming local pass
// holding only distinct rows, hash repartition so equal rows colocate,
// then a second local pass over the shuffled partitions — both passes on
// the query pool.
func (e *Engine) distinct(qp *queryPool, iters []BatchIterator) ([][]row.Row, error) {
	local, err := dedupPooled(qp, iters)
	if err != nil {
		return nil, err
	}
	shuffled, err := e.repartitionByKey(qp, local)
	if err != nil {
		return nil, err
	}
	return dedupPooled(qp, partIters(shuffled))
}
