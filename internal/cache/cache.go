// Package cache implements the paper's §5 caching of transformation
// results: a store of (preparation query, transform spec) → cached
// artifacts, where an artifact is the fully transformed data (materialised
// as an engine table, §5.1) and/or the intermediate recode maps (§5.2).
//
// Lookup prefers the full result (the paper measures it fastest, 2.2×)
// and falls back to the recode maps (1.5×); both assume no data updates,
// as the paper does.
package cache

import (
	"fmt"
	"strings"
	"sync"

	"sqlml/internal/dfs"
	"sqlml/internal/rewriter"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

// Entry is one cached transformation outcome.
type Entry struct {
	// Name identifies the entry (diagnostics).
	Name string
	// Info is the canonical form of the preparation query that produced it.
	Info *rewriter.QueryInfo
	// Spec is the transformation that was applied.
	Spec transform.Spec
	// Map is the recode map built during the transformation.
	Map *transform.RecodeMap
	// TransformedTable is the catalog name of the materialised fully
	// transformed result ("" when only the map is cached).
	TransformedTable string
}

// HitKind classifies a cache lookup outcome.
type HitKind int

// Lookup outcomes, strongest first.
const (
	Miss HitKind = iota
	RecodeMapHit
	FullResultHit
)

// String renders the hit kind.
func (k HitKind) String() string {
	switch k {
	case FullResultHit:
		return "full-result"
	case RecodeMapHit:
		return "recode-map"
	default:
		return "miss"
	}
}

// Hit is a successful lookup.
type Hit struct {
	Kind  HitKind
	Entry *Entry
	// RewrittenSQL answers the new query from the cached table
	// (FullResultHit only).
	RewrittenSQL string
}

// Store holds cache entries. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	entries []*Entry
	hits    map[HitKind]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{hits: make(map[HitKind]int)}
}

// Add registers a cached outcome.
func (s *Store) Add(e *Entry) error {
	if e == nil || e.Info == nil {
		return fmt.Errorf("cache: entry needs query info")
	}
	if e.Map == nil && e.TransformedTable == "" {
		return fmt.Errorf("cache: entry caches nothing")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
	return nil
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns per-kind hit counters (Miss included).
func (s *Store) Stats() map[HitKind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[HitKind]int, len(s.hits))
	for k, v := range s.hits {
		out[k] = v
	}
	return out
}

// Lookup decides how much of a new pipeline (query + spec) the cache can
// answer, preferring the fully transformed result.
func (s *Store) Lookup(next *rewriter.QueryInfo, spec transform.Spec) *Hit {
	return s.LookupAtMost(next, spec, FullResultHit)
}

// LookupAtMost is Lookup capped at a tier — the Figure 4 benchmarks use it
// to isolate the recode-map tier from the full-result one.
func (s *Store) LookupAtMost(next *rewriter.QueryInfo, spec transform.Spec, maxKind HitKind) *Hit {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Strongest first: §5.1 full-result reuse.
	for _, e := range s.entries {
		if maxKind < FullResultHit {
			break
		}
		if e.TransformedTable == "" {
			continue
		}
		if !specCompatible(e.Spec, spec) {
			continue
		}
		if m, ok := rewriter.MatchFullResult(e.Info, next, e.Spec, e.Map); ok {
			s.hits[FullResultHit]++
			return &Hit{Kind: FullResultHit, Entry: e, RewrittenSQL: m.RewriteOnCache(e.TransformedTable)}
		}
	}
	// §5.2 recode-map reuse.
	for _, e := range s.entries {
		if maxKind < RecodeMapHit {
			break
		}
		if e.Map == nil {
			continue
		}
		if rewriter.MatchRecodeMap(e.Info, next, e.Map.Columns(), spec.RecodeCols) {
			s.hits[RecodeMapHit]++
			return &Hit{Kind: RecodeMapHit, Entry: e}
		}
	}
	s.hits[Miss]++
	return &Hit{Kind: Miss}
}

// specCompatible reports whether a pipeline with spec `next` can consume
// data transformed under `cached`: every column next recodes/codes must
// have been handled identically.
func specCompatible(cached, next transform.Spec) bool {
	in := func(list []string, c string) bool {
		for _, x := range list {
			if strings.EqualFold(x, c) {
				return true
			}
		}
		return false
	}
	for _, c := range next.RecodeCols {
		if !in(cached.RecodeCols, c) {
			return false
		}
	}
	for _, c := range next.CodeCols {
		if !in(cached.CodeCols, c) {
			return false
		}
	}
	// A column the new pipeline wants plain-recoded must not have been
	// expanded in the cached data.
	for _, c := range next.RecodeCols {
		if in(cached.CodeCols, c) && !in(next.CodeCols, c) {
			return false
		}
	}
	if len(next.CodeCols) > 0 && cached.Coding != next.Coding {
		return false
	}
	// Scaling rewrites numeric values in place, so the cached data is only
	// usable when the scaled column set and family match exactly.
	if len(cached.ScaleCols) != len(next.ScaleCols) {
		return false
	}
	for _, c := range next.ScaleCols {
		if !in(cached.ScaleCols, c) {
			return false
		}
	}
	if len(next.ScaleCols) > 0 && cached.Scaling != next.Scaling {
		return false
	}
	return true
}

// MaterializeOnDFS stores the transformed result as an "actual HDFS table"
// (the paper's other §5.1 variant): part files under dir on the DFS, with
// an external catalog table over them. Cache-served queries then re-read
// the DFS — slower than the in-memory materialized view, but durable and
// shared, which is why the paper's measured full-result speedup (2.2x)
// still pays a scan.
func MaterializeOnDFS(e *sqlengine.Engine, fs *dfs.FileSystem, dir, name string, info *rewriter.QueryInfo, spec transform.Spec, out *transform.Output) (*Entry, error) {
	if err := e.ExportToDFS(out.Result, fs, dir); err != nil {
		return nil, err
	}
	if err := e.RegisterExternalTable(name, fs, dir, out.Result.Schema); err != nil {
		return nil, err
	}
	return &Entry{
		Name:             name,
		Info:             info,
		Spec:             spec,
		Map:              out.Map,
		TransformedTable: name,
	}, nil
}

// Materialize registers a transformed result as an engine table and
// returns a ready-to-Add entry. It is the §5.1 "store as a materialized
// view or an actual HDFS table" step (kept in engine memory here; export
// to the DFS via Engine.ExportToDFS when durability is wanted).
func Materialize(e *sqlengine.Engine, name string, info *rewriter.QueryInfo, spec transform.Spec, out *transform.Output) (*Entry, error) {
	if err := e.RegisterResult(name, out.Result); err != nil {
		return nil, err
	}
	return &Entry{
		Name:             name,
		Info:             info,
		Spec:             spec,
		Map:              out.Map,
		TransformedTable: name,
	}, nil
}
