package cache

import (
	"strings"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/rewriter"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

func newEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	topo := cluster.NewTopology(5)
	e, err := sqlengine.New(topo, nil, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := transform.RegisterUDFs(e); err != nil {
		t.Fatal(err)
	}
	users := row.MustSchema(
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "country", Type: row.TypeString},
	)
	carts := row.MustSchema(
		row.Column{Name: "cartid", Type: row.TypeInt},
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "nitems", Type: row.TypeInt},
		row.Column{Name: "year", Type: row.TypeInt},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
	userRows := []row.Row{
		{row.Int(1), row.Int(57), row.String_("F"), row.String_("USA")},
		{row.Int(2), row.Int(40), row.String_("M"), row.String_("USA")},
		{row.Int(3), row.Int(35), row.String_("F"), row.String_("USA")},
		{row.Int(4), row.Int(22), row.String_("M"), row.String_("Germany")},
	}
	cartRows := []row.Row{
		{row.Int(100), row.Int(1), row.Float(314.62), row.Int(3), row.Int(2014), row.String_("Yes")},
		{row.Int(101), row.Int(2), row.Float(40.40), row.Int(1), row.Int(2014), row.String_("Yes")},
		{row.Int(102), row.Int(3), row.Float(151.17), row.Int(2), row.Int(2013), row.String_("No")},
		{row.Int(103), row.Int(4), row.Float(99.99), row.Int(5), row.Int(2014), row.String_("No")},
	}
	if err := e.LoadTable("users", users, userRows); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("carts", carts, cartRows); err != nil {
		t.Fatal(err)
	}
	return e
}

const prepQuery = `
	SELECT U.age, U.gender, C.amount, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA'`

func prepSpec() transform.Spec {
	return transform.Spec{RecodeCols: []string{"gender", "abandoned"}}
}

// runAndCache executes the preparation pipeline once and caches the
// transformed result.
func runAndCache(t *testing.T, e *sqlengine.Engine, s *Store) *Entry {
	t.Helper()
	info, err := rewriter.AnalyzeSQL(e, prepQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(prepQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterResult("prep_tmp", res); err != nil {
		t.Fatal(err)
	}
	defer e.DropTable("prep_tmp")
	out, err := transform.Apply(e, "prep_tmp", prepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := Materialize(e, "cached_full", info, prepSpec(), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(entry); err != nil {
		t.Fatal(err)
	}
	return entry
}

func TestFullResultHitAnswersSubsetQuery(t *testing.T) {
	e := newEngine(t)
	s := NewStore()
	runAndCache(t, e, s)

	next, err := rewriter.AnalyzeSQL(e, `
		SELECT U.age, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA' AND U.gender = 'F'`)
	if err != nil {
		t.Fatal(err)
	}
	hit := s.Lookup(next, transform.Spec{RecodeCols: []string{"abandoned"}})
	if hit.Kind != FullResultHit {
		t.Fatalf("hit = %s, want full-result", hit.Kind)
	}
	res, err := e.Query(hit.RewrittenSQL)
	if err != nil {
		t.Fatalf("rewritten query failed: %v\n%s", err, hit.RewrittenSQL)
	}
	// USA female users: 2 of the 3 USA carts.
	if res.NumRows() != 2 {
		t.Errorf("rewritten query rows = %d, want 2", res.NumRows())
	}
	if res.Schema.Len() != 3 {
		t.Errorf("rewritten schema = %s", res.Schema)
	}
}

func TestIdenticalQueryFullHit(t *testing.T) {
	e := newEngine(t)
	s := NewStore()
	runAndCache(t, e, s)
	next, err := rewriter.AnalyzeSQL(e, prepQuery)
	if err != nil {
		t.Fatal(err)
	}
	hit := s.Lookup(next, prepSpec())
	if hit.Kind != FullResultHit {
		t.Fatalf("hit = %s", hit.Kind)
	}
	res, err := e.Query(hit.RewrittenSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("rows = %d, want 3 (all USA carts)", res.NumRows())
	}
}

func TestRecodeMapHitForPaper52Query(t *testing.T) {
	e := newEngine(t)
	s := NewStore()
	runAndCache(t, e, s)
	next, err := rewriter.AnalyzeSQL(e, `
		SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA' AND C.year = 2014`)
	if err != nil {
		t.Fatal(err)
	}
	hit := s.Lookup(next, prepSpec())
	if hit.Kind != RecodeMapHit {
		t.Fatalf("hit = %s, want recode-map", hit.Kind)
	}
	if hit.Entry.Map.Cardinality("gender") != 2 {
		t.Error("hit returned wrong map")
	}
}

func TestMissForUnrelatedQuery(t *testing.T) {
	e := newEngine(t)
	s := NewStore()
	runAndCache(t, e, s)
	next, err := rewriter.AnalyzeSQL(e, "SELECT u.gender FROM users u WHERE u.age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if hit := s.Lookup(next, transform.Spec{RecodeCols: []string{"gender"}}); hit.Kind != Miss {
		t.Errorf("hit = %s, want miss", hit.Kind)
	}
	stats := s.Stats()
	if stats[Miss] != 1 {
		t.Errorf("stats = %v", stats)
	}
}

func TestSpecCompatibility(t *testing.T) {
	cached := transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
	cases := []struct {
		next transform.Spec
		want bool
	}{
		{cached, true},
		{transform.Spec{RecodeCols: []string{"abandoned"}}, true},
		{transform.Spec{RecodeCols: []string{"newcol"}}, false},
		// Wants gender recoded-only but the cache expanded it.
		{transform.Spec{RecodeCols: []string{"gender"}}, false},
		// Different coding family.
		{transform.Spec{RecodeCols: []string{"gender"}, CodeCols: []string{"gender"}, Coding: transform.CodingEffect}, false},
		{transform.Spec{RecodeCols: []string{"gender"}, CodeCols: []string{"gender"}, Coding: transform.CodingDummy}, true},
	}
	for i, c := range cases {
		if got := specCompatible(cached, c.next); got != c.want {
			t.Errorf("case %d: specCompatible = %v, want %v", i, got, c.want)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.Add(nil); err == nil {
		t.Error("nil entry accepted")
	}
	if err := s.Add(&Entry{Info: &rewriter.QueryInfo{}}); err == nil {
		t.Error("entry caching nothing accepted")
	}
	if s.Len() != 0 {
		t.Error("failed adds must not register")
	}
}

func TestRewrittenSQLMentionsCachedTable(t *testing.T) {
	e := newEngine(t)
	s := NewStore()
	entry := runAndCache(t, e, s)
	next, _ := rewriter.AnalyzeSQL(e, prepQuery)
	hit := s.Lookup(next, prepSpec())
	if hit.Kind != FullResultHit || !strings.Contains(hit.RewrittenSQL, entry.TransformedTable) {
		t.Errorf("rewritten sql = %q", hit.RewrittenSQL)
	}
}
