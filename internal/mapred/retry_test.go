package mapred

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"sqlml/internal/fault"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// retryJob builds the canonical wordcount job over a fresh cluster so
// fault-free and faulted runs are directly comparable.
func retryJob(t *testing.T, c *testCluster, out string) *Job {
	t.Helper()
	var lines []row.Row
	for i := 0; i < 30; i++ {
		lines = append(lines, row.Row{row.String_(fmt.Sprintf("w%d common w%d", i%7, i%3))})
	}
	if !c.fs.Exists("/in/retry") {
		if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/retry", wordsSchema(), lines, c.topo.Node(0)); err != nil {
			t.Fatal(err)
		}
	}
	return &Job{
		Name:  "retry-wc",
		Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/retry", wordsSchema()),
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			for _, w := range strings.Fields(r[0].AsString()) {
				if err := emit(w, row.Row{row.Int(1)}); err != nil {
					return err
				}
			}
			return nil
		}),
		Reducer: ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
			return emit(row.Row{row.String_(key), row.Int(int64(len(values)))})
		}),
		NumReducers:  2,
		OutputPath:   out,
		OutputSchema: countSchema(),
		Topo:         c.topo,
		FS:           c.fs,
		Cost:         c.cost,
		TaskNodes:    []int{1, 2, 3, 4},
	}
}

// readSorted reads a job's committed output as sorted render strings, for
// byte-level comparison across runs.
func readSorted(t *testing.T, job *Job) []string {
	t.Helper()
	rows, err := hadoopfmt.ReadAll(Output(job), job.Topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestTaskCrashRetriesExactlyOnce: scripted crashes in a map task and a
// reduce task are absorbed by per-task re-execution — the job output and
// the exactly-once counters are identical to a fault-free run, and no
// uncommitted scratch files remain.
func TestTaskCrashRetriesExactlyOnce(t *testing.T) {
	c := newTestCluster(t)
	baseline := retryJob(t, c, "/out/base")
	wantStats, err := Run(baseline)
	if err != nil {
		t.Fatal(err)
	}
	want := readSorted(t, baseline)

	faults := fault.NewTaskFaults(
		fault.TaskConfig{Phase: "map", Task: 0, AtRecord: 2, Attempts: 2},
		fault.TaskConfig{Phase: "reduce", Task: 1, AtRecord: 1, Attempts: 1},
	)
	job := retryJob(t, c, "/out/faulted")
	job.TaskFault = faults.Hook
	stats, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if faults.Crashes() != 3 {
		t.Errorf("injected %d crashes, want 3 (2 map + 1 reduce)", faults.Crashes())
	}
	if stats.TaskRetries != 3 {
		t.Errorf("TaskRetries = %d, want 3", stats.TaskRetries)
	}
	if stats.InputRows != wantStats.InputRows || stats.MapOutputs != wantStats.MapOutputs ||
		stats.OutputRows != wantStats.OutputRows {
		t.Errorf("counters drifted under retry: got %+v, want %+v", stats, wantStats)
	}
	if got := readSorted(t, job); !equalStrings(got, want) {
		t.Errorf("faulted output differs from fault-free run:\n got %v\nwant %v", got, want)
	}
	for _, f := range c.fs.List(job.OutputPath) {
		if strings.Contains(f, "_attempt") {
			t.Errorf("uncommitted scratch file left behind: %s", f)
		}
	}
}

// TestMapOnlyCommitIsAttemptScoped: a map-only job under a scripted map
// crash still commits every part file exactly once via scratch + rename.
func TestMapOnlyCommitIsAttemptScoped(t *testing.T) {
	c := newTestCluster(t)
	job := retryJob(t, c, "/out/monly")
	job.Reducer = nil
	job.NumReducers = 0
	// Map-only output is the raw emitted values (arity 1).
	job.OutputSchema = row.MustSchema(row.Column{Name: "n", Type: row.TypeInt})
	faults := fault.NewTaskFaults(fault.TaskConfig{Phase: "map", Task: 1, AtRecord: 1, Attempts: 1})
	job.TaskFault = faults.Hook
	stats, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1", stats.TaskRetries)
	}
	if stats.OutputRows != stats.MapOutputs {
		t.Errorf("map-only output rows %d != map outputs %d", stats.OutputRows, stats.MapOutputs)
	}
	for _, f := range c.fs.List(job.OutputPath) {
		if strings.Contains(f, "_attempt") {
			t.Errorf("uncommitted scratch file left behind: %s", f)
		}
	}
}

// TestAttemptBudgetExhausted: a task that crashes more times than the
// budget allows fails the job with the budget in the error.
func TestAttemptBudgetExhausted(t *testing.T) {
	c := newTestCluster(t)
	job := retryJob(t, c, "/out/exhaust")
	job.MaxTaskAttempts = 2
	faults := fault.NewTaskFaults(fault.TaskConfig{Phase: "map", Task: 0, AtRecord: 0, Attempts: 10})
	job.TaskFault = faults.Hook
	_, err := Run(job)
	if err == nil {
		t.Fatal("job succeeded despite a task crashing past its attempt budget")
	}
	if !strings.Contains(err.Error(), "attempt budget (2) exhausted") {
		t.Errorf("error does not name the exhausted budget: %v", err)
	}
	if faults.Crashes() != 2 {
		t.Errorf("injected %d crashes, want exactly the budget (2)", faults.Crashes())
	}
}

// TestNonRetryableErrorFailsFast: a mapper logic error is not retried —
// no task ever runs a second attempt.
func TestNonRetryableErrorFailsFast(t *testing.T) {
	c := newTestCluster(t)
	job := retryJob(t, c, "/out/logic")
	var mu sync.Mutex
	maxAttempt := 0
	job.TaskFault = func(phase string, task, attempt, record int) error {
		mu.Lock()
		if attempt > maxAttempt {
			maxAttempt = attempt
		}
		mu.Unlock()
		return nil
	}
	job.Mapper = MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
		return fmt.Errorf("bad row")
	})
	_, err := Run(job)
	if err == nil {
		t.Fatal("job succeeded despite mapper error")
	}
	mu.Lock()
	defer mu.Unlock()
	if maxAttempt != 0 {
		t.Errorf("logic error reached attempt %d; must fail fast on attempt 0", maxAttempt)
	}
}

// TestDirFormatSkipsScratchFiles: an orphaned scratch file (a crash between
// write and rename) is invisible to directory readers.
func TestDirFormatSkipsScratchFiles(t *testing.T) {
	c := newTestCluster(t)
	s := wordsSchema()
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/dir2/part-m-00000", s, []row.Row{{row.String_("a")}}, c.topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/dir2/_attempt-00001-0", s, []row.Row{{row.String_("orphan")}}, c.topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	got, err := hadoopfmt.ReadAll(DirFormat(c.fs, "/dir2", s), c.topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].AsString() != "a" {
		t.Errorf("directory read = %v, want only the committed part file", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
