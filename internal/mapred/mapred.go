// Package mapred implements a MapReduce engine over the simulated DFS:
// locality-aware map task placement over InputSplits, a hash-partitioned
// shuffle with network cost charging, sorted reduce groups, and text-table
// output, one part file per reduce (or map) task.
//
// It stands in for the Hadoop MapReduce deployment of the paper's testbed:
// the naive pipeline's external transformation tool (internal/jaql) runs on
// it, and the "Mahout analog" naive Bayes trainer in internal/ml/mrnb shows
// that the streaming transfer feeds MapReduce-based ML systems through the
// same InputFormat seam.
package mapred

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// Mapper transforms one input row into zero or more keyed rows.
type Mapper interface {
	Map(r row.Row, emit func(key string, value row.Row) error) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(r row.Row, emit func(key string, value row.Row) error) error

// Map implements Mapper.
func (f MapperFunc) Map(r row.Row, emit func(key string, value row.Row) error) error {
	return f(r, emit)
}

// Reducer folds all rows sharing a key into zero or more output rows.
type Reducer interface {
	Reduce(key string, values []row.Row, emit func(row.Row) error) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []row.Row, emit func(row.Row) error) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []row.Row, emit func(row.Row) error) error {
	return f(key, values, emit)
}

// Job describes one MapReduce job.
type Job struct {
	Name   string
	Input  hadoopfmt.InputFormat
	Mapper Mapper
	// Reducer may be nil for a map-only job (output written per map task).
	Reducer     Reducer
	NumReducers int
	// Combiner, when set, pre-aggregates each map task's output per key
	// before the shuffle (Hadoop's combiner contract: it must be
	// associative and emit rows the Reducer accepts as values).
	Combiner Reducer

	// OutputPath is a DFS directory; part files are written beneath it.
	OutputPath   string
	OutputSchema row.Schema

	// Cluster resources: the nodes running task slots, the DFS for output,
	// and the cost model charged for shuffle traffic.
	Topo      *cluster.Topology
	FS        *dfs.FileSystem
	Cost      *cluster.CostModel
	TaskNodes []int
	// SlotsPerNode bounds concurrent tasks per node (the paper's testbed
	// ran 9 map slots per server). Defaults to 2.
	SlotsPerNode int
	// StartupDelay is the fixed per-job scheduling/startup overhead charged
	// to the cost model (Hadoop jobs pay tens of seconds of JVM spin-up and
	// JobTracker scheduling before any task runs).
	StartupDelay time.Duration

	// MaxTaskAttempts bounds per-task execution attempts (Hadoop's
	// mapreduce.map.maxattempts): a task failing with a
	// hadoopfmt.RetryableError is re-executed from scratch — fresh reader,
	// attempt-local output, attempt-scoped part-file scratch path — up to
	// this many times before the job fails. Non-retryable errors fail the
	// job immediately. Defaults to 4.
	MaxTaskAttempts int
	// TaskFault, when set, is consulted before each record of every map
	// task and each key group of every reduce task — the deterministic
	// fault-injection seam (internal/fault.TaskFaults.Hook plugs in here).
	// A non-nil return fails the task attempt at that record.
	TaskFault func(phase string, task, attempt, record int) error
}

// Stats reports job counters.
type Stats struct {
	MapTasks     int
	ReduceTasks  int
	InputRows    int64
	MapOutputs   int64
	OutputRows   int64
	ShuffleBytes int64
	// TaskRetries counts task attempts that failed retryably and were
	// re-executed (across the map, reduce, and commit stages). Zero on a
	// fault-free run; the exactly-once counters above are unaffected by
	// retries because every attempt's counts are attempt-local until the
	// attempt commits.
	TaskRetries int64
}

// Run executes the job synchronously and returns its counters.
func Run(job *Job) (*Stats, error) {
	if err := validate(job); err != nil {
		return nil, err
	}
	splits, err := job.Input.Splits(0)
	if err != nil {
		return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
	}
	stats := &Stats{MapTasks: len(splits)}

	nodes := make([]*cluster.Node, len(job.TaskNodes))
	for i, id := range job.TaskNodes {
		nodes[i] = job.Topo.Node(id)
	}
	assignments := assign(splits, nodes)
	job.Cost.ChargeDelay(nodes[0], job.StartupDelay)

	numReducers := job.NumReducers
	if job.Reducer == nil {
		numReducers = 0
	} else if numReducers <= 0 {
		numReducers = len(nodes)
	}
	stats.ReduceTasks = numReducers

	// Map phase. Each task partitions its output by key hash across the
	// reducers (or keeps it whole for map-only jobs).
	type mapOutput struct {
		node    *cluster.Node
		buckets [][]pair // len == numReducers (or 1 for map-only)
	}
	outputs := make([]mapOutput, len(splits))
	slots := job.SlotsPerNode
	if slots <= 0 {
		slots = 2
	}
	sem := make(chan struct{}, slots*len(nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(splits))
	var inputRows, mapOutputs, taskRetries atomicCounter
	for i := range splits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			node := assignments[i]
			nb := numReducers
			if nb == 0 {
				nb = 1
			}
			// Everything an attempt produces — buckets, counters, bytes —
			// is attempt-local and folded in only when the attempt
			// succeeds, so a crashed attempt leaves no partial state for
			// its re-execution to double-count.
			errs[i] = runTask(job, &taskRetries, "map", i, func(attempt int) error {
				buckets := make([][]pair, nb)
				var taskIn, taskOut int64
				emit := func(key string, value row.Row) error {
					taskOut++
					b := 0
					if numReducers > 0 {
						b = int(hashString(key) % uint64(numReducers))
					}
					buckets[b] = append(buckets[b], pair{key: key, value: value})
					return nil
				}
				rr, err := job.Input.Open(splits[i], node)
				if err != nil {
					return err
				}
				taskBytes := 0
				attemptErr := func() error {
					record := 0
					for {
						if job.TaskFault != nil {
							if ferr := job.TaskFault("map", i, attempt, record); ferr != nil {
								return ferr
							}
						}
						r, ok, err := rr.Next()
						if err != nil {
							return err
						}
						if !ok {
							return nil
						}
						taskIn++
						record++
						taskBytes += approxRowBytes(r)
						if err := job.Mapper.Map(r, emit); err != nil {
							return err
						}
					}
				}()
				cerr := rr.Close()
				// Every attempt pays for the bytes it read, failed ones
				// included — re-execution cost is why attempts are bounded.
				job.Cost.ChargeProc(node, taskBytes)
				if attemptErr != nil {
					return attemptErr
				}
				if cerr != nil {
					return cerr
				}
				if job.Combiner != nil && numReducers > 0 {
					for b := range buckets {
						combined, err := combine(job.Combiner, buckets[b])
						if err != nil {
							return err
						}
						buckets[b] = combined
					}
				}
				outputs[i] = mapOutput{node: node, buckets: buckets}
				inputRows.add(taskIn)
				mapOutputs.add(taskOut)
				return nil
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
		}
	}
	stats.InputRows = inputRows.get()
	stats.MapOutputs = mapOutputs.get()

	if job.Reducer == nil {
		// Map-only: write one part file per map task from its node,
		// through the attempt-scoped scratch-then-rename commit.
		var outputRows atomicCounter
		err := forEach(len(splits), func(i int) error {
			return runTask(job, &taskRetries, "commit", i, func(attempt int) error {
				rows := make([]row.Row, 0, len(outputs[i].buckets[0]))
				for _, p := range outputs[i].buckets[0] {
					rows = append(rows, p.value)
				}
				final := fmt.Sprintf("%s/part-m-%05d", job.OutputPath, i)
				n, err := commitTextTable(job, final, i, attempt, rows, outputs[i].node)
				if err != nil {
					return err
				}
				outputRows.add(n)
				return nil
			})
		})
		if err != nil {
			return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
		}
		stats.OutputRows = outputRows.get()
		stats.TaskRetries = taskRetries.get()
		return stats, nil
	}

	// Shuffle: reducer r (on nodes[r % len]) pulls bucket r of every map
	// output; remote pulls are charged to the network.
	reduceNodes := make([]*cluster.Node, numReducers)
	for r := 0; r < numReducers; r++ {
		reduceNodes[r] = nodes[r%len(nodes)]
	}
	shuffled := make([][]pair, numReducers)
	var shuffleBytes int64
	for r := 0; r < numReducers; r++ {
		for _, mo := range outputs {
			b := mo.buckets[r]
			if len(b) == 0 {
				continue
			}
			if mo.node != reduceNodes[r] {
				bytes := 0
				for _, p := range b {
					bytes += len(p.key) + approxRowBytes(p.value)
				}
				job.Cost.ChargeNet(mo.node, reduceNodes[r], bytes)
				shuffleBytes += int64(bytes)
			}
			shuffled[r] = append(shuffled[r], b...)
		}
	}
	stats.ShuffleBytes = shuffleBytes

	// Reduce phase: sort by key, group, reduce, commit part files. Each
	// attempt re-sorts and re-groups from the (immutable between attempts)
	// shuffled input and accumulates into attempt-local rows, so a crashed
	// attempt's re-execution reproduces the identical part file.
	var outputRows atomicCounter
	err = forEach(numReducers, func(r int) error {
		return runTask(job, &taskRetries, "reduce", r, func(attempt int) error {
			ps := shuffled[r]
			reduceBytes := 0
			for _, p := range ps {
				reduceBytes += len(p.key) + approxRowBytes(p.value)
			}
			// A reduce task is one processing pass over its shuffled
			// input; failed attempts pay too.
			job.Cost.ChargeProc(reduceNodes[r], reduceBytes)
			sort.SliceStable(ps, func(i, j int) bool { return ps[i].key < ps[j].key })
			var rows []row.Row
			emit := func(out row.Row) error {
				rows = append(rows, out)
				return nil
			}
			record := 0
			for i := 0; i < len(ps); {
				if job.TaskFault != nil {
					if ferr := job.TaskFault("reduce", r, attempt, record); ferr != nil {
						return ferr
					}
				}
				j := i
				for j < len(ps) && ps[j].key == ps[i].key {
					j++
				}
				vals := make([]row.Row, 0, j-i)
				for _, p := range ps[i:j] {
					vals = append(vals, p.value)
				}
				if err := job.Reducer.Reduce(ps[i].key, vals, emit); err != nil {
					return err
				}
				record++
				i = j
			}
			final := fmt.Sprintf("%s/part-r-%05d", job.OutputPath, r)
			n, err := commitTextTable(job, final, r, attempt, rows, reduceNodes[r])
			if err != nil {
				return err
			}
			outputRows.add(n)
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
	}
	stats.OutputRows = outputRows.get()
	stats.TaskRetries = taskRetries.get()
	return stats, nil
}

// defaultTaskAttempts bounds per-task re-execution when the job does not
// set its own budget (Hadoop's mapreduce.map.maxattempts default).
const defaultTaskAttempts = 4

// runTask executes one task body with bounded re-execution: an attempt
// failing with a hadoopfmt.RetryableError is re-run from scratch (the body
// keeps all of its state attempt-local), anything else fails the job
// immediately. Attempts are 0-indexed so fault scripts and scratch paths
// can name them.
func runTask(job *Job, retries *atomicCounter, phase string, task int, body func(attempt int) error) error {
	budget := job.MaxTaskAttempts
	if budget <= 0 {
		budget = defaultTaskAttempts
	}
	for attempt := 0; ; attempt++ {
		err := body(attempt)
		if err == nil {
			return nil
		}
		if !hadoopfmt.IsRetryable(err) {
			return fmt.Errorf("%s task %d: %w", phase, task, err)
		}
		if attempt+1 >= budget {
			return fmt.Errorf("%s task %d: attempt budget (%d) exhausted: %w", phase, task, budget, err)
		}
		retries.add(1)
	}
}

// commitTextTable writes one part file through an attempt-scoped scratch
// path and renames it into place only when the write fully succeeded — a
// crashed attempt leaves no partial part file for readers (or the next
// attempt) to trip over. Scratch files carry the "_" prefix Hadoop uses
// for in-progress output, which directory readers skip.
func commitTextTable(job *Job, final string, task, attempt int, rows []row.Row, node *cluster.Node) (int64, error) {
	scratch := fmt.Sprintf("%s/_attempt-%05d-%d", job.OutputPath, task, attempt)
	if _, err := hadoopfmt.WriteTextTable(job.FS, scratch, job.OutputSchema, rows, node); err != nil {
		if job.FS.Exists(scratch) {
			// Best-effort scratch cleanup on the failure path; the commit
			// rename is what correctness hangs on.
			_ = job.FS.Delete(scratch)
		}
		return 0, err
	}
	if err := job.FS.Rename(scratch, final); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

func validate(job *Job) error {
	switch {
	case job == nil:
		return fmt.Errorf("mapred: nil job")
	case job.Input == nil:
		return fmt.Errorf("mapred: %s: no input format", job.Name)
	case job.Mapper == nil:
		return fmt.Errorf("mapred: %s: no mapper", job.Name)
	case job.FS == nil || job.Topo == nil:
		return fmt.Errorf("mapred: %s: no cluster resources", job.Name)
	case len(job.TaskNodes) == 0:
		return fmt.Errorf("mapred: %s: no task nodes", job.Name)
	case job.OutputPath == "":
		return fmt.Errorf("mapred: %s: no output path", job.Name)
	case job.OutputSchema.Len() == 0:
		return fmt.Errorf("mapred: %s: no output schema", job.Name)
	}
	return nil
}

type pair struct {
	key   string
	value row.Row
}

// assign places each split on the least-loaded node among its locality
// hosts, falling back to the least-loaded node overall.
func assign(splits []hadoopfmt.InputSplit, nodes []*cluster.Node) []*cluster.Node {
	loads := make([]int64, len(nodes))
	out := make([]*cluster.Node, len(splits))
	for i, sp := range splits {
		best := -1
		for ni, n := range nodes {
			local := false
			for _, loc := range sp.Locations() {
				if n.Addr == loc {
					local = true
					break
				}
			}
			if local && (best < 0 || loads[ni] < loads[best]) {
				best = ni
			}
		}
		if best < 0 {
			best = 0
			for ni := range nodes {
				if loads[ni] < loads[best] {
					best = ni
				}
			}
		}
		loads[best] += sp.Length()
		out[i] = nodes[best]
	}
	return out
}

func hashString(s string) uint64 {
	// FNV-1a inline to avoid allocation.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func approxRowBytes(r row.Row) int {
	n := 4
	for _, v := range r {
		if v.Kind == row.TypeString && !v.Null {
			n += 5 + len(v.AsString())
		} else {
			n += 9
		}
	}
	return n
}

func forEach(n int, f func(int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type atomicCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *atomicCounter) add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *atomicCounter) get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Output returns an InputFormat reading a finished job's output directory.
func Output(job *Job) hadoopfmt.InputFormat {
	return &dirFormat{fs: job.FS, dir: job.OutputPath, schema: job.OutputSchema}
}

// DirFormat returns an InputFormat over every part file under a DFS
// directory, with block-aligned splits.
func DirFormat(fs *dfs.FileSystem, dir string, schema row.Schema) hadoopfmt.InputFormat {
	return &dirFormat{fs: fs, dir: dir, schema: schema}
}

type dirFormat struct {
	fs     *dfs.FileSystem
	dir    string
	schema row.Schema
}

func (d *dirFormat) Schema() (row.Schema, error) { return d.schema, nil }

func (d *dirFormat) Splits(numSplits int) ([]hadoopfmt.InputSplit, error) {
	files := d.fs.List(d.dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("mapred: no part files under %q", d.dir)
	}
	var out []hadoopfmt.InputSplit
	for _, f := range files {
		// Skip in-progress and metadata files (Hadoop's "_" convention):
		// an uncommitted attempt's scratch output is not job output.
		if base := f[strings.LastIndexByte(f, '/')+1:]; strings.HasPrefix(base, "_") {
			continue
		}
		fm := hadoopfmt.NewTextTableFormat(d.fs, f, d.schema)
		splits, err := fm.Splits(0)
		if err != nil {
			return nil, err
		}
		out = append(out, splits...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mapred: no committed part files under %q", d.dir)
	}
	return out, nil
}

func (d *dirFormat) Open(split hadoopfmt.InputSplit, node *cluster.Node) (hadoopfmt.RecordReader, error) {
	fsplit, ok := split.(*hadoopfmt.FileSplit)
	if !ok {
		return nil, fmt.Errorf("mapred: dirFormat cannot open %T", split)
	}
	fm := hadoopfmt.NewTextTableFormat(d.fs, fsplit.Path, d.schema)
	return fm.Open(split, node)
}

// combine groups one bucket by key and runs the combiner per group,
// producing the pre-aggregated bucket that enters the shuffle.
func combine(c Reducer, bucket []pair) ([]pair, error) {
	if len(bucket) == 0 {
		return bucket, nil
	}
	sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].key < bucket[j].key })
	var out []pair
	for i := 0; i < len(bucket); {
		j := i
		for j < len(bucket) && bucket[j].key == bucket[i].key {
			j++
		}
		vals := make([]row.Row, 0, j-i)
		for _, p := range bucket[i:j] {
			vals = append(vals, p.value)
		}
		key := bucket[i].key
		emit := func(r row.Row) error {
			out = append(out, pair{key: key, value: r})
			return nil
		}
		if err := c.Reduce(key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}
