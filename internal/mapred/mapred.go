// Package mapred implements a MapReduce engine over the simulated DFS:
// locality-aware map task placement over InputSplits, a hash-partitioned
// shuffle with network cost charging, sorted reduce groups, and text-table
// output, one part file per reduce (or map) task.
//
// It stands in for the Hadoop MapReduce deployment of the paper's testbed:
// the naive pipeline's external transformation tool (internal/jaql) runs on
// it, and the "Mahout analog" naive Bayes trainer in internal/ml/mrnb shows
// that the streaming transfer feeds MapReduce-based ML systems through the
// same InputFormat seam.
package mapred

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// Mapper transforms one input row into zero or more keyed rows.
type Mapper interface {
	Map(r row.Row, emit func(key string, value row.Row) error) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(r row.Row, emit func(key string, value row.Row) error) error

// Map implements Mapper.
func (f MapperFunc) Map(r row.Row, emit func(key string, value row.Row) error) error {
	return f(r, emit)
}

// Reducer folds all rows sharing a key into zero or more output rows.
type Reducer interface {
	Reduce(key string, values []row.Row, emit func(row.Row) error) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []row.Row, emit func(row.Row) error) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []row.Row, emit func(row.Row) error) error {
	return f(key, values, emit)
}

// Job describes one MapReduce job.
type Job struct {
	Name   string
	Input  hadoopfmt.InputFormat
	Mapper Mapper
	// Reducer may be nil for a map-only job (output written per map task).
	Reducer     Reducer
	NumReducers int
	// Combiner, when set, pre-aggregates each map task's output per key
	// before the shuffle (Hadoop's combiner contract: it must be
	// associative and emit rows the Reducer accepts as values).
	Combiner Reducer

	// OutputPath is a DFS directory; part files are written beneath it.
	OutputPath   string
	OutputSchema row.Schema

	// Cluster resources: the nodes running task slots, the DFS for output,
	// and the cost model charged for shuffle traffic.
	Topo      *cluster.Topology
	FS        *dfs.FileSystem
	Cost      *cluster.CostModel
	TaskNodes []int
	// SlotsPerNode bounds concurrent tasks per node (the paper's testbed
	// ran 9 map slots per server). Defaults to 2.
	SlotsPerNode int
	// StartupDelay is the fixed per-job scheduling/startup overhead charged
	// to the cost model (Hadoop jobs pay tens of seconds of JVM spin-up and
	// JobTracker scheduling before any task runs).
	StartupDelay time.Duration
}

// Stats reports job counters.
type Stats struct {
	MapTasks     int
	ReduceTasks  int
	InputRows    int64
	MapOutputs   int64
	OutputRows   int64
	ShuffleBytes int64
}

// Run executes the job synchronously and returns its counters.
func Run(job *Job) (*Stats, error) {
	if err := validate(job); err != nil {
		return nil, err
	}
	splits, err := job.Input.Splits(0)
	if err != nil {
		return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
	}
	stats := &Stats{MapTasks: len(splits)}

	nodes := make([]*cluster.Node, len(job.TaskNodes))
	for i, id := range job.TaskNodes {
		nodes[i] = job.Topo.Node(id)
	}
	assignments := assign(splits, nodes)
	job.Cost.ChargeDelay(nodes[0], job.StartupDelay)

	numReducers := job.NumReducers
	if job.Reducer == nil {
		numReducers = 0
	} else if numReducers <= 0 {
		numReducers = len(nodes)
	}
	stats.ReduceTasks = numReducers

	// Map phase. Each task partitions its output by key hash across the
	// reducers (or keeps it whole for map-only jobs).
	type mapOutput struct {
		node    *cluster.Node
		buckets [][]pair // len == numReducers (or 1 for map-only)
	}
	outputs := make([]mapOutput, len(splits))
	slots := job.SlotsPerNode
	if slots <= 0 {
		slots = 2
	}
	sem := make(chan struct{}, slots*len(nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(splits))
	var inputRows, mapOutputs atomicCounter
	for i := range splits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			node := assignments[i]
			nb := numReducers
			if nb == 0 {
				nb = 1
			}
			buckets := make([][]pair, nb)
			rr, err := job.Input.Open(splits[i], node)
			if err != nil {
				errs[i] = err
				return
			}
			defer func() {
				if cerr := rr.Close(); cerr != nil && errs[i] == nil {
					errs[i] = cerr
				}
			}()
			emit := func(key string, value row.Row) error {
				mapOutputs.add(1)
				b := 0
				if numReducers > 0 {
					b = int(hashString(key) % uint64(numReducers))
				}
				buckets[b] = append(buckets[b], pair{key: key, value: value})
				return nil
			}
			taskBytes := 0
			for {
				r, ok, err := rr.Next()
				if err != nil {
					errs[i] = err
					return
				}
				if !ok {
					break
				}
				inputRows.add(1)
				taskBytes += approxRowBytes(r)
				if err := job.Mapper.Map(r, emit); err != nil {
					errs[i] = err
					return
				}
			}
			// A map task is one processing pass over its split.
			job.Cost.ChargeProc(node, taskBytes)
			if job.Combiner != nil && numReducers > 0 {
				for b := range buckets {
					combined, err := combine(job.Combiner, buckets[b])
					if err != nil {
						errs[i] = err
						return
					}
					buckets[b] = combined
				}
			}
			outputs[i] = mapOutput{node: node, buckets: buckets}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapred: %s: map task: %w", job.Name, err)
		}
	}
	stats.InputRows = inputRows.get()
	stats.MapOutputs = mapOutputs.get()

	if job.Reducer == nil {
		// Map-only: write one part file per map task from its node.
		var outputRows atomicCounter
		err := forEach(len(splits), func(i int) error {
			rows := make([]row.Row, 0, len(outputs[i].buckets[0]))
			for _, p := range outputs[i].buckets[0] {
				rows = append(rows, p.value)
			}
			outputRows.add(int64(len(rows)))
			path := fmt.Sprintf("%s/part-m-%05d", job.OutputPath, i)
			_, err := hadoopfmt.WriteTextTable(job.FS, path, job.OutputSchema, rows, outputs[i].node)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
		}
		stats.OutputRows = outputRows.get()
		return stats, nil
	}

	// Shuffle: reducer r (on nodes[r % len]) pulls bucket r of every map
	// output; remote pulls are charged to the network.
	reduceNodes := make([]*cluster.Node, numReducers)
	for r := 0; r < numReducers; r++ {
		reduceNodes[r] = nodes[r%len(nodes)]
	}
	shuffled := make([][]pair, numReducers)
	var shuffleBytes int64
	for r := 0; r < numReducers; r++ {
		for _, mo := range outputs {
			b := mo.buckets[r]
			if len(b) == 0 {
				continue
			}
			if mo.node != reduceNodes[r] {
				bytes := 0
				for _, p := range b {
					bytes += len(p.key) + approxRowBytes(p.value)
				}
				job.Cost.ChargeNet(mo.node, reduceNodes[r], bytes)
				shuffleBytes += int64(bytes)
			}
			shuffled[r] = append(shuffled[r], b...)
		}
	}
	stats.ShuffleBytes = shuffleBytes

	// Reduce phase: sort by key, group, reduce, write part files.
	var outputRows atomicCounter
	err = forEach(numReducers, func(r int) error {
		ps := shuffled[r]
		reduceBytes := 0
		for _, p := range ps {
			reduceBytes += len(p.key) + approxRowBytes(p.value)
		}
		// A reduce task is one processing pass over its shuffled input.
		job.Cost.ChargeProc(reduceNodes[r], reduceBytes)
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].key < ps[j].key })
		var rows []row.Row
		emit := func(out row.Row) error {
			rows = append(rows, out)
			return nil
		}
		for i := 0; i < len(ps); {
			j := i
			for j < len(ps) && ps[j].key == ps[i].key {
				j++
			}
			vals := make([]row.Row, 0, j-i)
			for _, p := range ps[i:j] {
				vals = append(vals, p.value)
			}
			if err := job.Reducer.Reduce(ps[i].key, vals, emit); err != nil {
				return err
			}
			i = j
		}
		outputRows.add(int64(len(rows)))
		path := fmt.Sprintf("%s/part-r-%05d", job.OutputPath, r)
		_, err := hadoopfmt.WriteTextTable(job.FS, path, job.OutputSchema, rows, reduceNodes[r])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("mapred: %s: reduce: %w", job.Name, err)
	}
	stats.OutputRows = outputRows.get()
	return stats, nil
}

func validate(job *Job) error {
	switch {
	case job == nil:
		return fmt.Errorf("mapred: nil job")
	case job.Input == nil:
		return fmt.Errorf("mapred: %s: no input format", job.Name)
	case job.Mapper == nil:
		return fmt.Errorf("mapred: %s: no mapper", job.Name)
	case job.FS == nil || job.Topo == nil:
		return fmt.Errorf("mapred: %s: no cluster resources", job.Name)
	case len(job.TaskNodes) == 0:
		return fmt.Errorf("mapred: %s: no task nodes", job.Name)
	case job.OutputPath == "":
		return fmt.Errorf("mapred: %s: no output path", job.Name)
	case job.OutputSchema.Len() == 0:
		return fmt.Errorf("mapred: %s: no output schema", job.Name)
	}
	return nil
}

type pair struct {
	key   string
	value row.Row
}

// assign places each split on the least-loaded node among its locality
// hosts, falling back to the least-loaded node overall.
func assign(splits []hadoopfmt.InputSplit, nodes []*cluster.Node) []*cluster.Node {
	loads := make([]int64, len(nodes))
	out := make([]*cluster.Node, len(splits))
	for i, sp := range splits {
		best := -1
		for ni, n := range nodes {
			local := false
			for _, loc := range sp.Locations() {
				if n.Addr == loc {
					local = true
					break
				}
			}
			if local && (best < 0 || loads[ni] < loads[best]) {
				best = ni
			}
		}
		if best < 0 {
			best = 0
			for ni := range nodes {
				if loads[ni] < loads[best] {
					best = ni
				}
			}
		}
		loads[best] += sp.Length()
		out[i] = nodes[best]
	}
	return out
}

func hashString(s string) uint64 {
	// FNV-1a inline to avoid allocation.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func approxRowBytes(r row.Row) int {
	n := 4
	for _, v := range r {
		if v.Kind == row.TypeString && !v.Null {
			n += 5 + len(v.AsString())
		} else {
			n += 9
		}
	}
	return n
}

func forEach(n int, f func(int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type atomicCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *atomicCounter) add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *atomicCounter) get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Output returns an InputFormat reading a finished job's output directory.
func Output(job *Job) hadoopfmt.InputFormat {
	return &dirFormat{fs: job.FS, dir: job.OutputPath, schema: job.OutputSchema}
}

// DirFormat returns an InputFormat over every part file under a DFS
// directory, with block-aligned splits.
func DirFormat(fs *dfs.FileSystem, dir string, schema row.Schema) hadoopfmt.InputFormat {
	return &dirFormat{fs: fs, dir: dir, schema: schema}
}

type dirFormat struct {
	fs     *dfs.FileSystem
	dir    string
	schema row.Schema
}

func (d *dirFormat) Schema() (row.Schema, error) { return d.schema, nil }

func (d *dirFormat) Splits(numSplits int) ([]hadoopfmt.InputSplit, error) {
	files := d.fs.List(d.dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("mapred: no part files under %q", d.dir)
	}
	var out []hadoopfmt.InputSplit
	for _, f := range files {
		fm := hadoopfmt.NewTextTableFormat(d.fs, f, d.schema)
		splits, err := fm.Splits(0)
		if err != nil {
			return nil, err
		}
		out = append(out, splits...)
	}
	return out, nil
}

func (d *dirFormat) Open(split hadoopfmt.InputSplit, node *cluster.Node) (hadoopfmt.RecordReader, error) {
	fsplit, ok := split.(*hadoopfmt.FileSplit)
	if !ok {
		return nil, fmt.Errorf("mapred: dirFormat cannot open %T", split)
	}
	fm := hadoopfmt.NewTextTableFormat(d.fs, fsplit.Path, d.schema)
	return fm.Open(split, node)
}

// combine groups one bucket by key and runs the combiner per group,
// producing the pre-aggregated bucket that enters the shuffle.
func combine(c Reducer, bucket []pair) ([]pair, error) {
	if len(bucket) == 0 {
		return bucket, nil
	}
	sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].key < bucket[j].key })
	var out []pair
	for i := 0; i < len(bucket); {
		j := i
		for j < len(bucket) && bucket[j].key == bucket[i].key {
			j++
		}
		vals := make([]row.Row, 0, j-i)
		for _, p := range bucket[i:j] {
			vals = append(vals, p.value)
		}
		key := bucket[i].key
		emit := func(r row.Row) error {
			out = append(out, pair{key: key, value: r})
			return nil
		}
		if err := c.Reduce(key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}
