package mapred

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

type testCluster struct {
	topo *cluster.Topology
	fs   *dfs.FileSystem
	cost *cluster.CostModel
}

func newTestCluster(t testing.TB) *testCluster {
	t.Helper()
	topo := cluster.NewTopology(5)
	cost := &cluster.CostModel{DiskReadBps: 1e9, DiskWriteBps: 1e9, NetBps: 1e9, TimeScale: 0}
	fs := dfs.New(topo, dfs.Config{BlockSize: 256, Replication: 2, Cost: cost})
	return &testCluster{topo: topo, fs: fs, cost: cost}
}

func wordsSchema() row.Schema {
	return row.MustSchema(row.Column{Name: "line", Type: row.TypeString})
}

func countSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "word", Type: row.TypeString},
		row.Column{Name: "n", Type: row.TypeInt},
	)
}

// TestWordCount is the canonical end-to-end MapReduce check.
func TestWordCount(t *testing.T) {
	c := newTestCluster(t)
	lines := []row.Row{
		{row.String_("the quick brown fox")},
		{row.String_("the lazy dog")},
		{row.String_("the quick dog")},
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/lines", wordsSchema(), lines, c.topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:  "wordcount",
		Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/lines", wordsSchema()),
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			for _, w := range strings.Fields(r[0].AsString()) {
				if err := emit(w, row.Row{row.Int(1)}); err != nil {
					return err
				}
			}
			return nil
		}),
		Reducer: ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
			var n int64
			for _, v := range values {
				n += v[0].AsInt()
			}
			return emit(row.Row{row.String_(key), row.Int(n)})
		}),
		NumReducers:  3,
		OutputPath:   "/out/wc",
		OutputSchema: countSchema(),
		Topo:         c.topo,
		FS:           c.fs,
		Cost:         c.cost,
		TaskNodes:    []int{1, 2, 3, 4},
	}
	stats, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRows != 3 || stats.MapOutputs != 10 {
		t.Errorf("stats = %+v", stats)
	}
	got, err := hadoopfmt.ReadAll(Output(job), c.topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, r := range got {
		counts[r[0].AsString()] = r[1].AsInt()
	}
	want := map[string]int64{"the": 3, "quick": 2, "dog": 2, "brown": 1, "fox": 1, "lazy": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%s] = %d, want %d", w, counts[w], n)
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := newTestCluster(t)
	var rows []row.Row
	for i := 0; i < 40; i++ {
		rows = append(rows, row.Row{row.String_(fmt.Sprintf("line %d", i))})
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/m", wordsSchema(), rows, c.topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:  "upper",
		Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/m", wordsSchema()),
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			return emit("", row.Row{row.String_(strings.ToUpper(r[0].AsString()))})
		}),
		OutputPath:   "/out/m",
		OutputSchema: wordsSchema(),
		Topo:         c.topo,
		FS:           c.fs,
		Cost:         c.cost,
		TaskNodes:    []int{1, 2, 3, 4},
	}
	stats, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReduceTasks != 0 {
		t.Errorf("map-only job ran %d reducers", stats.ReduceTasks)
	}
	if stats.OutputRows != 40 {
		t.Errorf("output rows = %d", stats.OutputRows)
	}
	got, err := hadoopfmt.ReadAll(Output(job), c.topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 || !strings.HasPrefix(got[0][0].AsString(), "LINE") {
		t.Errorf("map-only output: %d rows, first %v", len(got), got[0])
	}
}

func TestReducerSeesSortedGroupedKeys(t *testing.T) {
	c := newTestCluster(t)
	var rows []row.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, row.Row{row.String_(fmt.Sprintf("k%d", i%3))})
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/g", wordsSchema(), rows, c.topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	var mu struct {
		sorted bool
		keys   []string
	}
	mu.sorted = true
	job := &Job{
		Name:  "grouping",
		Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/g", wordsSchema()),
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			return emit(r[0].AsString(), r)
		}),
		Reducer: ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
			if len(values) != 10 {
				return fmt.Errorf("group %s has %d values, want 10", key, len(values))
			}
			return emit(row.Row{row.String_(key), row.Int(int64(len(values)))})
		}),
		NumReducers:  1, // single reducer sees all keys in sorted order
		OutputPath:   "/out/g",
		OutputSchema: countSchema(),
		Topo:         c.topo,
		FS:           c.fs,
		Cost:         c.cost,
		TaskNodes:    []int{1, 2},
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	got, err := hadoopfmt.ReadAll(Output(job), c.topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, r := range got {
		keys = append(keys, r[0].AsString())
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("reducer output keys not sorted: %v", keys)
	}
	_ = mu
}

func TestShuffleChargesNetwork(t *testing.T) {
	c := newTestCluster(t)
	var rows []row.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, row.Row{row.String_(fmt.Sprintf("key%d payload-%d", i, i))})
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/s", wordsSchema(), rows, c.topo.Node(1)); err != nil {
		t.Fatal(err)
	}
	c.cost.ResetStats()
	job := &Job{
		Name:  "shuffle",
		Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/s", wordsSchema()),
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			return emit(strings.Fields(r[0].AsString())[0], r)
		}),
		Reducer: ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
			return emit(row.Row{row.String_(key), row.Int(int64(len(values)))})
		}),
		NumReducers:  4,
		OutputPath:   "/out/s",
		OutputSchema: countSchema(),
		Topo:         c.topo,
		FS:           c.fs,
		Cost:         c.cost,
		TaskNodes:    []int{1, 2, 3, 4},
	}
	stats, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleBytes == 0 {
		t.Error("expected nonzero shuffle traffic with 4 reducers")
	}
	if c.cost.Stats().NetBytes == 0 {
		t.Error("shuffle did not charge the network cost model")
	}
}

func TestJobValidation(t *testing.T) {
	c := newTestCluster(t)
	good := func() *Job {
		return &Job{
			Name:         "v",
			Input:        &hadoopfmt.SliceFormat{Rows: []row.Row{{row.Int(1)}}, RowSchema: row.MustSchema(row.Column{Name: "a", Type: row.TypeInt})},
			Mapper:       MapperFunc(func(r row.Row, emit func(string, row.Row) error) error { return emit("", r) }),
			OutputPath:   "/out/v",
			OutputSchema: row.MustSchema(row.Column{Name: "a", Type: row.TypeInt}),
			Topo:         c.topo,
			FS:           c.fs,
			TaskNodes:    []int{0},
		}
	}
	mutations := []func(*Job){
		func(j *Job) { j.Input = nil },
		func(j *Job) { j.Mapper = nil },
		func(j *Job) { j.FS = nil },
		func(j *Job) { j.TaskNodes = nil },
		func(j *Job) { j.OutputPath = "" },
		func(j *Job) { j.OutputSchema = row.Schema{} },
	}
	for i, mut := range mutations {
		j := good()
		mut(j)
		if _, err := Run(j); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := Run(good()); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := newTestCluster(t)
	job := &Job{
		Name:  "boom",
		Input: &hadoopfmt.SliceFormat{Rows: []row.Row{{row.Int(1)}}, RowSchema: row.MustSchema(row.Column{Name: "a", Type: row.TypeInt})},
		Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			return fmt.Errorf("mapper exploded")
		}),
		OutputPath:   "/out/boom",
		OutputSchema: row.MustSchema(row.Column{Name: "a", Type: row.TypeInt}),
		Topo:         c.topo,
		FS:           c.fs,
		TaskNodes:    []int{0},
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "mapper exploded") {
		t.Errorf("map error not propagated: %v", err)
	}
}

func TestDirFormatReadsAllParts(t *testing.T) {
	c := newTestCluster(t)
	s := countSchema()
	for i := 0; i < 3; i++ {
		rows := []row.Row{{row.String_(fmt.Sprintf("w%d", i)), row.Int(int64(i))}}
		if _, err := hadoopfmt.WriteTextTable(c.fs, fmt.Sprintf("/dir/part-%d", i), s, rows, c.topo.Node(0)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := hadoopfmt.ReadAll(DirFormat(c.fs, "/dir", s), c.topo.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("dir format rows = %d", len(got))
	}
	if _, err := DirFormat(c.fs, "/nosuch", s).Splits(0); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestCombinerReducesShuffleWithoutChangingResults(t *testing.T) {
	c := newTestCluster(t)
	var lines []row.Row
	for i := 0; i < 200; i++ {
		lines = append(lines, row.Row{row.String_(fmt.Sprintf("w%d filler filler", i%5))})
	}
	if _, err := hadoopfmt.WriteTextTable(c.fs, "/in/comb", wordsSchema(), lines, c.topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	sumReducer := ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
		var n int64
		for _, v := range values {
			n += v[0].AsInt()
		}
		return emit(row.Row{row.Int(n)})
	})
	makeJob := func(out string, withCombiner bool) *Job {
		j := &Job{
			Name:  "comb",
			Input: hadoopfmt.NewTextTableFormat(c.fs, "/in/comb", wordsSchema()),
			Mapper: MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
				return emit(strings.Fields(r[0].AsString())[0], row.Row{row.Int(1)})
			}),
			Reducer: ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
				var n int64
				for _, v := range values {
					n += v[0].AsInt()
				}
				return emit(row.Row{row.String_(key), row.Int(n)})
			}),
			NumReducers:  2,
			OutputPath:   out,
			OutputSchema: countSchema(),
			Topo:         c.topo,
			FS:           c.fs,
			Cost:         c.cost,
			TaskNodes:    []int{1, 2, 3, 4},
		}
		if withCombiner {
			j.Combiner = sumReducer
		}
		return j
	}
	plain := makeJob("/out/comb-plain", false)
	statsPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	combined := makeJob("/out/comb-comb", true)
	statsComb, err := Run(combined)
	if err != nil {
		t.Fatal(err)
	}
	if statsComb.ShuffleBytes >= statsPlain.ShuffleBytes {
		t.Errorf("combiner did not shrink the shuffle: %d vs %d",
			statsComb.ShuffleBytes, statsPlain.ShuffleBytes)
	}
	read := func(j *Job) map[string]int64 {
		rows, err := hadoopfmt.ReadAll(Output(j), c.topo.Node(0))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, r := range rows {
			out[r[0].AsString()] = r[1].AsInt()
		}
		return out
	}
	a, b := read(plain), read(combined)
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("result sizes differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%s]: %d vs %d", k, v, b[k])
		}
	}
}
