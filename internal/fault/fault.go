// Package fault is the deterministic fault-injection layer: seeded,
// scripted fault plans that drive partial-failure recovery testing across
// every distributed layer of the reproduction — connection faults for the
// streaming transfer (reset / stall / short-write at byte N), datanode
// fail/slow hooks for the simulated DFS, and record-K task-crash hooks for
// the MapReduce engine.
//
// Everything derives from a seed through a splitmix64 generator, so a
// failing chaos run is replayed exactly by re-running with the printed
// seed. Faults are *scripted*, not sampled at runtime: a plan decides up
// front which connection, datanode, or task attempt fails and where, which
// keeps schedules reproducible even when the victims run concurrently.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// Rand is a small deterministic PRNG (splitmix64). Unlike math/rand's
// global state it is per-plan, so concurrent plans never perturb each
// other's schedules.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a generator for the given seed. Seed 0 is valid.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567B}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator, so sub-plans consume randomness
// in a stable order regardless of how the parent interleaves draws.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64()}
}

// Jitter returns a deterministic jitter in [0, max) for backoff schedules.
func (r *Rand) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Int63n(int64(max)))
}

// Plan is one seeded fault schedule. Sub-injectors (connections, DFS,
// tasks) fork their randomness from it so each consumes an independent
// stream.
type Plan struct {
	Seed int64
	rnd  *Rand
}

// NewPlan returns a plan for the seed.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, rnd: NewRand(seed)}
}

// Rand forks an independent generator off the plan.
func (p *Plan) Rand() *Rand { return p.rnd.Fork() }

// String identifies the plan in failure messages.
func (p *Plan) String() string { return fmt.Sprintf("fault.Plan(seed=%d)", p.Seed) }
