package fault

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Op is one connection fault kind.
type Op int

// Connection fault kinds.
const (
	// Reset closes the connection abruptly once the scripted byte offset
	// is reached: bytes before the offset are delivered, the rest are not,
	// and both peers observe a mid-stream connection failure.
	Reset Op = iota
	// Stall sleeps for the scripted duration at the byte offset, then
	// continues — a hung-but-connected peer, the failure mode heartbeats
	// and leases exist to detect.
	Stall
	// ShortWrite delivers a prefix that deliberately lands mid-frame (the
	// scripted offset plus half of the in-flight buffer), then closes: the
	// receiver decodes a truncated frame, not a clean connection error.
	ShortWrite
)

// String renders the op for schedule logs.
func (o Op) String() string {
	switch o {
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case ShortWrite:
		return "short-write"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ConnFault is one scripted fault on one connection, triggered when the
// cumulative bytes written through the connection cross AtByte.
type ConnFault struct {
	Op     Op
	AtByte int64
	// StallFor is the Stall duration (ignored for other ops).
	StallFor time.Duration
}

// errInjected marks failures this package caused, so tests can tell an
// injected fault from a genuine bug.
type errInjected struct{ msg string }

func (e *errInjected) Error() string { return "fault: injected " + e.msg }

// IsInjected reports whether err was produced by a connection fault.
func IsInjected(err error) bool {
	_, ok := err.(*errInjected)
	return ok
}

// Conn wraps a net.Conn with a script of write-side faults. The script is
// consumed in order of AtByte; once it is exhausted the connection behaves
// normally. Conn is safe for the one-writer/one-reader use the streaming
// transfer makes of its sockets.
type Conn struct {
	net.Conn
	mu      sync.Mutex
	script  []ConnFault
	written int64
}

// WrapConn attaches a fault script to a connection.
func WrapConn(c net.Conn, script ...ConnFault) *Conn {
	return &Conn{Conn: c, script: script}
}

// Write implements net.Conn, running the fault script against the byte
// stream. Bytes before a fault's offset are always delivered, so the peer
// observes a well-defined prefix.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	var f *ConnFault
	if len(c.script) > 0 && c.written+int64(len(p)) > c.script[0].AtByte {
		f = &c.script[0]
		c.script = c.script[1:]
	}
	if f == nil {
		c.written += int64(len(p))
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	// Deliver the prefix up to the fault point.
	k := f.AtByte - c.written
	if k < 0 {
		k = 0
	}
	if k > int64(len(p)) {
		k = int64(len(p))
	}
	c.written += k
	c.mu.Unlock()

	n := 0
	if k > 0 {
		var err error
		n, err = c.Conn.Write(p[:k])
		if err != nil {
			return n, err
		}
	}
	switch f.Op {
	case Stall:
		time.Sleep(f.StallFor)
		m, err := c.Conn.Write(p[n:])
		c.mu.Lock()
		c.written += int64(m)
		c.mu.Unlock()
		return n + m, err
	case ShortWrite:
		// Land mid-frame: push half the remaining bytes, then cut the
		// connection so the receiver sees a truncated frame.
		extra := (len(p) - n) / 2
		if extra > 0 {
			m, _ := c.Conn.Write(p[n : n+extra])
			n += m
		}
		_ = c.Conn.Close()
		return n, &errInjected{"short write"}
	default: // Reset
		_ = c.Conn.Close()
		return n, &errInjected{"connection reset"}
	}
}

// DialerConfig scripts a Dialer: which dials get faults and what kind.
type DialerConfig struct {
	// MaxFaults bounds the total number of faulted connections; once spent,
	// every further dial is clean (so bounded retry budgets always win).
	MaxFaults int
	// FaultNth faults the n-th dial (0-based) to each distinct address when
	// the budget allows; nil faults the first dial per address.
	FaultNth func(addr string, nth int) bool
	// Ops are the fault kinds to rotate through (defaults to Reset only).
	Ops []Op
	// MaxByte bounds the scripted byte offsets (default 64 KiB).
	MaxByte int64
	// StallFor is the Stall duration (default 200ms).
	StallFor time.Duration
}

// Dialer produces faulted connections according to a seeded schedule. It
// plugs into stream.SenderConfig.Dial. Fault decisions are keyed by
// (address, per-address dial ordinal), so concurrent senders dialing
// different targets cannot perturb each other's schedules.
type Dialer struct {
	cfg DialerConfig
	rnd *Rand

	mu      sync.Mutex
	perAddr map[string]int
	faulted int
	// Injected counts the faults actually armed, so tests can assert the
	// schedule fired.
	injected int
}

// NewDialer returns a dialer whose fault schedule derives from seed.
func NewDialer(seed int64, cfg DialerConfig) *Dialer {
	if cfg.MaxByte <= 0 {
		cfg.MaxByte = 64 << 10
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = 200 * time.Millisecond
	}
	if len(cfg.Ops) == 0 {
		cfg.Ops = []Op{Reset}
	}
	if cfg.MaxFaults <= 0 {
		cfg.MaxFaults = 1
	}
	return &Dialer{cfg: cfg, rnd: NewRand(seed), perAddr: make(map[string]int)}
}

// Injected reports how many connections were armed with a fault.
func (d *Dialer) Injected() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// Dial matches the stream sender's dial hook signature: it dials the
// target and, when the schedule says so, arms the connection with a fault.
func (d *Dialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	nth := d.perAddr[addr]
	d.perAddr[addr]++
	arm := d.faulted < d.cfg.MaxFaults && d.wantFault(addr, nth)
	var script []ConnFault
	if arm {
		d.faulted++
		d.injected++
		op := d.cfg.Ops[d.rnd.Intn(len(d.cfg.Ops))]
		at := 1 + d.rnd.Int63n(d.cfg.MaxByte)
		script = []ConnFault{{Op: op, AtByte: at, StallFor: d.cfg.StallFor}}
	}
	d.mu.Unlock()
	if script == nil {
		return conn, nil
	}
	return WrapConn(conn, script...), nil
}

func (d *Dialer) wantFault(addr string, nth int) bool {
	if d.cfg.FaultNth != nil {
		return d.cfg.FaultNth(addr, nth)
	}
	return nth == 0
}
