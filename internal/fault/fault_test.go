package fault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"sqlml/internal/hadoopfmt"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestRandForkIndependent(t *testing.T) {
	r := NewRand(7)
	f1 := r.Fork()
	// Draws on the parent after forking must not perturb the fork.
	r.Uint64()
	r.Uint64()
	g := NewRand(7)
	g1 := g.Fork()
	for i := 0; i < 100; i++ {
		if f1.Uint64() != g1.Uint64() {
			t.Fatalf("fork diverged at draw %d", i)
		}
	}
}

func TestRandBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		if j := r.Jitter(time.Second); j < 0 || j >= time.Second {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if NewRand(1).Intn(0) != 0 || NewRand(1).Jitter(0) != 0 {
		t.Fatal("degenerate bounds must return 0")
	}
}

// pipeConn returns a wrapped client conn and the server end over loopback
// TCP (net.Pipe has no Close-unblocks-Read guarantee variance we want to
// avoid; real sockets match production behavior).
func pipeConn(t *testing.T, script ...ConnFault) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { _ = client.Close(); _ = r.c.Close() })
	return WrapConn(client, script...), r.c
}

func readAll(c net.Conn) []byte {
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, c)
	return buf.Bytes()
}

func TestConnResetDeliversPrefix(t *testing.T) {
	fc, srv := pipeConn(t, ConnFault{Op: Reset, AtByte: 10})
	done := make(chan []byte, 1)
	go func() { done <- readAll(srv) }()
	payload := bytes.Repeat([]byte{0xAB}, 64)
	n, err := fc.Write(payload)
	if err == nil || !IsInjected(err) {
		t.Fatalf("want injected reset, got n=%d err=%v", n, err)
	}
	if n != 10 {
		t.Fatalf("prefix: want 10 bytes delivered, got %d", n)
	}
	got := <-done
	if !bytes.Equal(got, payload[:10]) {
		t.Fatalf("peer saw %d bytes, want the 10-byte prefix", len(got))
	}
	// A second write on the dead conn must also fail.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestConnShortWriteLandsMidStream(t *testing.T) {
	fc, srv := pipeConn(t, ConnFault{Op: ShortWrite, AtByte: 8})
	done := make(chan []byte, 1)
	go func() { done <- readAll(srv) }()
	payload := bytes.Repeat([]byte{0xCD}, 32)
	n, err := fc.Write(payload)
	if err == nil || !IsInjected(err) {
		t.Fatalf("want injected short write, got err=%v", err)
	}
	got := <-done
	// Prefix (8) plus half the remainder (12): strictly between the fault
	// offset and the full payload, and the conn is closed after.
	if n <= 8 || n >= len(payload) {
		t.Fatalf("short write delivered %d bytes, want mid-stream truncation", n)
	}
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("peer saw %d bytes, writer reported %d", len(got), n)
	}
}

func TestConnStallDelaysThenDelivers(t *testing.T) {
	const stall = 60 * time.Millisecond
	fc, srv := pipeConn(t, ConnFault{Op: Stall, AtByte: 4, StallFor: stall})
	done := make(chan []byte, 1)
	go func() { done <- readAll(srv) }()
	payload := []byte("hello, stalled world")
	start := time.Now()
	n, err := fc.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("stall must deliver everything: n=%d err=%v", n, err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("write returned after %v, want >= %v stall", d, stall)
	}
	_ = fc.Close()
	if got := <-done; !bytes.Equal(got, payload) {
		t.Fatalf("peer saw %q, want %q", got, payload)
	}
}

func TestConnScriptExhaustionThenClean(t *testing.T) {
	fc, srv := pipeConn(t, ConnFault{Op: Stall, AtByte: 2, StallFor: time.Millisecond})
	done := make(chan []byte, 1)
	go func() { done <- readAll(srv) }()
	if _, err := fc.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	// Script consumed: later writes are clean.
	if _, err := fc.Write(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatalf("post-script write failed: %v", err)
	}
	_ = fc.Close()
	if got := <-done; len(got) != 104 {
		t.Fatalf("peer saw %d bytes, want 104", len(got))
	}
}

func TestDialerDeterministicPerAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _, _ = io.Copy(io.Discard, c); _ = c.Close() }(c)
		}
	}()

	script := func(seed int64) (faulted bool, err error) {
		d := NewDialer(seed, DialerConfig{Ops: []Op{Reset}, MaxByte: 16})
		c, err := d.Dial("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			return false, err
		}
		defer func() { _ = c.Close() }()
		_, werr := c.Write(bytes.Repeat([]byte("y"), 64))
		return IsInjected(werr), nil
	}
	f1, err := script(99)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := script(99)
	if err != nil {
		t.Fatal(err)
	}
	if !f1 || !f2 {
		t.Fatalf("first dial per address must fault by default: %v %v", f1, f2)
	}

	// Budget: MaxFaults=1 means the second dial is clean.
	d := NewDialer(7, DialerConfig{FaultNth: func(string, int) bool { return true }})
	c1, _ := d.Dial("tcp", ln.Addr().String(), time.Second)
	c2, _ := d.Dial("tcp", ln.Addr().String(), time.Second)
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()
	if _, ok := c1.(*Conn); !ok {
		t.Fatal("first dial should be armed")
	}
	if _, ok := c2.(*Conn); ok {
		t.Fatal("budget exhausted: second dial must be clean")
	}
	if d.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", d.Injected())
	}
}

func TestDFSFaultsScript(t *testing.T) {
	h := NewDFSFaults(DFSConfig{Node: 2, AfterReads: 3, FailReads: 2, FailWrites: 1})
	// First three consults are clean regardless of node.
	for i := 0; i < 3; i++ {
		if err := h.BlockRead(2, int64(i)); err != nil {
			t.Fatalf("read %d should be clean: %v", i, err)
		}
	}
	// Other nodes never fail.
	if err := h.BlockRead(1, 10); err != nil {
		t.Fatalf("node 1 should be clean: %v", err)
	}
	// Node 2 now fails, twice.
	if err := h.BlockRead(2, 10); err == nil || !IsInjected(err) {
		t.Fatalf("want injected read failure, got %v", err)
	}
	if err := h.BlockRead(2, 11); err == nil {
		t.Fatal("second failure expected")
	}
	// Recovered.
	if err := h.BlockRead(2, 12); err != nil {
		t.Fatalf("node should have recovered: %v", err)
	}
	if err := h.BlockWrite(2, 20); err == nil || !IsInjected(err) {
		t.Fatalf("want injected write failure, got %v", err)
	}
	if err := h.BlockWrite(2, 21); err != nil {
		t.Fatalf("write budget spent, want clean: %v", err)
	}
	r, w := h.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("Stats() = (%d, %d), want (2, 1)", r, w)
	}
}

func TestTaskFaultsScript(t *testing.T) {
	tf := NewTaskFaults(TaskConfig{Phase: "map", Task: 1, AtRecord: 5, Attempts: 2})
	if err := tf.Hook("map", 0, 0, 5); err != nil {
		t.Fatalf("other task must not crash: %v", err)
	}
	if err := tf.Hook("map", 1, 0, 4); err != nil {
		t.Fatalf("other record must not crash: %v", err)
	}
	err := tf.Hook("map", 1, 0, 5)
	if err == nil || !hadoopfmt.IsRetryable(err) {
		t.Fatalf("want retryable crash, got %v", err)
	}
	if err := tf.Hook("map", 1, 1, 5); err == nil {
		t.Fatal("attempt 1 must crash too")
	}
	if err := tf.Hook("map", 1, 2, 5); err != nil {
		t.Fatalf("attempt 2 must succeed: %v", err)
	}
	if err := tf.Hook("reduce", 1, 0, 5); err != nil {
		t.Fatalf("other phase must not crash: %v", err)
	}
	if tf.Crashes() != 2 {
		t.Fatalf("Crashes() = %d, want 2", tf.Crashes())
	}
}
