package fault

import (
	"fmt"
	"sync"

	"sqlml/internal/hadoopfmt"
)

// DFSConfig scripts datanode faults for one plan.
type DFSConfig struct {
	// Node is the datanode whose blocks misbehave.
	Node int
	// AfterReads arms the fault after this many block-read consults across
	// the whole filesystem (0 = immediately), so a schedule can fail a node
	// mid-read rather than before the first byte.
	AfterReads int
	// FailReads bounds how many read consults on Node fail before the node
	// "recovers"; 0 fails them forever (the replica-fallback path).
	FailReads int
	// FailWrites bounds how many block stores on Node fail (the task-retry
	// path); 0 injects no write faults.
	FailWrites int
}

// DFSFaults implements the dfs.FaultHook seam: it is consulted once per
// candidate replica on reads and once per replica store on writes, and
// decides from the scripted config — never from wall-clock time — whether
// that access fails.
type DFSFaults struct {
	cfg DFSConfig

	mu          sync.Mutex
	reads       int
	failedReads int
	failedWrite int
}

// NewDFSFaults returns a hook for the scripted datanode faults.
func NewDFSFaults(cfg DFSConfig) *DFSFaults {
	return &DFSFaults{cfg: cfg}
}

// BlockRead is consulted before serving blockID from nodeID; returning an
// error makes the reader fall back to the next replica.
func (d *DFSFaults) BlockRead(nodeID int, blockID int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	if nodeID != d.cfg.Node || d.reads <= d.cfg.AfterReads {
		return nil
	}
	if d.cfg.FailReads > 0 && d.failedReads >= d.cfg.FailReads {
		return nil
	}
	d.failedReads++
	return &errInjected{fmt.Sprintf("datanode %d read failure (block %d)", nodeID, blockID)}
}

// BlockWrite is consulted before storing blockID on nodeID; returning an
// error fails the enclosing write, which surfaces as a (retryable) task
// failure.
func (d *DFSFaults) BlockWrite(nodeID int, blockID int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if nodeID != d.cfg.Node || d.failedWrite >= d.cfg.FailWrites {
		return nil
	}
	d.failedWrite++
	return &errInjected{fmt.Sprintf("datanode %d write failure (block %d)", nodeID, blockID)}
}

// Stats reports how many faults actually fired, so a schedule can assert
// it exercised the path it meant to.
func (d *DFSFaults) Stats() (failedReads, failedWrites int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failedReads, d.failedWrite
}

// TaskConfig scripts MapReduce task crashes for one plan.
type TaskConfig struct {
	// Phase selects which side crashes: "map" or "reduce".
	Phase string
	// Task is the task index within the phase.
	Task int
	// AtRecord crashes the attempt after processing this many records, so
	// partial scratch output exists when the attempt dies.
	AtRecord int
	// Attempts is how many consecutive attempts crash before the task is
	// allowed to succeed. Keep it below the engine's attempt bound to test
	// recovery, or at/above it to test bounded escalation.
	Attempts int
}

// TaskFaults implements the mapred task-fault seam: consulted once per
// record per attempt, it crashes scripted attempts with a retryable error
// at the scripted record.
type TaskFaults struct {
	cfgs []TaskConfig

	mu      sync.Mutex
	crashes int
}

// NewTaskFaults returns an injector for the scripted task crashes.
func NewTaskFaults(cfgs ...TaskConfig) *TaskFaults {
	return &TaskFaults{cfgs: cfgs}
}

// Hook matches mapred's TaskFault seam signature.
func (t *TaskFaults) Hook(phase string, task, attempt, record int) error {
	for _, c := range t.cfgs {
		if c.Phase != phase || c.Task != task || attempt >= c.Attempts || record != c.AtRecord {
			continue
		}
		t.mu.Lock()
		t.crashes++
		t.mu.Unlock()
		return &hadoopfmt.RetryableError{Err: &errInjected{fmt.Sprintf(
			"%s task %d crash (attempt %d, record %d)", phase, task, attempt, record)}}
	}
	return nil
}

// Crashes reports how many attempts the injector killed.
func (t *TaskFaults) Crashes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashes
}
