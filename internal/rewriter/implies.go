package rewriter

import (
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// Implies reports whether predicate p logically implies predicate q — the
// paper's "same as or logically stronger than" test (its example: a < 18 is
// logically stronger than a <= 20).
//
// The decision is sound but incomplete: it returns true only for cases it
// can prove. Non-simple predicates imply only their exact canonical twins.
func Implies(p, q Pred) bool {
	if p.Raw == q.Raw && p.Raw != "" {
		return true
	}
	if p.Column == "" || p.Column != q.Column {
		return false
	}
	// IN-list reasoning: p's satisfying set must be contained in q's.
	if p.In != nil || q.In != nil {
		return impliesIn(p, q)
	}
	if !p.Simple || !q.Simple {
		return false
	}
	pv, pok := litValue(p.Value)
	qv, qok := litValue(q.Value)
	if !pok || !qok || pv.Null || qv.Null {
		return false
	}

	switch p.Op {
	case "=":
		// col = v implies any predicate v satisfies.
		return evalCmp(pv, q.Op, qv)
	case "<":
		switch q.Op {
		case "<":
			return cmp(pv, qv) <= 0 // col < a ⇒ col < b when a <= b
		case "<=":
			return cmp(pv, qv) <= 0
		case "<>":
			return cmp(pv, qv) <= 0 // everything below a excludes b >= a
		}
	case "<=":
		switch q.Op {
		case "<":
			return cmp(pv, qv) < 0 // col <= a ⇒ col < b when a < b
		case "<=":
			return cmp(pv, qv) <= 0
		case "<>":
			return cmp(pv, qv) < 0
		}
	case ">":
		switch q.Op {
		case ">":
			return cmp(pv, qv) >= 0
		case ">=":
			return cmp(pv, qv) >= 0
		case "<>":
			return cmp(pv, qv) >= 0
		}
	case ">=":
		switch q.Op {
		case ">":
			return cmp(pv, qv) > 0
		case ">=":
			return cmp(pv, qv) >= 0
		case "<>":
			return cmp(pv, qv) > 0
		}
	case "<>":
		return q.Op == "<>" && cmp(pv, qv) == 0
	}
	return false
}

// ImpliesAll reports whether the conjunction ps implies the conjunction qs:
// every q must be implied by at least one p.
func ImpliesAll(ps, qs []Pred) bool {
	for _, q := range qs {
		ok := false
		for _, p := range ps {
			if Implies(p, q) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func litValue(e sqlengine.Expr) (row.Value, bool) {
	l, ok := e.(*sqlengine.Lit)
	if !ok {
		return row.Value{}, false
	}
	return l.V, true
}

func cmp(a, b row.Value) int { return a.Compare(b) }

// evalCmp evaluates `a op b` for literal values.
func evalCmp(a row.Value, op string, b row.Value) bool {
	// Incomparable kinds (e.g. string vs number) prove nothing.
	if a.Kind != b.Kind && !(a.Numeric() && b.Numeric()) {
		return false
	}
	c := cmp(a, b)
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// impliesIn decides implication when at least one side is an IN-list.
func impliesIn(p, q Pred) bool {
	switch {
	case p.In != nil && q.In != nil:
		// col IN (subset) ⇒ col IN (superset).
		for _, pv := range p.In {
			if !containsValue(q.In, pv) {
				return false
			}
		}
		return true
	case p.Simple && p.Op == "=" && q.In != nil:
		// col = v ⇒ col IN (..., v, ...).
		pv, ok := litValue(p.Value)
		return ok && !pv.Null && containsValue(q.In, pv)
	case p.In != nil && q.Simple:
		// col IN (v1..vn) ⇒ q when every vi satisfies q.
		qv, ok := litValue(q.Value)
		if !ok || qv.Null {
			return false
		}
		for _, pv := range p.In {
			if !evalCmp(pv, q.Op, qv) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func containsValue(list []row.Value, v row.Value) bool {
	for _, x := range list {
		if x.Equal(v) {
			return true
		}
	}
	return false
}
