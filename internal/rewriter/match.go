package rewriter

import (
	"fmt"
	"sort"
	"strings"

	"sqlml/internal/row"
	"sqlml/internal/transform"
)

// FullResultMatch is a successful §5.1 test: the new query can be answered
// entirely from the cached fully-transformed table.
type FullResultMatch struct {
	// Projection lists the output names to select from the cached table,
	// in the new query's order.
	Projection []string
	// ExtraPreds are the new query's additional conjuncts, expressed over
	// the cached table's column names (categorical equality predicates are
	// translated through the recode map — 'F' becomes its code).
	ExtraPreds []string
}

// MatchFullResult applies the paper's §5.1 conditions deciding whether the
// cached query's fully transformed result answers the new query:
//
//  1. same FROM tables, same join conditions, and same predicates;
//  2. the new projection is a subset of the cached projection;
//  3. additional conjunctive predicates touch only cached projected fields.
//
// cachedSpec and cachedMap describe the transformation applied to the
// cached result, so extra predicates can be translated onto it; columns
// that were expanded by dummy/effect/orthogonal coding no longer exist as
// single columns, so predicates and projections on them are rejected.
func MatchFullResult(cached, next *QueryInfo, cachedSpec transform.Spec, cachedMap *transform.RecodeMap) (*FullResultMatch, bool) {
	if !SameJoinStructure(cached, next) {
		return nil, false
	}
	// Condition 2: projected subset (by canonical source).
	cachedProj := cached.ProjectedSources()
	coded := make(map[string]bool)
	for _, c := range cachedSpec.CodeCols {
		coded[strings.ToLower(c)] = true
	}
	recoded := make(map[string]bool)
	for _, c := range cachedSpec.RecodeCols {
		recoded[strings.ToLower(c)] = true
	}
	scaled := make(map[string]bool)
	for _, c := range cachedSpec.ScaleCols {
		scaled[strings.ToLower(c)] = true
	}
	var projection []string
	for _, p := range next.Projected {
		name, ok := cachedProj[p.Source]
		if !ok {
			return nil, false
		}
		if coded[name] {
			// The column was expanded into name_1..name_w on the cached
			// table; project the whole expansion (the identical-query case
			// of the paper: rerun different classifiers on the same data).
			if cachedMap == nil {
				return nil, false
			}
			w, err := transform.CodedWidth(cachedSpec.Coding, cachedMap.Cardinality(name))
			if err != nil {
				return nil, false
			}
			for i := 1; i <= w; i++ {
				projection = append(projection, fmt.Sprintf("%s_%d", name, i))
			}
			continue
		}
		projection = append(projection, name)
	}

	// Condition 1 on predicates: every cached predicate must appear in the
	// new query; condition 3: the extras must touch only projected fields.
	cachedSet := make(map[string]bool, len(cached.PredAll))
	for _, s := range cached.PredAll {
		cachedSet[s] = true
	}
	nextSet := make(map[string]bool, len(next.PredAll))
	for _, s := range next.PredAll {
		nextSet[s] = true
	}
	for s := range cachedSet {
		if !nextSet[s] {
			return nil, false
		}
	}
	var extras []string
	for col, preds := range next.Predicates {
		for _, p := range preds {
			if cachedSet[p.Raw] {
				continue
			}
			// Extra predicate: must be on a single cached projected field.
			name, ok := cachedProj[col]
			if !ok || !p.Simple {
				return nil, false
			}
			if scaled[name] {
				// The cached column holds scaled values; the predicate's
				// literal is in original units and cannot be applied.
				return nil, false
			}
			if coded[name] {
				// The column was expanded; only dummy coding keeps
				// equality predicates answerable (gender = 'F' becomes
				// gender_<code of F> = 1).
				rendered, ok := renderPredOnDummy(p, name, cachedSpec.Coding, cachedMap)
				if !ok {
					return nil, false
				}
				extras = append(extras, rendered)
				continue
			}
			rendered, ok := renderPredOnCache(p, name, recoded[name], cachedMap)
			if !ok {
				return nil, false
			}
			extras = append(extras, rendered)
		}
	}
	sort.Strings(extras)
	return &FullResultMatch{Projection: projection, ExtraPreds: extras}, true
}

// renderPredOnCache expresses a simple predicate over the cached table's
// columns. Predicates on recoded categorical columns compare string
// literals; on the cached (transformed) table the column holds integer
// codes, so equality/inequality literals are translated through the map.
func renderPredOnCache(p Pred, name string, isRecoded bool, m *transform.RecodeMap) (string, bool) {
	lit := p.Value.String()
	if isRecoded {
		lv, ok := litValue(p.Value)
		if !ok || lv.Null || lv.Kind != row.TypeString {
			return "", false
		}
		switch p.Op {
		case "=", "<>":
		default:
			// Order comparisons on recode codes don't mirror string order.
			return "", false
		}
		if m == nil {
			return "", false
		}
		id, known := m.ID(name, lv.AsString())
		if !known {
			// The value never occurred in the cached data: col = v selects
			// nothing, col <> v selects everything.
			if p.Op == "=" {
				return "1 = 0", true
			}
			return "1 = 1", true
		}
		lit = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("%s %s %s", name, p.Op, lit), true
}

// renderPredOnDummy translates an equality/inequality predicate on a
// dummy-coded column onto its binary expansion: `col = v` selects the rows
// whose v-th indicator is set.
func renderPredOnDummy(p Pred, name string, coding transform.Coding, m *transform.RecodeMap) (string, bool) {
	if coding != transform.CodingDummy || m == nil {
		return "", false
	}
	lv, ok := litValue(p.Value)
	if !ok || lv.Null || lv.Kind != row.TypeString {
		return "", false
	}
	if p.Op != "=" && p.Op != "<>" {
		return "", false
	}
	id, known := m.ID(name, lv.AsString())
	if !known {
		if p.Op == "=" {
			return "1 = 0", true
		}
		return "1 = 1", true
	}
	bit := 1
	if p.Op == "<>" {
		bit = 0
	}
	return fmt.Sprintf("%s_%d = %d", name, id, bit), true
}

// RewriteOnCache renders the §5.1 rewritten query over the cached table.
func (m *FullResultMatch) RewriteOnCache(cachedTable string) string {
	sql := "SELECT " + strings.Join(m.Projection, ", ") + " FROM " + cachedTable
	if len(m.ExtraPreds) > 0 {
		sql += " WHERE " + strings.Join(m.ExtraPreds, " AND ")
	}
	return sql
}

// MatchRecodeMap applies the paper's §5.2 conditions deciding whether the
// cached recode maps can be reused for the new query:
//
//  1. same FROM tables and join conditions;
//  2. the new query has predicates on (at least) the same fields, each the
//     same as or logically stronger than the cached one;
//  3. the projected categorical fields are a subset of the cached ones;
//  4. additional predicates are conjunctive (guaranteed by Analyze, which
//     only decomposes conjunctions).
//
// catCols lists the new query's projected categorical columns (by output
// name) that will need recoding.
func MatchRecodeMap(cached, next *QueryInfo, cachedMapCols []string, catCols []string) bool {
	if !SameJoinStructure(cached, next) {
		return false
	}
	// Condition 2: per-column implication.
	for col, cachedPreds := range cached.Predicates {
		nextPreds := next.Predicates[col]
		if len(nextPreds) == 0 {
			return false
		}
		if !ImpliesAll(nextPreds, cachedPreds) {
			return false
		}
	}
	// Condition 3: needed categorical columns must be in the cached map.
	mapped := make(map[string]bool, len(cachedMapCols))
	for _, c := range cachedMapCols {
		mapped[strings.ToLower(c)] = true
	}
	for _, c := range catCols {
		if !mapped[strings.ToLower(c)] {
			return false
		}
	}
	return true
}
