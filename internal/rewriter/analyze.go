// Package rewriter implements the paper's query rewriter (§4) and the
// cache-applicability analysis behind §5: it normalizes preparation
// queries into a canonical form, decides whether a cached fully-transformed
// result (§5.1) or a cached recode map (§5.2) applies to a new query, and
// generates the rewritten SQL for the cache-hit paths.
package rewriter

import (
	"fmt"
	"sort"
	"strings"

	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// QueryInfo is the canonical form of a select-project-join preparation
// query: table set, equi-join conditions, per-column filter predicates, and
// the projected columns. Aliases are normalized away (column references are
// qualified by base table name), so two differently-aliased spellings of
// the same query compare equal.
type QueryInfo struct {
	// Tables are the base table names, sorted.
	Tables []string
	// JoinConds are canonical join conjunct strings, sorted.
	JoinConds []string
	// Predicates are the non-join conjuncts, keyed by the canonical
	// column they constrain ("table.column"); PredAll holds every
	// non-join conjunct in canonical form for exact-set comparison.
	Predicates map[string][]Pred
	PredAll    []string
	// Projected are the output columns in order: canonical source
	// ("table.column") and output name.
	Projected []ProjectedCol
}

// ProjectedCol is one output column of the analyzed query.
type ProjectedCol struct {
	Source string // canonical "table.column"
	Name   string // output (alias or column) name, lower-case
}

// Pred is one analyzable filter predicate: column op literal.
type Pred struct {
	Column string // canonical "table.column"
	Op     string // = <> < <= > >=
	Value  sqlengine.Expr
	// Raw is the canonical conjunct string (used when the predicate is not
	// in column-op-literal shape and only exact matching applies).
	Raw string
	// Simple reports whether Column/Op/Value are populated.
	Simple bool
	// In holds the literal values of a non-negated `col IN (...)` predicate
	// (nil otherwise); the implication engine reasons over the value sets.
	In []row.Value
}

// Analyze normalizes a SELECT statement. It errors on queries outside the
// cacheable select-project-join class (aggregates, DISTINCT, ORDER BY,
// LIMIT, table functions, OR-predicates at the top level are all rejected
// — they simply don't participate in §5 caching).
func Analyze(sel *sqlengine.SelectStmt, schemas func(table string) (colExists func(string) bool, err error)) (*QueryInfo, error) {
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 || sel.Limit >= 0 {
		return nil, fmt.Errorf("rewriter: only plain select-project-join queries are analyzable")
	}

	// Bind aliases to base tables; self-joins make alias normalization
	// ambiguous and are rejected.
	aliasToTable := make(map[string]string)
	seenTable := make(map[string]bool)
	info := &QueryInfo{Predicates: make(map[string][]Pred)}
	for _, item := range sel.From {
		if item.Func != nil {
			return nil, fmt.Errorf("rewriter: table functions are not analyzable")
		}
		table := strings.ToLower(item.Table)
		if seenTable[table] {
			return nil, fmt.Errorf("rewriter: self-joins are not analyzable")
		}
		seenTable[table] = true
		aliasToTable[strings.ToLower(item.Name())] = table
		info.Tables = append(info.Tables, table)
	}
	sort.Strings(info.Tables)

	// canonical resolves a column reference to "table.column".
	canonical := func(cr *sqlengine.ColRef) (string, error) {
		name := strings.ToLower(cr.Name)
		if cr.Qualifier != "" {
			table, ok := aliasToTable[strings.ToLower(cr.Qualifier)]
			if !ok {
				return "", fmt.Errorf("rewriter: unknown alias %q", cr.Qualifier)
			}
			return table + "." + name, nil
		}
		// Unqualified: resolve against the table schemas.
		var owner string
		for _, table := range info.Tables {
			exists, err := schemas(table)
			if err != nil {
				return "", err
			}
			if exists(name) {
				if owner != "" {
					return "", fmt.Errorf("rewriter: ambiguous column %q", cr.Name)
				}
				owner = table
			}
		}
		if owner == "" {
			return "", fmt.Errorf("rewriter: unknown column %q", cr.Name)
		}
		return owner + "." + name, nil
	}

	// canonExpr rewrites an expression with canonical column qualifiers and
	// returns its canonical string.
	var canonExpr func(e sqlengine.Expr) (string, error)
	canonExpr = func(e sqlengine.Expr) (string, error) {
		switch x := e.(type) {
		case *sqlengine.ColRef:
			return canonical(x)
		case *sqlengine.Lit:
			return x.String(), nil
		case *sqlengine.BinOp:
			l, err := canonExpr(x.L)
			if err != nil {
				return "", err
			}
			r, err := canonExpr(x.R)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + x.Op + " " + r + ")", nil
		case *sqlengine.NotExpr:
			s, err := canonExpr(x.E)
			if err != nil {
				return "", err
			}
			return "(NOT " + s + ")", nil
		case *sqlengine.IsNullExpr:
			s, err := canonExpr(x.E)
			if err != nil {
				return "", err
			}
			if x.Negate {
				return "(" + s + " IS NOT NULL)", nil
			}
			return "(" + s + " IS NULL)", nil
		case *sqlengine.InListExpr:
			s, err := canonExpr(x.E)
			if err != nil {
				return "", err
			}
			parts := make([]string, len(x.List))
			for i, le := range x.List {
				p, err := canonExpr(le)
				if err != nil {
					return "", err
				}
				parts[i] = p
			}
			op := " IN ("
			if x.Negate {
				op = " NOT IN ("
			}
			return "(" + s + op + strings.Join(parts, ", ") + "))", nil
		default:
			return "", fmt.Errorf("rewriter: %T not analyzable", e)
		}
	}

	for _, conj := range sqlengine.Conjuncts(sel.Where) {
		// Equi-join: colref = colref across different tables.
		if b, ok := conj.(*sqlengine.BinOp); ok && b.Op == "=" {
			lc, lok := b.L.(*sqlengine.ColRef)
			rc, rok := b.R.(*sqlengine.ColRef)
			if lok && rok {
				l, err := canonical(lc)
				if err != nil {
					return nil, err
				}
				r, err := canonical(rc)
				if err != nil {
					return nil, err
				}
				if tableOf(l) != tableOf(r) {
					// Order the two sides so A=B and B=A compare equal.
					if l > r {
						l, r = r, l
					}
					info.JoinConds = append(info.JoinConds, l+" = "+r)
					continue
				}
			}
		}
		raw, err := canonExpr(conj)
		if err != nil {
			return nil, err
		}
		p := Pred{Raw: raw}
		if col, op, lit, ok := simpleShape(conj, canonical); ok {
			p.Column, p.Op, p.Value, p.Simple = col, op, lit, true
		} else if col, vals, ok := inListShape(conj, canonical); ok {
			p.Column, p.In = col, vals
		} else if col, ok := singleColumn(conj, canonical); ok {
			p.Column = col
		}
		key := p.Column
		if key == "" {
			key = "\x00complex"
		}
		info.Predicates[key] = append(info.Predicates[key], p)
		info.PredAll = append(info.PredAll, raw)
	}
	sort.Strings(info.JoinConds)
	sort.Strings(info.PredAll)

	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("rewriter: star projections are not analyzable")
		}
		cr, ok := item.Expr.(*sqlengine.ColRef)
		if !ok {
			return nil, fmt.Errorf("rewriter: projected expressions must be plain columns")
		}
		src, err := canonical(cr)
		if err != nil {
			return nil, err
		}
		name := strings.ToLower(item.Alias)
		if name == "" {
			name = strings.ToLower(cr.Name)
		}
		info.Projected = append(info.Projected, ProjectedCol{Source: src, Name: name})
	}
	if len(info.Projected) == 0 {
		return nil, fmt.Errorf("rewriter: query projects nothing")
	}
	return info, nil
}

// AnalyzeSQL parses and analyzes a query against an engine's catalog.
func AnalyzeSQL(e *sqlengine.Engine, sql string) (*QueryInfo, error) {
	sel, err := sqlengine.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return Analyze(sel, func(table string) (func(string) bool, error) {
		t, err := e.Catalog().Get(table)
		if err != nil {
			return nil, err
		}
		return func(col string) bool { return t.Schema.ColIndex(col) >= 0 }, nil
	})
}

func tableOf(canonical string) string {
	i := strings.IndexByte(canonical, '.')
	if i < 0 {
		return canonical
	}
	return canonical[:i]
}

// ColumnOf returns the bare column name of a canonical "table.column".
func ColumnOf(canonical string) string {
	i := strings.IndexByte(canonical, '.')
	if i < 0 {
		return canonical
	}
	return canonical[i+1:]
}

// simpleShape matches `col op literal` (or the mirrored literal op col).
func simpleShape(e sqlengine.Expr, canonical func(*sqlengine.ColRef) (string, error)) (col, op string, lit sqlengine.Expr, ok bool) {
	b, isBin := e.(*sqlengine.BinOp)
	if !isBin {
		return "", "", nil, false
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return "", "", nil, false
	}
	if cr, okL := b.L.(*sqlengine.ColRef); okL {
		if l, okR := b.R.(*sqlengine.Lit); okR {
			c, err := canonical(cr)
			if err != nil {
				return "", "", nil, false
			}
			return c, b.Op, l, true
		}
	}
	if cr, okR := b.R.(*sqlengine.ColRef); okR {
		if l, okL := b.L.(*sqlengine.Lit); okL {
			c, err := canonical(cr)
			if err != nil {
				return "", "", nil, false
			}
			return c, mirrorOp(b.Op), l, true
		}
	}
	return "", "", nil, false
}

// inListShape matches a non-negated `col IN (lit, lit, ...)`.
func inListShape(e sqlengine.Expr, canonical func(*sqlengine.ColRef) (string, error)) (string, []row.Value, bool) {
	in, ok := e.(*sqlengine.InListExpr)
	if !ok || in.Negate {
		return "", nil, false
	}
	cr, ok := in.E.(*sqlengine.ColRef)
	if !ok {
		return "", nil, false
	}
	col, err := canonical(cr)
	if err != nil {
		return "", nil, false
	}
	vals := make([]row.Value, 0, len(in.List))
	for _, le := range in.List {
		lit, ok := le.(*sqlengine.Lit)
		if !ok || lit.V.Null {
			return "", nil, false
		}
		vals = append(vals, lit.V)
	}
	return col, vals, true
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// singleColumn reports the canonical column when the expression references
// exactly one column.
func singleColumn(e sqlengine.Expr, canonical func(*sqlengine.ColRef) (string, error)) (string, bool) {
	var cols []string
	bad := false
	var walk func(sqlengine.Expr)
	walk = func(e sqlengine.Expr) {
		switch x := e.(type) {
		case *sqlengine.ColRef:
			c, err := canonical(x)
			if err != nil {
				bad = true
				return
			}
			cols = append(cols, c)
		case *sqlengine.BinOp:
			walk(x.L)
			walk(x.R)
		case *sqlengine.NotExpr:
			walk(x.E)
		case *sqlengine.IsNullExpr:
			walk(x.E)
		case *sqlengine.InListExpr:
			walk(x.E)
			for _, le := range x.List {
				walk(le)
			}
		}
	}
	walk(e)
	if bad || len(cols) == 0 {
		return "", false
	}
	first := cols[0]
	for _, c := range cols[1:] {
		if c != first {
			return "", false
		}
	}
	return first, true
}

// SameJoinStructure reports whether two queries read the same tables with
// the same join conditions — the shared precondition of §5.1 and §5.2.
func SameJoinStructure(a, b *QueryInfo) bool {
	return equalStrings(a.Tables, b.Tables) && equalStrings(a.JoinConds, b.JoinConds)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ProjectedSources returns the canonical sources of the projected columns.
func (q *QueryInfo) ProjectedSources() map[string]string {
	out := make(map[string]string, len(q.Projected))
	for _, p := range q.Projected {
		out[p.Source] = p.Name
	}
	return out
}
