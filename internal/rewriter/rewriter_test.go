package rewriter

import (
	"strings"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

// newEngine loads the paper's carts/users schemas (plus the extra columns
// §5.2's example uses: carts.nitems, carts.year).
func newEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	topo := cluster.NewTopology(5)
	e, err := sqlengine.New(topo, nil, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	users := row.MustSchema(
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "country", Type: row.TypeString},
	)
	carts := row.MustSchema(
		row.Column{Name: "cartid", Type: row.TypeInt},
		row.Column{Name: "userid", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "nitems", Type: row.TypeInt},
		row.Column{Name: "year", Type: row.TypeInt},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
	if err := e.LoadTable("users", users, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadTable("carts", carts, nil); err != nil {
		t.Fatal(err)
	}
	return e
}

// paperQuery is the §1 example preparation query.
const paperQuery = `
	SELECT U.age, U.gender, C.amount, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA'`

// paperSubsetQuery is §5.1's reusable follow-up query.
const paperSubsetQuery = `
	SELECT U.age, C.amount, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA' AND U.gender = 'F'`

// paperMapReuseQuery is §5.2's map-reusable follow-up query.
const paperMapReuseQuery = `
	SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA' AND C.year = 2014`

func analyze(t *testing.T, e *sqlengine.Engine, sql string) *QueryInfo {
	t.Helper()
	info, err := AnalyzeSQL(e, sql)
	if err != nil {
		t.Fatalf("AnalyzeSQL(%s): %v", sql, err)
	}
	return info
}

func TestAnalyzePaperQuery(t *testing.T) {
	e := newEngine(t)
	info := analyze(t, e, paperQuery)
	if len(info.Tables) != 2 || info.Tables[0] != "carts" || info.Tables[1] != "users" {
		t.Errorf("tables = %v", info.Tables)
	}
	if len(info.JoinConds) != 1 || info.JoinConds[0] != "carts.userid = users.userid" {
		t.Errorf("join conds = %v", info.JoinConds)
	}
	if len(info.PredAll) != 1 || info.PredAll[0] != "(users.country = 'USA')" {
		t.Errorf("preds = %v", info.PredAll)
	}
	if len(info.Projected) != 4 || info.Projected[1].Source != "users.gender" {
		t.Errorf("projected = %v", info.Projected)
	}
}

func TestAnalyzeNormalizesAliases(t *testing.T) {
	e := newEngine(t)
	a := analyze(t, e, paperQuery)
	b := analyze(t, e, `
		SELECT uu.age, uu.gender, cc.amount, cc.abandoned
		FROM users uu, carts cc
		WHERE uu.userid = cc.userid AND uu.country = 'USA'`)
	if !SameJoinStructure(a, b) {
		t.Error("alias and FROM-order differences should normalize away")
	}
	if a.PredAll[0] != b.PredAll[0] {
		t.Errorf("predicates differ: %v vs %v", a.PredAll, b.PredAll)
	}
}

func TestAnalyzeResolvesUnqualifiedColumns(t *testing.T) {
	e := newEngine(t)
	info := analyze(t, e, "SELECT age FROM users WHERE country = 'USA'")
	if info.Projected[0].Source != "users.age" {
		t.Errorf("source = %s", info.Projected[0].Source)
	}
	// carts.userid vs users.userid is ambiguous unqualified.
	if _, err := AnalyzeSQL(e, "SELECT userid FROM users u, carts c WHERE u.userid = c.userid"); err == nil {
		t.Error("ambiguous unqualified column accepted")
	}
}

func TestAnalyzeRejectsNonSPJ(t *testing.T) {
	e := newEngine(t)
	for _, sql := range []string{
		"SELECT DISTINCT age FROM users",
		"SELECT age FROM users ORDER BY age",
		"SELECT age FROM users LIMIT 5",
		"SELECT COUNT(*) FROM users",
		"SELECT age FROM users u, users v WHERE u.userid = v.userid", // self join
		"SELECT * FROM users",
		"SELECT age + 1 FROM users",
	} {
		if _, err := AnalyzeSQL(e, sql); err == nil {
			t.Errorf("%q should not be analyzable", sql)
		}
	}
}

func TestImplies(t *testing.T) {
	mk := func(op string, v row.Value) Pred {
		return Pred{Column: "users.age", Op: op, Value: &sqlengine.Lit{V: v}, Simple: true, Raw: "raw-" + op + v.String()}
	}
	cases := []struct {
		p, q Pred
		want bool
	}{
		// The paper's own example: a < 18 is stronger than a <= 20.
		{mk("<", row.Int(18)), mk("<=", row.Int(20)), true},
		{mk("<=", row.Int(20)), mk("<", row.Int(18)), false},
		{mk("<", row.Int(18)), mk("<", row.Int(18)), true},
		{mk("<", row.Int(21)), mk("<=", row.Int(20)), false},
		{mk("<=", row.Int(20)), mk("<", row.Int(21)), true},
		{mk("=", row.Int(5)), mk("<", row.Int(10)), true},
		{mk("=", row.Int(15)), mk("<", row.Int(10)), false},
		{mk("=", row.Int(5)), mk("=", row.Int(5)), true},
		{mk("=", row.Int(5)), mk("<>", row.Int(6)), true},
		{mk("=", row.Int(5)), mk("<>", row.Int(5)), false},
		{mk(">", row.Int(10)), mk(">=", row.Int(10)), true},
		{mk(">=", row.Int(10)), mk(">", row.Int(10)), false},
		{mk(">=", row.Int(11)), mk(">", row.Int(10)), true},
		{mk(">", row.Int(10)), mk("<>", row.Int(10)), true},
		{mk("<>", row.Int(10)), mk("<>", row.Int(10)), true},
		{mk("<>", row.Int(10)), mk("<>", row.Int(11)), false},
		// Cross numeric types.
		{mk("<", row.Float(17.5)), mk("<=", row.Int(20)), true},
	}
	for i, c := range cases {
		if got := Implies(c.p, c.q); got != c.want {
			t.Errorf("case %d: Implies(%s %s, %s %s) = %v, want %v",
				i, c.p.Op, c.p.Value, c.q.Op, c.q.Value, got, c.want)
		}
	}
	// Different columns never imply.
	other := Pred{Column: "users.x", Op: "<", Value: &sqlengine.Lit{V: row.Int(1)}, Simple: true}
	if Implies(mk("<", row.Int(0)), other) {
		t.Error("implication across columns")
	}
	// Identical raw strings imply even for complex predicates.
	c1 := Pred{Raw: "(users.age IN (1, 2))"}
	c2 := Pred{Raw: "(users.age IN (1, 2))"}
	if !Implies(c1, c2) {
		t.Error("identical complex predicates should imply")
	}
}

func TestMatchFullResultPaperExample(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	next := analyze(t, e, paperSubsetQuery)
	m := transform.NewRecodeMap()
	m.AddColumn("gender", []string{"F", "M"})
	m.AddColumn("abandoned", []string{"Yes", "No"})
	spec := transform.Spec{RecodeCols: []string{"gender", "abandoned"}}
	match, ok := MatchFullResult(cached, next, spec, m)
	if !ok {
		t.Fatal("the paper's §5.1 example must match")
	}
	sql := match.RewriteOnCache("cached_t")
	// Expected shape: SELECT age, amount, abandoned FROM T WHERE gender = <code of F>.
	if !strings.Contains(sql, "SELECT age, amount, abandoned FROM cached_t") {
		t.Errorf("rewritten sql = %s", sql)
	}
	fID, _ := m.ID("gender", "F")
	if !strings.Contains(sql, "gender = 1") || fID != 1 {
		t.Errorf("categorical literal not translated through the map: %s", sql)
	}
	if _, err := sqlengine.ParseSelect(sql); err != nil {
		t.Errorf("rewritten sql does not parse: %v", err)
	}
}

func TestMatchFullResultRejectsPaper52Example(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	next := analyze(t, e, paperMapReuseQuery)
	spec := transform.Spec{RecodeCols: []string{"gender", "abandoned"}}
	if _, ok := MatchFullResult(cached, next, spec, nil); ok {
		t.Error("§5.2's example projects nitems, absent from the cache — must not match full result")
	}
}

func TestMatchFullResultIdenticalQueryWithCoding(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	next := analyze(t, e, paperQuery)
	m := transform.NewRecodeMap()
	m.AddColumn("gender", []string{"F", "M"})
	m.AddColumn("abandoned", []string{"Yes", "No"})
	spec := transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
	match, ok := MatchFullResult(cached, next, spec, m)
	if !ok {
		t.Fatal("identical query must match")
	}
	sql := match.RewriteOnCache("cached_t")
	if !strings.Contains(sql, "gender_1, gender_2") {
		t.Errorf("coded column not expanded: %s", sql)
	}
}

func TestMatchFullResultConditionViolations(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	spec := transform.Spec{RecodeCols: []string{"gender", "abandoned"}}
	m := transform.NewRecodeMap()
	m.AddColumn("gender", []string{"F", "M"})
	m.AddColumn("abandoned", []string{"Yes", "No"})

	cases := map[string]string{
		"different table set": `SELECT u.age FROM users u WHERE u.country = 'USA'`,
		"missing cached predicate": `
			SELECT U.age, C.amount FROM carts C, users U
			WHERE C.userid = U.userid`,
		"extra predicate on unprojected column": `
			SELECT U.age, C.amount FROM carts C, users U
			WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014`,
		"projection outside cache": `
			SELECT U.age, C.nitems FROM carts C, users U
			WHERE C.userid = U.userid AND U.country = 'USA'`,
		"range predicate on recoded column": `
			SELECT U.age, C.amount FROM carts C, users U
			WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender > 'E'`,
	}
	for name, sql := range cases {
		next := analyze(t, e, sql)
		if _, ok := MatchFullResult(cached, next, spec, m); ok {
			t.Errorf("%s: should not match", name)
		}
	}
}

func TestMatchFullResultUnknownCategoricalValue(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	next := analyze(t, e, `
		SELECT U.age, C.amount FROM carts C, users U
		WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'X'`)
	m := transform.NewRecodeMap()
	m.AddColumn("gender", []string{"F", "M"})
	m.AddColumn("abandoned", []string{"Yes", "No"})
	spec := transform.Spec{RecodeCols: []string{"gender", "abandoned"}}
	match, ok := MatchFullResult(cached, next, spec, m)
	if !ok {
		t.Fatal("unknown value should still match (selects nothing)")
	}
	if !strings.Contains(match.RewriteOnCache("c"), "1 = 0") {
		t.Errorf("unknown value should render a false predicate: %v", match.ExtraPreds)
	}
}

func TestMatchRecodeMapPaperExample(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	next := analyze(t, e, paperMapReuseQuery)
	if !MatchRecodeMap(cached, next, []string{"gender", "abandoned"}, []string{"gender", "abandoned"}) {
		t.Error("the paper's §5.2 example must reuse the recode map")
	}
}

func TestMatchRecodeMapStrongerPredicate(t *testing.T) {
	e := newEngine(t)
	cachedQ := `SELECT u.gender FROM users u WHERE u.age <= 20`
	strongerQ := `SELECT u.gender FROM users u WHERE u.age < 18`
	weakerQ := `SELECT u.gender FROM users u WHERE u.age <= 25`
	cached := analyze(t, e, cachedQ)
	if !MatchRecodeMap(cached, analyze(t, e, strongerQ), []string{"gender"}, []string{"gender"}) {
		t.Error("a < 18 is logically stronger than a <= 20: must match")
	}
	if MatchRecodeMap(cached, analyze(t, e, weakerQ), []string{"gender"}, []string{"gender"}) {
		t.Error("a <= 25 is weaker than a <= 20: must not match")
	}
}

func TestMatchRecodeMapConditionViolations(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, paperQuery)
	// Dropped predicate on country.
	next := analyze(t, e, `
		SELECT U.gender FROM carts C, users U WHERE C.userid = U.userid`)
	if MatchRecodeMap(cached, next, []string{"gender", "abandoned"}, []string{"gender"}) {
		t.Error("missing predicate on cached column must not match")
	}
	// Needs a column the map does not cover.
	next2 := analyze(t, e, paperMapReuseQuery)
	if MatchRecodeMap(cached, next2, []string{"gender"}, []string{"gender", "abandoned"}) {
		t.Error("categorical column outside the map must not match")
	}
	// Different join structure.
	next3 := analyze(t, e, `SELECT u.gender FROM users u WHERE u.country = 'USA'`)
	if MatchRecodeMap(cached, next3, []string{"gender", "abandoned"}, []string{"gender"}) {
		t.Error("different table set must not match")
	}
}

func TestInListImplication(t *testing.T) {
	e := newEngine(t)
	mk := func(sql string) *QueryInfo { return analyze(t, e, sql) }
	cached := mk(`SELECT u.gender FROM users u WHERE u.country IN ('USA', 'Germany', 'Greece')`)
	subset := mk(`SELECT u.gender FROM users u WHERE u.country IN ('USA', 'Greece')`)
	superset := mk(`SELECT u.gender FROM users u WHERE u.country IN ('USA', 'Germany', 'Greece', 'Japan')`)
	equality := mk(`SELECT u.gender FROM users u WHERE u.country = 'USA'`)
	outside := mk(`SELECT u.gender FROM users u WHERE u.country = 'Brazil'`)

	if !MatchRecodeMap(cached, subset, []string{"gender"}, []string{"gender"}) {
		t.Error("IN subset must imply IN superset")
	}
	if MatchRecodeMap(cached, superset, []string{"gender"}, []string{"gender"}) {
		t.Error("IN superset must not imply IN subset")
	}
	if !MatchRecodeMap(cached, equality, []string{"gender"}, []string{"gender"}) {
		t.Error("equality on a listed value must imply the IN")
	}
	if MatchRecodeMap(cached, outside, []string{"gender"}, []string{"gender"}) {
		t.Error("equality outside the list must not imply the IN")
	}
}

func TestInListImpliesRangePredicate(t *testing.T) {
	e := newEngine(t)
	cached := analyze(t, e, `SELECT u.gender FROM users u WHERE u.age <= 30`)
	inQuery := analyze(t, e, `SELECT u.gender FROM users u WHERE u.age IN (18, 21, 25)`)
	if !MatchRecodeMap(cached, inQuery, []string{"gender"}, []string{"gender"}) {
		t.Error("age IN (18,21,25) implies age <= 30")
	}
	tooBig := analyze(t, e, `SELECT u.gender FROM users u WHERE u.age IN (18, 45)`)
	if MatchRecodeMap(cached, tooBig, []string{"gender"}, []string{"gender"}) {
		t.Error("age IN (18,45) must not imply age <= 30")
	}
}
