// Package ml implements the "big ML system" substrate: a distributed
// machine-learning engine whose only ingestion path is the Hadoop-style
// InputFormat interface — the property the paper's streaming transfer
// relies on ("in fact, all ML systems on Hadoop do").
//
// The engine keeps datasets as in-memory partitioned collections of labeled
// points (the Spark RDD analog: the paper measures "the time from the start
// of the ML job till the in-memory RDD is constructed") and provides the
// algorithms the paper names: SVM with SGD — the evaluation's workload —
// plus logistic regression, naive Bayes, decision trees, linear regression
// and k-means. A MapReduce-trained naive Bayes (the "Mahout" analog) lives
// in mrnb.go to demonstrate engine-independence of the transfer path.
package ml

import (
	"fmt"
	"sync"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// LabeledPoint is one training example.
type LabeledPoint struct {
	Label    float64
	Features []float64
}

// Dataset is a distributed in-memory collection of labeled points:
// Parts[i] lives on Nodes[i].
type Dataset struct {
	Parts       [][]LabeledPoint
	Nodes       []*cluster.Node
	NumFeatures int
}

// NumRows returns the total number of points.
func (d *Dataset) NumRows() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p)
	}
	return n
}

// All flattens the partitions (tests and small data only).
func (d *Dataset) All() []LabeledPoint {
	out := make([]LabeledPoint, 0, d.NumRows())
	for _, p := range d.Parts {
		out = append(out, p...)
	}
	return out
}

// IngestOptions configures conversion of rows into labeled points.
type IngestOptions struct {
	// LabelCol names the label column. All other columns become features
	// unless FeatureCols narrows them. Every used column must be numeric.
	LabelCol    string
	FeatureCols []string
	// LabelTransform optionally remaps raw label values (e.g. the recoded
	// 1/2 classes of the paper's abandoned field to SVM's 0/1).
	LabelTransform func(float64) float64
	// NumWorkers is the requested parallelism (split-count hint). When the
	// format dictates its own splits (the streaming format does), the
	// dataset simply has one partition per split.
	NumWorkers int
	// Nodes are the ML worker placement candidates; split locality is
	// honoured best-effort against their addresses.
	Nodes []*cluster.Node
	// Cost, when non-nil, charges one processing pass per ingested split
	// (parsing rows into the in-memory dataset is a pass over the data).
	Cost *cluster.CostModel
}

// Ingest reads an InputFormat into a Dataset, one partition per split, with
// splits placed on local nodes when possible. This is the boundary the
// paper times as "input for ML".
func Ingest(f hadoopfmt.InputFormat, opts IngestOptions) (*Dataset, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("ml: no worker nodes")
	}
	schema, err := f.Schema()
	if err != nil {
		return nil, err
	}
	conv, err := newConverter(schema, opts)
	if err != nil {
		return nil, err
	}
	numWorkers := opts.NumWorkers
	if numWorkers <= 0 {
		numWorkers = len(opts.Nodes)
	}
	splits, err := f.Splits(numWorkers)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return &Dataset{Parts: nil, Nodes: nil, NumFeatures: conv.numFeatures}, nil
	}

	// Best-effort locality placement, mirroring the paper's colocation of
	// ML workers with their SQL workers.
	nodes := placeSplits(splits, opts.Nodes)

	// maxTaskRetries bounds task re-execution on retryable split failures
	// (the §6 restart protocol: a failed transfer re-runs the whole task).
	const maxTaskRetries = 5
	parts := make([][]LabeledPoint, len(splits))
	var wg sync.WaitGroup
	errs := make([]error, len(splits))
	for i := range splits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				parts[i] = nil // task re-execution discards partial rows
				err := readSplit(f, splits[i], nodes[i], conv, &parts[i])
				if err == nil {
					opts.Cost.ChargeProc(nodes[i], 9*len(parts[i])*(conv.numFeatures+1))
					return
				}
				if !hadoopfmt.IsRetryable(err) || attempt >= maxTaskRetries {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{Parts: parts, Nodes: nodes, NumFeatures: conv.numFeatures}, nil
}

// readSplit runs one ingest task: open the split, convert every row, and
// append into out. Batch-capable readers (the streaming transfer's) are
// drained a wire block at a time; the batch buffer is recycled across
// iterations since converted points don't retain the rows. A columnar
// reader (v3 wire frames) skips rows entirely: points are built straight
// from the batch's typed vectors.
func readSplit(f hadoopfmt.InputFormat, split hadoopfmt.InputSplit, node *cluster.Node, conv *converter, out *[]LabeledPoint) (err error) {
	rr, err := f.Open(split, node)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := rr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if cr, ok := rr.(hadoopfmt.ColBatchRecordReader); ok {
		cb := row.GetColBatch(nil)
		defer row.PutColBatch(cb)
		for {
			_, ok, err := cr.NextColBatch(cb)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := conv.convertBatch(cb, out); err != nil {
				return err
			}
		}
	}
	var buf []row.Row
	for {
		batch, ok, err := hadoopfmt.ReadBatch(rr, buf[:0])
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, r := range batch {
			p, err := conv.convert(r)
			if err != nil {
				return err
			}
			*out = append(*out, p)
		}
		buf = batch
	}
}

// placeSplits assigns each split to the least-loaded node among its
// locality hosts, falling back to least-loaded overall.
func placeSplits(splits []hadoopfmt.InputSplit, nodes []*cluster.Node) []*cluster.Node {
	loads := make([]int64, len(nodes))
	out := make([]*cluster.Node, len(splits))
	for i, sp := range splits {
		best := -1
		for ni, n := range nodes {
			local := false
			for _, loc := range sp.Locations() {
				if n.Addr == loc {
					local = true
					break
				}
			}
			if local && (best < 0 || loads[ni] < loads[best]) {
				best = ni
			}
		}
		if best < 0 {
			best = 0
			for ni := range nodes {
				if loads[ni] < loads[best] {
					best = ni
				}
			}
		}
		loads[best] += sp.Length()
		out[i] = nodes[best]
	}
	return out
}

type converter struct {
	labelIdx       int
	featureIdx     []int
	labelTransform func(float64) float64
	numFeatures    int
}

func newConverter(schema row.Schema, opts IngestOptions) (*converter, error) {
	labelIdx := schema.ColIndex(opts.LabelCol)
	if labelIdx < 0 {
		return nil, fmt.Errorf("ml: unknown label column %q", opts.LabelCol)
	}
	if t := schema.Cols[labelIdx].Type; t != row.TypeInt && t != row.TypeFloat {
		return nil, fmt.Errorf("ml: label column %q is %s; labels must be numeric", opts.LabelCol, t)
	}
	var featureIdx []int
	if len(opts.FeatureCols) > 0 {
		for _, c := range opts.FeatureCols {
			i := schema.ColIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("ml: unknown feature column %q", c)
			}
			if i == labelIdx {
				return nil, fmt.Errorf("ml: label column %q listed as a feature", c)
			}
			featureIdx = append(featureIdx, i)
		}
	} else {
		for i := range schema.Cols {
			if i != labelIdx {
				featureIdx = append(featureIdx, i)
			}
		}
	}
	for _, i := range featureIdx {
		if t := schema.Cols[i].Type; t != row.TypeInt && t != row.TypeFloat {
			return nil, fmt.Errorf("ml: feature column %q is %s; ML systems require numeric features — recode/dummy-code categorical columns first", schema.Cols[i].Name, t)
		}
	}
	if len(featureIdx) == 0 {
		return nil, fmt.Errorf("ml: no feature columns")
	}
	lt := opts.LabelTransform
	if lt == nil {
		lt = func(v float64) float64 { return v }
	}
	return &converter{labelIdx: labelIdx, featureIdx: featureIdx, labelTransform: lt, numFeatures: len(featureIdx)}, nil
}

func (c *converter) convert(r row.Row) (LabeledPoint, error) {
	lv := r[c.labelIdx]
	if lv.Null {
		return LabeledPoint{}, fmt.Errorf("ml: NULL label")
	}
	p := LabeledPoint{Label: c.labelTransform(lv.AsFloat()), Features: make([]float64, len(c.featureIdx))}
	for j, i := range c.featureIdx {
		v := r[i]
		if v.Null {
			return LabeledPoint{}, fmt.Errorf("ml: NULL feature in column %d", i)
		}
		p.Features[j] = v.AsFloat()
	}
	return p, nil
}

// convertBatch is the columnar half of convert: it builds points straight
// from a batch's typed vectors, so ingest from v3 wire frames never
// pivots through rows. Only the label and feature columns are touched.
func (c *converter) convertBatch(b *row.ColBatch, out *[]LabeledPoint) error {
	numAt := func(v *row.Vector, p int) float64 {
		if v.Type() == row.TypeInt {
			return float64(v.Ints[p])
		}
		return v.Floats[p]
	}
	lv := b.Col(c.labelIdx)
	for si := 0; si < b.Len(); si++ {
		p := b.SelPos(si)
		if lv.Null(p) {
			return fmt.Errorf("ml: NULL label")
		}
		pt := LabeledPoint{Label: c.labelTransform(numAt(lv, p)), Features: make([]float64, len(c.featureIdx))}
		for j, i := range c.featureIdx {
			v := b.Col(i)
			if v.Null(p) {
				return fmt.Errorf("ml: NULL feature in column %d", i)
			}
			pt.Features[j] = numAt(v, p)
		}
		*out = append(*out, pt)
	}
	return nil
}

// forEachPart runs f over partition indices in parallel, returning the
// first error.
func forEachPart(n int, f func(int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
