package ml

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
)

// Model persistence: trained models are stored on the DFS as one JSON
// document, the way production pipelines hand models from the training
// system to serving. The envelope carries a kind tag so loaders can
// dispatch without out-of-band knowledge.

type modelEnvelope struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

type linearBody struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
	Kind      int       `json:"kind"`
	Threshold float64   `json:"threshold"`
}

type bayesBody struct {
	Labels []float64   `json:"labels"`
	Priors []float64   `json:"priors"`
	Theta  [][]float64 `json:"theta"`
}

type treeBody struct {
	Root   *treeNodeBody `json:"root"`
	Depth  int           `json:"depth"`
	Labels []float64     `json:"labels"`
}

type treeNodeBody struct {
	Prediction float64       `json:"prediction"`
	Feature    int           `json:"feature"`
	Threshold  float64       `json:"threshold"`
	Left       *treeNodeBody `json:"left,omitempty"`
	Right      *treeNodeBody `json:"right,omitempty"`
}

// SaveModel writes a trained model (LinearModel, NaiveBayesModel, or
// DecisionTreeModel) to a DFS path.
func SaveModel(fs *dfs.FileSystem, path string, model any, node *cluster.Node) error {
	env := modelEnvelope{}
	var body any
	switch m := model.(type) {
	case *LinearModel:
		env.Kind = "linear"
		body = linearBody{Weights: m.Weights, Intercept: m.Intercept, Kind: int(m.kind), Threshold: m.Threshold}
	case *NaiveBayesModel:
		env.Kind = "naive-bayes"
		body = bayesBody{Labels: m.Labels, Priors: m.Priors, Theta: m.Theta}
	case *DecisionTreeModel:
		env.Kind = "decision-tree"
		body = treeBody{Root: encodeTree(m.Root), Depth: m.Depth, Labels: m.Labels}
	default:
		return fmt.Errorf("ml: cannot persist %T", model)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	env.Body = raw
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	w, err := fs.Create(path, node)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		w.Abort()
		return err
	}
	if err := bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// LoadModel reads a model back from the DFS; the concrete type depends on
// the stored kind.
func LoadModel(fs *dfs.FileSystem, path string, node *cluster.Node) (_ any, err error) {
	r, err := fs.Open(path, node)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var env modelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: corrupt model file %q: %w", path, err)
	}
	switch env.Kind {
	case "linear":
		var b linearBody
		if err := json.Unmarshal(env.Body, &b); err != nil {
			return nil, err
		}
		return &LinearModel{Weights: b.Weights, Intercept: b.Intercept, kind: linearKind(b.Kind), Threshold: b.Threshold}, nil
	case "naive-bayes":
		var b bayesBody
		if err := json.Unmarshal(env.Body, &b); err != nil {
			return nil, err
		}
		return &NaiveBayesModel{Labels: b.Labels, Priors: b.Priors, Theta: b.Theta}, nil
	case "decision-tree":
		var b treeBody
		if err := json.Unmarshal(env.Body, &b); err != nil {
			return nil, err
		}
		return &DecisionTreeModel{Root: decodeTree(b.Root), Depth: b.Depth, Labels: b.Labels}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q in %q", env.Kind, path)
	}
}

func encodeTree(n *TreeNode) *treeNodeBody {
	if n == nil {
		return nil
	}
	return &treeNodeBody{
		Prediction: n.Prediction,
		Feature:    n.Feature,
		Threshold:  n.Threshold,
		Left:       encodeTree(n.Left),
		Right:      encodeTree(n.Right),
	}
}

func decodeTree(b *treeNodeBody) *TreeNode {
	if b == nil {
		return nil
	}
	return &TreeNode{
		Prediction: b.Prediction,
		Feature:    b.Feature,
		Threshold:  b.Threshold,
		Left:       decodeTree(b.Left),
		Right:      decodeTree(b.Right),
	}
}
