package ml

import (
	"math"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
)

func TestEvaluateBinaryConfusionMatrix(t *testing.T) {
	d := &Dataset{Parts: [][]LabeledPoint{{
		{Label: 1, Features: []float64{1}}, // predicted 1 → TP
		{Label: 1, Features: []float64{0}}, // predicted 0 → FN
		{Label: 0, Features: []float64{1}}, // predicted 1 → FP
		{Label: 0, Features: []float64{0}}, // predicted 0 → TN
		{Label: 0, Features: []float64{0}}, // TN
	}}, NumFeatures: 1}
	m := EvaluateBinary(d, func(x []float64) float64 { return x[0] })
	if m.TruePositives != 1 || m.FalseNegatives != 1 || m.FalsePositives != 1 || m.TrueNegatives != 2 {
		t.Fatalf("matrix = %+v", m)
	}
	if m.Total() != 5 {
		t.Errorf("total = %d", m.Total())
	}
	if math.Abs(m.Accuracy()-0.6) > 1e-12 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
	if math.Abs(m.Precision()-0.5) > 1e-12 || math.Abs(m.Recall()-0.5) > 1e-12 {
		t.Errorf("precision/recall = %v/%v", m.Precision(), m.Recall())
	}
	if math.Abs(m.F1()-0.5) > 1e-12 {
		t.Errorf("f1 = %v", m.F1())
	}
}

func TestMetricsDegenerateCases(t *testing.T) {
	empty := BinaryMetrics{}
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty metrics should be zero, not NaN")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	// Perfect separation: AUC = 1.
	d := &Dataset{Parts: [][]LabeledPoint{{
		{Label: 0, Features: []float64{0.1}},
		{Label: 0, Features: []float64{0.2}},
		{Label: 1, Features: []float64{0.8}},
		{Label: 1, Features: []float64{0.9}},
	}}, NumFeatures: 1}
	if auc := AUC(d, func(x []float64) float64 { return x[0] }); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted scores: AUC = 0.
	if auc := AUC(d, func(x []float64) float64 { return -x[0] }); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// Constant scores (all tied): AUC = 0.5.
	if auc := AUC(d, func([]float64) float64 { return 7 }); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", auc)
	}
	// Single class: 0.5 by convention.
	one := &Dataset{Parts: [][]LabeledPoint{{{Label: 1, Features: []float64{1}}}}, NumFeatures: 1}
	if auc := AUC(one, func(x []float64) float64 { return x[0] }); auc != 0.5 {
		t.Errorf("single-class AUC = %v", auc)
	}
}

func TestAUCAgainstTrainedModel(t *testing.T) {
	d := syntheticBinary(2000, 4, 21)
	m, err := TrainLogisticRegressionWithSGD(d, DefaultSGD())
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(d, m.Margin); auc < 0.95 {
		t.Errorf("trained model AUC = %v", auc)
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := syntheticBinary(5000, 4, 22)
	train, test, err := TrainTestSplit(d, 0.25, 99)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRows()+test.NumRows() != d.NumRows() {
		t.Fatalf("split lost rows: %d + %d != %d", train.NumRows(), test.NumRows(), d.NumRows())
	}
	frac := float64(test.NumRows()) / float64(d.NumRows())
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("test fraction = %.3f, want ~0.25", frac)
	}
	// Deterministic.
	train2, test2, _ := TrainTestSplit(d, 0.25, 99)
	if train2.NumRows() != train.NumRows() || test2.NumRows() != test.NumRows() {
		t.Error("split not deterministic for a fixed seed")
	}
	if _, _, err := TrainTestSplit(d, 0, 1); err == nil {
		t.Error("zero test fraction accepted")
	}
	if _, _, err := TrainTestSplit(d, 1, 1); err == nil {
		t.Error("test fraction 1 accepted")
	}
}

func TestHeldOutEvaluationWorkflow(t *testing.T) {
	d := syntheticBinary(4000, 4, 23)
	train, test, err := TrainTestSplit(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainSVMWithSGD(train, DefaultSGD())
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateBinary(test, model.Predict)
	if m.Accuracy() < 0.9 {
		t.Errorf("held-out accuracy = %.3f: %s", m.Accuracy(), m)
	}
}

func TestModelPersistenceRoundTrips(t *testing.T) {
	topo := cluster.NewTopology(3)
	fs := dfs.New(topo, dfs.Config{BlockSize: 4096, Replication: 2})
	d := syntheticBinary(800, 2, 24)

	svm, err := TrainSVMWithSGD(d, DefaultSGD())
	if err != nil {
		t.Fatal(err)
	}
	logreg, err := TrainLogisticRegressionWithSGD(d, DefaultSGD())
	if err != nil {
		t.Fatal(err)
	}
	nbData := dummyCoded(500, 2, 25)
	nb, err := TrainNaiveBayes(nbData, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainDecisionTree(d, DefaultTree())
	if err != nil {
		t.Fatal(err)
	}

	check := func(path string, model any, sameAs func(any) bool) {
		t.Helper()
		if err := SaveModel(fs, path, model, topo.Node(0)); err != nil {
			t.Fatalf("save %s: %v", path, err)
		}
		back, err := LoadModel(fs, path, topo.Node(1))
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		if !sameAs(back) {
			t.Errorf("%s: loaded model predicts differently", path)
		}
	}
	probe := d.All()[:50]
	check("/models/svm", svm, func(m any) bool {
		lm := m.(*LinearModel)
		for _, p := range probe {
			if lm.Predict(p.Features) != svm.Predict(p.Features) {
				return false
			}
		}
		return true
	})
	check("/models/logreg", logreg, func(m any) bool {
		lm := m.(*LinearModel)
		for _, p := range probe {
			if math.Abs(lm.Probability(p.Features)-logreg.Probability(p.Features)) > 1e-12 {
				return false
			}
		}
		return true
	})
	nbProbe := nbData.All()[:50]
	check("/models/nb", nb, func(m any) bool {
		bm := m.(*NaiveBayesModel)
		for _, p := range nbProbe {
			if bm.Predict(p.Features) != nb.Predict(p.Features) {
				return false
			}
		}
		return true
	})
	check("/models/tree", tree, func(m any) bool {
		tm := m.(*DecisionTreeModel)
		for _, p := range probe {
			if tm.Predict(p.Features) != tree.Predict(p.Features) {
				return false
			}
		}
		return true
	})
}

func TestPersistErrors(t *testing.T) {
	topo := cluster.NewTopology(1)
	fs := dfs.New(topo, dfs.Config{})
	if err := SaveModel(fs, "/m", "not a model", topo.Node(0)); err == nil {
		t.Error("foreign type accepted")
	}
	if _, err := LoadModel(fs, "/missing", topo.Node(0)); err == nil {
		t.Error("missing file accepted")
	}
	if err := fs.WriteFile("/corrupt", []byte("not json"), topo.Node(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(fs, "/corrupt", topo.Node(0)); err == nil {
		t.Error("corrupt file accepted")
	}
}
