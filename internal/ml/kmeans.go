package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansConfig configures Lloyd's algorithm.
type KMeansConfig struct {
	K          int
	Iterations int
	Tolerance  float64 // stop when no center moves more than this
	Seed       int64
}

// DefaultKMeans returns sensible defaults.
func DefaultKMeans(k int) KMeansConfig {
	return KMeansConfig{K: k, Iterations: 50, Tolerance: 1e-6, Seed: 42}
}

// KMeansModel holds trained cluster centers.
type KMeansModel struct {
	Centers    [][]float64
	Iterations int
	// Cost is the final within-cluster sum of squared distances.
	Cost float64
}

// Predict returns the index of the nearest center.
func (m *KMeansModel) Predict(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range m.Centers {
		d := sqDist(x, c)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// TrainKMeans clusters the dataset's feature vectors (labels ignored) with
// the distributed Lloyd iteration: parallel assignment and partial sums per
// partition, merged center updates.
func TrainKMeans(d *Dataset, cfg KMeansConfig) (*KMeansModel, error) {
	n := d.NumRows()
	if cfg.K < 1 {
		return nil, fmt.Errorf("ml: k must be positive")
	}
	if n < cfg.K {
		return nil, fmt.Errorf("ml: %d points for k=%d", n, cfg.K)
	}
	dim := d.NumFeatures
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Seed centers with k distinct random points.
	all := make([]int, 0, len(d.Parts)) // partition offsets
	offset := 0
	for _, p := range d.Parts {
		all = append(all, offset)
		offset += len(p)
	}
	pointAt := func(global int) LabeledPoint {
		for i := len(all) - 1; i >= 0; i-- {
			if global >= all[i] {
				return d.Parts[i][global-all[i]]
			}
		}
		panic("unreachable")
	}
	centers := make([][]float64, cfg.K)
	seen := make(map[int]bool)
	for i := 0; i < cfg.K; {
		g := rng.Intn(n)
		if seen[g] {
			continue
		}
		seen[g] = true
		centers[i] = append([]float64(nil), pointAt(g).Features...)
		i++
	}

	type partial struct {
		sums   [][]float64
		counts []int64
		cost   float64
	}
	iters := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		iters = iter + 1
		partials := make([]*partial, len(d.Parts))
		forEachPart(len(d.Parts), func(i int) error {
			p := &partial{sums: make([][]float64, cfg.K), counts: make([]int64, cfg.K)}
			for k := range p.sums {
				p.sums[k] = make([]float64, dim)
			}
			for _, pt := range d.Parts[i] {
				best, bestD := 0, math.Inf(1)
				for k, c := range centers {
					dd := sqDist(pt.Features, c)
					if dd < bestD {
						best, bestD = k, dd
					}
				}
				p.counts[best]++
				p.cost += bestD
				for j, x := range pt.Features {
					p.sums[best][j] += x
				}
			}
			partials[i] = p
			return nil
		})
		sums := make([][]float64, cfg.K)
		counts := make([]int64, cfg.K)
		cost := 0.0
		for k := range sums {
			sums[k] = make([]float64, dim)
		}
		for _, p := range partials {
			cost += p.cost
			for k := range sums {
				counts[k] += p.counts[k]
				for j := range sums[k] {
					sums[k][j] += p.sums[k][j]
				}
			}
		}
		maxMove := 0.0
		for k := range centers {
			if counts[k] == 0 {
				continue // empty cluster keeps its center
			}
			move := 0.0
			for j := range centers[k] {
				next := sums[k][j] / float64(counts[k])
				diff := next - centers[k][j]
				move += diff * diff
				centers[k][j] = next
			}
			if move > maxMove {
				maxMove = move
			}
		}
		if math.Sqrt(maxMove) <= cfg.Tolerance {
			return &KMeansModel{Centers: centers, Iterations: iters, Cost: cost}, nil
		}
	}
	// Final cost with the converged centers.
	cost := 0.0
	for _, part := range d.Parts {
		for _, pt := range part {
			bestD := math.Inf(1)
			for _, c := range centers {
				if dd := sqDist(pt.Features, c); dd < bestD {
					bestD = dd
				}
			}
			cost += bestD
		}
	}
	return &KMeansModel{Centers: centers, Iterations: iters, Cost: cost}, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
