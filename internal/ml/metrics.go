package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// BinaryMetrics summarises a binary classifier's quality on a dataset.
type BinaryMetrics struct {
	TruePositives  int
	TrueNegatives  int
	FalsePositives int
	FalseNegatives int
}

// EvaluateBinary computes the confusion matrix of a 0/1 classifier over a
// dataset, in parallel across partitions.
func EvaluateBinary(d *Dataset, predict func([]float64) float64) BinaryMetrics {
	partial := make([]BinaryMetrics, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		m := &partial[i]
		for _, p := range d.Parts[i] {
			pos := predict(p.Features) >= 0.5
			truth := p.Label >= 0.5
			switch {
			case pos && truth:
				m.TruePositives++
			case pos && !truth:
				m.FalsePositives++
			case !pos && truth:
				m.FalseNegatives++
			default:
				m.TrueNegatives++
			}
		}
		return nil
	})
	var out BinaryMetrics
	for _, m := range partial {
		out.TruePositives += m.TruePositives
		out.TrueNegatives += m.TrueNegatives
		out.FalsePositives += m.FalsePositives
		out.FalseNegatives += m.FalseNegatives
	}
	return out
}

// Total returns the number of evaluated examples.
func (m BinaryMetrics) Total() int {
	return m.TruePositives + m.TrueNegatives + m.FalsePositives + m.FalseNegatives
}

// Accuracy returns (TP+TN)/total.
func (m BinaryMetrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TruePositives+m.TrueNegatives) / float64(t)
}

// Precision returns TP/(TP+FP); 0 when nothing was predicted positive.
func (m BinaryMetrics) Precision() float64 {
	d := m.TruePositives + m.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN); 0 when no positives exist.
func (m BinaryMetrics) Recall() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (m BinaryMetrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix and derived scores.
func (m BinaryMetrics) String() string {
	return fmt.Sprintf("tp=%d tn=%d fp=%d fn=%d acc=%.3f prec=%.3f rec=%.3f f1=%.3f",
		m.TruePositives, m.TrueNegatives, m.FalsePositives, m.FalseNegatives,
		m.Accuracy(), m.Precision(), m.Recall(), m.F1())
}

// AUC computes the area under the ROC curve for a scoring function (higher
// score = more positive). Ties are handled by the rank-sum formulation.
func AUC(d *Dataset, score func([]float64) float64) float64 {
	type scored struct {
		s   float64
		pos bool
	}
	var all []scored
	for _, part := range d.Parts {
		for _, p := range part {
			all = append(all, scored{s: score(p.Features), pos: p.Label >= 0.5})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Mean ranks over tie groups.
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		mean := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			ranks[k] = mean
		}
		i = j
	}
	var posRankSum float64
	var nPos, nNeg int
	for i, s := range all {
		if s.pos {
			posRankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (posRankSum - float64(nPos)*(float64(nPos)+1)/2) / (float64(nPos) * float64(nNeg))
}

// TrainTestSplit partitions a dataset into train and test sets by sampling
// each point into test with probability testFraction (seeded, per
// partition, preserving the distributed layout).
func TrainTestSplit(d *Dataset, testFraction float64, seed int64) (train, test *Dataset, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("ml: test fraction must be in (0,1)")
	}
	train = &Dataset{Parts: make([][]LabeledPoint, len(d.Parts)), Nodes: d.Nodes, NumFeatures: d.NumFeatures}
	test = &Dataset{Parts: make([][]LabeledPoint, len(d.Parts)), Nodes: d.Nodes, NumFeatures: d.NumFeatures}
	forEachPart(len(d.Parts), func(i int) error {
		rng := rand.New(rand.NewSource(seed + int64(i)*104729))
		for _, p := range d.Parts[i] {
			if rng.Float64() < testFraction {
				test.Parts[i] = append(test.Parts[i], p)
			} else {
				train.Parts[i] = append(train.Parts[i], p)
			}
		}
		return nil
	})
	return train, test, nil
}
