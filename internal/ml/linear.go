package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// SGDConfig configures the distributed mini-batch gradient descent shared
// by the linear models (the SVMWithSGD family the paper trains).
type SGDConfig struct {
	Iterations        int
	StepSize          float64
	RegParam          float64 // L2 regularization strength
	MiniBatchFraction float64 // fraction of each partition sampled per step
	AddIntercept      bool
	Seed              int64
}

// DefaultSGD mirrors MLlib's defaults: 100 iterations, step 1.0, full batch.
func DefaultSGD() SGDConfig {
	return SGDConfig{Iterations: 100, StepSize: 1.0, RegParam: 0.01, MiniBatchFraction: 1.0, AddIntercept: true, Seed: 42}
}

// LinearModel is a trained linear predictor: Weights aligned with the
// feature vector, plus an Intercept when fitted.
type LinearModel struct {
	Weights   []float64
	Intercept float64
	// kind selects prediction semantics.
	kind linearKind
	// Threshold for binary classifiers (margin for SVM, probability for
	// logistic regression).
	Threshold float64
}

type linearKind int

const (
	kindSVM linearKind = iota
	kindLogistic
	kindRegression
)

// Margin returns w·x + b.
func (m *LinearModel) Margin(x []float64) float64 {
	s := m.Intercept
	for i, w := range m.Weights {
		s += w * x[i]
	}
	return s
}

// Predict returns the class (0/1) for classifiers or the predicted value
// for regression.
func (m *LinearModel) Predict(x []float64) float64 {
	margin := m.Margin(x)
	switch m.kind {
	case kindSVM:
		if margin >= m.Threshold {
			return 1
		}
		return 0
	case kindLogistic:
		if sigmoid(margin) >= m.Threshold {
			return 1
		}
		return 0
	default:
		return margin
	}
}

// Probability returns P(label=1 | x) for logistic models.
func (m *LinearModel) Probability(x []float64) float64 {
	if m.kind != kindLogistic {
		panic("ml: Probability on a non-logistic model")
	}
	return sigmoid(m.Margin(x))
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// gradFn adds one example's loss gradient into grad and returns its loss.
type gradFn func(w []float64, p LabeledPoint, grad []float64) float64

// TrainSVMWithSGD trains a linear SVM (hinge loss, L2) — the algorithm the
// paper's evaluation runs (Spark MLlib's SVMWithSGD). Labels must be 0/1.
func TrainSVMWithSGD(d *Dataset, cfg SGDConfig) (*LinearModel, error) {
	if err := checkBinaryLabels(d); err != nil {
		return nil, err
	}
	hinge := func(w []float64, p LabeledPoint, grad []float64) float64 {
		y := 2*p.Label - 1 // {0,1} → {-1,+1}
		margin := dot(w, p.Features)
		if y*margin < 1 {
			for i, x := range p.Features {
				grad[i] -= y * x
			}
			return 1 - y*margin
		}
		return 0
	}
	w, b, err := runSGD(d, cfg, hinge)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Intercept: b, kind: kindSVM, Threshold: 0}, nil
}

// TrainLogisticRegressionWithSGD trains binary logistic regression.
// Labels must be 0/1.
func TrainLogisticRegressionWithSGD(d *Dataset, cfg SGDConfig) (*LinearModel, error) {
	if err := checkBinaryLabels(d); err != nil {
		return nil, err
	}
	logistic := func(w []float64, p LabeledPoint, grad []float64) float64 {
		margin := dot(w, p.Features)
		prob := sigmoid(margin)
		diff := prob - p.Label
		for i, x := range p.Features {
			grad[i] += diff * x
		}
		// Numerically-stable log loss.
		if p.Label > 0.5 {
			return math.Log1p(math.Exp(-margin))
		}
		return math.Log1p(math.Exp(-margin)) + margin
	}
	w, b, err := runSGD(d, cfg, logistic)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Intercept: b, kind: kindLogistic, Threshold: 0.5}, nil
}

// TrainLinearRegressionWithSGD trains least-squares linear regression.
func TrainLinearRegressionWithSGD(d *Dataset, cfg SGDConfig) (*LinearModel, error) {
	squared := func(w []float64, p LabeledPoint, grad []float64) float64 {
		diff := dot(w, p.Features) - p.Label
		for i, x := range p.Features {
			grad[i] += diff * x
		}
		return diff * diff / 2
	}
	w, b, err := runSGD(d, cfg, squared)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Intercept: b, kind: kindRegression}, nil
}

// runSGD is the distributed driver: per iteration, every partition computes
// a sampled gradient sum in parallel (the Spark-style map), the sums are
// aggregated (the reduce), and the weights step with an O(1/sqrt(t))
// schedule and L2 shrinkage.
func runSGD(d *Dataset, cfg SGDConfig, gf gradFn) (weights []float64, intercept float64, err error) {
	if d.NumRows() == 0 {
		return nil, 0, fmt.Errorf("ml: empty dataset")
	}
	if cfg.Iterations <= 0 || cfg.StepSize <= 0 {
		return nil, 0, fmt.Errorf("ml: iterations and step size must be positive")
	}
	if cfg.MiniBatchFraction <= 0 || cfg.MiniBatchFraction > 1 {
		return nil, 0, fmt.Errorf("ml: mini-batch fraction must be in (0,1]")
	}
	dim := d.NumFeatures
	if cfg.AddIntercept {
		dim++
	}
	// Work on (possibly intercept-extended) copies of the partitions.
	parts := d.Parts
	if cfg.AddIntercept {
		parts = make([][]LabeledPoint, len(d.Parts))
		if err := forEachPart(len(d.Parts), func(i int) error {
			out := make([]LabeledPoint, len(d.Parts[i]))
			for j, p := range d.Parts[i] {
				f := make([]float64, dim)
				copy(f, p.Features)
				f[dim-1] = 1
				out[j] = LabeledPoint{Label: p.Label, Features: f}
			}
			parts[i] = out
			return nil
		}); err != nil {
			return nil, 0, err
		}
	}

	w := make([]float64, dim)
	grads := make([][]float64, len(parts))
	counts := make([]int, len(parts))
	for i := range grads {
		grads[i] = make([]float64, dim)
	}
	rngs := make([]*rand.Rand, len(parts))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
	}

	for iter := 1; iter <= cfg.Iterations; iter++ {
		if err := forEachPart(len(parts), func(i int) error {
			g := grads[i]
			for j := range g {
				g[j] = 0
			}
			counts[i] = 0
			for _, p := range parts[i] {
				if cfg.MiniBatchFraction < 1 && rngs[i].Float64() >= cfg.MiniBatchFraction {
					continue
				}
				gf(w, p, g)
				counts[i]++
			}
			return nil
		}); err != nil {
			return nil, 0, err
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		step := cfg.StepSize / math.Sqrt(float64(iter))
		for j := range w {
			var g float64
			for i := range grads {
				g += grads[i][j]
			}
			g /= float64(total)
			reg := cfg.RegParam * w[j]
			if cfg.AddIntercept && j == dim-1 {
				reg = 0 // never regularize the intercept
			}
			w[j] -= step * (g + reg)
		}
	}

	if cfg.AddIntercept {
		return w[:dim-1], w[dim-1], nil
	}
	return w, 0, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func checkBinaryLabels(d *Dataset) error {
	for _, part := range d.Parts {
		for _, p := range part {
			if p.Label != 0 && p.Label != 1 {
				return fmt.Errorf("ml: binary classifier requires 0/1 labels, found %v (remap recoded labels via LabelTransform)", p.Label)
			}
		}
	}
	return nil
}

// Accuracy evaluates a classifier over a dataset in parallel.
func Accuracy(d *Dataset, predict func([]float64) float64) float64 {
	correct := make([]int, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		for _, p := range d.Parts[i] {
			if predict(p.Features) == p.Label {
				correct[i]++
			}
		}
		return nil
	})
	total := d.NumRows()
	if total == 0 {
		return 0
	}
	sum := 0
	for _, c := range correct {
		sum += c
	}
	return float64(sum) / float64(total)
}

// MeanSquaredError evaluates a regressor over a dataset in parallel.
func MeanSquaredError(d *Dataset, predict func([]float64) float64) float64 {
	sums := make([]float64, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		for _, p := range d.Parts[i] {
			diff := predict(p.Features) - p.Label
			sums[i] += diff * diff
		}
		return nil
	})
	total := d.NumRows()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range sums {
		sum += s
	}
	return sum / float64(total)
}
